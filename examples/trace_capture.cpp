// Observability demo and CI artifact: runs a short multi-session workload
// (two mapping sessions + one localization session over a shared frozen
// map) through SlamService, then exports the span trace as Chrome
// trace-event JSON — load it at https://ui.perfetto.dev or
// chrome://tracing to see the paper's Fig-7 Gantt as process rows
// ("mapping-N", "localization-N", "scheduler") with named lane tracks —
// and dumps the Prometheus-style metrics exposition.
//
// Self-validating: exits non-zero unless the trace carries every expected
// process/track row and the exposition reports quantiles for the core
// instrumented sites, so CI can run it as a smoke gate and upload the
// artifacts.
//
//   ./examples/trace_capture [--trace out.json] [--metrics out.prom]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/eslam.h"
#include "dataset/sequence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "server/slam_service.h"
#include "slam/map_snapshot.h"

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

void contains(const std::string& text, const char* needle, const char* what) {
  check(text.find(needle) != std::string::npos, what);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  std::string trace_path = "eslam_trace.json";
  std::string metrics_path = "eslam_metrics.prom";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc)
      metrics_path = argv[++i];
  }

  SequenceOptions opts;
  opts.frames = 20;
  const SyntheticSequence xyz(SequenceId::kFr1Xyz, opts);
  const SyntheticSequence desk(SequenceId::kFr1Desk, opts);

  // A frozen map for the localization tier, built by a quick solo run.
  std::shared_ptr<const FrozenMap> frozen;
  {
    BackendConfig backend;
    backend.platform = Platform::kSoftware;
    backend.orb.n_features = 400;
    TrackerOptions topts;
    topts.backend.enabled = true;
    Tracker mapper(xyz.camera(), make_feature_backend(backend), topts);
    for (int i = 0; i < xyz.size(); ++i) mapper.process(xyz.frame(i));
    frozen = FrozenMap::from_snapshot(
        capture_snapshot(mapper.map(), mapper.keyframe_graph(), xyz.camera()));
  }

  // The served workload: everything below lands in the trace rings.
  ServiceOptions service_opts;
  service_opts.arm_workers = 2;
  SlamService service(service_opts);

  SessionConfig mapping;
  mapping.backend.platform = Platform::kSoftware;
  mapping.backend.orb.n_features = 400;
  mapping.tracker.backend.enabled = true;

  SessionConfig localization;
  localization.kind = SessionKind::kLocalization;
  localization.backend.platform = Platform::kSoftware;
  localization.backend.orb.n_features = 400;
  localization.frozen_map = frozen;

  mapping.camera = xyz.camera();
  SessionHandle a = service.open_session(mapping);
  mapping.camera = desk.camera();
  SessionHandle b = service.open_session(mapping);
  SessionHandle c = service.open_session(localization);

  // Interleaved feeds: the sessions genuinely share the device lane and
  // the worker pool, so the capture shows real multiplexing.
  for (int i = 0; i < opts.frames; ++i) {
    a.feed(xyz.frame(i));
    b.feed(desk.frame(i));
    c.feed(xyz.frame(i));
  }
  a.drain();
  b.drain();
  c.drain();

  std::printf("trace_capture: 3 sessions x %d frames served; %llu events "
              "recorded, %llu dropped\n\n",
              opts.frames,
              static_cast<unsigned long long>(
                  obs::trace_events_recorded_total()),
              static_cast<unsigned long long>(
                  obs::trace_events_dropped_total()));

  // Sessions are drained (writers quiescent on their frames), so the
  // snapshot in the export is exact.
  const std::string json = obs::chrome_trace_json();
  const bool trace_written = obs::write_chrome_trace(trace_path);
  const std::string expo = service.metrics_exposition();
  bool metrics_written = false;
  if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
    metrics_written = std::fwrite(expo.data(), 1, expo.size(), f) ==
                      expo.size();
    std::fclose(f);
  }

  std::printf("checks:\n");
  check(trace_written, "trace JSON written");
  check(metrics_written, "metrics exposition written");
#if ESLAM_TRACE_ENABLED
  // Per-session process rows plus the scheduler's resource rows — the
  // multi-session Gantt structure.
  contains(json, "\"mapping-0\"", "trace has mapping session 0 row");
  contains(json, "\"mapping-1\"", "trace has mapping session 1 row");
  contains(json, "\"localization-0\"", "trace has localization session row");
  contains(json, "\"scheduler\"", "trace has scheduler process row");
  contains(json, "\"device lane\"", "trace has shared device-lane track");
  contains(json, "\"arm worker 0\"", "trace has ARM worker tracks");
  contains(json, "device (FE/FM)", "trace has per-session device track");
  contains(json, "backend routine-ba", "trace has backend job-class track");
  contains(json, "\"ph\":\"B\"", "trace has span events");
  contains(json, "dropped_events", "trace carries drop accounting");
#endif
  // The exposition reports quantile bounds for every core site.
  contains(expo, "eslam_tracker_stage_ms_p99{stage=\"fe\"}",
           "exposition: tracker stage p99");
  contains(expo, "eslam_tracker_stage_ms_p999{stage=\"mu\"}",
           "exposition: tracker stage p999");
  contains(expo, "eslam_localizer_frame_ms_p50", "exposition: localizer p50");
  contains(expo, "eslam_scheduler_dispatch_wait_ms_p99",
           "exposition: scheduler dispatch wait p99");
  contains(expo, "eslam_backend_queue_wait_ms_p99{class=\"ba\"}",
           "exposition: backend queue wait p99");
  contains(expo, "eslam_backend_freeze_ms_p99",
           "exposition: backend freeze p99");
  contains(expo, "eslam_sessions_opened_total{kind=\"mapping\"} 2",
           "exposition: session rollup counters");

  a.close();
  b.close();
  c.close();

  if (failures == 0)
    std::printf("\ncapture validated: %s + %s\n", trace_path.c_str(),
                metrics_path.c_str());
  else
    std::printf("\n%d capture check(s) failed.\n", failures);
  return failures == 0 ? 0 : 1;
}
