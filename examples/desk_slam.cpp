// Domain example: full SLAM on the fr1/desk-like sequence, comparing the
// paper's RS-BRIEF descriptor against the original ORB descriptor (the
// experiment behind Figures 8 and 9), and writing TUM-format trajectories
// that external tools can plot.
//
//   ./examples/desk_slam [frames] [--trace out.json]
//
// With --trace, the run's span timeline (both descriptor passes) is
// exported as Chrome trace-event JSON for Perfetto / chrome://tracing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/eslam.h"
#include "dataset/sequence.h"
#include "dataset/tum_io.h"
#include "eval/ate.h"
#include "obs/trace_export.h"

namespace {

eslam::AteResult run(const eslam::SyntheticSequence& sequence,
                     eslam::DescriptorMode mode, const char* traj_path,
                     eslam::MapViewStats* view_stats) {
  using namespace eslam;
  SystemConfig config;
  config.platform = Platform::kSoftware;
  config.descriptor = mode;
  System slam(sequence.camera(), config);

  std::vector<TimedPose> trajectory;
  for (int i = 0; i < sequence.size(); ++i) {
    const TrackResult r = slam.process(sequence.frame(i));
    trajectory.push_back(TimedPose{r.timestamp, r.pose_wc});
  }
  write_tum_trajectory(traj_path, trajectory);
  if (view_stats) *view_stats = slam.map().view_stats();
  return absolute_trajectory_error(slam.poses(), sequence.ground_truth());
}

void print_view_stats(const char* label, const eslam::MapViewStats& s) {
  std::printf("  %-13s: %llu views published, %llu block copies, "
              "%.2f MB copied, %.2f MB shared, %lld alive\n",
              label, static_cast<unsigned long long>(s.publishes),
              static_cast<unsigned long long>(s.block_copies),
              static_cast<double>(s.bytes_copied) / 1e6,
              static_cast<double>(s.bytes_shared) / 1e6,
              static_cast<long long>(s.views_alive));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  SequenceOptions opts;
  opts.frames = 60;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else
      opts.frames = std::atoi(argv[i]);
  }
  if (opts.frames < 10) opts.frames = 10;

  SyntheticSequence sequence(SequenceId::kFr1Desk, opts);
  std::printf("desk_slam: %d frames of %s, software pipeline\n\n",
              sequence.size(), sequence.name().c_str());

  MapViewStats rs_views, orb_views;
  const AteResult rs = run(sequence, DescriptorMode::kRsBrief,
                           "desk_rsbrief.tum", &rs_views);
  const AteResult orb = run(sequence, DescriptorMode::kOrbLut,
                            "desk_original_orb.tum", &orb_views);

  // Ground truth for external comparison.
  std::vector<TimedPose> gt;
  for (int i = 0; i < sequence.size(); ++i)
    gt.push_back(TimedPose{sequence.timestamp(i), sequence.ground_truth(i)});
  write_tum_trajectory("desk_groundtruth.tum", gt);

  std::printf("Average trajectory error (mean ATE, as in Fig. 8):\n");
  std::printf("  RS-BRIEF     : %.2f cm (rmse %.2f cm)\n", rs.mean * 100,
              rs.rmse * 100);
  std::printf("  original ORB : %.2f cm (rmse %.2f cm)\n", orb.mean * 100,
              orb.rmse * 100);
  std::printf("\nMap read-view publication (wait-free read path, "
              "README \"Map concurrency model\"):\n");
  print_view_stats("RS-BRIEF", rs_views);
  print_view_stats("original ORB", orb_views);

  std::printf("\nTrajectories written: desk_rsbrief.tum,"
              " desk_original_orb.tum, desk_groundtruth.tum\n");
  if (!trace_path.empty() && obs::write_chrome_trace(trace_path))
    std::printf("Trace written: %s (open at https://ui.perfetto.dev)\n",
                trace_path.c_str());
  return 0;
}
