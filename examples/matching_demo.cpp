// Feature-matching demo: extract RS-BRIEF features from two views of the
// synthetic scene, match them, verify the matches against the known
// geometry (we have exact depth + poses), and render a side-by-side match
// visualization to matches.ppm.
//
//   ./examples/matching_demo
#include <cstdio>

#include "dataset/sequence.h"
#include "features/orb.h"
#include "image/draw.h"
#include "image/pnm_io.h"

int main() {
  using namespace eslam;

  SequenceOptions opts;
  opts.frames = 30;
  SyntheticSequence sequence(SequenceId::kFr1Desk, opts);
  const FrameInput a = sequence.frame(0);
  const FrameInput b = sequence.frame(2);

  OrbConfig orb_cfg;
  orb_cfg.mode = DescriptorMode::kRsBrief;
  OrbExtractor extractor(orb_cfg);
  const FeatureList fa = extractor.extract(a.gray);
  const FeatureList fb = extractor.extract(b.gray);
  std::printf("extracted %zu / %zu features\n", fa.size(), fb.size());

  std::vector<Descriptor256> da, db;
  for (const Feature& f : fa) da.push_back(f.descriptor);
  for (const Feature& f : fb) db.push_back(f.descriptor);

  MatcherOptions mopts;
  mopts.max_distance = 64;
  mopts.ratio = 0.8;
  mopts.cross_check = true;
  const std::vector<Match> matches = match_descriptors(da, db, mopts);

  // Geometric verification: project frame-a points (via exact depth and
  // ground-truth poses) into frame b; a match is correct within 3 px.
  const PinholeCamera& cam = sequence.camera();
  const SE3 b_from_a =
      sequence.ground_truth(2).inverse() * sequence.ground_truth(0);
  int correct = 0, verified = 0;
  for (const Match& m : matches) {
    const Keypoint& ka = fa[static_cast<std::size_t>(m.query)].keypoint;
    const Keypoint& kb = fb[static_cast<std::size_t>(m.train)].keypoint;
    const int xi = static_cast<int>(ka.x0()), yi = static_cast<int>(ka.y0());
    if (!a.depth.contains(xi, yi) || a.depth.at(xi, yi) == 0) continue;
    const double z = a.depth.at(xi, yi) / 5000.0;
    const auto proj = cam.project(b_from_a * cam.unproject(ka.x0(), ka.y0(), z));
    if (!proj) continue;
    ++verified;
    const double dx = (*proj)[0] - kb.x0(), dy = (*proj)[1] - kb.y0();
    if (dx * dx + dy * dy < 9.0) ++correct;
  }
  std::printf("matches: %zu, geometrically correct: %d / %d (%.1f%%)\n",
              matches.size(), correct, verified,
              verified ? 100.0 * correct / verified : 0.0);

  // Visualization.
  ImageRgb va = to_rgb(a.gray), vb = to_rgb(b.gray);
  for (const Feature& f : fa)
    draw_circle(va, static_cast<int>(f.keypoint.x0()),
                static_cast<int>(f.keypoint.y0()), 3, Rgb{0, 200, 0});
  for (const Feature& f : fb)
    draw_circle(vb, static_cast<int>(f.keypoint.x0()),
                static_cast<int>(f.keypoint.y0()), 3, Rgb{0, 200, 0});
  ImageRgb canvas = hstack(va, vb);
  int drawn = 0;
  for (const Match& m : matches) {
    if (drawn++ % 8 != 0) continue;  // draw a readable subset
    const Keypoint& ka = fa[static_cast<std::size_t>(m.query)].keypoint;
    const Keypoint& kb = fb[static_cast<std::size_t>(m.train)].keypoint;
    draw_line(canvas, static_cast<int>(ka.x0()), static_cast<int>(ka.y0()),
              static_cast<int>(kb.x0()) + a.gray.width(),
              static_cast<int>(kb.y0()), Rgb{230, 160, 0});
  }
  write_ppm("matches.ppm", canvas);
  std::printf("wrote matches.ppm (%dx%d)\n", canvas.width(), canvas.height());
  return 0;
}
