// Domain example: build a map and save it as a versioned snapshot — the
// producer half of the persistence pair (see examples/localize.cpp for
// the consumer).  Runs the full mapping pipeline with the local-mapping
// backend on (so the snapshot carries the keyframe graph the recognition
// index is rebuilt from), then writes the map points + keyframe graph +
// camera to one binary file.
//
//   ./examples/save_map [frames] [out.map]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dataset/sequence.h"
#include "slam/map_snapshot.h"
#include "slam/tracker.h"

int main(int argc, char** argv) {
  using namespace eslam;
  SequenceOptions opts;
  opts.frames = argc > 1 ? std::atoi(argv[1]) : 60;
  if (opts.frames < 10) opts.frames = 10;
  const char* out_path = argc > 2 ? argv[2] : "desk.map";

  SyntheticSequence sequence(SequenceId::kFr1Desk, opts);
  std::printf("save_map: mapping %d frames of %s\n", sequence.size(),
              sequence.name().c_str());

  TrackerOptions options;
  options.backend.enabled = true;  // the snapshot needs the keyframe graph
  OrbConfig orb;
  orb.n_features = 500;
  Tracker tracker(sequence.camera(), std::make_unique<SoftwareBackend>(orb),
                  options);
  int lost = 0, keyframes = 0;
  for (int i = 0; i < sequence.size(); ++i) {
    const TrackResult r = tracker.process(sequence.frame(i));
    lost += r.lost;
    keyframes += r.keyframe;
  }
  std::printf("  tracked: %d frames (%d lost), %d keyframes, %zu map "
              "points\n",
              sequence.size(), lost, keyframes, tracker.map().size());

  const MapSnapshot snapshot = capture_snapshot(
      tracker.map(), tracker.keyframe_graph(), sequence.camera());
  std::string error;
  if (!save_snapshot(out_path, snapshot, &error)) {
    std::fprintf(stderr, "error: cannot save %s: %s\n", out_path,
                 error.c_str());
    return 1;
  }
  std::printf("  saved %s: %zu points, %zu keyframes\n", out_path,
              snapshot.points.size(), snapshot.keyframes.size());
  std::printf("\nlocalize against it with:  ./examples/localize %s\n",
              out_path);
  return 0;
}
