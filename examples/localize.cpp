// Domain example: localize against a saved map — the consumer half of the
// persistence pair (see examples/save_map.cpp).  Loads the snapshot into
// an immutable FrozenMap (all derived state — SoA planes, keyframe graph,
// recognition index — is rebuilt deterministically on load), then runs a
// read-only Localizer over the sequence: it cold-starts through indexed
// relocalization and tracks match -> estimate_pose -> optimize_pose with
// no map updating at all.  Writes the localized trajectory in TUM format.
//
//   ./examples/localize [map] [frames] [out.tum]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "dataset/sequence.h"
#include "dataset/tum_io.h"
#include "slam/localizer.h"
#include "slam/map_snapshot.h"

int main(int argc, char** argv) {
  using namespace eslam;
  const char* map_path = argc > 1 ? argv[1] : "desk.map";
  SequenceOptions opts;
  opts.frames = argc > 2 ? std::atoi(argv[2]) : 60;
  if (opts.frames < 10) opts.frames = 10;
  const char* out_path = argc > 3 ? argv[3] : "localized.tum";

  std::string error;
  const std::shared_ptr<const FrozenMap> frozen =
      FrozenMap::load(map_path, &error);
  if (!frozen) {
    std::fprintf(stderr,
                 "error: cannot load %s: %s\n(run ./examples/save_map "
                 "first)\n",
                 map_path, error.c_str());
    return 1;
  }
  std::printf("localize: loaded %s — %zu points, %zu keyframes, camera "
              "%dx%d\n",
              map_path, frozen->size(), frozen->graph().size(),
              frozen->camera().width(), frozen->camera().height());

  // The localizer projects with the camera the map was built with.
  SyntheticSequence sequence(SequenceId::kFr1Desk, opts);
  OrbConfig orb;
  orb.n_features = 500;
  Localizer localizer(frozen, std::make_unique<SoftwareBackend>(orb));

  std::vector<TimedPose> trajectory;
  int lost = 0, relocalized = 0;
  for (int i = 0; i < sequence.size(); ++i) {
    const TrackResult r = localizer.process(sequence.frame(i));
    lost += r.lost;
    relocalized += r.relocalized;
    if (!r.lost) trajectory.push_back(TimedPose{r.timestamp, r.pose_wc});
    if (i == 0)
      std::printf("  cold start: %s (tier %s)\n",
                  r.lost ? "LOST" : "relocalized",
                  r.match_tier == MatchTier::kRelocIndex ? "reloc-index"
                  : r.match_tier == MatchTier::kGated    ? "gated"
                                                         : "brute-force");
  }
  std::printf("  localized %d/%d frames (%d relocalizations); map still "
              "has %zu points\n",
              sequence.size() - lost, sequence.size(), relocalized,
              frozen->size());

  if (!write_tum_trajectory(out_path, trajectory)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("  trajectory written: %s\n", out_path);
  return 0;
}
