// Accelerator inspection: run the cycle-simulated ORB Extractor and BRIEF
// Matcher on one synthetic frame and print the per-level cycle breakdown,
// AXI traffic, matcher timing and the FPGA resource inventory — the view a
// hardware engineer would want before committing the design to fabric.
//
//   ./examples/accel_inspect
#include <cstdio>

#include "accel/eslam_accel.h"
#include "dataset/sequence.h"
#include "eval/report.h"
#include "hw/resource_model.h"

int main() {
  using namespace eslam;

  SequenceOptions opts;
  opts.frames = 2;
  SyntheticSequence sequence(SequenceId::kFr1Desk, opts);
  const FrameInput frame = sequence.frame(0);

  OrbExtractorHw extractor;
  const FeatureList features = extractor.extract(frame.gray);
  const HwExtractorReport& rep = extractor.report();

  std::printf("ORB Extractor (rescheduled workflow), %dx%d input:\n",
              frame.gray.width(), frame.gray.height());
  Table levels({"level", "size", "fill", "skew", "stream", "stall",
                "drain", "keypoints"});
  for (const LevelCycleReport& l : rep.levels) {
    char size[32];
    std::snprintf(size, sizeof size, "%dx%d", l.width, l.height);
    levels.add_row({std::to_string(l.level), size,
                    std::to_string(l.fill_cycles),
                    std::to_string(l.skew_cycles),
                    std::to_string(l.stream_cycles),
                    std::to_string(l.stall_cycles),
                    std::to_string(l.drain_cycles),
                    std::to_string(l.detected)});
  }
  levels.print();
  std::printf(
      "detected M=%d -> described %d -> kept N=%d; writeback %llu cycles\n",
      rep.detected, rep.described, rep.kept,
      static_cast<unsigned long long>(rep.writeback_cycles));
  std::printf("total %llu cycles = %.2f ms @100 MHz (paper: 9.1 ms)\n",
              static_cast<unsigned long long>(rep.total_cycles), rep.ms());
  std::printf("on-chip buffers: %.1f KB (vs %.1f KB full-frame caches the"
              " original workflow would need)\n",
              rep.onchip_bits / 8192.0,
              rep.original_workflow_cache_bits / 8192.0);
  std::printf("AXI: %.1f KB read, %.1f KB written\n\n",
              rep.axi_bytes_read / 1024.0, rep.axi_bytes_written / 1024.0);

  // Matcher against a synthetic 3000-point map descriptor set.
  std::vector<Descriptor256> map_desc(3000);
  for (std::size_t i = 0; i < map_desc.size(); ++i)
    for (int w = 0; w < 4; ++w)
      map_desc[i].words()[static_cast<std::size_t>(w)] =
          0x9e3779b97f4a7c15ull * (i * 4 + static_cast<std::size_t>(w) + 1);
  std::vector<Descriptor256> query;
  for (const Feature& f : features) query.push_back(f.descriptor);

  BriefMatcherHw matcher;
  matcher.match(query, map_desc);
  const HwMatcherReport& mrep = matcher.report();
  std::printf("BRIEF Matcher: %d queries x %d map points\n", mrep.queries,
              mrep.map_points);
  std::printf("  compute %llu, load %llu, writeback %llu cycles\n",
              static_cast<unsigned long long>(mrep.compute_cycles),
              static_cast<unsigned long long>(mrep.load_cycles),
              static_cast<unsigned long long>(mrep.writeback_cycles));
  std::printf("  total %.2f ms @100 MHz (paper: 4.0 ms)\n\n", mrep.ms());

  // Resource inventory (Table 1 model).
  const auto inventory = eslam_resource_inventory();
  Table res({"module", "LUT", "FF", "DSP", "BRAM"});
  for (const ModuleResources& m : inventory)
    res.add_row({m.name, std::to_string(m.usage.lut), std::to_string(m.usage.ff),
                 std::to_string(m.usage.dsp), std::to_string(m.usage.bram)});
  const ResourceUsage total = total_resources(inventory);
  res.add_separator();
  res.add_row({"TOTAL (model)", std::to_string(total.lut),
               std::to_string(total.ff), std::to_string(total.dsp),
               std::to_string(total.bram)});
  const ResourceUsage paper = paper_table1_totals();
  res.add_row({"paper Table 1", std::to_string(paper.lut),
               std::to_string(paper.ff), std::to_string(paper.dsp),
               std::to_string(paper.bram)});
  res.print();
  return 0;
}
