// Quickstart: run the full eSLAM system (simulated accelerator) on a short
// synthetic RGB-D sequence and report tracking quality and stage timings.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/eslam.h"
#include "dataset/sequence.h"
#include "eval/ate.h"

int main() {
  using namespace eslam;

  // A short fr1/xyz-like sequence (translation-dominant hand-held motion).
  SequenceOptions seq_opts;
  seq_opts.frames = 40;
  SyntheticSequence sequence(SequenceId::kFr1Xyz, seq_opts);

  SystemConfig config;
  config.platform = Platform::kAccelerated;
  System slam(sequence.camera(), config);

  std::printf("eSLAM quickstart: %d frames of %s (synthetic)\n",
              sequence.size(), sequence.name().c_str());
  for (int i = 0; i < sequence.size(); ++i) {
    const TrackResult r = slam.process(sequence.frame(i));
    if (i % 10 == 0 || r.lost) {
      const Vec3& t = r.pose_wc.translation();
      std::printf(
          "  frame %3d: pos=(%+.3f %+.3f %+.3f) features=%4d inliers=%4d%s%s\n",
          i, t[0], t[1], t[2], r.n_features, r.n_inliers,
          r.keyframe ? " [keyframe]" : "", r.lost ? " [LOST]" : "");
    }
  }

  const AteResult ate = absolute_trajectory_error(
      slam.poses(), sequence.ground_truth());
  const SystemStats stats = slam.stats();

  std::printf("\nTrajectory error: rmse=%.2f cm, mean=%.2f cm, max=%.2f cm\n",
              ate.rmse * 100, ate.mean * 100, ate.max * 100);
  std::printf("Mean stage times (ms): FE=%.2f FM=%.2f PE=%.2f PO=%.2f MU=%.2f\n",
              stats.mean_times.feature_extraction,
              stats.mean_times.feature_matching,
              stats.mean_times.pose_estimation,
              stats.mean_times.pose_optimization,
              stats.mean_times.map_updating);
  std::printf("Key frames: %d / %d, map size: %zu points\n", stats.key_frames,
              stats.frames, slam.map().size());
  return ate.rmse < 0.5 ? 0 : 1;  // sanity gate for CI use
}
