// Trajectory evaluation tool (the TUM benchmark's evaluate_ate, in this
// library): rigidly aligns an estimated TUM-format trajectory to a
// ground-truth one and reports ATE statistics.
//
//   ./examples/evaluate_ate <estimate.tum> <groundtruth.tum>
//
// Trajectories are associated by nearest timestamp (within 20 ms).
// Besides the console summary, writes BENCH_ate.json (summary + per-frame
// error curve) so accuracy results ride the same tracked-artifact path as
// the perf benches.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dataset/tum_io.h"
#include "eval/ate.h"

int main(int argc, char** argv) {
  using namespace eslam;
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <estimate.tum> <groundtruth.tum>\n",
                 argv[0]);
    return 2;
  }
  const auto estimate = read_tum_trajectory(argv[1]);
  const auto ground_truth = read_tum_trajectory(argv[2]);
  if (estimate.empty() || ground_truth.empty()) {
    std::fprintf(stderr, "error: could not read trajectories\n");
    return 1;
  }

  // Associate by nearest timestamp.
  constexpr double kMaxDt = 0.02;
  std::vector<SE3> est, gt;
  std::size_t j = 0;
  for (const TimedPose& e : estimate) {
    while (j + 1 < ground_truth.size() &&
           std::abs(ground_truth[j + 1].timestamp - e.timestamp) <
               std::abs(ground_truth[j].timestamp - e.timestamp))
      ++j;
    if (std::abs(ground_truth[j].timestamp - e.timestamp) > kMaxDt) continue;
    est.push_back(e.pose_wc);
    gt.push_back(ground_truth[j].pose_wc);
  }
  if (est.size() < 3) {
    std::fprintf(stderr, "error: only %zu associated pose pairs\n",
                 est.size());
    return 1;
  }

  const AteResult ate = absolute_trajectory_error(est, gt);
  std::printf("compared_pose_pairs %zu pairs\n", est.size());
  std::printf("absolute_translational_error.rmse   %.6f m\n", ate.rmse);
  std::printf("absolute_translational_error.mean   %.6f m\n", ate.mean);
  std::printf("absolute_translational_error.median %.6f m\n", ate.median);
  std::printf("absolute_translational_error.max    %.6f m\n", ate.max);

  bench::BenchJson json("ate");
  json.text("estimate", argv[1]);
  json.text("groundtruth", argv[2]);
  json.number("compared_pose_pairs", static_cast<double>(est.size()));
  json.number("rmse_m", ate.rmse);
  json.number("mean_m", ate.mean);
  json.number("median_m", ate.median);
  json.number("max_m", ate.max);
  json.array("per_frame_error_m", ate.per_frame_error);
  json.write();
  return 0;
}
