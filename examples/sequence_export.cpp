// Dataset tool: renders a synthetic sequence to disk in a TUM-like layout
// (gray PGMs, 16-bit depth PGMs, groundtruth.tum) so the data can be
// inspected or consumed by external tools.
//
//   ./examples/sequence_export <fr1_xyz|fr1_desk|fr1_room|fr2_xyz|fr2_rpy>
//                              [frames] [out_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "dataset/sequence.h"
#include "dataset/tum_io.h"
#include "image/pnm_io.h"

namespace {

std::optional<eslam::SequenceId> parse_id(const std::string& name) {
  using eslam::SequenceId;
  if (name == "fr1_xyz") return SequenceId::kFr1Xyz;
  if (name == "fr1_desk") return SequenceId::kFr1Desk;
  if (name == "fr1_room") return SequenceId::kFr1Room;
  if (name == "fr2_xyz") return SequenceId::kFr2Xyz;
  if (name == "fr2_rpy") return SequenceId::kFr2Rpy;
  return std::nullopt;
}

// 16-bit PGM for depth (TUM stores depth as 16-bit PNG; PGM is the
// dependency-free equivalent here).
bool write_pgm16(const std::string& path, const eslam::ImageU16& img) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P5\n" << img.width() << " " << img.height() << "\n65535\n";
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      const std::uint16_t v = img.at(x, y);  // big-endian per PNM spec
      os.put(static_cast<char>(v >> 8));
      os.put(static_cast<char>(v & 0xff));
    }
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <fr1_xyz|fr1_desk|fr1_room|fr2_xyz|fr2_rpy>"
                 " [frames] [out_dir]\n",
                 argv[0]);
    return 2;
  }
  const auto id = parse_id(argv[1]);
  if (!id) {
    std::fprintf(stderr, "unknown sequence '%s'\n", argv[1]);
    return 2;
  }
  SequenceOptions opts;
  opts.frames = argc > 2 ? std::atoi(argv[2]) : 30;
  if (opts.frames < 2) opts.frames = 2;
  const std::string out_dir = argc > 3 ? argv[3] : std::string(argv[1]);

  std::filesystem::create_directories(out_dir + "/rgb");
  std::filesystem::create_directories(out_dir + "/depth");

  const SyntheticSequence seq(*id, opts);
  std::vector<TimedPose> gt;
  for (int i = 0; i < seq.size(); ++i) {
    const FrameInput frame = seq.frame(i);
    char name[64];
    std::snprintf(name, sizeof name, "%06.3f", frame.timestamp);
    if (!write_pgm(out_dir + "/rgb/" + name + ".pgm", frame.gray) ||
        !write_pgm16(out_dir + "/depth/" + name + ".pgm", frame.depth)) {
      std::fprintf(stderr, "write failed at frame %d\n", i);
      return 1;
    }
    gt.push_back(TimedPose{frame.timestamp, seq.ground_truth(i)});
  }
  write_tum_trajectory(out_dir + "/groundtruth.tum", gt);

  std::printf("exported %d frames of %s to %s/ (rgb/, depth/,"
              " groundtruth.tum)\n",
              seq.size(), seq.name().c_str(), out_dir.c_str());
  std::printf("camera: fx=%.1f fy=%.1f cx=%.1f cy=%.1f, depth factor 5000\n",
              seq.camera().fx(), seq.camera().fy(), seq.camera().cx(),
              seq.camera().cy());
  return 0;
}
