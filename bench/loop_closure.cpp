// Loop closure & indexed relocalization: ATE with the pose-graph
// correction on vs off over a looped sequence, and recovery from an
// induced tracking loss via the keyframe-recognition index.
//
// Workload: the synthetic loop-revisit sweep (dataset/trajectory_gen
// kLoopRevisit) — a long out-and-back arc whose return leg re-observes
// the outbound views after an absence long enough that the active-window
// map has forgotten them; only the keyframe database remembers the place,
// and drift accumulated over the round trip is exactly what the
// pose-graph correction must claw back.  This is the regime
// append-and-prune map updating cannot fix on its own.
//
// Three deterministic sequential comparisons over identical pre-rendered
// frames (inline backend jobs, exactly reproducible):
//   * closure-off vs closure-on ATE (same backend-BA config, only
//     LoopOptions.enabled differs) — the correction must pay for itself;
//   * nominal run: the relocalization tier must stay silent (the
//     brute-force fallback counter is the regression canary: the indexed
//     path must never silently degrade into map-wide scans);
//   * induced-loss run: a stretch of blank frames kills tracking, and
//     recovery must come through the keyframe index (match_tier
//     kRelocIndex), not the full-map fallback.
// Plus a served (asynchronous) run: loop jobs ride the scheduler's
// background lane and the reloc/loop counters surface in PipelineStats.
//
// Exit code: non-zero in the target regime (>= 300 frames) when
// closure-on fails to beat closure-off, no correction lands, the nominal
// run touches the reloc tier, or the loss run fails to relocalize via the
// index.  Smoke runs report the same numbers informationally.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "eval/ate.h"
#include "server/slam_service.h"

namespace {

using namespace eslam;
using bench::WallTimer;

constexpr int kDefaultFrames = 420;
// Gates enforce at the tuned default workload and above: below ~400
// frames the sweep's per-frame motion grows enough that the (scaled)
// detection gaps and verification thresholds land differently, and the
// numbers are reported rather than enforced.
constexpr int kTargetRegimeFrames = 400;

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

void info(bool ok, const char* what) {
  std::printf("  [%s] %s (informational: outside the target regime)\n",
              ok ? "ok" : "--", what);
}

void note(bool ok, const char* what) {
  std::printf("  [%s] %s (informational)\n", ok ? "ok" : "--", what);
}

// The loop workload runs the tracker with an *active-window* map: a small
// prune age keeps the matcher's working set to the recently-visible scene
// (bounded junk-match mass, no stale-duplicate interference at the
// revisit), while place memory lives where it now belongs — in the
// keyframe database, which recognition, relocalization and loop
// verification all read.  Detection gaps scale with the sequence length.
TrackerOptions tracker_options(bool loop_on, int frames) {
  TrackerOptions opts;
  opts.backend.enabled = true;
  opts.backend.loop.enabled = loop_on;
  opts.lifecycle.max_age = std::max(40, frames / 6);
  // Pure age pruning: the retention override would keep the revisited
  // region's landmarks alive, and the loop would close implicitly through
  // matching instead of exercising detection + correction.
  opts.lifecycle.protect_min_matches = 0;
  opts.backend.loop.min_frame_gap = std::max(30, frames / 5);
  return opts;
}

struct RunOutcome {
  std::vector<SE3> poses;
  double ate_rmse = 0;
  double tail_ate_rmse = 0;  // last 15% of frames — where correction lands
  int lost = 0;
  int keyframes = 0;
  int reloc_attempts = 0;
  int reloc_index_hits = 0;  // recovered frames matched via the index
  int reloc_fallbacks = 0;   // reloc frames that fell back to brute force
  int loop_closed_frames = 0;
  // First indexed recovery at or after `recovery_gate_frame` — for the
  // induced-loss run the gate sits at the blank window's start, so a
  // recovery from an unrelated earlier dropout cannot satisfy the check
  // vacuously.
  int recovery_gate_frame = 0;
  int first_recovered_frame = -1;
  backend::BackendStats backend;
};

void fold_result(RunOutcome& run, const TrackResult& r, int frame) {
  run.poses.push_back(r.pose_wc);
  run.lost += r.lost;
  run.keyframes += r.keyframe;
  run.loop_closed_frames += r.loop_closed;
  if (r.reloc_attempted) {
    ++run.reloc_attempts;
    if (r.match_tier == MatchTier::kBruteForce) ++run.reloc_fallbacks;
    if (!r.lost && r.match_tier == MatchTier::kRelocIndex) {
      ++run.reloc_index_hits;
      if (run.first_recovered_frame < 0 && frame >= run.recovery_gate_frame)
        run.first_recovered_frame = frame;
    }
  }
}

void finish(RunOutcome& run, const std::vector<SE3>& truth) {
  run.ate_rmse = absolute_trajectory_error(run.poses, truth).rmse;
  const std::size_t tail = std::max<std::size_t>(
      3, static_cast<std::size_t>(0.15 * static_cast<double>(truth.size())));
  const std::size_t from = truth.size() - tail;
  run.tail_ate_rmse =
      absolute_trajectory_error(
          std::span<const SE3>(run.poses).subspan(from),
          std::span<const SE3>(truth).subspan(from))
          .rmse;
}

RunOutcome run_sequential(const SyntheticSequence& seq,
                          const std::vector<FrameInput>& frames,
                          bool loop_on, int recovery_gate_frame = 0) {
  RunOutcome run;
  run.recovery_gate_frame = recovery_gate_frame;
  Tracker tracker(seq.camera(), std::make_unique<SoftwareBackend>(),
                  tracker_options(loop_on, static_cast<int>(frames.size())));
  for (std::size_t i = 0; i < frames.size(); ++i)
    fold_result(run, tracker.process(frames[i]), static_cast<int>(i));
  run.backend = tracker.backend_stats();
  finish(run, seq.ground_truth());
  return run;
}

// Blanks a stretch of frames (featureless images): tracking is lost and
// must recover through relocalization when the scene returns.
std::vector<FrameInput> with_induced_loss(std::vector<FrameInput> frames,
                                          int from, int count) {
  for (int i = from; i < from + count && i < static_cast<int>(frames.size());
       ++i) {
    frames[static_cast<std::size_t>(i)].gray =
        ImageU8(frames[static_cast<std::size_t>(i)].gray.width(),
                frames[static_cast<std::size_t>(i)].gray.height(), 0);
  }
  return frames;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  bench::print_header(
      "Loop closure: keyframe recognition + pose-graph correction",
      "drift correction & recovery the eSLAM frontend inherits from "
      "ORB-SLAM's keyframe database (ROADMAP items: relocalization, loop "
      "closure)");

  SequenceOptions opts;
  opts.frames = argc > 1 ? std::atoi(argv[1]) : kDefaultFrames;
  if (opts.frames < 10) opts.frames = 10;
  const SyntheticSequence seq(SequenceId::kLoopRevisit, opts);
  const std::vector<FrameInput> frames = bench::render_all(seq);
  std::printf("sequence %s, %d frames (out-and-back revisit)\n\n",
              seq.name().c_str(), opts.frames);

  // --- closure-on vs closure-off (sequential, deterministic) --------------
  const RunOutcome off = run_sequential(seq, frames, false);
  const RunOutcome on = run_sequential(seq, frames, true);

  std::printf("ATE rmse: closure-off %.2f cm, closure-on %.2f cm (%+.1f%%)\n",
              off.ate_rmse * 100, on.ate_rmse * 100,
              (on.ate_rmse / off.ate_rmse - 1.0) * 100);
  std::printf("  revisit tail (last 15%%): off %.2f cm, on %.2f cm\n",
              off.tail_ate_rmse * 100, on.tail_ate_rmse * 100);
  std::printf("  loops: detected %d, verified %d, rejected %d, applied %d "
              "(last: %d inliers, %.1f cm correction, %d PGO iterations)\n",
              on.backend.loops_detected, on.backend.loops_verified,
              on.backend.loops_rejected, on.backend.loops_applied,
              on.backend.last_loop_inliers,
              on.backend.last_loop_correction_m * 100,
              on.backend.total_pose_graph_iterations);
  std::printf("  keyframes %d, lost off %d / on %d\n\n", on.keyframes,
              off.lost, on.lost);

  // --- induced-loss relocalization (sequential, deterministic) ------------
  const int loss_from = opts.frames / 2;
  const int loss_count = std::max(4, opts.frames / 50);
  const std::vector<FrameInput> loss_frames =
      with_induced_loss(frames, loss_from, loss_count);
  const RunOutcome reloc =
      run_sequential(seq, loss_frames, false, /*recovery_gate_frame=*/loss_from);
  std::printf("induced loss: frames [%d, %d) blanked\n", loss_from,
              loss_from + loss_count);
  std::printf("  reloc attempts %d, index recoveries %d, brute fallbacks "
              "%d, first recovery at frame %d (loss ends %d)\n\n",
              reloc.reloc_attempts, reloc.reloc_index_hits,
              reloc.reloc_fallbacks, reloc.first_recovered_frame,
              loss_from + loss_count);

  // --- served run: loop jobs on the background lane -----------------------
  int served_loops = 0, served_reloc = 0, served_jobs = 0;
  {
    SlamService service(ServiceOptions{/*arm_workers=*/2});
    SessionConfig config;
    config.camera = seq.camera();
    config.tracker = tracker_options(true, opts.frames);
    config.backend_factory = [] {
      return std::make_unique<SoftwareBackend>();
    };
    SessionHandle session = service.open_session(config);
    for (const FrameInput& f : frames) session.feed(f);
    session.drain();
    const PipelineStats stats = session.stats();
    served_loops = stats.loops_closed;
    served_reloc = stats.reloc_attempts;
    served_jobs = stats.backend_jobs;
    std::printf("served: %d backend jobs on the pool, %d loops closed, %d "
                "reloc attempts (asynchronous timing — informational)\n\n",
                served_jobs, served_loops, served_reloc);
    session.close();
  }

  // --- machine-readable output -------------------------------------------
  bench::BenchJson json("loop_closure");
  json.number("frames", opts.frames);
  json.number("ate_rmse_m_off", off.ate_rmse);
  json.number("ate_rmse_m_on", on.ate_rmse);
  json.number("tail_ate_rmse_m_off", off.tail_ate_rmse);
  json.number("tail_ate_rmse_m_on", on.tail_ate_rmse);
  json.number("loops_detected", on.backend.loops_detected);
  json.number("loops_verified", on.backend.loops_verified);
  json.number("loops_rejected", on.backend.loops_rejected);
  json.number("loops_applied", on.backend.loops_applied);
  json.number("last_loop_inliers", on.backend.last_loop_inliers);
  json.number("last_loop_correction_m", on.backend.last_loop_correction_m);
  json.number("keyframes", on.keyframes);
  json.number("lost_frames_off", off.lost);
  json.number("lost_frames_on", on.lost);
  json.number("nominal_reloc_attempts", on.reloc_attempts);
  json.number("nominal_reloc_fallbacks", on.reloc_fallbacks);
  json.number("loss_reloc_attempts", reloc.reloc_attempts);
  json.number("loss_reloc_index_recoveries", reloc.reloc_index_hits);
  json.number("loss_reloc_brute_fallbacks", reloc.reloc_fallbacks);
  json.number("loss_first_recovery_frame", reloc.first_recovered_frame);
  json.number("served_loops_closed", served_loops);
  json.number("served_backend_jobs", served_jobs);
  json.write();

  // --- acceptance ---------------------------------------------------------
  std::printf("\nchecks:\n");
  const bool target_regime = opts.frames >= kTargetRegimeFrames;
  const bool ate_better = on.ate_rmse < off.ate_rmse;
  const bool tail_better = on.tail_ate_rmse < off.tail_ate_rmse;
  const bool loop_landed =
      on.backend.loops_applied > 0 && on.loop_closed_frames > 0;
  // Momentary losses may occur (and recover through the index within a
  // frame or two), but the map-wide brute-force fallback must never run:
  // recovery stays O(window) on the nominal path.
  const bool nominal_no_fallback =
      on.reloc_fallbacks == 0 && off.reloc_fallbacks == 0;
  // The recovery must postdate the induced loss (see recovery_gate_frame).
  const bool reloc_via_index =
      reloc.reloc_index_hits > 0 && reloc.first_recovered_frame >= loss_from;
  const bool reloc_not_brute = reloc.reloc_fallbacks == 0;
  if (target_regime) {
    check(ate_better, "closure-on ATE strictly better than closure-off "
                      "(deterministic sequential)");
    // Tail ATE is reported, not enforced: Umeyama-aligning a short
    // segment independently measures the segment's internal shape more
    // than its global drift, so the full-trajectory gate above is the
    // honest one.
    note(tail_better, "closure-on revisit-tail ATE better");
    check(loop_landed, "a verified loop correction applied to the map");
    check(nominal_no_fallback, "nominal path: zero map-wide brute-force "
                               "fallbacks (recovery stays indexed)");
    check(reloc_via_index, "after induced loss, recovery came through the "
                           "keyframe-recognition index");
    check(reloc_not_brute, "no induced-loss frame fell back to the "
                           "map-wide brute-force scan");
  } else {
    std::printf("  smoke run (need >= %d frames for enforcement) — gates "
                "reported, not enforced\n",
                kTargetRegimeFrames);
    info(ate_better, "closure-on ATE better than closure-off");
    info(tail_better, "closure-on revisit-tail ATE better");
    info(loop_landed, "a verified loop correction applied");
    info(nominal_no_fallback, "nominal path: no brute-force fallbacks");
    info(reloc_via_index, "induced-loss recovery via the index");
    info(reloc_not_brute, "no brute-force fallback on the loss run");
  }

  if (failures != 0)
    std::printf("\n%d check(s) failed.\n", failures);
  else if (target_regime)
    std::printf("\nloop closure pays for itself: drift corrected at the "
                "revisit, recovery is O(window) instead of O(map).\n");
  else
    std::printf("\nsmoke run completed (benches compile and run).\n");
  return failures == 0 ? 0 : 1;
}
