// Measured counterpart of Figure 7 / Table 3: runs the same synthetic
// sequence through the sequential schedule and through the concurrent
// pipeline runtime (runtime/PipelineExecutor), and prints measured
// per-frame latency/throughput side-by-side with the analytic
// pipeline_timeline model fed with the measured stage durations.
//
// The accelerator is emulated as an asynchronous *device*: feature
// extraction is computed functionally once per frame outside the timed
// region (bit-exact software ORB), and the backend replays it with the
// modeled device latency as a sleep — releasing the host CPU exactly as
// a real FPGA would, so the overlap is measurable even on a single-core
// runner.  Feature matching runs live on the host (it reads the evolving
// map).  Both execution modes use identical backends, so their poses are
// bit-identical and the only variable is the schedule.
//
// Exits non-zero unless the measured schedule reproduces the paper's
// shapes: on normal frames the FPGA-lane work of frame N+1 overlaps the
// ARM-lane work of frame N and the pipelined per-frame latency is
// strictly below the sequential sum of stages; on key frames feature
// matching of frame N+1 starts only after map updating of frame N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/trace.h"
#include "runtime/pipeline_executor.h"

namespace {

using namespace eslam;

// Modeled device latency for feature extraction.  The paper's fabric
// extracts in 9.1 ms against 17.9 ms of ARM-side PE+PO (Table 2); the
// bench pins pose estimation to ~2x the device time (fixed-iteration
// RANSAC below) so the schedule has the same ARM-bound normal-frame
// proportions as Figure 7 regardless of host speed.
constexpr double kDeviceFeMs = 25.0;
// Floor for feature matching: the device would answer in ~4 ms (paper),
// but the functional match must run on the host, so the host compute
// time applies whenever it is larger.
constexpr double kDeviceFmFloorMs = 4.0;

using bench::WallTimer;

TrackerOptions bench_tracker_options() {
  TrackerOptions opts;
  // Fixed-iteration RANSAC: pose estimation becomes a stable ~2x the
  // modeled device FE time, putting the schedule in the paper's
  // ARM-bound normal-frame regime (PE+PO > FE+FM).
  opts.ransac.max_iterations = 2000;
  opts.ransac.min_iterations = 2000;
  opts.ransac.early_exit_ratio = 1.1;
  return opts;
}

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

struct FrameEvents {
  const StageEvent* fe = nullptr;
  const StageEvent* fm = nullptr;  // authoritative (last non-speculative)
  const StageEvent* pe = nullptr;
  const StageEvent* po = nullptr;
  const StageEvent* mu = nullptr;
};

std::map<int, FrameEvents> index_events(const std::vector<StageEvent>& events) {
  std::map<int, FrameEvents> by_frame;
  for (const StageEvent& e : events) {
    if (e.speculative) continue;
    FrameEvents& f = by_frame[e.frame];
    switch (e.stage) {
      case PipeStage::kFeatureExtraction: f.fe = &e; break;
      case PipeStage::kFeatureMatching: f.fm = &e; break;
      case PipeStage::kPoseEstimation: f.pe = &e; break;
      case PipeStage::kPoseOptimization: f.po = &e; break;
      case PipeStage::kMapUpdating: f.mu = &e; break;
    }
  }
  return by_frame;
}

// ASCII Gantt of one measured frame pair (ARM of frame N, FPGA of N+1),
// time-shifted to the window start — the measured analogue of the
// bench_fig7_pipeline drawing.
void draw_measured(const FrameEvents& n, const FrameEvents& next) {
  const double t0 = std::min(n.pe->start_ms, next.fe->start_ms);
  const double t1 = std::max(n.mu->end_ms, next.fm->end_ms);
  constexpr int kWidth = 64;
  auto lane = [](std::vector<std::pair<const char*, const StageEvent*>> segs) {
    std::vector<bench::GanttSegment> out;
    for (const auto& [stage, e] : segs)
      out.push_back({stage, e->start_ms, e->end_ms});
    return out;
  };
  bench::draw_gantt_lane(
      "ARM", lane({{"PE", n.pe}, {"PO", n.po}, {"MU", n.mu}}), t0, t1,
      kWidth);
  bench::draw_gantt_lane("FPGA", lane({{"FE", next.fe}, {"FM", next.fm}}),
                         t0, t1, kWidth);
  std::printf("       0%*s%.1f ms\n", kWidth - 6, "", t1 - t0);
}

}  // namespace

int main() {
  using namespace eslam;
  bench::print_header(
      "Pipeline throughput: sequential vs concurrent Figure-7 runtime",
      "Figure 7 / Table 3");

  // fr1/xyz: several key frames at the default thresholds, but the jiggle
  // revisits the same view, so the map — and with it the host-side FM
  // compute — stays bounded across the run.
  SequenceOptions opts;
  opts.frames = 36;
  const SyntheticSequence seq(SequenceId::kFr1Xyz, opts);
  const std::vector<FrameInput> frames = bench::render_all(seq);

  // Functional FE, computed once outside the timed region (the device
  // replays it with modeled latency; both modes share it bit-exactly).
  const TrackerOptions topts = bench_tracker_options();
  std::vector<FeatureList> precomputed;
  {
    OrbExtractor extractor{OrbConfig{}};
    precomputed.reserve(frames.size());
    for (const FrameInput& f : frames)
      precomputed.push_back(extractor.extract(f.gray));
  }
  auto make_tracker = [&] {
    return std::make_unique<Tracker>(
        seq.camera(),
        std::make_unique<bench::DeviceEmulationBackend>(
            precomputed, topts.matcher, kDeviceFeMs, kDeviceFmFloorMs),
        topts);
  };

  // --- sequential reference ----------------------------------------------
  auto sequential = make_tracker();
  const WallTimer seq_timer;
  for (const FrameInput& f : frames) sequential->process(f);
  const double seq_wall_ms = seq_timer.elapsed_ms();

  StageDurations normal_mean{}, key_mean{};
  int n_normal = 0, n_key = 0;
  double seq_normal_sum_ms = 0;
  for (const TrackResult& r : sequential->trajectory()) {
    auto add = [&](StageDurations& acc) {
      acc.feature_extraction += r.times.feature_extraction;
      acc.feature_matching += r.times.feature_matching;
      acc.pose_estimation += r.times.pose_estimation;
      acc.pose_optimization += r.times.pose_optimization;
      acc.map_updating += r.times.map_updating;
    };
    if (r.keyframe) {
      add(key_mean);
      ++n_key;
    } else {
      add(normal_mean);
      seq_normal_sum_ms += r.times.total();
      ++n_normal;
    }
  }
  auto scale = [](StageDurations& d, int n) {
    if (n == 0) return;
    d.feature_extraction /= n;
    d.feature_matching /= n;
    d.pose_estimation /= n;
    d.pose_optimization /= n;
    d.map_updating /= n;
  };
  scale(normal_mean, n_normal);
  scale(key_mean, n_key);

  // --- pipelined run ------------------------------------------------------
  auto pipelined = make_tracker();
  PipelineExecutor executor(*pipelined, PipelineOptions{});
  const WallTimer pipe_timer;
  for (const FrameInput& f : frames) executor.feed(f);
  const std::vector<TrackResult> results = executor.drain();
  const double pipe_wall_ms = pipe_timer.elapsed_ms();

  const std::vector<StageEvent> events = executor.stage_events();
  const std::map<int, FrameEvents> by_frame = index_events(events);
  const PipelineStats stats = executor.stats();

  // Steady-state per-frame latency: retire-to-retire interval, attributed
  // to the frame that retires.  Skip the two warmup frames.
  double pipe_normal_period_ms = 0, pipe_key_period_ms = 0;
  int p_normal = 0, p_key = 0;
  int overlapped = 0, overlap_candidates = 0;
  bool key_barrier_ok = true;
  std::vector<double> periods;  // all retire-to-retire intervals (p50/p99)
  for (int n = 2; n < opts.frames; ++n) {
    const FrameEvents& cur = by_frame.at(n);
    const FrameEvents& prev = by_frame.at(n - 1);
    const double period = cur.mu->end_ms - prev.mu->end_ms;
    periods.push_back(period);
    if (results[static_cast<std::size_t>(n)].keyframe) {
      pipe_key_period_ms += period;
      ++p_key;
    } else {
      pipe_normal_period_ms += period;
      ++p_normal;
    }
    // Overlap shape: FPGA work of frame n (FE..FM) vs ARM work of n-1.
    if (!results[static_cast<std::size_t>(n - 1)].keyframe) {
      ++overlap_candidates;
      if (cur.fe->start_ms < prev.mu->end_ms &&
          cur.fm->end_ms > prev.pe->start_ms)
        ++overlapped;
    }
    // Key-frame shape: FM of n must wait for MU of key frame n-1.
    if (results[static_cast<std::size_t>(n - 1)].keyframe &&
        cur.fm->start_ms + 1e-6 < prev.mu->end_ms)
      key_barrier_ok = false;
  }
  if (p_normal > 0) pipe_normal_period_ms /= p_normal;
  if (p_key > 0) pipe_key_period_ms /= p_key;
  const double seq_normal_mean_ms =
      n_normal > 0 ? seq_normal_sum_ms / n_normal : 0.0;

  // --- report -------------------------------------------------------------
  std::printf("sequence %s, %d frames (%d normal / %d key), backend %s\n",
              seq.name().c_str(), opts.frames, n_normal, n_key,
              sequential->backend().name());
  std::printf("device model: FE latency %.1f ms (host-free), FM floor %.1f "
              "ms (host compute when larger)\n\n",
              kDeviceFeMs, kDeviceFmFloorMs);
  std::printf("measured stage means, normal frames: FE=%.1f FM=%.1f PE=%.1f "
              "PO=%.1f ms\n",
              normal_mean.feature_extraction, normal_mean.feature_matching,
              normal_mean.pose_estimation, normal_mean.pose_optimization);
  std::printf("measured stage means, key frames:    FE=%.1f FM=%.1f PE=%.1f "
              "PO=%.1f MU=%.1f ms\n\n",
              key_mean.feature_extraction, key_mean.feature_matching,
              key_mean.pose_estimation, key_mean.pose_optimization,
              key_mean.map_updating);

  std::printf("%-36s %12s %12s\n", "per-frame latency", "normal", "key");
  std::printf("%-36s %9.1f ms %9.1f ms\n",
              "sequential (measured sum)", seq_normal_mean_ms,
              software_key_frame_ms(key_mean));
  std::printf("%-36s %9.1f ms %9.1f ms\n",
              "pipelined (analytic, Fig-7 model)",
              eslam_normal_frame_ms(normal_mean),
              eslam_key_frame_ms(key_mean));
  std::printf("%-36s %9.1f ms %9.1f ms\n\n",
              "pipelined (measured period)", pipe_normal_period_ms,
              pipe_key_period_ms);

  std::printf("wall clock: sequential %.0f ms, pipelined %.0f ms "
              "(%.2fx throughput)\n",
              seq_wall_ms, pipe_wall_ms, seq_wall_ms / pipe_wall_ms);
  std::printf("lane occupancy: FPGA %.0f ms, ARM %.0f ms over %.0f ms wall; "
              "max in-flight %d, speculative FM %d (replayed %d)\n\n",
              stats.fpga_busy_ms, stats.arm_busy_ms, stats.wall_ms,
              stats.max_in_flight, stats.speculative_matches,
              stats.replayed_matches);

  // A sample normal-frame window, measured (compare bench_fig7_pipeline's
  // analytic drawing of the same schedule).
  for (int n = 2; n < opts.frames; ++n) {
    if (results[static_cast<std::size_t>(n - 1)].keyframe ||
        results[static_cast<std::size_t>(n)].keyframe)
      continue;
    std::printf("measured normal-frame window (ARM frame %d / FPGA frame "
                "%d):\n",
                n - 1, n);
    draw_measured(by_frame.at(n - 1), by_frame.at(n));
    std::printf("\n");
    break;
  }

  // --- tracing overhead gate -----------------------------------------------
  // A/B the span-tracing layer (obs/trace.h) on this exact workload: same
  // tracker factory, same frames, runtime switch flipped.  Two runs per
  // arm, min-of-2 p99 — the minimum sheds one-off scheduler hiccups, which
  // is what makes a 3% relative gate holdable on shared CI runners.  The
  // metrics histograms record in both arms (they have no off switch by
  // design), so the delta isolates tracing itself.
  auto pipelined_p99 = [&](bool tracing_on) {
    const bool was = obs::trace_enabled();
    obs::set_trace_enabled(tracing_on);
    auto tracker = make_tracker();
    PipelineExecutor ex(*tracker, PipelineOptions{});
    for (const FrameInput& f : frames) ex.feed(f);
    ex.drain();
    obs::set_trace_enabled(was);
    const std::map<int, FrameEvents> bf = index_events(ex.stage_events());
    std::vector<double> ps;
    for (int n = 2; n < opts.frames; ++n)
      ps.push_back(bf.at(n).mu->end_ms - bf.at(n - 1).mu->end_ms);
    std::sort(ps.begin(), ps.end());
    if (ps.empty()) return 0.0;
    return ps[std::min(ps.size() - 1,
                       static_cast<std::size_t>(
                           0.99 * static_cast<double>(ps.size())))];
  };
  double trace_off_p99 = 0, trace_on_p99 = 0;
  for (int rep = 0; rep < 2; ++rep) {
    const double off = pipelined_p99(false);
    const double on = pipelined_p99(true);
    trace_off_p99 = rep ? std::min(trace_off_p99, off) : off;
    trace_on_p99 = rep ? std::min(trace_on_p99, on) : on;
  }
  const double trace_overhead_pct =
      trace_off_p99 > 0 ? (trace_on_p99 / trace_off_p99 - 1.0) * 100.0 : 0.0;
  std::printf("tracing overhead: p99 %.2f ms off, %.2f ms on (%+.2f%%)\n\n",
              trace_off_p99, trace_on_p99, trace_overhead_pct);

  // --- machine-readable output ---------------------------------------------
  {
    std::vector<double> sorted = periods;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&](double p) {
      if (sorted.empty()) return 0.0;
      return sorted[std::min(sorted.size() - 1,
                             static_cast<std::size_t>(
                                 p * static_cast<double>(sorted.size())))];
    };
    bench::BenchJson json("pipeline_throughput");
    json.number("frames", opts.frames);
    json.number("sequential_wall_ms", seq_wall_ms);
    json.number("pipelined_wall_ms", pipe_wall_ms);
    json.number("throughput_ratio", seq_wall_ms / pipe_wall_ms);
    json.number("sequential_fps", 1000.0 * opts.frames / seq_wall_ms);
    json.number("pipelined_fps", 1000.0 * opts.frames / pipe_wall_ms);
    json.number("pipelined_p50_ms", pct(0.50));
    json.number("pipelined_p99_ms", pct(0.99));
    json.number("normal_period_ms", pipe_normal_period_ms);
    json.number("key_period_ms", pipe_key_period_ms);
    json.number("speculative_matches", stats.speculative_matches);
    json.number("replayed_matches", stats.replayed_matches);
    json.number("trace_off_p99_ms", trace_off_p99);
    json.number("trace_on_p99_ms", trace_on_p99);
    json.number("trace_overhead_pct", trace_overhead_pct);
    json.write();
    std::printf("\n");
  }

  // --- shape checks --------------------------------------------------------
  std::printf("checks:\n");
  check(results.size() == sequential->trajectory().size(),
        "streaming delivered every frame");
  bool poses_equal = true;
  for (std::size_t i = 0; i < results.size(); ++i)
    if ((results[i].pose_wc.translation() -
         sequential->trajectory()[i].pose_wc.translation()).max_abs() != 0.0 ||
        (results[i].pose_wc.rotation() -
         sequential->trajectory()[i].pose_wc.rotation()).max_abs() != 0.0)
      poses_equal = false;
  check(poses_equal, "streaming poses bit-identical to sequential");
  check(n_key > 1, "sequence produced key frames beyond bootstrap");
  check(p_normal > 0 && pipe_normal_period_ms < seq_normal_mean_ms,
        "pipelined normal-frame latency < sequential sum of stages");
  check(pipe_wall_ms < seq_wall_ms,
        "pipelined wall clock < sequential wall clock");
  check(overlap_candidates > 0 && overlapped * 10 >= overlap_candidates * 8,
        "FPGA(N+1) overlaps ARM(N) on >=80% of normal frames (Fig-7 "
        "normal shape)");
  check(key_barrier_ok,
        "FM(N+1) never precedes MU(N) on key frames (Fig-7 key shape)");
  // The overhead gate needs a host with enough cores that the tracing
  // delta is not drowned by lane threads time-slicing one CPU; report-only
  // below that.
  if (std::thread::hardware_concurrency() >= 3)
    check(trace_on_p99 <= trace_off_p99 * 1.03,
          "tracing-on p99 within 3% of tracing-off (overhead gate)");
  else
    std::printf("  [--] tracing overhead gate skipped (<3 hardware "
                "threads)\n");

  if (failures == 0)
    std::printf("\nmeasured schedule reproduces the Figure-7 shapes.\n");
  else
    std::printf("\n%d shape check(s) failed.\n", failures);
  return failures == 0 ? 0 : 1;
}
