// Ablation: the workflow rescheduling of section 3.1 — streaming
// detect->describe->filter vs the original detect->filter->describe.
// Reports per-frame extractor latency, stream stalls and the on-chip
// memory the rescheduled order avoids (paper claims ~39% lower latency
// than the extractor of [4] despite processing 48% more pixels).
#include "accel/orb_extractor_hw.h"
#include "bench_util.h"
#include "dataset/scene.h"

int main() {
  using namespace eslam;
  using namespace eslam::bench;
  print_header("Ablation: workflow rescheduling (section 3.1 / 4.4)",
               "section 4.4 discussion");

  const BoxRoomScene scene;
  const PinholeCamera cam = PinholeCamera::tum_freiburg1();
  const ImageU8 img = scene.render(cam, SE3{}, 0).gray;

  HwExtractorConfig resched_cfg;
  resched_cfg.workflow = HwWorkflow::kRescheduled;
  HwExtractorConfig orig_cfg;
  orig_cfg.workflow = HwWorkflow::kOriginal;

  OrbExtractorHw resched(resched_cfg), orig(orig_cfg);
  resched.extract(img);
  orig.extract(img);
  const HwExtractorReport& r = resched.report();
  const HwExtractorReport& o = orig.report();

  Table t({"metric", "rescheduled (paper)", "original workflow"});
  t.add_row({"FE latency", ms(r.ms(), 2), ms(o.ms(), 2)});
  t.add_row({"total cycles", std::to_string(r.total_cycles),
             std::to_string(o.total_cycles)});
  t.add_row({"descriptors computed",
             std::to_string(r.described) + " (all M detected)",
             std::to_string(o.described) + " (N kept only)"});
  t.add_row({"serial describe tail", "0 cycles",
             std::to_string(o.describe_serial_cycles) + " cycles"});
  std::uint64_t resched_stalls = 0;
  for (const LevelCycleReport& lvl : r.levels) resched_stalls += lvl.stall_cycles;
  t.add_row({"stream stalls", std::to_string(resched_stalls) + " cycles",
             "0 cycles"});
  t.add_row({"on-chip stream caches",
             Table::fmt(r.onchip_bits / 8192.0, 1) + " KB",
             Table::fmt(o.onchip_bits / 8192.0, 1) + " KB"});
  t.add_row({"full-frame smoothed buffer", "not needed",
             Table::fmt(o.original_workflow_cache_bits / 8192.0, 1) +
                 " KB (or SDRAM round trips)"});
  t.print();

  const double reduction = 100.0 * (1.0 - r.ms() / o.ms());
  std::printf(
      "\nlatency reduction from rescheduling: %.1f%%\n"
      "paper section 4.4: eSLAM's FE is ~39%% faster than the FPGA ORB\n"
      "extractor of [4] (which follows the original order), even though\n"
      "the 4-layer pyramid processes 48%% more pixels.\n"
      "trade-off visible above: %d - %d = %d extra descriptors are\n"
      "computed to keep the pipeline busy (the M - N overhead the paper\n"
      "accepts).\n",
      reduction, r.described, o.described, r.described - o.described);
  return 0;
}
