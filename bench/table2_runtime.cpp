// Regenerates Table 2: per-stage runtime breakdown of eSLAM vs software
// implementations.
//
// Columns produced (see EXPERIMENTS.md for the platform substitution):
//   * eSLAM (sim)   — FE/FM from the cycle simulator @100 MHz; PE/PO/MU
//                     modelled at the paper's ARM values scaled from host.
//   * host (meas)   — the full software pipeline measured on this machine
//                     (stands in for the paper's Intel i7 column).
//   * ARM (model)   — host times scaled by the per-stage ARM/i7 ratios
//                     derived from the paper's own numbers.
//   * paper columns — the published values, for side-by-side comparison.
#include "bench_util.h"

int main() {
  using namespace eslam;
  using namespace eslam::bench;
  print_header("Table 2: runtime breakdown (FE/FM/PE/PO/MU)", "Table 2");

  SequenceOptions opts;
  opts.frames = 24;
  const SyntheticSequence seq(SequenceId::kFr1Desk, opts);
  const auto frames = render_all(seq);

  // Software pipeline, measured on the host.
  SystemConfig sw_cfg;
  sw_cfg.platform = Platform::kSoftware;
  System sw(seq.camera(), sw_cfg);
  run_system(sw, frames);
  const StageDurations host = sw.stats().mean_times;

  // Accelerated pipeline: FE/FM are simulated cycles.
  SystemConfig hw_cfg;
  hw_cfg.platform = Platform::kAccelerated;
  System hw(seq.camera(), hw_cfg);
  run_system(hw, frames);
  const StageDurations accel = hw.stats().mean_times;

  const StageDurations arm = arm_from_host(host);
  const StageDurations paper_hw = paper_eslam_times();
  const StageDurations paper_arm = paper_arm_times();
  const StageDurations paper_i7 = paper_i7_times();

  auto row = [](const char* name, double a, double b, double c, double d,
                double e, double f) {
    return std::vector<std::string>{name,           Table::fmt(a, 2),
                                    Table::fmt(b, 2), Table::fmt(c, 1),
                                    Table::fmt(d, 1), Table::fmt(e, 1),
                                    Table::fmt(f, 1)};
  };

  Table t({"stage (ms)", "eSLAM sim", "host meas", "ARM model", "paper eSLAM",
           "paper ARM", "paper i7"});
  t.add_row(row("Feature Extraction", accel.feature_extraction,
                host.feature_extraction, arm.feature_extraction,
                paper_hw.feature_extraction, paper_arm.feature_extraction,
                paper_i7.feature_extraction));
  t.add_row(row("Feature Matching", accel.feature_matching,
                host.feature_matching, arm.feature_matching,
                paper_hw.feature_matching, paper_arm.feature_matching,
                paper_i7.feature_matching));
  t.add_row(row("Pose Estimation", accel.pose_estimation,
                host.pose_estimation, arm.pose_estimation,
                paper_hw.pose_estimation, paper_arm.pose_estimation,
                paper_i7.pose_estimation));
  t.add_row(row("Pose Optimization", accel.pose_optimization,
                host.pose_optimization, arm.pose_optimization,
                paper_hw.pose_optimization, paper_arm.pose_optimization,
                paper_i7.pose_optimization));
  t.add_row(row("Map Updating", accel.map_updating, host.map_updating,
                arm.map_updating, paper_hw.map_updating,
                paper_arm.map_updating, paper_i7.map_updating));
  t.print();

  Table s({"speedup", "measured", "paper"});
  s.add_row({"FE: accel vs host",
             Table::fmt_ratio(host.feature_extraction /
                              accel.feature_extraction),
             Table::fmt_ratio(32.5 / 9.1)});
  s.add_row({"FM: accel vs host",
             Table::fmt_ratio(host.feature_matching / accel.feature_matching),
             Table::fmt_ratio(19.7 / 4.0)});
  s.add_row({"FE: accel vs ARM model",
             Table::fmt_ratio(arm.feature_extraction /
                              accel.feature_extraction),
             Table::fmt_ratio(291.6 / 9.1)});
  s.add_row({"FM: accel vs ARM model",
             Table::fmt_ratio(arm.feature_matching / accel.feature_matching),
             Table::fmt_ratio(246.2 / 4.0)});
  s.print();

  std::printf("\nworkload: %d frames of %s, %zu map points at end\n",
              seq.size(), seq.name().c_str(), hw.map().size());
  std::printf("note: 'host meas' is this machine's unoptimized scalar\n"
              "pipeline; the paper's i7 column ran OpenCV-optimized code.\n"
              "Shape to check: FE/FM dominate software runtime and collapse\n"
              "to ~9/4 ms on the accelerator.\n");
  return 0;
}
