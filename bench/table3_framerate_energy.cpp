// Regenerates Table 3: frame rate and energy per frame for normal (N) and
// key (K) frames on ARM, Intel i7-class host and eSLAM, using the Figure 7
// pipeline arithmetic and the calibrated power constants.
#include "bench_util.h"
#include "hw/energy_model.h"

int main() {
  using namespace eslam;
  using namespace eslam::bench;
  print_header("Table 3: frame rate and energy efficiency", "Table 3");

  SequenceOptions opts;
  opts.frames = 24;
  const SyntheticSequence seq(SequenceId::kFr1Desk, opts);
  const auto frames = render_all(seq);

  SystemConfig sw_cfg;
  sw_cfg.platform = Platform::kSoftware;
  System sw(seq.camera(), sw_cfg);
  run_system(sw, frames);
  const StageDurations host = sw.stats().mean_times;

  SystemConfig hw_cfg;
  hw_cfg.platform = Platform::kAccelerated;
  System hw(seq.camera(), hw_cfg);
  run_system(hw, frames);
  // eSLAM hybrid: FE/FM simulated on fabric, PE/PO/MU on the ARM -> model
  // the ARM-side stages from host measurements.
  StageDurations eslam_stages = arm_from_host(host);
  eslam_stages.feature_extraction = hw.stats().mean_times.feature_extraction;
  eslam_stages.feature_matching = hw.stats().mean_times.feature_matching;

  const StageDurations arm = arm_from_host(host);

  struct Platform_ {
    const char* name;
    double n_ms, k_ms;
    PlatformPower power;
  };
  const Platform_ rows[] = {
      {"ARM model", software_normal_frame_ms(arm),
       software_key_frame_ms(arm), kPowerArm},
      {"host meas", software_normal_frame_ms(host),
       software_key_frame_ms(host), kPowerIntelI7},
      {"eSLAM sim", eslam_normal_frame_ms(eslam_stages),
       eslam_key_frame_ms(eslam_stages), kPowerEslam},
      // The paper's own numbers for comparison:
      {"paper ARM", 555.7, 565.6, kPowerArm},
      {"paper i7", 53.6, 54.8, kPowerIntelI7},
      {"paper eSLAM", 17.9, 31.8, kPowerEslam},
  };

  Table t({"platform", "N-frame", "K-frame", "N fps", "K fps", "power",
           "N energy", "K energy"});
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto& r = rows[i];
    if (i == 3) t.add_separator();
    t.add_row({r.name, ms(r.n_ms), ms(r.k_ms),
               Table::fmt(1000.0 / r.n_ms, 2) + " fps",
               Table::fmt(1000.0 / r.k_ms, 2) + " fps",
               Table::fmt(r.power.watts, 3) + " W",
               Table::fmt(energy_mj(r.power, r.n_ms), 0) + " mJ",
               Table::fmt(energy_mj(r.power, r.k_ms), 0) + " mJ"});
  }
  t.print();

  const double eslam_n = eslam_normal_frame_ms(eslam_stages);
  const double eslam_k = eslam_key_frame_ms(eslam_stages);
  Table s({"ratio (measured/model)", "N-frame", "K-frame", "paper claims"});
  s.add_row({"speedup vs ARM model",
             Table::fmt_ratio(software_normal_frame_ms(arm) / eslam_n),
             Table::fmt_ratio(software_key_frame_ms(arm) / eslam_k),
             "17.8x - 31x"});
  s.add_row({"speedup vs host",
             Table::fmt_ratio(software_normal_frame_ms(host) / eslam_n),
             Table::fmt_ratio(software_key_frame_ms(host) / eslam_k),
             "1.7x - 3x (vs i7)"});
  s.add_row(
      {"energy vs ARM model",
       Table::fmt_ratio(energy_mj(kPowerArm, software_normal_frame_ms(arm)) /
                        energy_mj(kPowerEslam, eslam_n)),
       Table::fmt_ratio(energy_mj(kPowerArm, software_key_frame_ms(arm)) /
                        energy_mj(kPowerEslam, eslam_k)),
       "14x - 25x"});
  s.add_row(
      {"energy vs i7-power host",
       Table::fmt_ratio(
           energy_mj(kPowerIntelI7, software_normal_frame_ms(host)) /
           energy_mj(kPowerEslam, eslam_n)),
       Table::fmt_ratio(energy_mj(kPowerIntelI7,
                                  software_key_frame_ms(host)) /
                        energy_mj(kPowerEslam, eslam_k)),
       "41x - 71x"});
  s.print();

  std::printf("\nkey-frame share in this run: %d / %d frames\n",
              hw.stats().key_frames, hw.stats().frames);
  return 0;
}
