// Regenerates Figure 5: the I/O schedule of the ping-pong Image Cache —
// which of the 3 cache lines receives input and which two feed the output
// window in each FSM state.
#include "bench_util.h"
#include "hw/linebuffer.h"

int main() {
  using namespace eslam;
  bench::print_header("Figure 5: Image Cache ping-pong FSM trace",
                      "Figure 5");

  constexpr int kHeight = 480;
  LineBufferCache cache(kHeight);
  const std::vector<std::uint8_t> column(kHeight, 0);

  // Stream 9 lines' worth of columns (72 columns of a 640-wide image).
  for (int i = 0; i < 9 * LineBufferCache::kColumnsPerLine; ++i)
    cache.push_column(column);

  const char* names = "ABC";
  Table t({"state", "receiving line", "outputting lines", "window columns",
           "window ready"});
  int completed_cols = 0;
  for (const CacheFsmEvent& ev : cache.trace()) {
    completed_cols += LineBufferCache::kColumnsPerLine;
    char recv[2] = {names[ev.receiving_line], 0};
    std::string outs;
    outs += names[ev.outputting_lines[1]];
    outs += ", ";
    outs += names[ev.outputting_lines[0]];
    const bool ready = completed_cols >= 16;
    const std::string window =
        ready ? ("[" + std::to_string(completed_cols - 16) + ", " +
                 std::to_string(completed_cols - 1) + "]")
              : "(filling)";
    t.add_row({std::to_string(ev.state), recv, outs, window,
               ready ? "yes" : "no"});
  }
  t.print();

  std::printf("\ncache geometry: 3 lines x %d columns x %d rows = %.1f KB\n",
              LineBufferCache::kColumnsPerLine, kHeight,
              cache.storage_bits() / 8192.0);
  std::printf("fill bandwidth: 1 pixel/cycle -> %llu cycles streamed\n",
              static_cast<unsigned long long>(cache.fill_cycles()));
  std::printf(
      "Matches Figure 5: after pre-storing 16 columns into lines A and B,\n"
      "each state writes one line while the other two serve the 16-column\n"
      "processing window.\n");
  return 0;
}
