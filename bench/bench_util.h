// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/eslam.h"
#include "dataset/sequence.h"
#include "eval/report.h"

namespace eslam::bench {

// Renders all frames of a sequence once so multiple pipeline variants can
// consume identical inputs without re-raycasting.
inline std::vector<FrameInput> render_all(const SyntheticSequence& seq) {
  std::vector<FrameInput> frames;
  frames.reserve(static_cast<std::size_t>(seq.size()));
  for (int i = 0; i < seq.size(); ++i) frames.push_back(seq.frame(i));
  return frames;
}

// Runs a System over pre-rendered frames and returns it for inspection.
inline void run_system(System& slam, const std::vector<FrameInput>& frames) {
  for (const FrameInput& f : frames) slam.process(f);
}

inline std::string ms(double v, int decimals = 1) {
  return Table::fmt(v, decimals) + " ms";
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("reproduces: %s (eSLAM, DAC 2019)\n\n", paper_ref);
}

}  // namespace eslam::bench
