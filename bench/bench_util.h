// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/eslam.h"
#include "dataset/sequence.h"
#include "eval/report.h"

namespace eslam::bench {

// Renders all frames of a sequence once so multiple pipeline variants can
// consume identical inputs without re-raycasting.
inline std::vector<FrameInput> render_all(const SyntheticSequence& seq) {
  std::vector<FrameInput> frames;
  frames.reserve(static_cast<std::size_t>(seq.size()));
  for (int i = 0; i < seq.size(); ++i) frames.push_back(seq.frame(i));
  return frames;
}

// Runs a System over pre-rendered frames and returns it for inspection.
inline void run_system(System& slam, const std::vector<FrameInput>& frames) {
  for (const FrameInput& f : frames) slam.process(f);
}

inline std::string ms(double v, int decimals = 1) {
  return Table::fmt(v, decimals) + " ms";
}

// One lane of an ASCII Gantt chart (Figure-7 style): segments are scaled
// from [t0, t1] onto `width` cells, drawn as '#' runs with a (up to
// two-character) stage label over the first cells.  Shared by the
// analytic fig7 drawing and the measured pipeline-throughput drawing so
// the clamping/label rules stay identical.
struct GanttSegment {
  const char* label;  // stage name, 1-2 chars used
  double start_ms = 0;
  double end_ms = 0;
};

inline void draw_gantt_lane(const char* unit,
                            const std::vector<GanttSegment>& segments,
                            double t0, double t1, int width = 64) {
  std::string lane(static_cast<std::size_t>(width), '.');
  std::string labels(static_cast<std::size_t>(width), ' ');
  const double span = t1 - t0;
  for (const GanttSegment& s : segments) {
    const int a =
        static_cast<int>((s.start_ms - t0) / span * (width - 1));
    const int b = std::max(
        a + 1, static_cast<int>((s.end_ms - t0) / span * (width - 1)));
    for (int i = a; i < b && i < width; ++i)
      lane[static_cast<std::size_t>(i)] = '#';
    // Guard each label character independently: the first only needs its
    // own cell, and the second is only read for stage names that have one.
    if (a < width) labels[static_cast<std::size_t>(a)] = s.label[0];
    if (s.label[1] != '\0' && a + 1 < width)
      labels[static_cast<std::size_t>(a + 1)] = s.label[1];
  }
  std::printf("  %-4s |%s|\n       |%s|\n", unit, labels.c_str(),
              lane.c_str());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("reproduces: %s (eSLAM, DAC 2019)\n\n", paper_ref);
}

}  // namespace eslam::bench
