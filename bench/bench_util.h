// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

// Baked in by CMake for targets linking eslam; standalone consumers of
// this header still compile.
#if !defined(ESLAM_GIT_SHA)
#define ESLAM_GIT_SHA "unknown"
#endif

#include "core/eslam.h"
#include "dataset/sequence.h"
#include "eval/report.h"
#include "geometry/wall_timer.h"

namespace eslam::bench {

using eslam::WallTimer;

inline void sleep_until_elapsed(const WallTimer& timer, double target_ms) {
  const double remaining = target_ms - timer.elapsed_ms();
  if (remaining > 0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(remaining));
}

// Asynchronous-device emulation of the eSLAM fabric, shared by the
// pipeline and multi-session throughput benches so both model the same
// platform: feature extraction is precomputed functionally outside the
// timed region and replayed with the modeled device latency as a sleep —
// the lane that drives the backend stays *occupied* for the modeled time
// while the host CPU is released, exactly as a real FPGA would behave.
// Feature matching must run live on the host (it reads the evolving map)
// and is padded up to the device floor when the host is faster.
class DeviceEmulationBackend final : public FeatureBackend {
 public:
  DeviceEmulationBackend(std::vector<FeatureList> precomputed,
                         const MatcherOptions& matcher, double fe_ms,
                         double fm_floor_ms)
      : precomputed_(std::move(precomputed)),
        matcher_(matcher),
        fe_ms_(fe_ms),
        fm_floor_ms_(fm_floor_ms) {}

  FeatureList extract(const ImageU8&) override {
    const WallTimer timer;
    FeatureList features = precomputed_[next_frame_++ % precomputed_.size()];
    sleep_until_elapsed(timer, fe_ms_);
    extract_ms_.store(timer.elapsed_ms());
    return features;
  }

  std::vector<Match> match(std::span<const Descriptor256> queries,
                           std::span<const Descriptor256> train) override {
    const WallTimer timer;
    std::vector<Match> matches = match_descriptors(queries, train, matcher_);
    sleep_until_elapsed(timer, fm_floor_ms_);
    match_ms_.store(timer.elapsed_ms());
    return matches;
  }

  // Gated tier: the same device floor applies (the modeled fabric answers
  // no slower gated than full-scan), so the emulated schedule is
  // conservative while the functional result is the real windowed search.
  std::vector<Match> match_candidates(std::span<const Descriptor256> queries,
                                      std::span<const Descriptor256> train,
                                      const CandidateSet& candidates) override {
    const WallTimer timer;
    std::vector<Match> matches =
        eslam::match_candidates(queries, train, candidates, matcher_);
    sleep_until_elapsed(timer, fm_floor_ms_);
    match_ms_.store(timer.elapsed_ms());
    return matches;
  }

  double last_extract_time_ms() const override { return extract_ms_.load(); }
  double last_match_time_ms() const override { return match_ms_.load(); }
  const char* name() const override { return "device-emu"; }

 private:
  std::vector<FeatureList> precomputed_;
  MatcherOptions matcher_;
  double fe_ms_;
  double fm_floor_ms_;
  std::size_t next_frame_ = 0;
  std::atomic<double> extract_ms_{0.0};
  std::atomic<double> match_ms_{0.0};
};

// Renders all frames of a sequence once so multiple pipeline variants can
// consume identical inputs without re-raycasting.
inline std::vector<FrameInput> render_all(const SyntheticSequence& seq) {
  std::vector<FrameInput> frames;
  frames.reserve(static_cast<std::size_t>(seq.size()));
  for (int i = 0; i < seq.size(); ++i) frames.push_back(seq.frame(i));
  return frames;
}

// Runs a System over pre-rendered frames and returns it for inspection.
inline void run_system(System& slam, const std::vector<FrameInput>& frames) {
  for (const FrameInput& f : frames) slam.process(f);
}

inline std::string ms(double v, int decimals = 1) {
  return Table::fmt(v, decimals) + " ms";
}

// One lane of an ASCII Gantt chart (Figure-7 style): segments are scaled
// from [t0, t1] onto `width` cells, drawn as '#' runs with a (up to
// two-character) stage label over the first cells.  Shared by the
// analytic fig7 drawing and the measured pipeline-throughput drawing so
// the clamping/label rules stay identical.
struct GanttSegment {
  const char* label;  // stage name, 1-2 chars used
  double start_ms = 0;
  double end_ms = 0;
};

inline void draw_gantt_lane(const char* unit,
                            const std::vector<GanttSegment>& segments,
                            double t0, double t1, int width = 64) {
  std::string lane(static_cast<std::size_t>(width), '.');
  std::string labels(static_cast<std::size_t>(width), ' ');
  const double span = t1 - t0;
  for (const GanttSegment& s : segments) {
    const int a =
        static_cast<int>((s.start_ms - t0) / span * (width - 1));
    const int b = std::max(
        a + 1, static_cast<int>((s.end_ms - t0) / span * (width - 1)));
    for (int i = a; i < b && i < width; ++i)
      lane[static_cast<std::size_t>(i)] = '#';
    // Guard each label character independently: the first only needs its
    // own cell, and the second is only read for stage names that have one.
    if (a < width) labels[static_cast<std::size_t>(a)] = s.label[0];
    if (s.label[1] != '\0' && a + 1 < width)
      labels[static_cast<std::size_t>(a + 1)] = s.label[1];
  }
  std::printf("  %-4s |%s|\n       |%s|\n", unit, labels.c_str(),
              lane.c_str());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("reproduces: %s (eSLAM, DAC 2019)\n\n", paper_ref);
}

// Host CPU model string from /proc/cpuinfo, "unknown" where the file or
// field is absent (non-Linux, stripped containers).  Read once per call —
// bench artifacts are written a handful of times per run.
inline std::string cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (!f) return "unknown";
  std::string model = "unknown";
  char line[256];
  while (std::fgets(line, sizeof line, f)) {
    const char* sep = std::strchr(line, ':');
    if (!sep || std::strncmp(line, "model name", 10) != 0) continue;
    ++sep;
    while (*sep == ' ' || *sep == '\t') ++sep;
    model = sep;
    while (!model.empty() && (model.back() == '\n' || model.back() == '\r'))
      model.pop_back();
    break;
  }
  std::fclose(f);
  return model;
}

// Machine-readable benchmark output: accumulates numbers, strings, flat
// arrays and uniform row tables, then writes BENCH_<name>.json in the
// working directory — the artifact CI uploads so the perf trajectory
// (FPS, p50/p99, match-time-vs-map-size curves) is tracked per run.
// Every artifact is stamped with provenance metadata (git SHA, compiler,
// CPU model, hardware thread count) so a number in an uploaded JSON is
// attributable to a commit and a machine without consulting CI logs.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void number(const std::string& key, double value) {
    fields_.emplace_back(key, fmt_number(value));
  }
  void text(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escaped(value) + "\"");
  }
  void array(const std::string& key, std::span<const double> values) {
    std::string v = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) v += ", ";
      v += fmt_number(values[i]);
    }
    fields_.emplace_back(key, v + "]");
  }
  // Uniform table: rows of {columns[0]: row[0], ...}.
  void rows(const std::string& key, std::span<const std::string> columns,
            const std::vector<std::vector<double>>& rows) {
    std::string v = "[";
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r) v += ", ";
      v += "{";
      for (std::size_t c = 0; c < columns.size() && c < rows[r].size(); ++c) {
        if (c) v += ", ";
        v += "\"" + escaped(columns[c]) + "\": " + fmt_number(rows[r][c]);
      }
      v += "}";
    }
    fields_.emplace_back(key, v + "]");
  }

  // Writes BENCH_<name>.json; returns false (and warns) on I/O failure
  // without affecting the bench's exit code.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\"", escaped(name_).c_str());
    // Provenance stamp (see the class comment).  ESLAM_GIT_SHA is the
    // configure-time snapshot CMake bakes into the library's interface.
    std::fprintf(f, ",\n  \"git_sha\": \"%s\"", escaped(ESLAM_GIT_SHA).c_str());
#if defined(__VERSION__)
    std::fprintf(f, ",\n  \"compiler\": \"%s\"", escaped(__VERSION__).c_str());
#else
    std::fprintf(f, ",\n  \"compiler\": \"unknown\"");
#endif
    std::fprintf(f, ",\n  \"cpu\": \"%s\"", escaped(cpu_model()).c_str());
    std::fprintf(f, ",\n  \"hw_threads\": %u",
                 std::thread::hardware_concurrency());
    for (const auto& [key, value] : fields_)
      std::fprintf(f, ",\n  \"%s\": %s", escaped(key).c_str(), value.c_str());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string fmt_number(double v) {
    if (v != v) return "null";  // NaN is not valid JSON
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    return buf;
  }
  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace eslam::bench
