// Local-mapping backend accuracy & cost: ATE with the backend on vs off,
// tracking-latency impact of the background BA lane, and BA job timings.
//
// Workload: the fr1/desk-style sweep sampled densely (420+ frames by
// default, ~30 fps motion), the same long-horizon regime bench_match_
// scaling uses — drift accumulates over the sweep, map duplicates pile
// up, and the windowed BA + cull/fuse pass is what is supposed to claw
// that back.
//
// Two comparisons over identical pre-rendered frames:
//   * sequential (deterministic): Tracker::process() with
//     BackendOptions.enabled off vs on — BA jobs run inline at keyframes,
//     so the accuracy delta is exactly reproducible;
//   * served (asynchronous): SlamService sessions off vs on — BA rides
//     the background lane of the shared ARM pool, and tracking must not
//     pay for it: the gate is p99 of the per-frame ARM-side stage time
//     (PE+PO+MU — the stages that share the pool with BA jobs) < 10%
//     regression.  Full-pipeline stage times and FPS are reported too,
//     informationally: both move with map size — a backend that tracks
//     better keeps more of the scene alive, and the *matching* cost of a
//     bigger map is the matching subsystem's ledger
//     (bench_match_scaling), not latency the background lane inflicted.
//
// Sharded-backend additions measured here:
//   * shard accounting of the sequential on-run (shards per freeze, the
//     in-flight high-water mark the tracker allowed);
//   * a two-session served run whose pool-wide concurrent-backend-job
//     high-water mark must reach >= 2 (disjoint shard jobs really do
//     overlap in time on the pool — a scheduling-state property, valid
//     even on a single-core host);
//   * a queue-discipline microbenchmark on BackendJobQueue itself: 16
//     routine BA jobs (~5 ms service) queued ahead of 4 loop
//     verifications, two workers — mean loop-verification queue latency
//     under the priority discipline must beat plain FIFO.
//
// Exit code: non-zero in the target regime (>= 300 frames) when the
// backend-on ATE fails to beat backend-off, when the absolute sequential
// backend-on ATE exceeds the 18.18 cm regression ceiling (the gate that
// keeps the default-on lifecycle honest), when the served ARM-side p99
// regresses >= 10% (enforced only on hosts with >= 3 cores — with fewer,
// the lanes timeshare one core and background BA must steal tracking
// wall time by construction), when no BA job/delta actually landed, when
// the two-session high-water mark stays below 2, or when priority loop
// latency fails to beat FIFO.  Smoke runs report the same numbers
// informationally.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "eval/ate.h"
#include "runtime/backend_queue.h"
#include "server/slam_service.h"

namespace {

using namespace eslam;
using bench::WallTimer;

constexpr int kDefaultFrames = 420;
constexpr int kTargetRegimeFrames = 300;
constexpr double kMaxP99Regression = 1.10;
// Absolute ceiling on the sequential backend-on ATE: the regression gate
// behind flipping the unified lifecycle (cull/fuse/prune under one
// policy) on by default.
constexpr double kMaxAteM = 0.1818;

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

void info(bool ok, const char* what) {
  std::printf("  [%s] %s (informational: outside the target regime)\n",
              ok ? "ok" : "--", what);
}

void note(bool ok, const char* what) {
  std::printf("  [%s] %s (informational)\n", ok ? "ok" : "--", what);
}

TrackerOptions tracker_options(bool backend_on) {
  TrackerOptions opts;
  opts.backend.enabled = backend_on;
  return opts;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

struct RunOutcome {
  std::vector<SE3> poses;
  std::vector<double> frame_times_ms;  // per-frame tracking stage total
  std::vector<double> arm_times_ms;    // PE+PO+MU only (the pool's share)
  double ate_rmse = 0;
  double wall_ms = 0;
  int lost = 0;
  int keyframes = 0;
  backend::BackendStats backend;
  long long pruned = 0, culled = 0, fused = 0;
  // Served runs only: the scheduler's background-lane counters.
  int lane_jobs = 0;
  int lane_rejected = 0;
  double lane_busy_ms = 0;
  double lane_loop_queue_ms = 0;  // summed loop-verification queue wait
};

void fold_result(RunOutcome& run, const TrackResult& r) {
  run.poses.push_back(r.pose_wc);
  run.frame_times_ms.push_back(r.times.total());
  run.arm_times_ms.push_back(r.times.pose_estimation +
                             r.times.pose_optimization +
                             r.times.map_updating);
  run.lost += r.lost;
  run.keyframes += r.keyframe;
  run.pruned += r.n_points_pruned;
  run.culled += r.n_points_culled;
  run.fused += r.n_points_fused;
}

// Deterministic sequential run: inline BA at keyframes.
RunOutcome run_sequential(const SyntheticSequence& seq,
                          const std::vector<FrameInput>& frames,
                          bool backend_on) {
  RunOutcome run;
  Tracker tracker(seq.camera(), std::make_unique<SoftwareBackend>(),
                  tracker_options(backend_on));
  const WallTimer timer;
  for (const FrameInput& f : frames) fold_result(run, tracker.process(f));
  run.wall_ms = timer.elapsed_ms();
  run.backend = tracker.backend_stats();
  run.ate_rmse =
      absolute_trajectory_error(run.poses, seq.ground_truth()).rmse;
  return run;
}

// Served run: BA on the scheduler's background lane (pool slack).
RunOutcome run_served(const SyntheticSequence& seq,
                      const std::vector<FrameInput>& frames, bool backend_on) {
  RunOutcome run;
  SlamService service(ServiceOptions{/*arm_workers=*/2});
  SessionConfig config;
  config.camera = seq.camera();
  config.tracker = tracker_options(backend_on);
  config.backend_factory = [] { return std::make_unique<SoftwareBackend>(); };
  SessionHandle session = service.open_session(config);
  const WallTimer timer;
  for (const FrameInput& f : frames) session.feed(f);
  for (const TrackResult& r : session.drain()) fold_result(run, r);
  run.wall_ms = timer.elapsed_ms();
  run.backend = session.backend_stats();
  const PipelineStats stats = session.stats();
  run.lane_jobs = stats.backend_jobs;
  run.lane_rejected = stats.backend_jobs_rejected;
  run.lane_busy_ms = stats.backend_busy_ms;
  run.lane_loop_queue_ms = stats.backend_loop_queue_ms;
  run.ate_rmse =
      absolute_trajectory_error(run.poses, seq.ground_truth()).rmse;
  session.close();
  return run;
}

// Two concurrent sessions competing for the same pool: returns the
// pool-wide concurrent-backend-job high-water mark.  With each tracker
// freezing several covisibility-disjoint shard jobs per keyframe and
// three workers serving two sessions, at least two backend jobs must
// overlap in time (a scheduling-state property — jobs simultaneously in
// the running state — so it holds on any host core count).
int run_served_pair_hwm(const SyntheticSequence& seq,
                        const std::vector<FrameInput>& frames) {
  SlamService service(ServiceOptions{/*arm_workers=*/3});
  SessionConfig config;
  config.camera = seq.camera();
  config.tracker = tracker_options(true);
  config.backend_factory = [] { return std::make_unique<SoftwareBackend>(); };
  SessionHandle a = service.open_session(config);
  SessionHandle b = service.open_session(config);
  for (const FrameInput& f : frames) {
    a.feed(f);
    b.feed(f);
  }
  a.drain();
  b.drain();
  const int hwm = service.stats().backend_concurrent_hwm;
  a.close();
  b.close();
  return hwm;
}

// Queue-discipline microbenchmark on BackendJobQueue itself: 16 routine
// BA jobs (~5 ms simulated service) are queued when 4 loop verifications
// arrive; two workers drain the queue.  Returns the mean time a loop
// verification waited for a worker.  Under the priority discipline the
// loops pop next regardless of the BA backlog; under FIFO they wait out
// half the backlog each.  Sleeps need no CPU, so the contrast survives
// single-core hosts.
double loop_queue_latency_ms(bool priority) {
  constexpr int kBaJobs = 16, kLoopJobs = 4;
  struct Probe {
    BackendJobClass cls = BackendJobClass::kRoutineBa;
    std::chrono::steady_clock::time_point enqueued;
  };
  BackendJobQueue<Probe> q(kBaJobs + kLoopJobs, priority);
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  double loop_wait_ms = 0;
  const auto now = [] { return std::chrono::steady_clock::now(); };
  for (int i = 0; i < kBaJobs; ++i)
    q.push(BackendJobClass::kRoutineBa, {BackendJobClass::kRoutineBa, now()});
  for (int i = 0; i < kLoopJobs; ++i)
    q.push(BackendJobClass::kLoopVerify, {BackendJobClass::kLoopVerify, now()});
  const auto worker = [&] {
    for (;;) {
      Probe job;
      {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return open; });
        const std::optional<Probe> popped = q.pop();
        if (!popped) return;
        job = *popped;
        if (job.cls == BackendJobClass::kLoopVerify)
          loop_wait_ms += std::chrono::duration<double, std::milli>(
                              now() - job.enqueued)
                              .count();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          job.cls == BackendJobClass::kLoopVerify ? 1 : 5));
    }
  };
  std::thread w1(worker), w2(worker);
  {
    const std::lock_guard<std::mutex> lock(m);
    open = true;
  }
  cv.notify_all();
  w1.join();
  w2.join();
  return loop_wait_ms / kLoopJobs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  bench::print_header(
      "Backend ATE: windowed local BA + cull/fuse, on vs off",
      "Map Updating (section 2.1) grown into an asynchronous local-mapping "
      "backend");

  SequenceOptions opts;
  opts.frames = argc > 1 ? std::atoi(argv[1]) : kDefaultFrames;
  if (opts.frames < 10) opts.frames = 10;
  const SyntheticSequence seq(SequenceId::kFr1Desk, opts);
  const std::vector<FrameInput> frames = bench::render_all(seq);
  std::printf("sequence %s, %d frames\n\n", seq.name().c_str(), opts.frames);

  // --- deterministic accuracy comparison (sequential) ---------------------
  const RunOutcome seq_off = run_sequential(seq, frames, false);
  const RunOutcome seq_on = run_sequential(seq, frames, true);

  std::printf("sequential  ATE rmse: off %.2f cm, on %.2f cm (%+.1f%%)\n",
              seq_off.ate_rmse * 100, seq_on.ate_rmse * 100,
              (seq_on.ate_rmse / seq_off.ate_rmse - 1.0) * 100);
  std::printf("  keyframes %d -> BA jobs %d, deltas %d, iterations %d\n",
              seq_on.keyframes, seq_on.backend.jobs_run,
              seq_on.backend.deltas_applied,
              seq_on.backend.total_ba_iterations);
  std::printf("  points: moved %lld, culled %lld, fused %lld, age-pruned "
              "%lld (off run pruned %lld)\n",
              seq_on.backend.points_moved, seq_on.culled, seq_on.fused,
              seq_on.pruned, seq_off.pruned);
  const double mean_job_ms =
      seq_on.backend.jobs_run > 0
          ? seq_on.backend.total_optimize_ms / seq_on.backend.jobs_run
          : 0;
  const double mean_job_iters =
      seq_on.backend.jobs_run > 0
          ? static_cast<double>(seq_on.backend.total_ba_iterations) /
                seq_on.backend.jobs_run
          : 0;
  std::printf("  BA job: %.2f ms mean, %.1f iterations mean, last cost "
              "%.2f -> %.2f px^2\n",
              mean_job_ms, mean_job_iters,
              seq_on.backend.last_ba_initial_cost,
              seq_on.backend.last_ba_final_cost);
  const double shards_per_freeze =
      seq_on.backend.freeze_events > 0
          ? static_cast<double>(seq_on.backend.shard_jobs_frozen) /
                seq_on.backend.freeze_events
          : 0;
  std::printf("  shards: %.2f BA jobs per freeze (%d freezes, max "
              "decomposition %d, in-flight high-water %d)\n\n",
              shards_per_freeze, seq_on.backend.freeze_events,
              seq_on.backend.max_shards_seen,
              seq_on.backend.max_inflight_jobs_seen);

  // --- asynchronous impact (served) ---------------------------------------
  const RunOutcome srv_off = run_served(seq, frames, false);
  const RunOutcome srv_on = run_served(seq, frames, true);

  const double p50_off = percentile(srv_off.frame_times_ms, 0.50);
  const double p99_off = percentile(srv_off.frame_times_ms, 0.99);
  const double p50_on = percentile(srv_on.frame_times_ms, 0.50);
  const double p99_on = percentile(srv_on.frame_times_ms, 0.99);
  const double arm_p99_off = percentile(srv_off.arm_times_ms, 0.99);
  const double arm_p99_on = percentile(srv_on.arm_times_ms, 0.99);
  const double fps_off = srv_off.wall_ms > 0
                             ? 1e3 * opts.frames / srv_off.wall_ms
                             : 0;
  const double fps_on =
      srv_on.wall_ms > 0 ? 1e3 * opts.frames / srv_on.wall_ms : 0;

  std::printf("served      ATE rmse: off %.2f cm, on %.2f cm\n",
              srv_off.ate_rmse * 100, srv_on.ate_rmse * 100);
  std::printf("  tracking stage time per frame: off p50 %.2f / p99 %.2f ms, "
              "on p50 %.2f / p99 %.2f ms\n",
              p50_off, p99_off, p50_on, p99_on);
  std::printf("  ARM-side (PE+PO+MU, shares the pool with BA): p99 off "
              "%.2f ms, on %.2f ms\n",
              arm_p99_off, arm_p99_on);
  std::printf("  throughput: off %.1f fps, on %.1f fps; backend lane ran "
              "%d jobs (%.1f ms busy), rejected %d\n\n",
              fps_off, fps_on, srv_on.lane_jobs, srv_on.lane_busy_ms,
              srv_on.lane_rejected);

  // --- shard concurrency + queue discipline -------------------------------
  const int pair_hwm = run_served_pair_hwm(seq, frames);
  const double loop_lat_priority = loop_queue_latency_ms(true);
  const double loop_lat_fifo = loop_queue_latency_ms(false);
  std::printf("two sessions, three workers: concurrent-backend-job "
              "high-water %d\n",
              pair_hwm);
  std::printf("loop-verification queue latency: priority %.2f ms, FIFO "
              "%.2f ms\n\n",
              loop_lat_priority, loop_lat_fifo);

  // --- machine-readable output -------------------------------------------
  bench::BenchJson json("backend_ate");
  json.number("frames", opts.frames);
  json.number("ate_rmse_m_seq_off", seq_off.ate_rmse);
  json.number("ate_rmse_m_seq_on", seq_on.ate_rmse);
  json.number("ate_rmse_m_served_off", srv_off.ate_rmse);
  json.number("ate_rmse_m_served_on", srv_on.ate_rmse);
  json.number("keyframes_on", seq_on.keyframes);
  json.number("ba_jobs", seq_on.backend.jobs_run);
  json.number("ba_deltas_applied", seq_on.backend.deltas_applied);
  json.number("ba_mean_job_ms", mean_job_ms);
  json.number("ba_mean_job_iterations", mean_job_iters);
  json.number("points_moved", static_cast<double>(seq_on.backend.points_moved));
  json.number("points_culled", static_cast<double>(seq_on.culled));
  json.number("points_fused", static_cast<double>(seq_on.fused));
  json.number("points_age_pruned_on",
              static_cast<double>(seq_on.pruned));
  json.number("points_age_pruned_off",
              static_cast<double>(seq_off.pruned));
  json.number("track_p50_ms_served_off", p50_off);
  json.number("track_p99_ms_served_off", p99_off);
  json.number("track_p50_ms_served_on", p50_on);
  json.number("track_p99_ms_served_on", p99_on);
  json.number("arm_p99_ms_served_off", arm_p99_off);
  json.number("arm_p99_ms_served_on", arm_p99_on);
  json.number("fps_served_off", fps_off);
  json.number("fps_served_on", fps_on);
  json.number("lost_frames_on", seq_on.lost);
  json.number("lost_frames_off", seq_off.lost);
  json.number("shards_per_freeze", shards_per_freeze);
  json.number("freeze_events", seq_on.backend.freeze_events);
  json.number("max_shards_seen", seq_on.backend.max_shards_seen);
  json.number("max_inflight_jobs_seen",
              seq_on.backend.max_inflight_jobs_seen);
  json.number("backend_concurrent_hwm_two_sessions", pair_hwm);
  json.number("loop_q_latency_priority_ms", loop_lat_priority);
  json.number("loop_q_latency_fifo_ms", loop_lat_fifo);
  json.number("served_loop_queue_ms_on", srv_on.lane_loop_queue_ms);
  json.number("host_cores",
              static_cast<double>(std::thread::hardware_concurrency()));
  json.write();

  // --- acceptance ---------------------------------------------------------
  std::printf("\nchecks:\n");
  const bool target_regime = opts.frames >= kTargetRegimeFrames;
  // The served pipeline needs the device lane, two ARM workers and the
  // feeder to actually run in parallel before "BA rides pool slack" is a
  // physically observable property — on a 1-2 core host every thread
  // timeshares one core and background BA *must* steal tracking wall
  // time.  There the latency gate reports instead of enforcing.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool latency_observable = cores >= 3;
  if (target_regime && !latency_observable)
    std::printf("  host has %u core(s): latency gates reported, not "
                "enforced (lanes timeshare; see comment)\n",
                cores);
  const bool ate_better = seq_on.ate_rmse < seq_off.ate_rmse;
  const bool jobs_ran =
      seq_on.backend.jobs_run > 0 && seq_on.backend.deltas_applied > 0 &&
      srv_on.lane_jobs > 0;
  // +3 ms absolute slack on top of the 10% ratio: the ARM tail is the
  // keyframe map-update path (~30 ms, O(map) cache rebuilds), where a p99
  // over a few hundred frames is an extreme-value statistic that host
  // scheduler noise moves by several percent run-to-run.  The gate is
  // here to catch the background lane actually blocking tracking — a
  // tens-of-ms, order-of-magnitude signal — not to flake on timer jitter.
  const bool arm_p99_ok =
      arm_p99_on < arm_p99_off * kMaxP99Regression + 3.0;
  // FPS is informational, not a gate: this host pipeline is bound by the
  // software device lane (FE+FM), whose cost scales with the live map —
  // and a backend that tracks better deliberately keeps more of the
  // scene matched and alive (map ~1.6x on the 420-frame run).  That is a
  // map-size policy effect, priced by bench_match_scaling; the latency
  // the *background lane* could actually inflict is the ARM-side p99
  // gated above.  (Observed: ~-10% FPS at ~+60% map, within a few points
  // of run-to-run noise.)
  const bool fps_ok = fps_on > fps_off / kMaxP99Regression;
  const bool ate_abs_ok = seq_on.ate_rmse <= kMaxAteM;
  const bool hwm_ok = pair_hwm >= 2;
  const bool queue_ok = loop_lat_priority < loop_lat_fifo;
  if (target_regime) {
    check(ate_better, "backend-on ATE strictly better than backend-off "
                      "(sequential, deterministic)");
    check(ate_abs_ok, "backend-on ATE <= 18.18 cm with sharding + unified "
                      "lifecycle on (the default-on regression gate)");
    check(jobs_ran, "BA jobs ran and deltas applied (inline and on the "
                    "background lane)");
    check(hwm_ok, "two sessions drive the concurrent-backend-job "
                  "high-water mark to >= 2");
    check(queue_ok, "priority loop-verification queue latency beats FIFO");
    if (latency_observable)
      check(arm_p99_ok, "served ARM-side tracking p99 regression < 10% "
                        "(the stages sharing the pool with BA)");
    else
      note(arm_p99_ok, "served ARM-side tracking p99 regression < 10% "
                       "(single-core host: lanes timeshare)");
    note(fps_ok, "served aggregate FPS regression < 10% (map-size "
                 "coupled; see comment)");
  } else {
    std::printf("  smoke run (need >= %d frames for enforcement) — gates "
                "reported, not enforced\n",
                kTargetRegimeFrames);
    info(ate_better, "backend-on ATE better than backend-off");
    info(ate_abs_ok, "backend-on ATE <= 18.18 cm");
    info(jobs_ran, "BA jobs ran and deltas applied");
    info(hwm_ok, "two-session concurrent-backend-job high-water >= 2");
    info(queue_ok, "priority loop-verification latency beats FIFO");
    info(arm_p99_ok, "served ARM-side tracking p99 regression < 10%");
    info(fps_ok, "served aggregate FPS regression < 10%");
  }

  if (failures != 0)
    std::printf("\n%d check(s) failed.\n", failures);
  else if (target_regime)
    std::printf("\nthe local-mapping backend pays for itself: better ATE at "
                "unchanged tracking latency.\n");
  else
    std::printf("\nsmoke run completed (benches compile and run).\n");
  return failures == 0 ? 0 : 1;
}
