// Regenerates Figure 7: the parallelized pipeline schedule of eSLAM for
// normal frames (FPGA FE+FM of frame N+1 overlaps ARM PE+PO of frame N)
// and key frames (FM waits for map updating), drawn as an ASCII Gantt
// chart from the same timeline model the Table 3 bench uses.
#include <algorithm>

#include "bench_util.h"

namespace {

using namespace eslam;

void draw_timeline(const std::vector<TimelineSegment>& segments,
                   double total_ms) {
  constexpr int kWidth = 64;
  for (const char* unit : {"ARM", "FPGA"}) {
    std::vector<bench::GanttSegment> lane;
    for (const TimelineSegment& s : segments)
      if (std::string(s.unit) == unit)
        lane.push_back({s.stage, s.start_ms, s.end_ms});
    bench::draw_gantt_lane(unit, lane, 0.0, total_ms, kWidth);
  }
  std::printf("       0%*s%.1f ms\n", kWidth - 6, "", total_ms);
}

void show(const StageDurations& d, bool key_frame, const char* title) {
  const auto timeline = pipeline_timeline(d, key_frame);
  double total = 0;
  for (const auto& s : timeline) total = std::max(total, s.end_ms);
  std::printf("%s (per-frame latency %.1f ms):\n", title, total);
  draw_timeline(timeline, total);
  for (const auto& s : timeline)
    std::printf("    %-4s %-2s frame N%s  %6.1f -> %6.1f ms\n", s.unit,
                s.stage, s.frame ? "+1" : "  ", s.start_ms, s.end_ms);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace eslam;
  bench::print_header("Figure 7: parallelized pipeline (normal vs key frame)",
                      "Figure 7");

  const StageDurations d = paper_eslam_times();
  std::printf("stage times (paper Table 2): FE=%.1f FM=%.1f PE=%.1f PO=%.1f"
              " MU=%.1f ms\n\n",
              d.feature_extraction, d.feature_matching, d.pose_estimation,
              d.pose_optimization, d.map_updating);

  show(d, false, "normal frame");
  show(d, true, "key frame");

  std::printf("normal-frame latency = max(FE+FM, PE+PO) = %.1f ms"
              " (paper: 17.9)\n",
              eslam_normal_frame_ms(d));
  std::printf("key-frame latency    = max(FE, PE+PO) + FM + MU = %.1f ms"
              " (paper: 31.8)\n",
              eslam_key_frame_ms(d));
  return 0;
}
