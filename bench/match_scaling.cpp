// Matching-subsystem scaling: per-frame match cost and trajectory accuracy
// of the projection-gated tier vs the brute-force tier as the map grows.
//
// The workload is the long-horizon regime the gate exists for: the fig9
// trajectory (fr1/desk) sampled densely (500+ frames, so per-frame motion
// is realistic ~30 fps flow).  The desk sweep keeps revisiting its view,
// so under the default pruning policy the map still grows past 20k points
// (most points stay matched and survive) — the regime where the
// brute-force scan's linear cost decays while tracking itself remains
// healthy enough that the two tiers' trajectories are comparable.
//
// Two full runs over identical rendered frames:
//   * brute:  MatchPolicy{use_gate = false} — every frame full-map scan;
//   * gated:  default MatchPolicy — projection gate + candidate search,
//             brute fallback on bootstrap/loss/thin-gate frames.
// The gated run additionally *probes* the brute tier every few frames on
// the same features and the same map (the backend is re-invoked out of
// band), giving a paired same-workload cost comparison that run
// divergence cannot distort.
//
// Exit code: non-zero when the run is in the target regime (>= 400
// frames, so per-frame motion is realistic, and the map reached 4k
// points) and either the paired speedup at >= 4k map points falls below
// 3x, the gated run's ATE degrades more than 5% over the brute run,
// gated match cost fails the sublinearity bound, or the gated tier failed
// to engage.  Small frame-count runs (CI smoke) sample the trajectory so
// coarsely that per-frame motion is far beyond any realistic 30 fps flow
// — the gate correctly refuses such frames — so they report the same
// numbers informationally.
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/simd_dispatch.h"
#include "eval/ate.h"
#include "features/simd_kernels.h"

namespace {

using namespace eslam;
using bench::WallTimer;

constexpr int kDefaultFrames = 520;
constexpr int kProbeStride = 10;     // brute probe cadence in the gated run
constexpr std::size_t kBigMap = 4000;  // "large map" regime for the gates
constexpr double kRequiredSpeedup = 3.0;
constexpr double kAtePartityslack = 1.05;  // gated ATE <= 5% over brute

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

void info(bool ok, const char* what) {
  std::printf("  [%s] %s (informational: outside the target regime)\n",
              ok ? "ok" : "--", what);
}

TrackerOptions scaling_options(bool use_gate) {
  TrackerOptions opts;
  opts.match.use_gate = use_gate;
  return opts;
}

struct PerFrame {
  int frame = 0;
  std::size_t map_size = 0;
  double fm_ms = 0;            // the run's policy-tier match time
  double probe_brute_ms = -1;  // paired brute cost on the same workload
  bool gated = false;
  bool lost = false;
};

struct Run {
  std::vector<PerFrame> frames;
  std::vector<SE3> poses;
  int gated_frames = 0;
  int lost_frames = 0;
  std::size_t final_map = 0;
  double ate_rmse = 0;
  // Kept alive so the kernel probe below can run against the final map's
  // real SoA descriptor planes rather than synthetic data.
  std::unique_ptr<Tracker> tracker;
};

// Drives one tracker over the pre-rendered frames through the stage API;
// when `probe_brute` is set, re-invokes the backend's brute tier on the
// same queries + map every kProbeStride frames (out of band — the probe's
// matches are discarded and do not touch the tracker).
Run run_tracker(const SyntheticSequence& seq,
                const std::vector<FrameInput>& frames, bool use_gate,
                bool probe_brute) {
  Run run;
  run.tracker = std::make_unique<Tracker>(seq.camera(),
                                          std::make_unique<SoftwareBackend>(),
                                          scaling_options(use_gate));
  Tracker& tracker = *run.tracker;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    FrameState fs = tracker.begin_frame(frames[i]);
    tracker.extract(fs);
    tracker.match(fs);

    PerFrame pf;
    pf.frame = static_cast<int>(i);
    // The map size the costs were measured against: match() ran before
    // this frame's own keyframe insertion/prune.
    pf.map_size = tracker.map().size();
    pf.fm_ms = fs.result.times.feature_matching;
    pf.gated = fs.match_tier == MatchTier::kGated;
    if (probe_brute && i % kProbeStride == 0 && !tracker.map().empty()) {
      std::vector<Descriptor256> query;
      query.reserve(fs.features.size());
      for (const Feature& f : fs.features) query.push_back(f.descriptor);
      (void)tracker.backend().match(query, tracker.map().descriptors());
      pf.probe_brute_ms = tracker.backend().last_match_time_ms();
    }

    tracker.estimate_pose(fs);
    tracker.optimize_pose(fs);
    const TrackResult r = tracker.update_map(fs);
    pf.lost = r.lost;
    run.frames.push_back(pf);
    run.gated_frames += pf.gated;
    run.lost_frames += pf.lost;
    run.poses.push_back(r.pose_wc);
  }
  run.final_map = tracker.map().size();
  const AteResult ate =
      absolute_trajectory_error(run.poses, seq.ground_truth());
  run.ate_rmse = ate.rmse;
  return run;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

// Median: robust against the rare fallback frames, which pay gate + full
// scan and would otherwise dominate a mean of mostly-flat gated costs.
double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  bench::print_header(
      "Match scaling: projection-gated vs brute-force matching vs map size",
      "Feature Matching cost model (sections 2.1/3.2) on the Fig-9 "
      "trajectory");

  SequenceOptions opts;
  opts.frames = argc > 1 ? std::atoi(argv[1]) : kDefaultFrames;
  if (opts.frames < 10) opts.frames = 10;
  const SyntheticSequence seq(SequenceId::kFr1Desk, opts);
  const std::vector<FrameInput> frames = bench::render_all(seq);

  std::printf("sequence %s, %d frames, default pruning (the desk sweep "
              "keeps points alive, so the map still grows past 20k)\n\n",
              seq.name().c_str(), opts.frames);

  const WallTimer brute_timer;
  const Run brute = run_tracker(seq, frames, /*use_gate=*/false,
                                /*probe_brute=*/false);
  const double brute_wall_ms = brute_timer.elapsed_ms();
  const WallTimer gated_timer;
  const Run gated = run_tracker(seq, frames, /*use_gate=*/true,
                                /*probe_brute=*/true);
  const double gated_wall_ms = gated_timer.elapsed_ms();

  // --- per-frame curve ----------------------------------------------------
  std::printf("%8s %10s %12s %12s %8s\n", "frame", "map", "gated-run fm",
              "brute probe", "tier");
  std::vector<std::vector<double>> curve;
  for (const PerFrame& pf : gated.frames) {
    if (pf.probe_brute_ms < 0) continue;
    curve.push_back({static_cast<double>(pf.frame),
                     static_cast<double>(pf.map_size), pf.fm_ms,
                     pf.probe_brute_ms});
    if (pf.frame % (5 * kProbeStride) == 0)
      std::printf("%8d %10zu %9.2f ms %9.2f ms %8s\n", pf.frame, pf.map_size,
                  pf.fm_ms, pf.probe_brute_ms, pf.gated ? "gated" : "brute");
  }

  // Paired cost samples, split by map-size regime (same frame, same
  // features, same map for both tiers).
  std::vector<double> small_gated, small_brute, big_gated, big_brute;
  std::vector<double> small_map, big_map;
  for (const PerFrame& pf : gated.frames) {
    if (pf.probe_brute_ms < 0 || pf.frame == 0) continue;
    if (pf.map_size >= kBigMap) {
      big_gated.push_back(pf.fm_ms);
      big_brute.push_back(pf.probe_brute_ms);
      big_map.push_back(static_cast<double>(pf.map_size));
    } else if (pf.map_size >= 1000) {
      small_gated.push_back(pf.fm_ms);
      small_brute.push_back(pf.probe_brute_ms);
      small_map.push_back(static_cast<double>(pf.map_size));
    }
  }
  // Enforce only in the documented regime: dense trajectory sampling
  // (realistic per-frame motion) AND a map that actually grew large.
  const bool target_regime = opts.frames >= 400 && brute.final_map >= kBigMap &&
                             !big_gated.empty() && !small_gated.empty();
  const double speedup_big =
      big_gated.empty() ? 0 : mean(big_brute) / mean(big_gated);
  // Marginal cost per additional map point between the ~1k-point regime
  // and the >= 4k regime, on medians (robust to fallback-frame spikes):
  // the brute scan pays the full per-point Hamming cost, the gated tier
  // only the slim projection + bucketing share plus whatever lands in its
  // windows — this slope ratio is the sublinearity evidence.
  const double map_span = mean(big_map) - mean(small_map);
  const double gated_slope_us =
      map_span > 0 ? (median(big_gated) - median(small_gated)) / map_span * 1e3
                   : 0;
  const double brute_slope_us =
      map_span > 0 ? (median(big_brute) - median(small_brute)) / map_span * 1e3
                   : 0;

  std::printf("\nfinal map: brute run %zu, gated run %zu points\n",
              brute.final_map, gated.final_map);
  std::printf("gated tier engaged on %d/%d frames (%d lost); brute run lost "
              "%d\n",
              gated.gated_frames, opts.frames, gated.lost_frames,
              brute.lost_frames);
  std::printf("paired match cost, map >= %zu: brute %.2f ms, gated %.2f ms "
              "(%.1fx)\n",
              kBigMap, mean(big_brute), mean(big_gated), speedup_big);
  std::printf("marginal cost per added map point (1k -> %zu+): brute %.2f "
              "us, gated %.2f us\n",
              kBigMap, brute_slope_us, gated_slope_us);
  std::printf("trajectory ATE (aligned rmse): brute %.2f cm, gated %.2f cm\n",
              brute.ate_rmse * 100, gated.ate_rmse * 100);
  std::printf("whole-run wall clock: brute %.0f ms, gated %.0f ms\n\n",
              brute_wall_ms, gated_wall_ms);

  // --- machine-readable output -------------------------------------------
  bench::BenchJson json("match_scaling");
  json.number("frames", opts.frames);
  json.number("final_map_brute", static_cast<double>(brute.final_map));
  json.number("final_map_gated", static_cast<double>(gated.final_map));
  json.number("gated_frames", gated.gated_frames);
  json.number("lost_frames_gated", gated.lost_frames);
  json.number("lost_frames_brute", brute.lost_frames);
  json.number("paired_brute_ms_at_4k", mean(big_brute));
  json.number("paired_gated_ms_at_4k", mean(big_gated));
  json.number("speedup_at_4k", speedup_big);
  json.number("gated_us_per_map_point", gated_slope_us);
  json.number("brute_us_per_map_point", brute_slope_us);
  json.number("ate_rmse_m_brute", brute.ate_rmse);
  json.number("ate_rmse_m_gated", gated.ate_rmse);
  json.number("wall_ms_brute", brute_wall_ms);
  json.number("wall_ms_gated", gated_wall_ms);
  // --- SIMD kernel probe over the final map -------------------------------
  // Scalar vs dispatched one-query-vs-map Hamming over the gated run's
  // real descriptor word planes — the per-point cost the brute tier pays
  // per map point.  Bit-exactness is asserted first, so a dispatch
  // regression fails the bench instead of skewing its numbers.
  {
    const Map& map = gated.tracker->map();
    const DescriptorSoA& soa = map.descriptor_soa();
    std::mt19937_64 rng(123);
    std::vector<Descriptor256> queries(256);
    for (auto& d : queries)
      for (auto& w : d.words()) w = rng();
    std::vector<std::uint16_t> dist_simd(map.size());
    std::vector<std::uint16_t> dist_scalar(map.size());
    for (const auto& q : queries) {
      simd::hamming_block(soa, q, 0, map.size(), dist_simd.data());
      simd::hamming_block_scalar(soa, q, 0, map.size(), dist_scalar.data());
      if (dist_simd != dist_scalar) {
        std::printf("FATAL: SIMD/scalar Hamming parity violated on the map\n");
        return 1;
      }
    }
    auto probe_ms = [&](auto&& kernel) {
      std::vector<double> samples;
      for (int rep = 0; rep < 7; ++rep) {
        const WallTimer t;
        for (const auto& q : queries) kernel(q);
        samples.push_back(t.elapsed_ms());
      }
      std::sort(samples.begin(), samples.end());
      return samples[samples.size() / 2];
    };
    const double kernel_scalar_ms = probe_ms([&](const Descriptor256& q) {
      simd::hamming_block_scalar(soa, q, 0, map.size(), dist_scalar.data());
    });
    const double kernel_simd_ms = probe_ms([&](const Descriptor256& q) {
      simd::hamming_block(soa, q, 0, map.size(), dist_simd.data());
    });
    const double kernel_speedup =
        kernel_simd_ms > 0 ? kernel_scalar_ms / kernel_simd_ms : 0.0;
    std::printf("kernel probe (%s, %zu-point map, 256 queries): scalar %.2f "
                "ms, simd %.2f ms (%.1fx)\n",
                simd::active_isa_name(), map.size(), kernel_scalar_ms,
                kernel_simd_ms, kernel_speedup);
    json.text("kernel_isa", simd::active_isa_name());
    json.number("kernel_probe_map_size", static_cast<double>(map.size()));
    json.number("kernel_scalar_ms", kernel_scalar_ms);
    json.number("kernel_simd_ms", kernel_simd_ms);
    json.number("kernel_simd_speedup", kernel_speedup);
  }

  const std::string columns[] = {"frame", "map_size", "gated_run_fm_ms",
                                 "paired_brute_ms"};
  json.rows("curve", columns, curve);
  json.write();

  // --- acceptance ---------------------------------------------------------
  std::printf("\nchecks:\n");
  check(gated.frames.size() == static_cast<std::size_t>(opts.frames) &&
            brute.frames.size() == static_cast<std::size_t>(opts.frames),
        "both runs processed every frame");
  const bool tier_ok =
      gated.gated_frames * 10 >= opts.frames * 7;  // >= 70% of frames
  const bool speed_ok = speedup_big >= kRequiredSpeedup;
  // Sublinearity: each added map point must cost the gated tier a small
  // fraction of what it costs the (exactly linear) brute scan.
  const bool growth_ok =
      brute_slope_us > 0 && gated_slope_us <= 0.25 * brute_slope_us;
  const bool ate_ok =
      gated.ate_rmse <= brute.ate_rmse * kAtePartityslack + 0.002;
  if (target_regime) {
    check(tier_ok, "gated tier engaged on >= 70% of frames");
    check(speed_ok, "gated >= 3x faster than brute at >= 4k map points "
                    "(paired workload)");
    check(growth_ok, "gated marginal cost per map point <= 25% of brute's");
    check(ate_ok, "gated ATE within 5% of the brute-force run");
  } else {
    std::printf("  smoke run (need >= 400 frames and a >= %zu-point map "
                "for enforcement) — gates reported, not enforced\n",
                kBigMap);
    info(tier_ok, "gated tier engaged on >= 70% of frames");
    info(speed_ok, "gated >= 3x faster than brute (paired workload)");
    info(ate_ok, "gated ATE within 5% of the brute-force run");
  }

  if (failures != 0)
    std::printf("\n%d check(s) failed.\n", failures);
  else if (target_regime)
    std::printf("\ngated matching scales sublinearly with map size at "
                "brute-force accuracy.\n");
  else
    std::printf("\nsmoke run completed (benches compile and run).\n");
  return failures == 0 ? 0 : 1;
}
