#!/usr/bin/env python3
"""Diff two BENCH_*.json sets and enforce the machine-independent gates.

Usage:
    compare_bench.py BASELINE_DIR CANDIDATE_DIR [--table FILE]

Every bench binary writes a flat BENCH_<name>.json (bench_util.h's
BenchJson): provenance fields, scalar metrics, and row tables.  This
script pairs the two sets by bench name, prints a per-metric delta table
(markdown, also written to --table for the CI artifact), and exits
non-zero when a *gated* metric regresses.

Two kinds of fields, two policies:

  - Timings (wall ms, fps, p50/p99 latencies) depend on the host — the
    committed bench/baseline/ snapshot and a CI runner are different
    machines — so they are reported in the delta table but never gated.
  - Machine-independent metrics gate the exit code: counts of events
    that must not happen (reader stalls), boolean oracle outcomes
    (bit-identity to solo sequential, full delivery), and same-host A/B
    ratios (the writer-stall probe measures both disciplines
    back-to-back in one process, so its ratio travels).

A gated metric that is *missing* from the candidate set also fails: the
gate would otherwise silently vanish when a bench stops running in CI.
"""

import argparse
import json
import math
import sys
from pathlib import Path

META_KEYS = {"bench", "git_sha", "compiler", "cpu", "hw_threads"}


class Gate:
    def __init__(self, bench, metric, ge=None, le=None):
        self.bench, self.metric, self.ge, self.le = bench, metric, ge, le

    def describe(self):
        bounds = []
        if self.ge is not None:
            bounds.append(f">= {self.ge:g}")
        if self.le is not None:
            bounds.append(f"<= {self.le:g}")
        return f"{self.bench}:{self.metric} {' and '.join(bounds)}"

    def check(self, value):
        if value is None or not isinstance(value, (int, float)):
            return False
        if self.ge is not None and value < self.ge:
            return False
        if self.le is not None and value > self.le:
            return False
        return True


# Machine-independent gates only (see module docstring).
GATES = [
    Gate("multi_session_throughput", "writer_stall_improvement", ge=5.0),
    Gate("multi_session_throughput", "reader_stalls_total", le=0),
    Gate("multi_session_throughput", "bit_identical", ge=1),
    Gate("multi_session_throughput", "all_delivered", ge=1),
    Gate("multi_session_throughput", "fair_device_dispatch", ge=1),
]


def load_set(directory):
    benches = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {path}: {e}", file=sys.stderr)
            continue
        benches[data.get("bench", path.stem[len("BENCH_"):])] = data
    return benches


def scalar_metrics(data):
    return {
        k: v
        for k, v in data.items()
        if k not in META_KEYS and isinstance(v, (int, float))
    }


def fmt(v):
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.3f}"
    return f"{v:g}" if isinstance(v, (int, float)) else str(v)


def delta_cell(base, cand):
    if base == cand:
        return "="
    if base == 0:
        return "new" if cand != 0 else "="
    pct = 100.0 * (cand - base) / abs(base)
    if math.isnan(pct):
        return "?"
    return f"{pct:+.1f}%"


def build_table(baseline, candidate):
    lines = [
        "| bench | metric | baseline | candidate | delta |",
        "|---|---|---:|---:|---:|",
    ]
    for bench in sorted(set(baseline) | set(candidate)):
        base = scalar_metrics(baseline.get(bench, {}))
        cand = scalar_metrics(candidate.get(bench, {}))
        if not baseline.get(bench):
            lines.append(f"| {bench} | *(entire bench)* | — | present | new |")
        if not candidate.get(bench):
            lines.append(f"| {bench} | *(entire bench)* | present | — | missing |")
        for metric in sorted(set(base) | set(cand)):
            b, c = base.get(metric), cand.get(metric)
            if b is None:
                lines.append(f"| {bench} | {metric} | — | {fmt(c)} | new |")
            elif c is None:
                lines.append(f"| {bench} | {metric} | {fmt(b)} | — | missing |")
            else:
                lines.append(
                    f"| {bench} | {metric} | {fmt(b)} | {fmt(c)} "
                    f"| {delta_cell(b, c)} |"
                )
    return "\n".join(lines) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="directory with the baseline BENCH_*.json")
    ap.add_argument("candidate", help="directory with the candidate BENCH_*.json")
    ap.add_argument("--table", help="also write the delta table to this file")
    args = ap.parse_args()

    baseline = load_set(args.baseline)
    candidate = load_set(args.candidate)
    if not baseline:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        return 2
    if not candidate:
        print(f"error: no BENCH_*.json under {args.candidate}", file=sys.stderr)
        return 2

    table = build_table(baseline, candidate)
    print(table)
    if args.table:
        Path(args.table).write_text(table)
        print(f"wrote {args.table}")

    failures = 0
    print("gates (machine-independent metrics, evaluated on the candidate):")
    for gate in GATES:
        value = scalar_metrics(candidate.get(gate.bench, {})).get(gate.metric)
        ok = gate.check(value)
        shown = "missing" if value is None else fmt(value)
        print(f"  [{'ok' if ok else 'FAIL'}] {gate.describe()} (got {shown})")
        failures += 0 if ok else 1

    if failures:
        print(f"\n{failures} gated metric(s) regressed.")
        return 1
    print("\nall gated metrics hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
