// Regenerates Figure 2: the RS-BRIEF pattern vs the original BRIEF
// pattern.  Prints pattern statistics and writes fig2_patterns.ppm with
// both patterns drawn side by side (S locations bright, D locations dark).
#include <cmath>

#include "bench_util.h"
#include "features/pattern.h"
#include "image/draw.h"
#include "image/pnm_io.h"

namespace {

using namespace eslam;

void draw_pattern(ImageRgb& canvas, const Pattern256& pattern, int cx,
                  int cy, int scale) {
  draw_circle(canvas, cx, cy, 15 * scale, Rgb{90, 90, 90});
  for (const TestPair& p : pattern) {
    draw_point(canvas, cx + p.s.x * scale, cy + p.s.y * scale,
               Rgb{80, 220, 80}, 1);
    draw_point(canvas, cx + p.d.x * scale, cy + p.d.y * scale,
               Rgb{230, 120, 40}, 1);
  }
}

// Measures how close the pattern is to 32-fold rotational symmetry: the
// mean distance between each location and its rotated group-0 seed.
double symmetry_residual(const Pattern256& pattern) {
  double total = 0;
  int count = 0;
  const double step = 11.25 * M_PI / 180.0;
  for (int j = 0; j < 32; ++j) {
    const double c = std::cos(j * step), s = std::sin(j * step);
    for (int i = 0; i < 8; ++i) {
      const TestPair& seed = pattern[static_cast<std::size_t>(i)];
      const TestPair& rot = pattern[static_cast<std::size_t>(j * 8 + i)];
      total += std::hypot(seed.s.x * c - seed.s.y * s - rot.s.x,
                          seed.s.y * c + seed.s.x * s - rot.s.y);
      ++count;
    }
  }
  return total / count;
}

}  // namespace

int main() {
  using namespace eslam;
  bench::print_header("Figure 2: RS-BRIEF vs original BRIEF pattern",
                      "Figure 2");

  const RsBriefPattern rs;
  const OriginalBriefPattern orig;

  Table t({"property", "RS-BRIEF", "original BRIEF"});
  t.add_row({"test pairs", "256", "256"});
  t.add_row({"independent seed pairs", "8", "256"});
  t.add_row({"rotational symmetry", "32-fold (11.25 deg)", "none"});
  t.add_row({"symmetry residual (px)",
             Table::fmt(symmetry_residual(rs.base()), 2),
             Table::fmt(symmetry_residual(orig.base()), 2)});
  t.add_row({"steering mechanism", "byte rotation (0 ops)",
             "30-pattern LUT lookup"});
  t.add_row({"steering LUT memory", "0 B",
             std::to_string(OriginalBriefPattern::lut_bytes()) + " B"});
  t.print();

  ImageRgb canvas(2 * 170, 170);
  canvas.fill(Rgb{20, 20, 25});
  draw_pattern(canvas, rs.base(), 85, 85, 5);
  draw_pattern(canvas, orig.base(), 255, 85, 5);
  write_ppm("fig2_patterns.ppm", canvas);
  std::printf("\nwrote fig2_patterns.ppm (left: RS-BRIEF, right: original"
              " BRIEF;\ngreen = S locations, orange = D locations)\n");
  std::printf("The RS-BRIEF residual ~0 confirms the 32-fold structure the\n"
              "BRIEF Rotator exploits; the original pattern has no such"
              " structure.\n");
  return 0;
}
