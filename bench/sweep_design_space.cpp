// Design-space sweeps for the DESIGN.md ablation list: how the simulated
// accelerator latency responds to the architectural knobs the paper fixes.
//   * pyramid depth        (section 4.4: 4 layers = +48% pixels vs 2)
//   * feature budget       (heap capacity, paper: 1024)
//   * matcher parallelism  (distance units, paper operating point P=8)
//   * map size             (FM latency is linear in the map)
#include "accel/matcher_hw.h"
#include "accel/orb_extractor_hw.h"
#include "bench_util.h"
#include "dataset/scene.h"

namespace {

using namespace eslam;

std::vector<Descriptor256> synthetic_descriptors(std::size_t n) {
  std::vector<Descriptor256> v(n);
  for (std::size_t i = 0; i < n; ++i)
    for (int w = 0; w < 4; ++w)
      v[i].words()[static_cast<std::size_t>(w)] =
          0x9e3779b97f4a7c15ull * (i * 4 + static_cast<std::size_t>(w) + 1);
  return v;
}

}  // namespace

int main() {
  using namespace eslam;
  using namespace eslam::bench;
  print_header("Design-space sweeps (extractor & matcher)",
               "sections 3.1-3.3 design choices");

  const BoxRoomScene scene;
  const PinholeCamera cam = PinholeCamera::tum_freiburg1();
  const ImageU8 img = scene.render(cam, SE3{}, 0).gray;

  // ---- pyramid depth -------------------------------------------------------
  Table levels({"pyramid levels", "pixels", "FE latency", "vs 2 levels"});
  std::uint64_t two_level_cycles = 0;
  for (int l : {1, 2, 3, 4, 5}) {
    HwExtractorConfig cfg;
    cfg.levels = l;
    OrbExtractorHw hw(cfg);
    hw.extract(img);
    std::uint64_t px = 0;
    for (const auto& lvl : hw.report().levels)
      px += static_cast<std::uint64_t>(lvl.width) * lvl.height;
    if (l == 2) two_level_cycles = hw.report().total_cycles;
    levels.add_row({std::to_string(l), std::to_string(px),
                    ms(hw.report().ms(), 2),
                    two_level_cycles
                        ? Table::fmt_ratio(
                              static_cast<double>(hw.report().total_cycles) /
                              static_cast<double>(two_level_cycles), 2)
                        : "-"});
  }
  levels.print();
  std::printf("paper section 4.4: 4 layers process ~1.48x the pixels of 2"
              " layers.\n\n");

  // ---- feature budget (heap capacity) -------------------------------------
  Table budget({"heap capacity", "kept", "FE latency"});
  for (int n : {256, 512, 1024, 2048}) {
    HwExtractorConfig cfg;
    cfg.n_features = n;
    OrbExtractorHw hw(cfg);
    const FeatureList f = hw.extract(img);
    budget.add_row({std::to_string(n), std::to_string(f.size()),
                    ms(hw.report().ms(), 2)});
  }
  budget.print();
  std::printf("FE latency is insensitive to the budget (the heap filters in\n"
              "stream); the budget instead sets FM work and map growth.\n\n");

  // ---- matcher parallelism -------------------------------------------------
  const auto queries = synthetic_descriptors(1024);
  const auto map3k = synthetic_descriptors(3000);
  Table par({"distance units P", "FM latency", "speedup vs P=1"});
  double p1_ms = 0;
  for (int p : {1, 2, 4, 8, 16, 32}) {
    HwMatcherConfig cfg;
    cfg.parallelism = p;
    BriefMatcherHw hw(cfg);
    hw.match(queries, map3k);
    if (p == 1) p1_ms = hw.report().ms();
    par.add_row({std::to_string(p), ms(hw.report().ms(), 2),
                 Table::fmt_ratio(p1_ms / hw.report().ms(), 2)});
  }
  par.print();
  std::printf("P=8 reaches the paper's ~4 ms FM budget at 1024 x 3000.\n\n");

  // ---- map size -------------------------------------------------------------
  Table mapsz({"map points", "FM latency", "vs paper 4.0 ms"});
  for (int m : {1000, 2000, 3000, 5000, 10000}) {
    BriefMatcherHw hw;
    hw.match(queries, synthetic_descriptors(static_cast<std::size_t>(m)));
    mapsz.add_row({std::to_string(m), ms(hw.report().ms(), 2),
                   Table::fmt_ratio(hw.report().ms() / 4.0, 2)});
  }
  mapsz.print();
  std::printf("FM is linear in the map — the staleness pruning of Map\n"
              "Updating is what keeps eSLAM inside its 4 ms budget.\n");
  return 0;
}
