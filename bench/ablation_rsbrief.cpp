// Ablation: descriptor steering strategies (section 2.2).
//   1. exact rotation  — rotate all 512 test locations per feature (Eq. 2)
//   2. 30-bin LUT      — ORB's pre-rotated pattern table
//   3. RS-BRIEF        — byte rotation of the computed descriptor
// Reports per-feature steering cost (measured on the host), pattern memory
// and descriptor quality under rotation.
#include <chrono>

#include "bench_util.h"
#include "features/brief.h"
#include "image/convolve.h"

namespace {

using namespace eslam;

double time_ns(int iters, const auto& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         iters;
}

}  // namespace

// Written once at the end of main so the compiler cannot discard the
// timed computations; never read.
std::uint64_t benchmark_guard;

int main() {
  using namespace eslam;
  using namespace eslam::bench;
  print_header("Ablation: RS-BRIEF vs LUT vs exact rotation (section 2.2)",
               "section 2.2 / Table 1 motivation");

  const RsBriefPattern rs;
  const OriginalBriefPattern orig;

  // A smoothed structured patch to describe.
  ImageU8 raw(128, 128, 0);
  for (int y = 0; y < 128; ++y)
    for (int x = 0; x < 128; ++x)
      raw.at(x, y) = static_cast<std::uint8_t>((x * 13 + y * 31 + x * y) % 211);
  const ImageU8 img = smooth_gaussian7_u8(raw);

  constexpr int kIters = 2000;
  std::uint64_t sink = 0;

  // Exact: rotate 512 locations + compute.
  const double exact_ns = time_ns(kIters, [&](int i) {
    const double angle = (i % 32) * 11.25 * M_PI / 180.0;
    const Descriptor256 d = orb_descriptor_exact(img, 64, 64, orig, angle);
    sink += d.words()[0];
  });
  // LUT: pick pre-rotated pattern + compute.
  const double lut_ns = time_ns(kIters, [&](int i) {
    const double angle = (i % 32) * 11.25 * M_PI / 180.0;
    const Descriptor256 d = orb_descriptor_lut(img, 64, 64, orig, angle);
    sink += d.words()[0];
  });
  // RS-BRIEF: compute once at label 0 + byte rotate.
  const double rsb_ns = time_ns(kIters, [&](int i) {
    const Descriptor256 d = rs_brief_descriptor(img, 64, 64, rs, i % 32);
    sink += d.words()[0];
  });
  // Steering alone (the rotator): byte rotation of a computed descriptor.
  const Descriptor256 base = compute_descriptor(img, 64, 64, rs.base());
  const double rotate_ns = time_ns(kIters * 10, [&](int i) {
    sink += base.rotated_bytes(i % 32).words()[0];
  });

  Table t({"strategy", "per-feature cost (host)", "pattern memory",
           "HW steering cost"});
  t.add_row({"exact rotation (Eq. 2)", Table::fmt(exact_ns, 0) + " ns",
             "2 KB (continuous seeds)",
             "512 rotations x 4 muls = heavy DSP"});
  t.add_row({"30-bin LUT [8]", Table::fmt(lut_ns, 0) + " ns",
             std::to_string(OriginalBriefPattern::lut_bytes()) +
                 " B pattern ROM",
             "LUT read per test pair"});
  t.add_row({"RS-BRIEF (paper)", Table::fmt(rsb_ns, 0) + " ns",
             "1 KB (256 pairs, no copies)", "256b barrel shift, 1 cycle"});
  t.print();

  std::printf("\nsteering alone (BRIEF Rotator byte shift): %.1f ns/feature"
              " on host\n", rotate_ns);
  std::printf("exact / RS-BRIEF cost ratio: %.1fx\n", exact_ns / rsb_ns);
  benchmark_guard = sink;  // defeat dead-code elimination of the loops
  std::printf(
      "\nAccuracy: see fig8_accuracy — RS-BRIEF tracks the original ORB\n"
      "within a fraction of a cm on all five sequences (paper: 4.3 vs\n"
      "4.16 cm average).  The win is architectural: no 30-pattern ROM and\n"
      "no per-feature coordinate rotation in fabric.\n");
  return benchmark_guard == 0xdeadbeefdeadbeefull ? 1 : 0;
}
