// Localization-tier scaling: K=1 mapping session + M read-only
// localization sessions served concurrently by server/SlamService over a
// map snapshot saved to disk and reloaded through FrozenMap::load — the
// full persistence path, not an in-memory shortcut.
//
// The point of the tier: localization frames never touch the device lane
// or the backend-job lane.  Each one is a single ARM work unit (FE + gated
// FM against the frozen SoA planes + PE + PO, no MU), so M sessions
// spread across the worker pool and localization throughput scales with
// cores instead of serializing behind the fabric.  The bench measures
// per-tier p50/p99 latency and aggregate FPS for M in {1, 2, 4} with the
// mapping session running beside them the whole time, and enforces two
// gates on hosts with >= 4 hardware threads (CI's runners):
//   - localization p99 at M=4 stays <= 1.5x the M=1 p99 (pool scaling);
//   - every served localization stream is bit-identical to a solo
//     sequential Localizer run against the same loaded map.
// On smaller machines the real per-frame compute timeshares, so the ratio
// is reported without gating the exit code — the bit-identity and
// cold-start checks always gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/slam_service.h"
#include "slam/map_snapshot.h"

namespace {

using namespace eslam;

constexpr int kArmWorkers = 4;
constexpr int kOrbFeatures = 400;
constexpr double kRequiredP99Ratio = 1.5;  // M=1 -> M=4, localization tier

OrbConfig bench_orb() {
  OrbConfig orb;
  orb.n_features = kOrbFeatures;
  return orb;
}

struct RunResult {
  double wall_ms = 0;
  double aggregate_fps = 0;          // mapping + localization frames
  double loc_p50_ms = 0, loc_p99_ms = 0;
  double map_p50_ms = 0, map_p99_ms = 0;
  std::vector<std::vector<TrackResult>> loc_results;  // per session
  std::vector<TrackResult> map_results;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[i];
}

// Closed try_feed/poll loop (one feeder thread per session) so delivery
// timestamps are tight; returns this session's per-frame latencies.
std::vector<double> drive(SessionHandle& session,
                          const std::vector<FrameInput>& input,
                          std::vector<TrackResult>& out,
                          const bench::WallTimer& timer) {
  std::vector<double> fed_at(input.size(), 0.0);
  std::vector<double> latencies;
  std::size_t next = 0;
  while (out.size() < input.size()) {
    bool progress = false;
    if (next < input.size() && session.try_feed(input[next])) {
      fed_at[next] = timer.elapsed_ms();
      ++next;
      progress = true;
    }
    while (auto r = session.poll()) {
      latencies.push_back(timer.elapsed_ms() - fed_at[out.size()]);
      out.push_back(std::move(*r));
      progress = true;
    }
    if (!progress) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return latencies;
}

// One mapping session plus `m` localization sessions over the shared
// frozen map, all fed concurrently.
RunResult run_tier(int m, const std::shared_ptr<const FrozenMap>& frozen,
                   const PinholeCamera& camera,
                   const std::vector<FrameInput>& frames) {
  SlamService service(ServiceOptions{kArmWorkers});

  SessionConfig mapping;
  mapping.camera = camera;
  mapping.backend.platform = Platform::kSoftware;
  mapping.backend.orb = bench_orb();
  SessionHandle mapper = service.open_session(mapping);

  std::vector<SessionHandle> localizers;
  localizers.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    SessionConfig config;
    config.kind = SessionKind::kLocalization;
    config.frozen_map = frozen;
    config.backend.platform = Platform::kSoftware;
    config.backend.orb = bench_orb();
    localizers.push_back(service.open_session(config));
  }

  RunResult run;
  run.loc_results.resize(static_cast<std::size_t>(m));
  std::mutex mutex;
  std::vector<double> loc_latencies, map_latencies;

  const bench::WallTimer timer;
  std::vector<std::thread> feeders;
  feeders.emplace_back([&] {
    std::vector<double> local = drive(mapper, frames, run.map_results, timer);
    const std::lock_guard<std::mutex> lock(mutex);
    map_latencies.insert(map_latencies.end(), local.begin(), local.end());
  });
  for (int i = 0; i < m; ++i) {
    feeders.emplace_back([&, i] {
      std::vector<double> local =
          drive(localizers[static_cast<std::size_t>(i)], frames,
                run.loc_results[static_cast<std::size_t>(i)], timer);
      const std::lock_guard<std::mutex> lock(mutex);
      loc_latencies.insert(loc_latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : feeders) t.join();

  run.wall_ms = timer.elapsed_ms();
  run.aggregate_fps = 1000.0 * static_cast<double>((m + 1) * frames.size()) /
                      run.wall_ms;
  run.loc_p50_ms = percentile(loc_latencies, 0.50);
  run.loc_p99_ms = percentile(loc_latencies, 0.99);
  run.map_p50_ms = percentile(map_latencies, 0.50);
  run.map_p99_ms = percentile(map_latencies, 0.99);
  return run;
}

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

bool bit_identical(const std::vector<TrackResult>& served,
                   const std::vector<TrackResult>& reference) {
  if (served.size() != reference.size()) return false;
  for (std::size_t f = 0; f < served.size(); ++f) {
    if ((served[f].pose_wc.translation() -
         reference[f].pose_wc.translation()).max_abs() != 0.0 ||
        (served[f].pose_wc.rotation() -
         reference[f].pose_wc.rotation()).max_abs() != 0.0 ||
        served[f].lost != reference[f].lost ||
        served[f].n_matches != reference[f].n_matches ||
        served[f].n_inliers != reference[f].n_inliers ||
        served[f].match_tier != reference[f].match_tier)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 60;
  bench::print_header(
      "Localization tier: per-tier latency / aggregate FPS vs session count",
      "frozen-map read-only serving beside the Figure-7 mapping pipeline");

  SequenceOptions seq_opts;
  seq_opts.frames = frames;
  const SyntheticSequence seq(SequenceId::kFr1Desk, seq_opts);
  const std::vector<FrameInput> inputs = bench::render_all(seq);

  // Build the map once (sequential, backend on, outside the timed region),
  // save it, and serve every run from the *loaded* snapshot.
  const std::string map_path = "BENCH_localization_scaling.map";
  {
    TrackerOptions options;
    options.backend.enabled = true;
    Tracker mapper(seq.camera(), std::make_unique<SoftwareBackend>(bench_orb()),
                   options);
    for (const FrameInput& f : inputs) mapper.process(f);
    const MapSnapshot snapshot =
        capture_snapshot(mapper.map(), mapper.keyframe_graph(), seq.camera());
    std::string error;
    if (!save_snapshot(map_path, snapshot, &error)) {
      std::fprintf(stderr, "cannot save %s: %s\n", map_path.c_str(),
                   error.c_str());
      return 1;
    }
  }
  std::string error;
  const std::shared_ptr<const FrozenMap> frozen =
      FrozenMap::load(map_path, &error);
  if (!frozen) {
    std::fprintf(stderr, "cannot load %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("map: %d frames -> %zu points, %zu keyframes (saved + "
              "reloaded via %s)\nhost: %u hardware threads; ARM pool %d "
              "workers; 1 mapping session beside every run\n\n",
              frames, frozen->size(), frozen->graph().size(), map_path.c_str(),
              std::thread::hardware_concurrency(), kArmWorkers);

  // Solo sequential localizer: the bit-identity oracle.
  std::vector<TrackResult> solo;
  {
    Localizer localizer(frozen,
                        std::make_unique<SoftwareBackend>(bench_orb()));
    for (const FrameInput& f : inputs) solo.push_back(localizer.process(f));
  }

  std::printf("%4s %10s %14s %12s %12s %12s %12s\n", "M", "wall ms",
              "aggregate fps", "loc p50", "loc p99", "map p50", "map p99");
  const int session_counts[] = {1, 2, 4};
  std::vector<RunResult> runs;
  for (const int m : session_counts) {
    runs.push_back(run_tier(m, frozen, seq.camera(), inputs));
    const RunResult& r = runs.back();
    std::printf("%4d %10.0f %14.1f %12.1f %12.1f %12.1f %12.1f\n", m,
                r.wall_ms, r.aggregate_fps, r.loc_p50_ms, r.loc_p99_ms,
                r.map_p50_ms, r.map_p99_ms);
  }
  const double p99_ratio = runs[2].loc_p99_ms / runs[0].loc_p99_ms;
  std::printf("\nlocalization p99 ratio M=1 -> M=4: %.2fx\n\n", p99_ratio);

  {
    bench::BenchJson json("localization_scaling");
    json.number("frames", frames);
    json.number("arm_workers", kArmWorkers);
    json.number("map_points", static_cast<double>(frozen->size()));
    json.number("map_keyframes", static_cast<double>(frozen->graph().size()));
    json.number("loc_p99_ratio_1_to_4", p99_ratio);
    const std::string columns[] = {"localization_sessions", "wall_ms",
                                   "aggregate_fps", "loc_p50_ms", "loc_p99_ms",
                                   "map_p50_ms", "map_p99_ms"};
    std::vector<std::vector<double>> rows;
    for (std::size_t i = 0; i < runs.size(); ++i)
      rows.push_back({static_cast<double>(session_counts[i]), runs[i].wall_ms,
                      runs[i].aggregate_fps, runs[i].loc_p50_ms,
                      runs[i].loc_p99_ms, runs[i].map_p50_ms,
                      runs[i].map_p99_ms});
    json.rows("tiers", columns, rows);
    json.write();
    std::printf("\n");
  }

  std::printf("checks:\n");
  bool all_delivered = true;
  for (const RunResult& r : runs) {
    if (r.map_results.size() != inputs.size()) all_delivered = false;
    for (const std::vector<TrackResult>& session : r.loc_results)
      if (session.size() != inputs.size()) all_delivered = false;
  }
  check(all_delivered, "every session delivered every frame in every run");

  bool identical = true;
  for (const RunResult& r : runs)
    for (const std::vector<TrackResult>& session : r.loc_results)
      if (!bit_identical(session, solo)) identical = false;
  check(identical,
        "every served localization stream bit-identical to the solo "
        "sequential run against the loaded map");

  bool cold_started = true;
  for (const RunResult& r : runs)
    for (const std::vector<TrackResult>& session : r.loc_results)
      if (session.empty() || session[0].lost || !session[0].relocalized)
        cold_started = false;
  check(cold_started,
        "every localization session cold-started through indexed "
        "relocalization on its first frame");

  // The scaling gate is defined for a >= 4-core host (CI's runners): there
  // the pool really runs the 4 localization sessions in parallel, so p99
  // must stay within 1.5x of the M=1 run.  On smaller machines the real
  // per-frame compute timeshares and the ratio is informational.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    check(p99_ratio <= kRequiredP99Ratio,
          "localization p99 at M=4 within 1.5x of M=1");
  } else {
    std::printf("  [%s] localization p99 at M=4 within 1.5x of M=1 "
                "(informational: gate needs >= 4 hardware threads, host has "
                "%u)\n",
                p99_ratio <= kRequiredP99Ratio ? "ok" : "--", cores);
  }

  std::remove(map_path.c_str());
  if (failures == 0)
    std::printf("\nlocalization tier serves bit-identically and scales on "
                "the pool.\n");
  else
    std::printf("\n%d check(s) failed.\n", failures);
  return failures == 0 ? 0 : 1;
}
