// Regenerates Table 1: FPGA resource utilization of eSLAM on the Zynq
// XCZ7045.  Our numbers come from the documented per-module resource model
// (hw/resource_model.cpp) — see DESIGN.md for the substitution rationale.
#include "bench_util.h"
#include "hw/resource_model.h"

int main() {
  using namespace eslam;
  bench::print_header("Table 1: FPGA resource utilization", "Table 1");

  const auto inventory = eslam_resource_inventory();
  Table per_module({"module", "LUT", "FF", "DSP", "BRAM", "estimate basis"});
  for (const ModuleResources& m : inventory)
    per_module.add_row({m.name, std::to_string(m.usage.lut),
                        std::to_string(m.usage.ff),
                        std::to_string(m.usage.dsp),
                        std::to_string(m.usage.bram), m.basis});
  per_module.print();

  const ResourceUsage total = total_resources(inventory);
  const ResourceUsage paper = paper_table1_totals();
  const DeviceCapacity dev;

  Table totals({"", "LUT", "FF", "DSP", "BRAM"});
  totals.add_row({"model total", std::to_string(total.lut),
                  std::to_string(total.ff), std::to_string(total.dsp),
                  std::to_string(total.bram)});
  totals.add_row(
      {"model utilization",
       Table::fmt(utilization_pct(total.lut, dev.lut), 1) + "%",
       Table::fmt(utilization_pct(total.ff, dev.ff), 1) + "%",
       Table::fmt(utilization_pct(total.dsp, dev.dsp), 1) + "%",
       Table::fmt(utilization_pct(total.bram, dev.bram), 1) + "%"});
  totals.add_separator();
  totals.add_row({"paper Table 1", std::to_string(paper.lut),
                  std::to_string(paper.ff), std::to_string(paper.dsp),
                  std::to_string(paper.bram)});
  totals.add_row({"paper utilization", "26.0%", "15.5%", "12.3%", "14.3%"});
  totals.print();

  std::printf(
      "\nPaper's conclusion holds: ~1/4 of the XCZ7045 is used, so the\n"
      "design would also fit smaller parts (XCZ7030/XCZ7020).\n");
  return 0;
}
