// google-benchmark microbenchmarks for the hot kernels of the pipeline:
// Hamming distance, descriptor computation and steering, FAST detection,
// smoothing, brute-force matching and scene rendering.
#include <benchmark/benchmark.h>

#include <random>

#include "dataset/scene.h"
#include "features/brief.h"
#include "features/fast.h"
#include "features/harris.h"
#include "features/matcher.h"
#include "features/orb.h"
#include "image/convolve.h"

namespace {

using namespace eslam;

ImageU8 test_image(int w, int h) {
  ImageU8 img(w, h);
  std::mt19937 rng(7);
  for (auto& p : img.data())
    p = static_cast<std::uint8_t>(40 + rng() % 176);
  return img;
}

Descriptor256 random_descriptor(std::mt19937_64& rng) {
  Descriptor256 d;
  for (auto& w : d.words()) w = rng();
  return d;
}

void BM_HammingDistance(benchmark::State& state) {
  std::mt19937_64 rng(1);
  const Descriptor256 a = random_descriptor(rng);
  const Descriptor256 b = random_descriptor(rng);
  for (auto _ : state) benchmark::DoNotOptimize(hamming_distance(a, b));
}
BENCHMARK(BM_HammingDistance);

void BM_DescriptorRotate(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const Descriptor256 d = random_descriptor(rng);
  int n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.rotated_bytes(n));
    n = (n + 1) % 32;
  }
}
BENCHMARK(BM_DescriptorRotate);

void BM_ComputeDescriptor(benchmark::State& state) {
  const ImageU8 img = smooth_gaussian7_u8(test_image(128, 128));
  const RsBriefPattern pattern;
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_descriptor(img, 64, 64, pattern.base()));
}
BENCHMARK(BM_ComputeDescriptor);

void BM_SteeredExactDescriptor(benchmark::State& state) {
  const ImageU8 img = smooth_gaussian7_u8(test_image(128, 128));
  const OriginalBriefPattern pattern;
  for (auto _ : state)
    benchmark::DoNotOptimize(orb_descriptor_exact(img, 64, 64, pattern, 0.7));
}
BENCHMARK(BM_SteeredExactDescriptor);

void BM_FastDetect(benchmark::State& state) {
  const ImageU8 img = test_image(640, 480);
  for (auto _ : state) benchmark::DoNotOptimize(detect_fast(img, 20, 3));
  state.SetItemsProcessed(state.iterations() * img.pixel_count());
}
BENCHMARK(BM_FastDetect);

void BM_HarrisScore(benchmark::State& state) {
  const ImageU8 img = test_image(64, 64);
  for (auto _ : state)
    benchmark::DoNotOptimize(harris_score_int(img, 32, 32));
}
BENCHMARK(BM_HarrisScore);

void BM_Smooth7x7(benchmark::State& state) {
  const ImageU8 img = test_image(640, 480);
  for (auto _ : state) benchmark::DoNotOptimize(smooth_gaussian7_u8(img));
  state.SetItemsProcessed(state.iterations() * img.pixel_count());
}
BENCHMARK(BM_Smooth7x7);

void BM_BruteForceMatch(benchmark::State& state) {
  std::mt19937_64 rng(3);
  std::vector<Descriptor256> queries(256), train(
      static_cast<std::size_t>(state.range(0)));
  for (auto& d : queries) d = random_descriptor(rng);
  for (auto& d : train) d = random_descriptor(rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(match_descriptors(queries, train));
  state.SetItemsProcessed(state.iterations() * queries.size() * train.size());
}
BENCHMARK(BM_BruteForceMatch)->Arg(512)->Arg(2048);

void BM_OrbExtractVga(benchmark::State& state) {
  BoxRoomOptions opts;
  const BoxRoomScene scene(opts);
  const PinholeCamera cam = PinholeCamera::tum_freiburg1();
  const ImageU8 img = scene.render(cam, SE3{}, 0).gray;
  OrbExtractor extractor;
  for (auto _ : state) benchmark::DoNotOptimize(extractor.extract(img));
}
BENCHMARK(BM_OrbExtractVga)->Unit(benchmark::kMillisecond);

void BM_SceneRenderVga(benchmark::State& state) {
  const BoxRoomScene scene;
  const PinholeCamera cam = PinholeCamera::tum_freiburg1();
  for (auto _ : state) benchmark::DoNotOptimize(scene.render(cam, SE3{}, 0));
}
BENCHMARK(BM_SceneRenderVga)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
