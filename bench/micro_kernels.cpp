// Microbenchmarks for the pipeline's hot kernels, emitting
// BENCH_micro_kernels.json (uploaded by CI's bench-smoke job) so the
// scalar-vs-SIMD kernel trajectory is tracked per run:
//
//   * one-query-vs-block Hamming popcount over the SoA word planes
//     (features/simd_kernels), scalar vs runtime-dispatched, at map sizes
//     1k / 4k / 16k;
//   * candidate-list Hamming gather at gate-realistic list lengths;
//   * batched map-point projection, scalar vs dispatched;
//   * end-to-end brute-force matching, AoS reference vs SoA _into tier.
//
// Every timed comparison first asserts bit-exactness between the scalar
// and dispatched kernels on the same inputs — a dispatch regression fails
// the bench before it pollutes the numbers.
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench_util.h"
#include "core/arena.h"
#include "core/simd_dispatch.h"
#include "features/descriptor_soa.h"
#include "features/fast.h"
#include "features/matcher.h"
#include "features/simd_kernels.h"
#include "geometry/camera.h"
#include "geometry/wall_timer.h"
#include "image/convolve.h"

namespace {

using namespace eslam;
using bench::BenchJson;

ImageU8 test_image(int w, int h) {
  ImageU8 img(w, h);
  std::mt19937 rng(7);
  for (auto& p : img.data())
    p = static_cast<std::uint8_t>(40 + rng() % 176);
  return img;
}

Descriptor256 random_descriptor(std::mt19937_64& rng) {
  Descriptor256 d;
  for (auto& w : d.words()) w = rng();
  return d;
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FATAL: kernel parity violated: %s\n", what);
    std::exit(1);
  }
}

// Median-of-reps wall time for `fn`, in milliseconds.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const WallTimer t;
    fn();
    samples.push_back(t.elapsed_ms());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  bench::print_header("micro kernels: scalar vs SIMD",
                      "section 3.2 (BRIEF matcher) kernel throughput");
  BenchJson json("micro_kernels");
  json.text("isa", simd::active_isa_name());

  std::mt19937_64 rng(42);
  const int kQueries = 256;
  std::vector<Descriptor256> queries(kQueries);
  for (auto& d : queries) d = random_descriptor(rng);

  // ---- Hamming block: one query vs a contiguous train block --------------
  const std::vector<int> kTrainSizes = {1024, 4096, 16384};
  std::vector<std::vector<double>> hamming_rows;
  double speedup_at_4k = 0.0;
  for (const int n : kTrainSizes) {
    std::vector<Descriptor256> train(static_cast<std::size_t>(n));
    for (auto& d : train) d = random_descriptor(rng);
    DescriptorSoA soa;
    soa.assign(train);

    std::vector<std::uint16_t> dist_simd(train.size());
    std::vector<std::uint16_t> dist_scalar(train.size());
    for (const auto& q : queries) {
      simd::hamming_block(soa, q, 0, train.size(), dist_simd.data());
      simd::hamming_block_scalar(soa, q, 0, train.size(), dist_scalar.data());
      require(dist_simd == dist_scalar, "hamming_block vs scalar");
    }

    const int reps = 9;
    const double scalar_ms = time_ms(reps, [&] {
      for (const auto& q : queries)
        simd::hamming_block_scalar(soa, q, 0, train.size(),
                                   dist_scalar.data());
    });
    const double simd_ms = time_ms(reps, [&] {
      for (const auto& q : queries)
        simd::hamming_block(soa, q, 0, train.size(), dist_simd.data());
    });
    const double speedup = simd_ms > 0 ? scalar_ms / simd_ms : 0.0;
    if (n == 4096) speedup_at_4k = speedup;
    const double pairs = static_cast<double>(kQueries) * n;
    std::printf("hamming_block  n=%6d  scalar %7.3f ms  simd %7.3f ms  "
                "speedup %5.2fx  (%5.0f Mpairs/s)\n",
                n, scalar_ms, simd_ms, speedup,
                pairs / (simd_ms * 1e3));
    hamming_rows.push_back({static_cast<double>(n), scalar_ms, simd_ms,
                            speedup, pairs / (simd_ms * 1e3)});
  }
  const std::string hamming_cols[] = {"train_size", "scalar_ms", "simd_ms",
                                      "speedup", "simd_mpairs_per_s"};
  json.rows("hamming_block", hamming_cols, hamming_rows);
  json.number("hamming_speedup_at_4k", speedup_at_4k);

  // ---- Hamming gather: candidate-list indices (the gated tier) -----------
  {
    const int n = 4096, kListLen = 48;
    std::vector<Descriptor256> train(static_cast<std::size_t>(n));
    for (auto& d : train) d = random_descriptor(rng);
    DescriptorSoA soa;
    soa.assign(train);
    std::vector<std::int32_t> candidates(kListLen);
    for (auto& c : candidates)
      c = static_cast<std::int32_t>(rng() % static_cast<std::uint64_t>(n));
    std::sort(candidates.begin(), candidates.end());

    std::vector<std::uint16_t> dist_simd(candidates.size());
    std::vector<std::uint16_t> dist_scalar(candidates.size());
    for (const auto& q : queries) {
      simd::hamming_gather(soa, q, candidates, dist_simd.data());
      simd::hamming_gather_scalar(soa, q, candidates, dist_scalar.data());
      require(dist_simd == dist_scalar, "hamming_gather vs scalar");
    }
    const int reps = 9, inner = 64;
    const double scalar_ms = time_ms(reps, [&] {
      for (int i = 0; i < inner; ++i)
        for (const auto& q : queries)
          simd::hamming_gather_scalar(soa, q, candidates, dist_scalar.data());
    });
    const double simd_ms = time_ms(reps, [&] {
      for (int i = 0; i < inner; ++i)
        for (const auto& q : queries)
          simd::hamming_gather(soa, q, candidates, dist_simd.data());
    });
    std::printf("hamming_gather list=%d  scalar %7.3f ms  simd %7.3f ms  "
                "speedup %5.2fx\n",
                kListLen, scalar_ms, simd_ms,
                simd_ms > 0 ? scalar_ms / simd_ms : 0.0);
    json.number("gather_scalar_ms", scalar_ms);
    json.number("gather_simd_ms", simd_ms);
    json.number("gather_speedup", simd_ms > 0 ? scalar_ms / simd_ms : 0.0);
  }

  // ---- Batched projection (the match gate's kernel) ----------------------
  {
    const int n = 8192;
    std::vector<double> xs(n), ys(n), zs(n);
    std::mt19937_64 prng(9);
    auto uniform = [&](double lo, double hi) {
      return lo + (hi - lo) * (static_cast<double>(prng() >> 11) * 0x1p-53);
    };
    for (int i = 0; i < n; ++i) {
      xs[static_cast<std::size_t>(i)] = uniform(-4.0, 4.0);
      ys[static_cast<std::size_t>(i)] = uniform(-3.0, 3.0);
      zs[static_cast<std::size_t>(i)] = uniform(-1.0, 9.0);  // some behind
    }
    const PinholeCamera cam = PinholeCamera::tum_freiburg1();
    const SE3 pose;  // identity prior
    const double margin = 24.0;
    std::vector<double> u_a(xs.size()), v_a(xs.size());
    std::vector<double> u_b(xs.size()), v_b(xs.size());
    std::vector<std::uint8_t> keep_a(xs.size()), keep_b(xs.size());

    simd::project_batch(xs, ys, zs, pose, cam, margin, u_a.data(), v_a.data(),
                        keep_a.data());
    simd::project_batch_scalar(xs, ys, zs, pose, cam, margin, u_b.data(),
                               v_b.data(), keep_b.data());
    require(keep_a == keep_b, "project_batch keep mask vs scalar");
    for (std::size_t i = 0; i < xs.size(); ++i)
      if (keep_a[i])
        require(u_a[i] == u_b[i] && v_a[i] == v_b[i],
                "project_batch uv vs scalar");

    const int reps = 9, inner = 64;
    const double scalar_ms = time_ms(reps, [&] {
      for (int i = 0; i < inner; ++i)
        simd::project_batch_scalar(xs, ys, zs, pose, cam, margin, u_b.data(),
                                   v_b.data(), keep_b.data());
    });
    const double simd_ms = time_ms(reps, [&] {
      for (int i = 0; i < inner; ++i)
        simd::project_batch(xs, ys, zs, pose, cam, margin, u_a.data(),
                            v_a.data(), keep_a.data());
    });
    std::printf("project_batch  n=%d  scalar %7.3f ms  simd %7.3f ms  "
                "speedup %5.2fx\n",
                n, scalar_ms, simd_ms,
                simd_ms > 0 ? scalar_ms / simd_ms : 0.0);
    json.number("project_scalar_ms", scalar_ms);
    json.number("project_simd_ms", simd_ms);
    json.number("project_speedup", simd_ms > 0 ? scalar_ms / simd_ms : 0.0);
  }

  // ---- End-to-end brute-force match: AoS reference vs SoA _into tier -----
  {
    const int n = 4096;
    std::vector<Descriptor256> train(static_cast<std::size_t>(n));
    for (auto& d : train) d = random_descriptor(rng);
    DescriptorSoA soa;
    soa.assign(train);
    FeatureList features(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
      features[i].descriptor = queries[i];
    const MatcherOptions options;
    const TrainView view{train, &soa};
    Arena arena;
    std::vector<Match> out;

    const std::vector<Match> reference =
        match_descriptors(queries, train, options);
    match_descriptors_into(features, view, options, &arena, out);
    require(reference.size() == out.size(), "match_descriptors_into size");
    for (std::size_t i = 0; i < out.size(); ++i)
      require(reference[i].query == out[i].query &&
                  reference[i].train == out[i].train &&
                  reference[i].distance == out[i].distance &&
                  reference[i].second_best == out[i].second_best,
              "match_descriptors_into vs AoS reference");

    const int reps = 9;
    const double aos_ms = time_ms(
        reps, [&] { (void)match_descriptors(queries, train, options); });
    const double soa_ms = time_ms(reps, [&] {
      match_descriptors_into(features, view, options, &arena, out);
    });
    std::printf("brute_match    n=%d  aos %7.3f ms  soa %7.3f ms  "
                "speedup %5.2fx\n",
                n, aos_ms, soa_ms, soa_ms > 0 ? aos_ms / soa_ms : 0.0);
    json.number("brute_match_aos_ms", aos_ms);
    json.number("brute_match_soa_ms", soa_ms);
    json.number("brute_match_speedup", soa_ms > 0 ? aos_ms / soa_ms : 0.0);
  }

  // ---- Legacy scalar micro kernels (continuity with earlier runs) --------
  {
    const ImageU8 img = test_image(640, 480);
    const double fast_ms = time_ms(9, [&] { (void)detect_fast(img, 20, 3); });
    const double smooth_ms =
        time_ms(9, [&] { (void)smooth_gaussian7_u8(img); });
    std::printf("fast_detect vga %.3f ms   smooth7x7 vga %.3f ms\n", fast_ms,
                smooth_ms);
    json.number("fast_detect_vga_ms", fast_ms);
    json.number("smooth7_vga_ms", smooth_ms);
  }

  json.write();
  return 0;
}
