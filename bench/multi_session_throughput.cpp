// Multi-session serving throughput: aggregate FPS and per-session latency
// vs session count over server/SlamService — one shared device lane, a
// four-worker ARM pool, K independent camera streams.
//
// The platform is emulated the same way bench_pipeline_throughput emulates
// it, extended to the ARM side: feature extraction is computed functionally
// once per stream outside the timed region and replayed by the backend with
// the modeled device latency as a sleep (the one fabric is *occupied*, the
// host core is free, exactly like a real shared FPGA); the ARM stages run
// their real computation and are then paced to the paper's ARM Cortex-A9
// Table-2 stage durations via the scheduler's StagePacer.  Because both
// knobs only pad wall time, every session's poses stay bit-identical to a
// solo sequential run — which is checked — while the schedule keeps the
// paper's proportions on any host, so the session-count scaling is
// measurable even on a small CI runner.  The >= 1.5x exit-code gate is
// enforced on hosts with >= 4 hardware threads (the ISSUE-2 target); on
// smaller machines the 4 sessions' real per-frame host compute
// timeshares, so the ratio is reported without failing the run.
//
// With FE+FM ~12 ms on the shared fabric and PE+PO+MU ~28 ms per session
// on the pooled ARM side, one session is ARM-bound (~36 fps) and four
// sessions become fabric-bound (~83 fps aggregate): the expected
// aggregate scaling from 1 -> 4 sessions is >2x, and the bench exits
// non-zero below 1.5x.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dataset/multi_sequence.h"
#include "obs/metrics.h"
#include "server/slam_service.h"
#include "slam/map.h"

namespace {

using namespace eslam;

constexpr int kStreams = 4;
constexpr int kFramesPerSession = 30;
constexpr int kArmWorkers = 4;
// Modeled shared-fabric latencies (ms).  FE is pure device time (sleep);
// FM must run functionally on the host (it reads the evolving map) and is
// padded up to the floor when the host is faster.
constexpr double kDeviceFeMs = 10.0;
constexpr double kDeviceFmFloorMs = 2.0;
// Functional feature budget: enough to track the synthetic rooms solidly
// (the tests use 400) while keeping the host-side FM compute well under
// the modeled stage times, so the emulated platform — not this machine's
// core count — sets the schedule.
constexpr int kFunctionalFeatures = 200;
constexpr double kRequiredScaling14 = 1.5;  // 1 -> 4 sessions, aggregate

using bench::WallTimer;

// Pads the ARM stages to the paper's ARM Cortex-A9 Table-2 durations
// (PE 9.2 ms, PO 8.7 ms, MU 9.9 ms).  Our MU stage runs every frame (it
// includes the commit), so pacing it to the Table-2 value models an ARM
// host that always pays the map-maintenance cost — a conservative stand-in
// that keeps the per-frame ARM total at the paper's key-frame-free sum.
StagePacer a9_pacer() {
  return [](PipeStage stage) {
    switch (stage) {
      case PipeStage::kPoseEstimation: return 9.2;
      case PipeStage::kPoseOptimization: return 8.7;
      case PipeStage::kMapUpdating: return 9.9;
      default: return 0.0;
    }
  };
}

struct RunResult {
  double wall_ms = 0;
  double aggregate_fps = 0;
  double p50_ms = 0, p99_ms = 0;      // per-frame latency across sessions
  std::vector<std::vector<TrackResult>> results;  // per session, feed order
  std::vector<PipelineStats> stats;               // per session
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[i];
}

// Serves `k` streams concurrently (one feeder thread per session, a
// closed try_feed/poll loop so delivery timestamps are tight) and returns
// throughput, latency percentiles, results and per-session stats.
RunResult run_sessions(int k, const MultiSequenceSet& streams,
                       const std::vector<std::vector<FeatureList>>& features,
                       const std::vector<std::vector<FrameInput>>& frames) {
  SlamService service(ServiceOptions{kArmWorkers});
  std::vector<SessionHandle> sessions;
  sessions.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    SessionConfig config;
    config.camera = streams.stream(i).camera();
    config.pacer = a9_pacer();
    const std::vector<FeatureList>& stream_features =
        features[static_cast<std::size_t>(i)];
    config.backend_factory = [&stream_features] {
      return std::make_unique<bench::DeviceEmulationBackend>(
          stream_features, MatcherOptions{}, kDeviceFeMs, kDeviceFmFloorMs);
    };
    sessions.push_back(service.open_session(config));
  }

  RunResult run;
  run.results.resize(static_cast<std::size_t>(k));
  std::mutex latency_mutex;
  std::vector<double> latencies;

  const WallTimer timer;
  std::vector<std::thread> feeders;
  feeders.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    feeders.emplace_back([&, i] {
      SessionHandle& session = sessions[static_cast<std::size_t>(i)];
      const std::vector<FrameInput>& input =
          frames[static_cast<std::size_t>(i)];
      std::vector<double> fed_at(input.size(), 0.0);
      std::vector<double> local;
      std::vector<TrackResult>& out = run.results[static_cast<std::size_t>(i)];
      std::size_t next = 0;
      while (out.size() < input.size()) {
        bool progress = false;
        if (next < input.size() && session.try_feed(input[next])) {
          fed_at[next] = timer.elapsed_ms();
          ++next;
          progress = true;
        }
        while (auto r = session.poll()) {
          local.push_back(timer.elapsed_ms() - fed_at[out.size()]);
          out.push_back(std::move(*r));
          progress = true;
        }
        if (!progress) std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      const std::lock_guard<std::mutex> lock(latency_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : feeders) t.join();
  run.wall_ms = timer.elapsed_ms();
  run.aggregate_fps =
      1000.0 * static_cast<double>(k) * kFramesPerSession / run.wall_ms;
  run.p50_ms = percentile(latencies, 0.50);
  run.p99_ms = percentile(latencies, 0.99);
  for (SessionHandle& session : sessions) run.stats.push_back(session.stats());
  return run;
}

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

// ---------------------------------------------------------------------------
// Writer-stall probe: device-lane FM wait while a co-session is mid-write.
//
// The seed serialized FM's map reads against map updating with one
// shared_mutex, so a keyframe insert on the ARM side stalled the shared
// device lane for every session.  The probe reproduces that contention
// shape directly: a writer thread applies back-to-back map-update batches
// while reader threads time how long acquiring the map's read state takes
// (arrival -> readable).  Arm A is the seed discipline (shared_mutex
// around the same Map); arm B is the shipped wait-free path
// (Map::read_view()).  Both arms run the identical mutation schedule, so
// the only variable is the read-side discipline.  The gate is the ratio
// of *median* acquisition times — medians so a preempted sample on a
// small host cannot swing the result — and is machine-independent enough
// to enforce everywhere: blocking behind a mid-write exclusive section
// costs tens of microseconds, a refcount borrow tens of nanoseconds.

struct StallArmStats {
  double p50_us = 0, p99_us = 0, mean_us = 0;
  std::size_t samples = 0;
};

struct StallProbeResult {
  StallArmStats locked, view;
  double improvement = 0;  // locked p50 / view p50
};

Descriptor256 probe_descriptor(std::int64_t id) {
  Descriptor256 d;
  for (int w = 0; w < Descriptor256::kWords; ++w)
    d.words()[w] = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(id + w + 1);
  return d;
}

StallArmStats fold_waits(std::vector<double>& waits_us) {
  StallArmStats s;
  s.samples = waits_us.size();
  if (waits_us.empty()) return s;
  double sum = 0;
  for (double w : waits_us) sum += w;
  s.mean_us = sum / static_cast<double>(waits_us.size());
  std::sort(waits_us.begin(), waits_us.end());
  s.p50_us = waits_us[waits_us.size() / 2];
  s.p99_us = waits_us[std::min(waits_us.size() - 1,
                               static_cast<std::size_t>(
                                   0.99 * static_cast<double>(waits_us.size())))];
  return s;
}

// Runs one probe arm in lockstep rounds so every sample measures the
// *conditional* latency the probe is named for — a reader arriving while
// the write is in flight — independent of how the host schedules the
// threads (a free-running writer finishes its whole critical section
// inside one timeslice on a small host, and unconditioned samples would
// then mostly measure an idle lock):
//
//   1. the writer *opens* the round (for the seed arm: takes the
//      exclusive lock first, so the write is in flight by definition),
//   2. readers announce arrival and immediately time one read-state
//      acquisition,
//   3. the writer waits for all arrivals, applies the keyframe-style
//      append batch, and closes the round (seed arm: releases the lock),
//   4. everyone acknowledges before the next round starts.
//
// Under the seed discipline step 2 blocks until step 3 finishes — the
// head-of-line stall every co-session paid.  Under published views it
// completes immediately, concurrent with the batch.
template <typename ReadOnce, typename OpenRound, typename CloseRound>
StallArmStats run_stall_arm(ReadOnce read_once, OpenRound open_round,
                            CloseRound close_round) {
  constexpr int kProbeReaders = 2;
  constexpr int kProbeRounds = 200;

  std::atomic<int> round_live{-1};
  std::atomic<int> arrivals{0};
  std::atomic<int> acks{0};
  std::atomic<bool> stop{false};
  std::mutex merge_mutex;
  std::vector<double> waits_us;

  std::vector<std::thread> readers;
  readers.reserve(kProbeReaders);
  for (int r = 0; r < kProbeReaders; ++r) {
    readers.emplace_back([&] {
      std::vector<double> local;
      local.reserve(kProbeRounds);
      int last = -1;
      while (!stop.load(std::memory_order_acquire)) {
        const int round = round_live.load(std::memory_order_acquire);
        if (round == last) {
          std::this_thread::yield();
          continue;
        }
        last = round;
        arrivals.fetch_add(1, std::memory_order_release);
        const auto t0 = std::chrono::steady_clock::now();
        read_once();
        const auto t1 = std::chrono::steady_clock::now();
        local.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        acks.fetch_add(1, std::memory_order_release);
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      waits_us.insert(waits_us.end(), local.begin(), local.end());
    });
  }

  for (int round = 0; round < kProbeRounds; ++round) {
    open_round(round);
    round_live.store(round, std::memory_order_release);
    while (arrivals.load(std::memory_order_acquire) <
           kProbeReaders * (round + 1))
      std::this_thread::yield();
    close_round(round);  // the batch itself + the seed arm's unlock
    while (acks.load(std::memory_order_acquire) < kProbeReaders * (round + 1))
      std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  return fold_waits(waits_us);
}

StallProbeResult writer_stall_probe() {
  constexpr int kSeedPoints = 2048;
  constexpr int kBatch = 48;  // points per keyframe-style map-update burst
  StallProbeResult probe;
  std::atomic<std::uint64_t> sink{0};

  {  // Arm A: seed discipline — one shared_mutex over the same Map.
    Map map;
    std::shared_mutex map_mutex;
    for (int i = 0; i < kSeedPoints; ++i)
      map.add_point(Vec3{0.01 * i, 0.02 * i, 1.0}, probe_descriptor(i), 0);
    probe.locked = run_stall_arm(
        [&] {
          const std::shared_lock<std::shared_mutex> lock(map_mutex);
          sink.fetch_add(map.epoch() + map.descriptors()[0].words()[0],
                         std::memory_order_relaxed);
        },
        [&](int) { map_mutex.lock(); },  // write in flight before readers go
        [&](int round) {
          for (int i = 0; i < kBatch; ++i)
            map.add_point(Vec3{0.01 * round, 0.02 * i, 1.0},
                          probe_descriptor(map.next_id()), round);
          map_mutex.unlock();
        });
  }

  {  // Arm B: shipped discipline — wait-free published views, no lock.
    Map map;
    for (int i = 0; i < kSeedPoints; ++i)
      map.add_point(Vec3{0.01 * i, 0.02 * i, 1.0}, probe_descriptor(i), 0);
    probe.view = run_stall_arm(
        [&] {
          const auto view = map.read_view();
          sink.fetch_add(view->epoch() + view->descriptors()[0].words()[0],
                         std::memory_order_relaxed);
        },
        [&](int) {},
        [&](int round) {
          for (int i = 0; i < kBatch; ++i)
            map.add_point(Vec3{0.01 * round, 0.02 * i, 1.0},
                          probe_descriptor(map.next_id()), round);
        });
  }

  probe.improvement =
      probe.view.p50_us > 0 ? probe.locked.p50_us / probe.view.p50_us : 0;
  return probe;
}

}  // namespace

int main() {
  using namespace eslam;
  bench::print_header(
      "Multi-session serving: aggregate FPS / latency vs session count",
      "server/SlamService over the Figure-7 scheduler");

  MultiSequenceOptions mopts;
  mopts.streams = kStreams;
  mopts.sequence.frames = kFramesPerSession;
  const MultiSequenceSet streams(mopts);

  // Pre-render every stream and precompute its functional FE once (the
  // device replays it; all runs and the solo references share it
  // bit-exactly).
  std::vector<std::vector<FrameInput>> frames;
  std::vector<std::vector<FeatureList>> features;
  for (int i = 0; i < streams.size(); ++i) {
    frames.push_back(bench::render_all(streams.stream(i)));
    OrbConfig orb;
    orb.n_features = kFunctionalFeatures;
    OrbExtractor extractor{orb};
    std::vector<FeatureList> fe;
    fe.reserve(frames.back().size());
    for (const FrameInput& f : frames.back())
      fe.push_back(extractor.extract(f.gray));
    features.push_back(std::move(fe));
  }

  std::printf("streams: %d x %d frames; device FE %.1f ms + FM floor %.1f ms "
              "on one shared lane; ARM pool %d workers, stages paced to "
              "A9 Table-2 times\nhost: %u hardware threads\n\n",
              kStreams, kFramesPerSession, kDeviceFeMs, kDeviceFmFloorMs,
              kArmWorkers, std::thread::hardware_concurrency());

  // Solo sequential references (bit-identity oracle).
  std::vector<std::vector<TrackResult>> solo(
      static_cast<std::size_t>(kStreams));
  for (int i = 0; i < kStreams; ++i) {
    Tracker tracker(streams.stream(i).camera(),
                    std::make_unique<bench::DeviceEmulationBackend>(
                        features[static_cast<std::size_t>(i)],
                        MatcherOptions{}, kDeviceFeMs, kDeviceFmFloorMs),
                    TrackerOptions{});
    for (const FrameInput& f : frames[static_cast<std::size_t>(i)])
      solo[static_cast<std::size_t>(i)].push_back(tracker.process(f));
  }

  std::printf("%9s %12s %14s %12s %12s\n", "sessions", "wall ms",
              "aggregate fps", "p50 ms", "p99 ms");
  std::vector<RunResult> runs;
  for (int k : {1, 2, 4}) {
    runs.push_back(run_sessions(k, streams, features, frames));
    const RunResult& r = runs.back();
    std::printf("%9d %12.0f %14.1f %12.1f %12.1f\n", k, r.wall_ms,
                r.aggregate_fps, r.p50_ms, r.p99_ms);
  }
  const RunResult& one = runs[0];
  const RunResult& four = runs[2];
  std::printf("\naggregate scaling 1 -> 4 sessions: %.2fx\n\n",
              four.aggregate_fps / one.aggregate_fps);

  // Wait-free read path vs the seed's shared_mutex, under a writer
  // applying back-to-back keyframe-style map updates.
  const StallProbeResult probe = writer_stall_probe();
  std::printf("writer-stall probe (reader wait to acquire map read state, "
              "writer mid-update):\n");
  std::printf("%18s %10s %10s %10s %10s\n", "read discipline", "p50 us",
              "p99 us", "mean us", "samples");
  std::printf("%18s %10.3f %10.3f %10.3f %10zu\n", "seed shared_mutex",
              probe.locked.p50_us, probe.locked.p99_us, probe.locked.mean_us,
              probe.locked.samples);
  std::printf("%18s %10.3f %10.3f %10.3f %10zu\n", "published views",
              probe.view.p50_us, probe.view.p99_us, probe.view.mean_us,
              probe.view.samples);
  std::printf("median writer-stall improvement: %.1fx\n\n", probe.improvement);

  const obs::Counter* reader_stalls =
      obs::metrics().find_counter("eslam_map_reader_stalls_total");
  const std::int64_t reader_stalls_total =
      reader_stalls ? reader_stalls->value() : 0;
  const obs::Counter* publishes =
      obs::metrics().find_counter("eslam_map_publishes_total");
  const obs::Counter* block_copies =
      obs::metrics().find_counter("eslam_map_block_copies_total");
  const obs::Counter* bytes_copied =
      obs::metrics().find_counter("eslam_map_bytes_copied_total");
  const obs::Counter* bytes_shared =
      obs::metrics().find_counter("eslam_map_bytes_shared_total");
  std::printf("map publication (process-wide, all runs + probe): "
              "%lld views, %lld block copies, %.1f MB copied, %.1f MB "
              "shared, %lld reader stalls\n\n",
              static_cast<long long>(publishes ? publishes->value() : 0),
              static_cast<long long>(block_copies ? block_copies->value() : 0),
              static_cast<double>(bytes_copied ? bytes_copied->value() : 0) /
                  1e6,
              static_cast<double>(bytes_shared ? bytes_shared->value() : 0) /
                  1e6,
              static_cast<long long>(reader_stalls_total));

  std::printf("checks:\n");
  bool all_delivered = true;
  for (const RunResult& r : runs)
    for (const std::vector<TrackResult>& session : r.results)
      if (session.size() != kFramesPerSession) all_delivered = false;
  check(all_delivered, "every session delivered every frame in every run");

  bool bit_identical = true;
  for (std::size_t i = 0; i < four.results.size(); ++i) {
    const std::vector<TrackResult>& served = four.results[i];
    const std::vector<TrackResult>& reference = solo[i];
    for (std::size_t f = 0; f < served.size(); ++f) {
      if ((served[f].pose_wc.translation() -
           reference[f].pose_wc.translation()).max_abs() != 0.0 ||
          (served[f].pose_wc.rotation() -
           reference[f].pose_wc.rotation()).max_abs() != 0.0 ||
          served[f].keyframe != reference[f].keyframe ||
          served[f].n_matches != reference[f].n_matches ||
          served[f].n_inliers != reference[f].n_inliers)
        bit_identical = false;
    }
  }
  check(bit_identical,
        "all 4 concurrent sessions bit-identical to solo sequential runs");

  bool fair = true;
  for (const PipelineStats& s : four.stats)
    if (s.device_dispatches != kFramesPerSession) fair = false;
  check(fair, "device lane dispatched every session exactly its frame count");

  // The wait-free gates hold on any host: the probe's ratio compares two
  // disciplines measured back-to-back on the same machine, and the stall
  // counter counts events, not time.
  check(probe.improvement >= 5.0,
        "writer-stall probe: published views beat the seed's shared_mutex "
        ">= 5x (median reader wait)");
  check(reader_stalls_total == 0,
        "steady-state map readers never fell back to blocking (reader-stall "
        "counter is 0)");

  // The scaling target is defined for a 4-core host (ISSUE 2): the
  // emulation's sleeps hide most of the parallelism cost, but the real
  // per-frame host compute of 4 sessions still timeshares on smaller
  // machines, so there the ratio is reported without gating the exit code
  // (CI's 4-vCPU runners do enforce it).
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    check(four.aggregate_fps >= kRequiredScaling14 * one.aggregate_fps,
          "aggregate FPS scales >= 1.5x from 1 to 4 sessions");
  } else {
    std::printf("  [%s] aggregate FPS scales >= 1.5x from 1 to 4 sessions "
                "(informational: gate needs >= 4 hardware threads, host has "
                "%u)\n",
                four.aggregate_fps >= kRequiredScaling14 * one.aggregate_fps
                    ? "ok"
                    : "--",
                cores);
  }

  {
    bench::BenchJson json("multi_session_throughput");
    json.number("streams", kStreams);
    json.number("frames_per_session", kFramesPerSession);
    json.number("arm_workers", kArmWorkers);
    json.number("scaling_1_to_4", four.aggregate_fps / one.aggregate_fps);
    // Machine-independent gate inputs (bench/compare_bench.py enforces
    // these against the committed baseline snapshot).
    json.number("writer_stall_improvement", probe.improvement);
    json.number("reader_stalls_total",
                static_cast<double>(reader_stalls_total));
    json.number("bit_identical", bit_identical ? 1 : 0);
    json.number("all_delivered", all_delivered ? 1 : 0);
    json.number("fair_device_dispatch", fair ? 1 : 0);
    // Probe detail + publication accounting (informational).
    json.number("writer_stall_locked_p50_us", probe.locked.p50_us);
    json.number("writer_stall_locked_p99_us", probe.locked.p99_us);
    json.number("writer_stall_view_p50_us", probe.view.p50_us);
    json.number("writer_stall_view_p99_us", probe.view.p99_us);
    json.number("map_publishes_total",
                static_cast<double>(publishes ? publishes->value() : 0));
    json.number("map_block_copies_total",
                static_cast<double>(block_copies ? block_copies->value() : 0));
    json.number("map_bytes_copied_total",
                static_cast<double>(bytes_copied ? bytes_copied->value() : 0));
    json.number("map_bytes_shared_total",
                static_cast<double>(bytes_shared ? bytes_shared->value() : 0));
    const std::string columns[] = {"sessions", "wall_ms", "aggregate_fps",
                                   "p50_ms", "p99_ms"};
    const int session_counts[] = {1, 2, 4};
    std::vector<std::vector<double>> rows;
    for (std::size_t i = 0; i < runs.size(); ++i)
      rows.push_back({static_cast<double>(session_counts[i]), runs[i].wall_ms,
                      runs[i].aggregate_fps, runs[i].p50_ms, runs[i].p99_ms});
    json.rows("sessions", columns, rows);
    json.write();
  }

  if (failures == 0)
    std::printf("\nmulti-session serving reproduces solo results and scales.\n");
  else
    std::printf("\n%d check(s) failed.\n", failures);
  return failures == 0 ? 0 : 1;
}
