// Regenerates Figure 9: estimated trajectories (RS-BRIEF and original ORB)
// against ground truth on the fr1/desk-like sequence.  Prints a sampled
// x/z series and writes full TUM-format trajectories + a top-down plot.
#include "bench_util.h"
#include "dataset/tum_io.h"
#include "eval/ate.h"
#include "image/draw.h"
#include "image/pnm_io.h"

namespace {

using namespace eslam;

std::vector<SE3> run_mode(const SyntheticSequence& seq,
                          const std::vector<FrameInput>& frames,
                          DescriptorMode mode, const char* tum_path) {
  SystemConfig cfg;
  cfg.platform = Platform::kSoftware;
  cfg.descriptor = mode;
  System slam(seq.camera(), cfg);
  std::vector<TimedPose> tum;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const TrackResult r = slam.process(frames[i]);
    tum.push_back(TimedPose{r.timestamp, r.pose_wc});
  }
  write_tum_trajectory(tum_path, tum);
  return slam.poses();
}

// Aligns an estimate to ground truth and returns the aligned positions.
std::vector<Vec3> aligned_positions(const std::vector<SE3>& est,
                                    const std::vector<SE3>& gt) {
  std::vector<Vec3> est_t, gt_t;
  for (const SE3& p : est) est_t.push_back(p.translation());
  for (const SE3& p : gt) gt_t.push_back(p.translation());
  const AteResult ate = absolute_trajectory_error(
      std::span<const Vec3>(est_t), std::span<const Vec3>(gt_t));
  std::vector<Vec3> out;
  for (const Vec3& p : est_t) out.push_back(ate.alignment * p);
  return out;
}

void plot(ImageRgb& img, const std::vector<Vec3>& pts, Rgb color) {
  // Top-down (x, z) view, room [-3.2, 3.2] mapped to the canvas.
  auto px = [&](double v) {
    return static_cast<int>((v + 3.2) / 6.4 * (img.width() - 1));
  };
  for (std::size_t i = 1; i < pts.size(); ++i)
    draw_line(img, px(pts[i - 1][0]), px(pts[i - 1][2]), px(pts[i][0]),
              px(pts[i][2]), color);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  using namespace eslam::bench;
  print_header("Figure 9: estimated vs ground-truth trajectory (fr1/desk)",
               "Figure 9");

  SequenceOptions opts;
  opts.frames = argc > 1 ? std::atoi(argv[1]) : 60;
  if (opts.frames < 10) opts.frames = 10;
  const SyntheticSequence seq(SequenceId::kFr1Desk, opts);
  const auto frames = render_all(seq);

  const std::vector<SE3> rs =
      run_mode(seq, frames, DescriptorMode::kRsBrief, "fig9_rsbrief.tum");
  const std::vector<SE3> orb =
      run_mode(seq, frames, DescriptorMode::kOrbLut, "fig9_original_orb.tum");
  const std::vector<SE3>& gt = seq.ground_truth();

  const auto rs_aligned = aligned_positions(rs, gt);
  const auto orb_aligned = aligned_positions(orb, gt);

  Table t({"frame", "gt x", "gt z", "RS-BRIEF x", "RS-BRIEF z",
           "origORB x", "origORB z"});
  for (int i = 0; i < seq.size(); i += std::max(1, seq.size() / 12)) {
    const auto k = static_cast<std::size_t>(i);
    t.add_row({std::to_string(i), Table::fmt(gt[k].translation()[0], 3),
               Table::fmt(gt[k].translation()[2], 3),
               Table::fmt(rs_aligned[k][0], 3), Table::fmt(rs_aligned[k][2], 3),
               Table::fmt(orb_aligned[k][0], 3),
               Table::fmt(orb_aligned[k][2], 3)});
  }
  t.print();

  const AteResult ate_rs = absolute_trajectory_error(rs, gt);
  const AteResult ate_orb = absolute_trajectory_error(orb, gt);
  std::printf("\nmean ATE: RS-BRIEF %.2f cm, original ORB %.2f cm\n",
              ate_rs.mean * 100, ate_orb.mean * 100);

  ImageRgb canvas(480, 480);
  canvas.fill(Rgb{18, 18, 22});
  std::vector<Vec3> gt_t;
  for (const SE3& p : gt) gt_t.push_back(p.translation());
  plot(canvas, gt_t, Rgb{240, 240, 240});
  plot(canvas, rs_aligned, Rgb{90, 220, 90});
  plot(canvas, orb_aligned, Rgb{240, 150, 60});
  write_ppm("fig9_trajectories.ppm", canvas);
  std::printf("wrote fig9_trajectories.ppm (white: ground truth, green:\n"
              "RS-BRIEF, orange: original ORB) and fig9_*.tum files.\n"
              "Shape to check: both estimates hug the ground truth; the two\n"
              "descriptors are visually indistinguishable (paper Fig. 9).\n");
  return 0;
}
