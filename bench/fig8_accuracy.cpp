// Regenerates Figure 8: average trajectory error of the SLAM system with
// RS-BRIEF vs the original ORB descriptor across the five evaluation
// sequences (synthetic stand-ins for the TUM recordings; see DESIGN.md).
//
//   ./fig8_accuracy [frames_per_sequence]   (default 60)
#include <cstdlib>

#include "bench_util.h"
#include "eval/ate.h"

namespace {

using namespace eslam;

double run_mode(const SyntheticSequence& seq,
                const std::vector<FrameInput>& frames, DescriptorMode mode) {
  SystemConfig cfg;
  cfg.platform = Platform::kSoftware;
  cfg.descriptor = mode;
  System slam(seq.camera(), cfg);
  for (const FrameInput& f : frames) slam.process(f);
  std::vector<SE3> gt(seq.ground_truth().begin(),
                      seq.ground_truth().begin() +
                          static_cast<std::ptrdiff_t>(frames.size()));
  return absolute_trajectory_error(slam.poses(), gt).mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eslam;
  using namespace eslam::bench;
  print_header("Figure 8: average trajectory error, RS-BRIEF vs original ORB",
               "Figure 8");

  SequenceOptions opts;
  opts.frames = argc > 1 ? std::atoi(argv[1]) : 60;
  if (opts.frames < 10) opts.frames = 10;
  std::printf("%d frames per sequence, software pipeline, synthetic"
              " sequences\n\n", opts.frames);

  // Paper's Figure 8 values (cm), read from the bar chart.
  struct PaperRef {
    const char* name;
    double rs, orb;
  };
  const PaperRef paper[] = {{"fr1/xyz", 2.5, 1.5},
                            {"fr2/xyz", 2.0, 1.2},
                            {"fr1/desk", 3.0, 3.7},
                            {"fr1/room", 10.5, 10.0},
                            {"fr2/rpy", 3.5, 4.5}};

  Table t({"sequence", "RS-BRIEF (cm)", "original ORB (cm)",
           "paper RS (cm)", "paper ORB (cm)"});
  double sum_rs = 0, sum_orb = 0;
  const auto& ids = evaluation_sequences();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SyntheticSequence seq(ids[i], opts);
    const auto frames = render_all(seq);  // render once, run both modes
    const double rs = run_mode(seq, frames, DescriptorMode::kRsBrief) * 100;
    const double orb = run_mode(seq, frames, DescriptorMode::kOrbLut) * 100;
    sum_rs += rs;
    sum_orb += orb;
    t.add_row({seq.name(), Table::fmt(rs, 2), Table::fmt(orb, 2),
               Table::fmt(paper[i].rs, 1), Table::fmt(paper[i].orb, 1)});
    std::printf("  %s done\n", seq.name().c_str());
  }
  t.add_separator();
  t.add_row({"AVERAGE", Table::fmt(sum_rs / 5, 2), Table::fmt(sum_orb / 5, 2),
             "4.3", "4.16"});
  std::printf("\n");
  t.print();

  std::printf(
      "\nShape to check (paper section 4.2): RS-BRIEF accuracy is\n"
      "*comparable* to the original ORB descriptor — each wins on some\n"
      "sequences, and the averages sit within a fraction of a cm.\n"
      "Absolute values differ from the paper because the sequences are\n"
      "synthetic stand-ins for TUM (see DESIGN.md).\n");
  return 0;
}
