// BRIEF test-location patterns: the original random pattern with the
// 30-angle steering LUT of ORB [8], and the paper's 32-fold rotationally
// symmetric RS-BRIEF pattern (section 2.2).
//
// RS-BRIEF construction: 8 S-locations and 8 D-locations are drawn from a
// Gaussian inside the radius-15 patch, then each set is rotated by every
// multiple of 11.25 degrees, giving 32 groups x 8 pairs = 256 tests.  Bit
// j*8+i is (group j, seed i).  Rotating the whole pattern by n increments
// maps group j onto group (j+n) mod 32 *exactly* (rotation is applied to
// the continuous seeds before rounding), so steering the descriptor is a
// byte rotation — the property that makes the descriptor hardware-friendly.
#pragma once

#include <array>
#include <cstdint>

#include "geometry/assert.h"

namespace eslam {

struct TestLocation {
  std::int8_t x = 0, y = 0;
  friend bool operator==(const TestLocation&, const TestLocation&) = default;
};
struct TestPair {
  TestLocation s, d;
  friend bool operator==(const TestPair&, const TestPair&) = default;
};
using Pattern256 = std::array<TestPair, 256>;

inline constexpr std::uint32_t kDefaultPatternSeed = 0x0e51a301u;

// Largest |coordinate| any pattern location may take; keeps every location
// inside the radius-15 patch for all rotations.
inline constexpr int kPatternRadius = 15;

// The paper's RS-BRIEF pattern.
class RsBriefPattern {
 public:
  static constexpr int kSeedPairs = 8;
  static constexpr int kFold = 32;  // rotational symmetry order
  static constexpr double kStepDegrees = 360.0 / kFold;

  explicit RsBriefPattern(std::uint32_t seed = kDefaultPatternSeed);

  // Pattern at orientation label 0.
  const Pattern256& base() const { return base_; }

  // Pattern steered to orientation label n: pure group reindexing, no
  // arithmetic (what "rotating the test locations" costs with RS-BRIEF).
  Pattern256 steered(int label) const;

 private:
  Pattern256 base_;
};

// The original ORB approach: one random pattern plus a lookup table of 30
// pre-rotated copies (12-degree bins).
class OriginalBriefPattern {
 public:
  static constexpr int kLutBins = 30;
  static constexpr double kBinDegrees = 360.0 / kLutBins;  // 12 degrees

  explicit OriginalBriefPattern(std::uint32_t seed = kDefaultPatternSeed);

  const Pattern256& base() const { return lut_[0]; }

  // Pre-rotated pattern for LUT bin b (b in [0, 30)).
  const Pattern256& steered_lut(int bin) const {
    ESLAM_ASSERT(bin >= 0 && bin < kLutBins, "LUT bin out of range");
    return lut_[static_cast<std::size_t>(bin)];
  }

  // Nearest LUT bin for a continuous angle (radians).
  static int lut_bin(double angle_radians);

  // Exact steering: rotates the continuous base pattern by `angle_radians`
  // and rounds (Eq. 2 evaluated per location — the expensive path the
  // paper's LUT and RS-BRIEF both avoid).
  Pattern256 steered_exact(double angle_radians) const;

  // Memory the steering LUT occupies (the FPGA-resource cost RS-BRIEF
  // eliminates): bins * 256 pairs * 4 coordinate bytes.
  static constexpr std::size_t lut_bytes() {
    return static_cast<std::size_t>(kLutBins) * 256 * sizeof(TestPair);
  }

 private:
  // Continuous seed locations kept for steered_exact().
  std::array<double, 256> sx_, sy_, dx_, dy_;
  std::array<Pattern256, kLutBins> lut_;
};

}  // namespace eslam
