#include "features/orb.h"

#include <algorithm>
#include <cmath>

#include "features/harris.h"
#include "features/nms.h"
#include "features/orientation.h"
#include "image/convolve.h"

namespace eslam {

OrbExtractor::OrbExtractor(const OrbConfig& config)
    : config_(config),
      rs_pattern_(kDefaultPatternSeed),
      orb_pattern_(kDefaultPatternSeed) {
  ESLAM_ASSERT(config_.n_features > 0, "n_features must be positive");
  ESLAM_ASSERT(config_.levels >= 1, "need at least one pyramid level");
  ESLAM_ASSERT(config_.border >= kPatternRadius + 1,
               "border must cover the descriptor patch");
}

FeatureList OrbExtractor::extract(const ImageU8& image) {
  FeatureList all;
  extract_into(image, all);
  return all;
}

void OrbExtractor::extract_into(const ImageU8& image, FeatureList& out) {
  stats_ = {};
  out.clear();
  pyramid_.rebuild(image, config_.levels, config_.scale);

  for (int level = 0; level < pyramid_.levels(); ++level) {
    const ImageU8& img = pyramid_.level(level).image;
    const double level_scale = pyramid_.level(level).scale;
    if (img.width() <= 2 * config_.border || img.height() <= 2 * config_.border)
      continue;

    // FAST detection + Harris scoring on the raw level image.
    detect_fast_into(img, config_.fast_threshold, config_.border, raw_kps_);
    for (Keypoint& kp : raw_kps_) {
      kp.level = level;
      kp.scale = level_scale;
      kp.score = harris_score_int(img, kp.x, kp.y);
    }
    nms_3x3_into(raw_kps_, img.width(), img.height(), nms_grid_, nms_kps_);
    stats_.detected += static_cast<int>(nms_kps_.size());

    // Descriptors and orientations use the smoothened image.
    smooth_gaussian7_u8_into(img, smooth_tmp_, smoothed_);
    const ImageU8& smoothed = smoothed_;
    for (const Keypoint& kp_in : nms_kps_) {
      Keypoint kp = kp_in;
      kp.angle = orientation_angle(smoothed, kp.x, kp.y);
      kp.orientation_label = discretize_orientation(kp.angle);

      Feature f;
      switch (config_.mode) {
        case DescriptorMode::kRsBrief:
          f.descriptor = rs_brief_descriptor(smoothed, kp.x, kp.y, rs_pattern_,
                                             kp.orientation_label);
          break;
        case DescriptorMode::kOrbLut:
          f.descriptor =
              orb_descriptor_lut(smoothed, kp.x, kp.y, orb_pattern_, kp.angle);
          break;
        case DescriptorMode::kOrbExact:
          f.descriptor = orb_descriptor_exact(smoothed, kp.x, kp.y,
                                              orb_pattern_, kp.angle);
          break;
      }
      f.keypoint = kp;
      out.push_back(std::move(f));
      ++stats_.described;
    }
  }

  // Filtering: keep the n_features best Harris scores across all levels
  // (what the 1024-entry heap does in hardware).
  if (static_cast<int>(out.size()) > config_.n_features) {
    std::nth_element(out.begin(), out.begin() + config_.n_features, out.end(),
                     [](const Feature& a, const Feature& b) {
                       return a.keypoint.score > b.keypoint.score;
                     });
    out.resize(static_cast<std::size_t>(config_.n_features));
  }
  stats_.kept = static_cast<int>(out.size());
}

}  // namespace eslam
