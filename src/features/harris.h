// Harris corner response.
//
// The paper's FAST Detection module computes a Harris score per detected
// keypoint; it is the ranking key of the 1024-entry filtering heap.  The
// integer implementation here (Sobel gradients over a 7x7 block, k = 41/1024
// ~ 0.04) is the one the HW model reuses bit-for-bit; a floating-point
// reference (k = 0.04 exactly) backs the accuracy tests.
#pragma once

#include <cstdint>

#include "image/image.h"

namespace eslam {

inline constexpr int kHarrisBlock = 7;  // 7x7 gradient window

// Integer Harris response at (x, y); requires a 4-pixel border (3 for the
// block + 1 for Sobel).  Response = det(M) - (41/1024) * trace(M)^2 where
// M accumulates Sobel gradients over the block; gradients are right-shifted
// by 3 before accumulation to keep products in 64-bit range, matching the
// DSP-width-limited hardware datapath.
std::int64_t harris_score_int(const ImageU8& img, int x, int y);

// Floating-point reference with k = 0.04 on the same window.
double harris_score_ref(const ImageU8& img, int x, int y);

}  // namespace eslam
