// Intensity-centroid orientation (paper Eq. 3).
//
// The orientation of a feature is the angle of the vector from the patch
// center to the intensity centroid of the radius-15 circular patch, computed
// on the smoothened image.  The software path keeps the continuous angle;
// the accelerator (accel/orientation_hw) discretizes into 32 labels of
// 11.25 degrees using a v/u lookup table — discretize_orientation() is the
// reference for that quantization.
#pragma once

#include <cstdint>

#include "image/image.h"

namespace eslam {

inline constexpr int kPatchRadius = 15;
inline constexpr int kOrientationBins = 32;
inline constexpr double kOrientationStepDeg = 360.0 / kOrientationBins;  // 11.25

// Horizontal half-spans of the radius-15 disc, row dy in [-15, 15]:
// pixels (dx, dy) with |dx| <= circle_span(|dy|) are inside the patch.
int circle_span(int abs_dy);

// Raw image moments (m10 = sum I*x, m01 = sum I*y) over the circular patch
// centred at (x, y).  Requires kPatchRadius-pixel borders.
void patch_moments(const ImageU8& img, int x, int y, std::int64_t& m10,
                   std::int64_t& m01);

// Continuous orientation in radians, range (-pi, pi].
double orientation_angle(const ImageU8& img, int x, int y);

// Nearest of the 32 discrete orientations for a continuous angle.
int discretize_orientation(double angle_radians);

}  // namespace eslam
