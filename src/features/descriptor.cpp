#include "features/descriptor.h"

#include <cstdio>

namespace eslam {

std::string Descriptor256::to_hex() const {
  std::string s;
  s.reserve(64);
  char buf[17];
  for (int w = kWords - 1; w >= 0; --w) {
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(words_[w]));
    s += buf;
  }
  return s;
}

}  // namespace eslam
