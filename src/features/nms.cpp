#include "features/nms.h"

#include <unordered_map>

#include "geometry/assert.h"

namespace eslam {

std::vector<Keypoint> nms_3x3(const std::vector<Keypoint>& keypoints,
                              int width, int height) {
  // Sparse score grid: keypoint density after FAST is typically << 1%, so a
  // hash map beats a dense score image.
  std::unordered_map<std::int64_t, std::size_t> grid;
  grid.reserve(keypoints.size() * 2);
  auto key = [width](int x, int y) {
    return static_cast<std::int64_t>(y) * width + x;
  };
  for (std::size_t i = 0; i < keypoints.size(); ++i) {
    const Keypoint& kp = keypoints[i];
    ESLAM_ASSERT(kp.x >= 0 && kp.x < width && kp.y >= 0 && kp.y < height,
                 "keypoint outside grid");
    grid.emplace(key(kp.x, kp.y), i);
  }

  std::vector<Keypoint> out;
  out.reserve(keypoints.size());
  for (std::size_t i = 0; i < keypoints.size(); ++i) {
    const Keypoint& kp = keypoints[i];
    bool is_max = true;
    for (int dy = -1; dy <= 1 && is_max; ++dy)
      for (int dx = -1; dx <= 1 && is_max; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const auto it = grid.find(key(kp.x + dx, kp.y + dy));
        if (it == grid.end()) continue;
        const Keypoint& other = keypoints[it->second];
        // Strictly greater neighbour wins; equal score resolves by raster
        // order (earlier keypoint survives).
        if (other.score > kp.score ||
            (other.score == kp.score && it->second < i))
          is_max = false;
      }
    if (is_max) out.push_back(kp);
  }
  return out;
}

void nms_3x3_into(const std::vector<Keypoint>& keypoints, int width,
                  int height, NmsScratch& scratch,
                  std::vector<Keypoint>& out) {
  out.clear();
  const std::int64_t cells =
      static_cast<std::int64_t>(width) * height;
  if (static_cast<std::int64_t>(scratch.grid.size()) < cells)
    scratch.grid.assign(static_cast<std::size_t>(cells), -1);
  std::vector<std::int32_t>& grid = scratch.grid;
  auto key = [width](int x, int y) {
    return static_cast<std::int64_t>(y) * width + x;
  };
  // First keypoint at a pixel wins, matching the hash map's emplace.
  for (std::size_t i = 0; i < keypoints.size(); ++i) {
    const Keypoint& kp = keypoints[i];
    ESLAM_ASSERT(kp.x >= 0 && kp.x < width && kp.y >= 0 && kp.y < height,
                 "keypoint outside grid");
    std::int32_t& cell = grid[static_cast<std::size_t>(key(kp.x, kp.y))];
    if (cell < 0) cell = static_cast<std::int32_t>(i);
  }

  out.reserve(keypoints.size());
  for (std::size_t i = 0; i < keypoints.size(); ++i) {
    const Keypoint& kp = keypoints[i];
    bool is_max = true;
    for (int dy = -1; dy <= 1 && is_max; ++dy)
      for (int dx = -1; dx <= 1 && is_max; ++dx) {
        if (dx == 0 && dy == 0) continue;
        // Same linear-key arithmetic as the hash-map path (including its
        // row-wrap aliasing at x = 0 / x = width-1); keys outside [0,
        // cells) were never inserted there, so they are skipped here.
        const std::int64_t k = key(kp.x + dx, kp.y + dy);
        if (k < 0 || k >= cells) continue;
        const std::int32_t j = grid[static_cast<std::size_t>(k)];
        if (j < 0) continue;
        const Keypoint& other = keypoints[static_cast<std::size_t>(j)];
        if (other.score > kp.score ||
            (other.score == kp.score &&
             static_cast<std::size_t>(j) < i))
          is_max = false;
      }
    if (is_max) out.push_back(kp);
  }

  // Restore the touched cells so the next call starts empty.
  for (const Keypoint& kp : keypoints)
    grid[static_cast<std::size_t>(key(kp.x, kp.y))] = -1;
}

}  // namespace eslam
