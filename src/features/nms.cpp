#include "features/nms.h"

#include <unordered_map>

#include "geometry/assert.h"

namespace eslam {

std::vector<Keypoint> nms_3x3(const std::vector<Keypoint>& keypoints,
                              int width, int height) {
  // Sparse score grid: keypoint density after FAST is typically << 1%, so a
  // hash map beats a dense score image.
  std::unordered_map<std::int64_t, std::size_t> grid;
  grid.reserve(keypoints.size() * 2);
  auto key = [width](int x, int y) {
    return static_cast<std::int64_t>(y) * width + x;
  };
  for (std::size_t i = 0; i < keypoints.size(); ++i) {
    const Keypoint& kp = keypoints[i];
    ESLAM_ASSERT(kp.x >= 0 && kp.x < width && kp.y >= 0 && kp.y < height,
                 "keypoint outside grid");
    grid.emplace(key(kp.x, kp.y), i);
  }

  std::vector<Keypoint> out;
  out.reserve(keypoints.size());
  for (std::size_t i = 0; i < keypoints.size(); ++i) {
    const Keypoint& kp = keypoints[i];
    bool is_max = true;
    for (int dy = -1; dy <= 1 && is_max; ++dy)
      for (int dx = -1; dx <= 1 && is_max; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const auto it = grid.find(key(kp.x + dx, kp.y + dy));
        if (it == grid.end()) continue;
        const Keypoint& other = keypoints[it->second];
        // Strictly greater neighbour wins; equal score resolves by raster
        // order (earlier keypoint survives).
        if (other.score > kp.score ||
            (other.score == kp.score && it->second < i))
          is_max = false;
      }
    if (is_max) out.push_back(kp);
  }
  return out;
}

}  // namespace eslam
