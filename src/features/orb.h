// Software ORB extractor: the end-to-end reference pipeline
// (pyramid -> FAST -> Harris -> NMS -> orientation -> descriptor -> top-N),
// configurable between the paper's RS-BRIEF and the original ORB descriptor.
// This is the "software implementation" the paper times on ARM/Intel; the
// bit-faithful FPGA pipeline lives in accel/orb_extractor_hw.
#pragma once

#include <vector>

#include "features/brief.h"
#include "features/fast.h"
#include "features/keypoint.h"
#include "features/nms.h"
#include "image/pyramid.h"

namespace eslam {

enum class DescriptorMode {
  kRsBrief,    // paper's rotationally symmetric pattern + byte rotation
  kOrbLut,     // original ORB: 30-angle pre-rotated pattern LUT
  kOrbExact,   // original BRIEF with exact per-feature rotation (Eq. 2)
};

struct OrbConfig {
  int n_features = 1024;        // heap capacity in the paper
  int fast_threshold = kFastDefaultThreshold;
  int levels = kPyramidLevels;  // 4-layer pyramid
  double scale = kPyramidScale; // 1.2
  DescriptorMode mode = DescriptorMode::kRsBrief;
  // Border inside which no keypoint is accepted; covers the FAST circle,
  // the Harris window and the radius-15 descriptor/orientation patch.
  int border = kPatternRadius + 1;
};

struct OrbExtractionStats {
  int detected = 0;    // M: FAST corners surviving NMS, all levels
  int described = 0;   // descriptors computed (== detected when rescheduled)
  int kept = 0;        // N: features after top-N filtering
};

class OrbExtractor {
 public:
  explicit OrbExtractor(const OrbConfig& config = {});

  // Extracts features from a grayscale frame.  Stats from the last call are
  // available via last_stats().
  FeatureList extract(const ImageU8& image);

  // Same output into a recycled FeatureList.  The extractor recycles its
  // pyramid, keypoint, NMS-grid, and smoothing buffers across calls, so a
  // steady-state extraction performs zero heap allocations.  Not
  // reentrant (the scratch is per-extractor state, like stats_).
  void extract_into(const ImageU8& image, FeatureList& out);

  const OrbConfig& config() const { return config_; }
  const OrbExtractionStats& last_stats() const { return stats_; }

  const RsBriefPattern& rs_pattern() const { return rs_pattern_; }
  const OriginalBriefPattern& orb_pattern() const { return orb_pattern_; }

 private:
  OrbConfig config_;
  RsBriefPattern rs_pattern_;
  OriginalBriefPattern orb_pattern_;
  OrbExtractionStats stats_;
  // Per-frame scratch, reused across extract_into() calls.
  ImagePyramid pyramid_;
  std::vector<Keypoint> raw_kps_;
  std::vector<Keypoint> nms_kps_;
  NmsScratch nms_grid_;
  Image<std::uint16_t> smooth_tmp_;
  ImageU8 smoothed_;
};

}  // namespace eslam
