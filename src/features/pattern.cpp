#include "features/pattern.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace eslam {

namespace {

// Deterministic Gaussian sampler: mt19937 is fully specified by the
// standard, and Box-Muller avoids the implementation-defined
// std::normal_distribution, so patterns are identical on every platform.
class GaussianSampler {
 public:
  explicit GaussianSampler(std::uint32_t seed) : rng_(seed) {}

  double next(double sigma) {
    if (have_spare_) {
      have_spare_ = false;
      return spare_ * sigma;
    }
    double u1, u2;
    do {
      u1 = uniform();
    } while (u1 <= 1e-12);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2) * sigma;
  }

  // Gaussian 2D point with norm clamped into the pattern disc so that all
  // 32 rotations stay inside the radius-15 patch.
  void next_point(double sigma, double& x, double& y) {
    do {
      x = next(sigma);
      y = next(sigma);
    } while (std::hypot(x, y) > kPatternRadius - 0.5);
  }

 private:
  double uniform() {
    return static_cast<double>(rng_()) / 4294967296.0;  // [0,1)
  }
  std::mt19937 rng_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

// BRIEF sampling sigma from the original paper: patch_size/5.
constexpr double kSamplingSigma = 31.0 / 5.0;

TestLocation round_location(double x, double y) {
  const auto clamp8 = [](double v) {
    const long r = std::lround(v);
    return static_cast<std::int8_t>(
        std::clamp(r, -long{kPatternRadius}, long{kPatternRadius}));
  };
  return TestLocation{clamp8(x), clamp8(y)};
}

// Eq. 2 of the paper.
void rotate(double x, double y, double angle, double& xr, double& yr) {
  const double c = std::cos(angle), s = std::sin(angle);
  xr = x * c - y * s;
  yr = y * c + x * s;
}

}  // namespace

RsBriefPattern::RsBriefPattern(std::uint32_t seed) {
  GaussianSampler sampler(seed);
  std::array<double, kSeedPairs> sx, sy, dx, dy;
  for (int i = 0; i < kSeedPairs; ++i) {
    sampler.next_point(kSamplingSigma, sx[i], sy[i]);
    sampler.next_point(kSamplingSigma, dx[i], dy[i]);
  }
  const double step = kStepDegrees * M_PI / 180.0;
  for (int j = 0; j < kFold; ++j) {
    const double angle = j * step;
    for (int i = 0; i < kSeedPairs; ++i) {
      double xr, yr;
      rotate(sx[i], sy[i], angle, xr, yr);
      TestPair& pair = base_[static_cast<std::size_t>(j) * kSeedPairs + i];
      pair.s = round_location(xr, yr);
      rotate(dx[i], dy[i], angle, xr, yr);
      pair.d = round_location(xr, yr);
    }
  }
}

Pattern256 RsBriefPattern::steered(int label) const {
  ESLAM_ASSERT(label >= 0 && label < kFold, "orientation label out of range");
  Pattern256 out;
  for (int j = 0; j < kFold; ++j) {
    const int src_group = (j + label) % kFold;
    for (int i = 0; i < kSeedPairs; ++i)
      out[static_cast<std::size_t>(j) * kSeedPairs + i] =
          base_[static_cast<std::size_t>(src_group) * kSeedPairs + i];
  }
  return out;
}

OriginalBriefPattern::OriginalBriefPattern(std::uint32_t seed) {
  GaussianSampler sampler(seed);
  for (int i = 0; i < 256; ++i) {
    sampler.next_point(kSamplingSigma, sx_[i], sy_[i]);
    sampler.next_point(kSamplingSigma, dx_[i], dy_[i]);
  }
  for (int b = 0; b < kLutBins; ++b) {
    const double angle = b * kBinDegrees * M_PI / 180.0;
    for (int i = 0; i < 256; ++i) {
      double xr, yr;
      rotate(sx_[i], sy_[i], angle, xr, yr);
      lut_[b][i].s = round_location(xr, yr);
      rotate(dx_[i], dy_[i], angle, xr, yr);
      lut_[b][i].d = round_location(xr, yr);
    }
  }
}

int OriginalBriefPattern::lut_bin(double angle_radians) {
  const double step = kBinDegrees * M_PI / 180.0;
  const int n = static_cast<int>(std::lround(angle_radians / step));
  return ((n % kLutBins) + kLutBins) % kLutBins;
}

Pattern256 OriginalBriefPattern::steered_exact(double angle_radians) const {
  Pattern256 out;
  for (int i = 0; i < 256; ++i) {
    double xr, yr;
    rotate(sx_[i], sy_[i], angle_radians, xr, yr);
    out[i].s = round_location(xr, yr);
    rotate(dx_[i], dy_[i], angle_radians, xr, yr);
    out[i].d = round_location(xr, yr);
  }
  return out;
}

}  // namespace eslam
