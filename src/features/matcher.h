// Hamming matching kernels — the software counterparts of the BRIEF
// Matcher module.  Two tiers:
//
//   * match_descriptors(): brute force — for every query descriptor, scan
//     all train descriptors, keep the minimum-distance candidate (paper
//     section 3.2).  This is the bootstrap/relocalization/fallback tier.
//   * match_candidates(): windowed search — each query scans only its
//     candidate list (built by the slam/match_gate projection gate), with
//     identical acceptance semantics (max_distance, ratio, cross-check)
//     restricted to the candidate graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/arena.h"
#include "features/descriptor.h"
#include "features/descriptor_soa.h"
#include "features/keypoint.h"

namespace eslam {

struct Match {
  int query = -1;       // index into the query set
  int train = -1;       // index into the train set (global map)
  int distance = 256;   // Hamming distance of the winning pair
  int second_best = 256;  // runner-up distance (for the ratio test)
};

struct MatcherOptions {
  // Accept only matches at or below this Hamming distance.  64/256 bits is
  // the usual ORB operating point.
  int max_distance = 64;
  // Lowe-style ratio test: require distance < ratio * second_best.
  // Disabled when >= 1.
  double ratio = 1.0;
  // Keep a match only when the reverse direction agrees: train's best
  // query is query as well, AND that back match passes the ratio test on
  // its own (query-side) runner-up.  The check is symmetric: a back match
  // the matcher would reject as a forward match cannot confirm anything.
  // (max_distance needs no back-side gate — the agreed pair's distance is
  // one symmetric Hamming value, already gated on the forward side.)
  bool cross_check = false;
};

// Per-query candidate lists in CSR form: the candidates of query q are
// train indices indices[offsets[q] .. offsets[q+1]).  Producers must emit
// each list in ascending train-index order — minimum-distance ties then
// resolve to the lowest train index, exactly as the brute-force scan does,
// so a candidate list covering the true match yields the same winner.
struct CandidateSet {
  std::vector<std::int32_t> indices;
  std::vector<std::int32_t> offsets;  // size num_queries + 1 (or empty)

  std::size_t num_queries() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t total_candidates() const { return indices.size(); }
  std::span<const std::int32_t> candidates(std::size_t q) const {
    return std::span<const std::int32_t>(indices)
        .subspan(static_cast<std::size_t>(offsets[q]),
                 static_cast<std::size_t>(offsets[q + 1] - offsets[q]));
  }
};

// Returns matches for each query that passes the filters, ordered by query
// index.  O(|queries| * |train|), exactly the work the HW matcher arrays.
std::vector<Match> match_descriptors(std::span<const Descriptor256> queries,
                                     std::span<const Descriptor256> train,
                                     const MatcherOptions& options = {});

// Windowed tier: like match_descriptors() but each query only scans its
// candidate list.  candidates.num_queries() must equal queries.size().
// The ratio test's runner-up is the second-best *candidate*; cross-check
// confirms against the best query among those listing the winning train
// point (the brute-force semantics restricted to the candidate graph).
// O(total_candidates) Hamming comparisons.
std::vector<Match> match_candidates(std::span<const Descriptor256> queries,
                                    std::span<const Descriptor256> train,
                                    const CandidateSet& candidates,
                                    const MatcherOptions& options = {});

// Single query against the train set (min + second-min distances).
Match match_one(const Descriptor256& query,
                std::span<const Descriptor256> train);

// Single query against a candidate list (indices into `train`, ascending).
// m.train is a train index, not a list position.
Match match_one_candidates(const Descriptor256& query,
                           std::span<const Descriptor256> train,
                           std::span<const std::int32_t> candidates);

// ---- Zero-allocation / SIMD tier ------------------------------------------
//
// The _into variants are the steady-state hot path: queries come straight
// from the frame's FeatureList (no staging copy of descriptors), train
// descriptors are read through the SoA word planes with the vectorized
// Hamming kernels when available, and all scratch lives in the caller's
// arena.  Output semantics are bit-identical to the AoS functions above
// (same distances, same lowest-index tie winners, same acceptance order) —
// the tests in tests/features/simd_parity_test.cpp hold the two tiers
// equal on randomized inputs.

// Both views describe the same descriptor sequence; `soa` may be null, in
// which case the AoS span is scanned pair-at-a-time (scalar fallback).
struct TrainView {
  std::span<const Descriptor256> aos;
  const DescriptorSoA* soa = nullptr;

  std::size_t size() const { return aos.size(); }
  bool empty() const { return aos.empty(); }
};

// Brute-force tier into a recycled output vector.  `scratch` may be null
// (an internal thread-local arena is used).
void match_descriptors_into(std::span<const Feature> queries,
                            const TrainView& train,
                            const MatcherOptions& options, Arena* scratch,
                            std::vector<Match>& out);

// Windowed tier into a recycled output vector.
void match_candidates_into(std::span<const Feature> queries,
                           const TrainView& train,
                           const CandidateSet& candidates,
                           const MatcherOptions& options, Arena* scratch,
                           std::vector<Match>& out);

}  // namespace eslam
