// Brute-force Hamming matcher — the software counterpart of the BRIEF
// Matcher module: for every query descriptor, scan all train descriptors,
// keep the minimum-distance candidate (paper section 3.2).
#pragma once

#include <span>
#include <vector>

#include "features/descriptor.h"

namespace eslam {

struct Match {
  int query = -1;       // index into the query set
  int train = -1;       // index into the train set (global map)
  int distance = 256;   // Hamming distance of the winning pair
  int second_best = 256;  // runner-up distance (for the ratio test)
};

struct MatcherOptions {
  // Accept only matches at or below this Hamming distance.  64/256 bits is
  // the usual ORB operating point.
  int max_distance = 64;
  // Lowe-style ratio test: require distance < ratio * second_best.
  // Disabled when >= 1.
  double ratio = 1.0;
  // Keep a match only when the reverse direction agrees: train's best
  // query is query as well, AND that back match passes the ratio test on
  // its own (query-side) runner-up.  The check is symmetric: a back match
  // the matcher would reject as a forward match cannot confirm anything.
  // (max_distance needs no back-side gate — the agreed pair's distance is
  // one symmetric Hamming value, already gated on the forward side.)
  bool cross_check = false;
};

// Returns matches for each query that passes the filters, ordered by query
// index.  O(|queries| * |train|), exactly the work the HW matcher arrays.
std::vector<Match> match_descriptors(std::span<const Descriptor256> queries,
                                     std::span<const Descriptor256> train,
                                     const MatcherOptions& options = {});

// Single query against the train set (min + second-min distances).
Match match_one(const Descriptor256& query,
                std::span<const Descriptor256> train);

}  // namespace eslam
