#include "features/brief.h"

namespace eslam {

Descriptor256 compute_descriptor(const ImageU8& smoothed, int x, int y,
                                 const Pattern256& pattern) {
  ESLAM_ASSERT(x >= kPatternRadius && y >= kPatternRadius &&
                   x < smoothed.width() - kPatternRadius &&
                   y < smoothed.height() - kPatternRadius,
               "descriptor patch out of bounds");
  Descriptor256 d;
  for (int i = 0; i < 256; ++i) {
    const TestPair& p = pattern[static_cast<std::size_t>(i)];
    const int is = smoothed.at(x + p.s.x, y + p.s.y);
    const int id = smoothed.at(x + p.d.x, y + p.d.y);
    d.set_bit(i, is > id);
  }
  return d;
}

Descriptor256 rs_brief_descriptor(const ImageU8& smoothed, int x, int y,
                                  const RsBriefPattern& pattern, int label) {
  // Compute once at label 0, steer with the barrel shift — this is the
  // entire cost the BRIEF Rotator pays per feature.
  return compute_descriptor(smoothed, x, y, pattern.base())
      .rotated_bytes(label);
}

Descriptor256 orb_descriptor_lut(const ImageU8& smoothed, int x, int y,
                                 const OriginalBriefPattern& pattern,
                                 double angle_radians) {
  const int bin = OriginalBriefPattern::lut_bin(angle_radians);
  return compute_descriptor(smoothed, x, y, pattern.steered_lut(bin));
}

Descriptor256 orb_descriptor_exact(const ImageU8& smoothed, int x, int y,
                                   const OriginalBriefPattern& pattern,
                                   double angle_radians) {
  return compute_descriptor(smoothed, x, y,
                            pattern.steered_exact(angle_radians));
}

}  // namespace eslam
