// Descriptor computation from a test pattern and the smoothened image,
// plus the two steering strategies under comparison:
//   * RS-BRIEF: compute at label 0, then byte-rotate (BRIEF Rotator).
//   * Original ORB: pick a pre-rotated pattern from the 30-bin LUT.
#pragma once

#include "features/descriptor.h"
#include "features/pattern.h"
#include "image/image.h"

namespace eslam {

// Evaluates the 256 intensity tests of `pattern` on the smoothened image
// around (x, y).  Bit i = 1 iff I(x + s_i) > I(x + d_i).  The caller must
// keep a kPatternRadius border.
Descriptor256 compute_descriptor(const ImageU8& smoothed, int x, int y,
                                 const Pattern256& pattern);

// RS-BRIEF steered descriptor: unsteered descriptor rotated by the
// orientation label (equals compute_descriptor with pattern.steered(label);
// property-tested in tests/features/rsbrief_test.cpp).
Descriptor256 rs_brief_descriptor(const ImageU8& smoothed, int x, int y,
                                  const RsBriefPattern& pattern, int label);

// Original ORB steered descriptor via the 30-angle LUT.
Descriptor256 orb_descriptor_lut(const ImageU8& smoothed, int x, int y,
                                 const OriginalBriefPattern& pattern,
                                 double angle_radians);

// Exact-rotation descriptor (no discretization) — accuracy upper bound.
Descriptor256 orb_descriptor_exact(const ImageU8& smoothed, int x, int y,
                                   const OriginalBriefPattern& pattern,
                                   double angle_radians);

}  // namespace eslam
