#include "features/simd_kernels.h"

#include <bit>

#include "core/simd_dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace eslam::simd {

// ---- Scalar reference paths -----------------------------------------------

void hamming_block_scalar(const DescriptorSoA& train,
                          const Descriptor256& query, std::size_t first,
                          std::size_t count, std::uint16_t* out_dist) {
  const std::uint64_t q0 = query.words()[0];
  const std::uint64_t q1 = query.words()[1];
  const std::uint64_t q2 = query.words()[2];
  const std::uint64_t q3 = query.words()[3];
  const std::uint64_t* p0 = train.plane(0) + first;
  const std::uint64_t* p1 = train.plane(1) + first;
  const std::uint64_t* p2 = train.plane(2) + first;
  const std::uint64_t* p3 = train.plane(3) + first;
  for (std::size_t j = 0; j < count; ++j) {
    const int d = std::popcount(p0[j] ^ q0) + std::popcount(p1[j] ^ q1) +
                  std::popcount(p2[j] ^ q2) + std::popcount(p3[j] ^ q3);
    out_dist[j] = static_cast<std::uint16_t>(d);
  }
}

void hamming_gather_scalar(const DescriptorSoA& train,
                           const Descriptor256& query,
                           std::span<const std::int32_t> candidates,
                           std::uint16_t* out_dist) {
  const std::uint64_t q0 = query.words()[0];
  const std::uint64_t q1 = query.words()[1];
  const std::uint64_t q2 = query.words()[2];
  const std::uint64_t q3 = query.words()[3];
  const std::uint64_t* p0 = train.plane(0);
  const std::uint64_t* p1 = train.plane(1);
  const std::uint64_t* p2 = train.plane(2);
  const std::uint64_t* p3 = train.plane(3);
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    const auto t = static_cast<std::size_t>(candidates[j]);
    const int d = std::popcount(p0[t] ^ q0) + std::popcount(p1[t] ^ q1) +
                  std::popcount(p2[t] ^ q2) + std::popcount(p3[t] ^ q3);
    out_dist[j] = static_cast<std::uint16_t>(d);
  }
}

void project_batch_scalar(std::span<const double> xs,
                          std::span<const double> ys,
                          std::span<const double> zs, const SE3& pose_cw,
                          const PinholeCamera& camera, double margin,
                          double* out_u, double* out_v,
                          std::uint8_t* out_keep) {
  const Mat3& r = pose_cw.rotation();
  const Vec3& t = pose_cw.translation();
  const double r00 = r(0, 0), r01 = r(0, 1), r02 = r(0, 2);
  const double r10 = r(1, 0), r11 = r(1, 1), r12 = r(1, 2);
  const double r20 = r(2, 0), r21 = r(2, 1), r22 = r(2, 2);
  const double t0 = t[0], t1 = t[1], t2 = t[2];
  const double fx = camera.fx(), fy = camera.fy();
  const double cx = camera.cx(), cy = camera.cy();
  const double u_min = -margin, u_max = camera.width() + margin;
  const double v_min = -margin, v_max = camera.height() + margin;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double px = xs[i], py = ys[i], pz = zs[i];
    // Exact operation order of SE3::operator* (Mat*Vec accumulates from a
    // zero-initialised element, then the translation is added last).
    const double xc = (((0.0 + r00 * px) + r01 * py) + r02 * pz) + t0;
    const double yc = (((0.0 + r10 * px) + r11 * py) + r12 * pz) + t1;
    const double zc = (((0.0 + r20 * px) + r21 * py) + r22 * pz) + t2;
    const double u = fx * xc / zc + cx;
    const double v = fy * yc / zc + cy;
    const bool keep = zc > PinholeCamera::kMinDepth && u >= u_min &&
                      u < u_max && v >= v_min && v < v_max;
    out_u[i] = u;
    out_v[i] = v;
    out_keep[i] = keep ? 1 : 0;
  }
}

// ---- AVX2 -----------------------------------------------------------------

#if defined(__x86_64__) || defined(__i386__)
namespace {

// Nibble-LUT popcount of 4 lanes of 64 bits (Mula's algorithm): per-byte
// counts via two pshufb lookups, then horizontal sums with psadbw.
__attribute__((target("avx2"))) inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) void hamming_block_avx2(
    const DescriptorSoA& train, const Descriptor256& query, std::size_t first,
    std::size_t count, std::uint16_t* out_dist) {
  const __m256i q0 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[0]));
  const __m256i q1 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[1]));
  const __m256i q2 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[2]));
  const __m256i q3 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[3]));
  const std::uint64_t* p0 = train.plane(0) + first;
  const std::uint64_t* p1 = train.plane(1) + first;
  const std::uint64_t* p2 = train.plane(2) + first;
  const std::uint64_t* p3 = train.plane(3) + first;
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    __m256i acc = popcount_epi64(_mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p0 + j)), q0));
    acc = _mm256_add_epi64(
        acc, popcount_epi64(_mm256_xor_si256(
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p1 + j)),
                 q1)));
    acc = _mm256_add_epi64(
        acc, popcount_epi64(_mm256_xor_si256(
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p2 + j)),
                 q2)));
    acc = _mm256_add_epi64(
        acc, popcount_epi64(_mm256_xor_si256(
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p3 + j)),
                 q3)));
    alignas(32) std::uint64_t d[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(d), acc);
    out_dist[j + 0] = static_cast<std::uint16_t>(d[0]);
    out_dist[j + 1] = static_cast<std::uint16_t>(d[1]);
    out_dist[j + 2] = static_cast<std::uint16_t>(d[2]);
    out_dist[j + 3] = static_cast<std::uint16_t>(d[3]);
  }
  if (j < count)
    hamming_block_scalar(train, query, first + j, count - j, out_dist + j);
}

__attribute__((target("avx2"))) void hamming_gather_avx2(
    const DescriptorSoA& train, const Descriptor256& query,
    std::span<const std::int32_t> candidates, std::uint16_t* out_dist) {
  const __m256i q0 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[0]));
  const __m256i q1 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[1]));
  const __m256i q2 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[2]));
  const __m256i q3 = _mm256_set1_epi64x(
      static_cast<long long>(query.words()[3]));
  const auto* p0 = reinterpret_cast<const long long*>(train.plane(0));
  const auto* p1 = reinterpret_cast<const long long*>(train.plane(1));
  const auto* p2 = reinterpret_cast<const long long*>(train.plane(2));
  const auto* p3 = reinterpret_cast<const long long*>(train.plane(3));
  const std::size_t n = candidates.size();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(candidates.data() + j));
    __m256i acc = popcount_epi64(
        _mm256_xor_si256(_mm256_i32gather_epi64(p0, idx, 8), q0));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_xor_si256(
                                    _mm256_i32gather_epi64(p1, idx, 8), q1)));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_xor_si256(
                                    _mm256_i32gather_epi64(p2, idx, 8), q2)));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_xor_si256(
                                    _mm256_i32gather_epi64(p3, idx, 8), q3)));
    alignas(32) std::uint64_t d[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(d), acc);
    out_dist[j + 0] = static_cast<std::uint16_t>(d[0]);
    out_dist[j + 1] = static_cast<std::uint16_t>(d[1]);
    out_dist[j + 2] = static_cast<std::uint16_t>(d[2]);
    out_dist[j + 3] = static_cast<std::uint16_t>(d[3]);
  }
  if (j < n)
    hamming_gather_scalar(train, query, candidates.subspan(j), out_dist + j);
}

__attribute__((target("avx2"))) void project_batch_avx2(
    std::span<const double> xs, std::span<const double> ys,
    std::span<const double> zs, const SE3& pose_cw,
    const PinholeCamera& camera, double margin, double* out_u, double* out_v,
    std::uint8_t* out_keep) {
  const Mat3& r = pose_cw.rotation();
  const Vec3& t = pose_cw.translation();
  const __m256d r00 = _mm256_set1_pd(r(0, 0)), r01 = _mm256_set1_pd(r(0, 1)),
                r02 = _mm256_set1_pd(r(0, 2));
  const __m256d r10 = _mm256_set1_pd(r(1, 0)), r11 = _mm256_set1_pd(r(1, 1)),
                r12 = _mm256_set1_pd(r(1, 2));
  const __m256d r20 = _mm256_set1_pd(r(2, 0)), r21 = _mm256_set1_pd(r(2, 1)),
                r22 = _mm256_set1_pd(r(2, 2));
  const __m256d t0 = _mm256_set1_pd(t[0]), t1 = _mm256_set1_pd(t[1]),
                t2 = _mm256_set1_pd(t[2]);
  const __m256d fx = _mm256_set1_pd(camera.fx()),
                fy = _mm256_set1_pd(camera.fy());
  const __m256d cx = _mm256_set1_pd(camera.cx()),
                cy = _mm256_set1_pd(camera.cy());
  const __m256d zero = _mm256_setzero_pd();
  const __m256d min_depth = _mm256_set1_pd(PinholeCamera::kMinDepth);
  const __m256d u_min = _mm256_set1_pd(-margin);
  const __m256d u_max = _mm256_set1_pd(camera.width() + margin);
  const __m256d v_min = _mm256_set1_pd(-margin);
  const __m256d v_max = _mm256_set1_pd(camera.height() + margin);
  const std::size_t n = xs.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d px = _mm256_loadu_pd(xs.data() + i);
    const __m256d py = _mm256_loadu_pd(ys.data() + i);
    const __m256d pz = _mm256_loadu_pd(zs.data() + i);
    // Same association as the scalar path: ((0 + r*0*x) + r*1*y) + r*2*z,
    // then + t.  No FMA anywhere (bit-parity with scalar).
    __m256d xc = _mm256_add_pd(zero, _mm256_mul_pd(r00, px));
    xc = _mm256_add_pd(xc, _mm256_mul_pd(r01, py));
    xc = _mm256_add_pd(xc, _mm256_mul_pd(r02, pz));
    xc = _mm256_add_pd(xc, t0);
    __m256d yc = _mm256_add_pd(zero, _mm256_mul_pd(r10, px));
    yc = _mm256_add_pd(yc, _mm256_mul_pd(r11, py));
    yc = _mm256_add_pd(yc, _mm256_mul_pd(r12, pz));
    yc = _mm256_add_pd(yc, t1);
    __m256d zc = _mm256_add_pd(zero, _mm256_mul_pd(r20, px));
    zc = _mm256_add_pd(zc, _mm256_mul_pd(r21, py));
    zc = _mm256_add_pd(zc, _mm256_mul_pd(r22, pz));
    zc = _mm256_add_pd(zc, t2);
    const __m256d u =
        _mm256_add_pd(_mm256_div_pd(_mm256_mul_pd(fx, xc), zc), cx);
    const __m256d v =
        _mm256_add_pd(_mm256_div_pd(_mm256_mul_pd(fy, yc), zc), cy);
    // Ordered comparisons: any NaN lane fails every test, like the scalar
    // &&-chain.
    __m256d keep = _mm256_cmp_pd(zc, min_depth, _CMP_GT_OQ);
    keep = _mm256_and_pd(keep, _mm256_cmp_pd(u, u_min, _CMP_GE_OQ));
    keep = _mm256_and_pd(keep, _mm256_cmp_pd(u, u_max, _CMP_LT_OQ));
    keep = _mm256_and_pd(keep, _mm256_cmp_pd(v, v_min, _CMP_GE_OQ));
    keep = _mm256_and_pd(keep, _mm256_cmp_pd(v, v_max, _CMP_LT_OQ));
    _mm256_storeu_pd(out_u + i, u);
    _mm256_storeu_pd(out_v + i, v);
    const int mask = _mm256_movemask_pd(keep);
    out_keep[i + 0] = static_cast<std::uint8_t>(mask & 1);
    out_keep[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    out_keep[i + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    out_keep[i + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  if (i < n)
    project_batch_scalar(xs.subspan(i), ys.subspan(i), zs.subspan(i), pose_cw,
                         camera, margin, out_u + i, out_v + i, out_keep + i);
}

}  // namespace
#endif  // x86

// ---- NEON -----------------------------------------------------------------

#if defined(__aarch64__)
namespace {

void hamming_block_neon(const DescriptorSoA& train, const Descriptor256& query,
                        std::size_t first, std::size_t count,
                        std::uint16_t* out_dist) {
  const uint64x2_t q0 = vdupq_n_u64(query.words()[0]);
  const uint64x2_t q1 = vdupq_n_u64(query.words()[1]);
  const uint64x2_t q2 = vdupq_n_u64(query.words()[2]);
  const uint64x2_t q3 = vdupq_n_u64(query.words()[3]);
  const std::uint64_t* p0 = train.plane(0) + first;
  const std::uint64_t* p1 = train.plane(1) + first;
  const std::uint64_t* p2 = train.plane(2) + first;
  const std::uint64_t* p3 = train.plane(3) + first;
  std::size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    // vcnt gives per-byte counts; each byte count is at most 8 and there
    // are 4 planes, so per-byte sums stay <= 32 (no u8 overflow).
    uint8x16_t c = vcntq_u8(vreinterpretq_u8_u64(
        veorq_u64(vld1q_u64(p0 + j), q0)));
    c = vaddq_u8(c, vcntq_u8(vreinterpretq_u8_u64(
                        veorq_u64(vld1q_u64(p1 + j), q1))));
    c = vaddq_u8(c, vcntq_u8(vreinterpretq_u8_u64(
                        veorq_u64(vld1q_u64(p2 + j), q2))));
    c = vaddq_u8(c, vcntq_u8(vreinterpretq_u8_u64(
                        veorq_u64(vld1q_u64(p3 + j), q3))));
    // Pairwise-widen to per-lane (64-bit half) sums.
    const uint64x2_t lane_sums = vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(c)));
    out_dist[j + 0] = static_cast<std::uint16_t>(vgetq_lane_u64(lane_sums, 0));
    out_dist[j + 1] = static_cast<std::uint16_t>(vgetq_lane_u64(lane_sums, 1));
  }
  if (j < count)
    hamming_block_scalar(train, query, first + j, count - j, out_dist + j);
}

void hamming_gather_neon(const DescriptorSoA& train, const Descriptor256& query,
                         std::span<const std::int32_t> candidates,
                         std::uint16_t* out_dist) {
  // No gather instruction on NEON: load lanes individually, then share the
  // vector popcount path.
  const std::uint64_t* p0 = train.plane(0);
  const std::uint64_t* p1 = train.plane(1);
  const std::uint64_t* p2 = train.plane(2);
  const std::uint64_t* p3 = train.plane(3);
  const uint64x2_t q0 = vdupq_n_u64(query.words()[0]);
  const uint64x2_t q1 = vdupq_n_u64(query.words()[1]);
  const uint64x2_t q2 = vdupq_n_u64(query.words()[2]);
  const uint64x2_t q3 = vdupq_n_u64(query.words()[3]);
  const std::size_t n = candidates.size();
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const auto a = static_cast<std::size_t>(candidates[j]);
    const auto b = static_cast<std::size_t>(candidates[j + 1]);
    const uint64x2_t w0 = {p0[a], p0[b]};
    const uint64x2_t w1 = {p1[a], p1[b]};
    const uint64x2_t w2 = {p2[a], p2[b]};
    const uint64x2_t w3 = {p3[a], p3[b]};
    uint8x16_t c = vcntq_u8(vreinterpretq_u8_u64(veorq_u64(w0, q0)));
    c = vaddq_u8(c, vcntq_u8(vreinterpretq_u8_u64(veorq_u64(w1, q1))));
    c = vaddq_u8(c, vcntq_u8(vreinterpretq_u8_u64(veorq_u64(w2, q2))));
    c = vaddq_u8(c, vcntq_u8(vreinterpretq_u8_u64(veorq_u64(w3, q3))));
    const uint64x2_t lane_sums = vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(c)));
    out_dist[j + 0] = static_cast<std::uint16_t>(vgetq_lane_u64(lane_sums, 0));
    out_dist[j + 1] = static_cast<std::uint16_t>(vgetq_lane_u64(lane_sums, 1));
  }
  if (j < n)
    hamming_gather_scalar(train, query, candidates.subspan(j), out_dist + j);
}

void project_batch_neon(std::span<const double> xs, std::span<const double> ys,
                        std::span<const double> zs, const SE3& pose_cw,
                        const PinholeCamera& camera, double margin,
                        double* out_u, double* out_v, std::uint8_t* out_keep) {
  const Mat3& r = pose_cw.rotation();
  const Vec3& t = pose_cw.translation();
  const float64x2_t r00 = vdupq_n_f64(r(0, 0)), r01 = vdupq_n_f64(r(0, 1)),
                    r02 = vdupq_n_f64(r(0, 2));
  const float64x2_t r10 = vdupq_n_f64(r(1, 0)), r11 = vdupq_n_f64(r(1, 1)),
                    r12 = vdupq_n_f64(r(1, 2));
  const float64x2_t r20 = vdupq_n_f64(r(2, 0)), r21 = vdupq_n_f64(r(2, 1)),
                    r22 = vdupq_n_f64(r(2, 2));
  const float64x2_t t0 = vdupq_n_f64(t[0]), t1 = vdupq_n_f64(t[1]),
                    t2 = vdupq_n_f64(t[2]);
  const float64x2_t fx = vdupq_n_f64(camera.fx()), fy = vdupq_n_f64(camera.fy());
  const float64x2_t cx = vdupq_n_f64(camera.cx()), cy = vdupq_n_f64(camera.cy());
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t min_depth = vdupq_n_f64(PinholeCamera::kMinDepth);
  const float64x2_t u_min = vdupq_n_f64(-margin);
  const float64x2_t u_max = vdupq_n_f64(camera.width() + margin);
  const float64x2_t v_min = vdupq_n_f64(-margin);
  const float64x2_t v_max = vdupq_n_f64(camera.height() + margin);
  const std::size_t n = xs.size();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t px = vld1q_f64(xs.data() + i);
    const float64x2_t py = vld1q_f64(ys.data() + i);
    const float64x2_t pz = vld1q_f64(zs.data() + i);
    // No FMA (vfmaq) — same association and rounding as the scalar path.
    float64x2_t xc = vaddq_f64(zero, vmulq_f64(r00, px));
    xc = vaddq_f64(xc, vmulq_f64(r01, py));
    xc = vaddq_f64(xc, vmulq_f64(r02, pz));
    xc = vaddq_f64(xc, t0);
    float64x2_t yc = vaddq_f64(zero, vmulq_f64(r10, px));
    yc = vaddq_f64(yc, vmulq_f64(r11, py));
    yc = vaddq_f64(yc, vmulq_f64(r12, pz));
    yc = vaddq_f64(yc, t1);
    float64x2_t zc = vaddq_f64(zero, vmulq_f64(r20, px));
    zc = vaddq_f64(zc, vmulq_f64(r21, py));
    zc = vaddq_f64(zc, vmulq_f64(r22, pz));
    zc = vaddq_f64(zc, t2);
    const float64x2_t u = vaddq_f64(vdivq_f64(vmulq_f64(fx, xc), zc), cx);
    const float64x2_t v = vaddq_f64(vdivq_f64(vmulq_f64(fy, yc), zc), cy);
    uint64x2_t keep = vcgtq_f64(zc, min_depth);
    keep = vandq_u64(keep, vcgeq_f64(u, u_min));
    keep = vandq_u64(keep, vcltq_f64(u, u_max));
    keep = vandq_u64(keep, vcgeq_f64(v, v_min));
    keep = vandq_u64(keep, vcltq_f64(v, v_max));
    vst1q_f64(out_u + i, u);
    vst1q_f64(out_v + i, v);
    out_keep[i + 0] = vgetq_lane_u64(keep, 0) != 0 ? 1 : 0;
    out_keep[i + 1] = vgetq_lane_u64(keep, 1) != 0 ? 1 : 0;
  }
  if (i < n)
    project_batch_scalar(xs.subspan(i), ys.subspan(i), zs.subspan(i), pose_cw,
                         camera, margin, out_u + i, out_v + i, out_keep + i);
}

}  // namespace
#endif  // aarch64

// ---- Dispatch entry points ------------------------------------------------

void hamming_block(const DescriptorSoA& train, const Descriptor256& query,
                   std::size_t first, std::size_t count,
                   std::uint16_t* out_dist) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case IsaLevel::kAvx2:
      hamming_block_avx2(train, query, first, count, out_dist);
      return;
#endif
#if defined(__aarch64__)
    case IsaLevel::kNeon:
      hamming_block_neon(train, query, first, count, out_dist);
      return;
#endif
    default:
      hamming_block_scalar(train, query, first, count, out_dist);
      return;
  }
}

void hamming_gather(const DescriptorSoA& train, const Descriptor256& query,
                    std::span<const std::int32_t> candidates,
                    std::uint16_t* out_dist) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case IsaLevel::kAvx2:
      hamming_gather_avx2(train, query, candidates, out_dist);
      return;
#endif
#if defined(__aarch64__)
    case IsaLevel::kNeon:
      hamming_gather_neon(train, query, candidates, out_dist);
      return;
#endif
    default:
      hamming_gather_scalar(train, query, candidates, out_dist);
      return;
  }
}

void project_batch(std::span<const double> xs, std::span<const double> ys,
                   std::span<const double> zs, const SE3& pose_cw,
                   const PinholeCamera& camera, double margin, double* out_u,
                   double* out_v, std::uint8_t* out_keep) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case IsaLevel::kAvx2:
      project_batch_avx2(xs, ys, zs, pose_cw, camera, margin, out_u, out_v,
                         out_keep);
      return;
#endif
#if defined(__aarch64__)
    case IsaLevel::kNeon:
      project_batch_neon(xs, ys, zs, pose_cw, camera, margin, out_u, out_v,
                         out_keep);
      return;
#endif
    default:
      project_batch_scalar(xs, ys, zs, pose_cw, camera, margin, out_u, out_v,
                           out_keep);
      return;
  }
}

}  // namespace eslam::simd
