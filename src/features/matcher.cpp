#include "features/matcher.h"

#include <algorithm>

#include "features/simd_kernels.h"
#include "geometry/assert.h"

namespace eslam {

namespace {

Arena& fallback_arena() {
  thread_local Arena arena;
  return arena;
}

// Minimum + runner-up selection over a distance buffer, scanning ascending
// — identical update rule (and therefore identical lowest-index tie
// winners) to match_one()/match_one_candidates().
inline void select_best(const std::uint16_t* dist, std::size_t count,
                        Match& m) {
  for (std::size_t j = 0; j < count; ++j) {
    const int d = dist[j];
    if (d < m.distance) {
      m.second_best = m.distance;
      m.distance = d;
      m.train = static_cast<int>(j);
    } else if (d < m.second_best) {
      m.second_best = d;
    }
  }
}

}  // namespace

Match match_one(const Descriptor256& query,
                std::span<const Descriptor256> train) {
  Match m;
  for (std::size_t j = 0; j < train.size(); ++j) {
    const int d = hamming_distance(query, train[j]);
    if (d < m.distance) {
      m.second_best = m.distance;
      m.distance = d;
      m.train = static_cast<int>(j);
    } else if (d < m.second_best) {
      m.second_best = d;
    }
  }
  return m;
}

std::vector<Match> match_descriptors(std::span<const Descriptor256> queries,
                                     std::span<const Descriptor256> train,
                                     const MatcherOptions& options) {
  std::vector<Match> out;
  if (train.empty()) return out;
  out.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Match m = match_one(queries[i], train);
    m.query = static_cast<int>(i);
    if (m.train < 0 || m.distance > options.max_distance) continue;
    if (options.ratio < 1.0 &&
        !(m.distance < options.ratio * m.second_best))
      continue;
    if (options.cross_check) {
      // Symmetric check: the back match must itself pass the acceptance
      // gates, not just point back.  Once back.train == m.query the two
      // distances are the same Hamming pair, so max_distance holds by the
      // forward gate — the back-side condition that can differ is the
      // ratio test, whose runner-up comes from the query set instead of
      // the train set.  An out-of-gate back match (ratio failure) would
      // never be emitted as a forward match and must not confirm one.
      const Match back = match_one(train[static_cast<std::size_t>(m.train)],
                                   queries);
      if (back.train != m.query) continue;
      if (options.ratio < 1.0 &&
          !(back.distance < options.ratio * back.second_best))
        continue;
    }
    out.push_back(m);
  }
  return out;
}

Match match_one_candidates(const Descriptor256& query,
                           std::span<const Descriptor256> train,
                           std::span<const std::int32_t> candidates) {
  Match m;
  for (const std::int32_t idx : candidates) {
    const int d =
        hamming_distance(query, train[static_cast<std::size_t>(idx)]);
    if (d < m.distance) {
      m.second_best = m.distance;
      m.distance = d;
      m.train = idx;
    } else if (d < m.second_best) {
      m.second_best = d;
    }
  }
  return m;
}

std::vector<Match> match_candidates(std::span<const Descriptor256> queries,
                                    std::span<const Descriptor256> train,
                                    const CandidateSet& candidates,
                                    const MatcherOptions& options) {
  ESLAM_ASSERT(candidates.num_queries() == queries.size(),
               "candidate set does not cover the query set");
  std::vector<Match> out;
  if (train.empty() || queries.empty()) return out;

  // Forward pass: per-query best/second over its candidate list.  When
  // cross-checking, track each train point's best/second query over the
  // same candidate graph in the same pass — (query asc, candidate asc) is
  // the scan order match_one() would use for the back match.
  std::vector<Match> forward(queries.size());
  std::vector<int> train_best_d, train_second_d;
  std::vector<std::int32_t> train_best_q;
  if (options.cross_check) {
    train_best_d.assign(train.size(), 256);
    train_second_d.assign(train.size(), 256);
    train_best_q.assign(train.size(), -1);
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const std::int32_t idx : candidates.candidates(q)) {
      const int d =
          hamming_distance(queries[q], train[static_cast<std::size_t>(idx)]);
      Match& m = forward[q];
      if (d < m.distance) {
        m.second_best = m.distance;
        m.distance = d;
        m.train = idx;
      } else if (d < m.second_best) {
        m.second_best = d;
      }
      if (options.cross_check) {
        const std::size_t t = static_cast<std::size_t>(idx);
        if (d < train_best_d[t]) {
          train_second_d[t] = train_best_d[t];
          train_best_d[t] = d;
          train_best_q[t] = static_cast<std::int32_t>(q);
        } else if (d < train_second_d[t]) {
          train_second_d[t] = d;
        }
      }
    }
  }

  out.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    Match m = forward[q];
    m.query = static_cast<int>(q);
    if (m.train < 0 || m.distance > options.max_distance) continue;
    if (options.ratio < 1.0 && !(m.distance < options.ratio * m.second_best))
      continue;
    if (options.cross_check) {
      const std::size_t t = static_cast<std::size_t>(m.train);
      if (train_best_q[t] != static_cast<std::int32_t>(q)) continue;
      if (options.ratio < 1.0 &&
          !(train_best_d[t] < options.ratio * train_second_d[t]))
        continue;
    }
    out.push_back(m);
  }
  return out;
}

void match_descriptors_into(std::span<const Feature> queries,
                            const TrainView& train,
                            const MatcherOptions& options, Arena* scratch,
                            std::vector<Match>& out) {
  out.clear();
  if (train.empty()) return;
  Arena& arena = scratch != nullptr ? *scratch : fallback_arena();
  const ArenaScope scope(arena);
  const std::span<std::uint16_t> dist =
      arena.alloc_span<std::uint16_t>(train.size());
  out.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Descriptor256& qd = queries[i].descriptor;
    Match m;
    if (train.soa != nullptr) {
      simd::hamming_block(*train.soa, qd, 0, train.size(), dist.data());
      select_best(dist.data(), train.size(), m);
    } else {
      m = match_one(qd, train.aos);
    }
    m.query = static_cast<int>(i);
    if (m.train < 0 || m.distance > options.max_distance) continue;
    if (options.ratio < 1.0 && !(m.distance < options.ratio * m.second_best))
      continue;
    if (options.cross_check) {
      // Back match over the query descriptors; same update rule as
      // match_one().  Queries stay AoS (they live in the FeatureList), so
      // this is a plain scalar scan — cross-check is off on the per-frame
      // tracking tiers.
      const Descriptor256& td = train.aos[static_cast<std::size_t>(m.train)];
      Match back;
      for (std::size_t j = 0; j < queries.size(); ++j) {
        const int d = hamming_distance(td, queries[j].descriptor);
        if (d < back.distance) {
          back.second_best = back.distance;
          back.distance = d;
          back.train = static_cast<int>(j);
        } else if (d < back.second_best) {
          back.second_best = d;
        }
      }
      if (back.train != static_cast<int>(i)) continue;
      if (options.ratio < 1.0 &&
          !(back.distance < options.ratio * back.second_best))
        continue;
    }
    out.push_back(m);
  }
}

void match_candidates_into(std::span<const Feature> queries,
                           const TrainView& train,
                           const CandidateSet& candidates,
                           const MatcherOptions& options, Arena* scratch,
                           std::vector<Match>& out) {
  ESLAM_ASSERT(candidates.num_queries() == queries.size(),
               "candidate set does not cover the query set");
  out.clear();
  if (train.empty() || queries.empty()) return;
  Arena& arena = scratch != nullptr ? *scratch : fallback_arena();
  const ArenaScope scope(arena);

  std::size_t max_list = 0;
  for (std::size_t q = 0; q < queries.size(); ++q)
    max_list = std::max(max_list, candidates.candidates(q).size());
  const std::span<std::uint16_t> dist =
      arena.alloc_span<std::uint16_t>(max_list);

  const std::span<Match> forward = arena.alloc_span<Match>(
      queries.size(), Match{});
  std::span<int> train_best_d, train_second_d;
  std::span<std::int32_t> train_best_q;
  if (options.cross_check) {
    train_best_d = arena.alloc_span<int>(train.size(), 256);
    train_second_d = arena.alloc_span<int>(train.size(), 256);
    train_best_q = arena.alloc_span<std::int32_t>(train.size(), -1);
  }

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::span<const std::int32_t> list = candidates.candidates(q);
    if (list.empty()) continue;
    if (train.soa != nullptr) {
      simd::hamming_gather(*train.soa, queries[q].descriptor, list,
                           dist.data());
    } else {
      for (std::size_t j = 0; j < list.size(); ++j)
        dist[j] = static_cast<std::uint16_t>(hamming_distance(
            queries[q].descriptor,
            train.aos[static_cast<std::size_t>(list[j])]));
    }
    Match& m = forward[q];
    for (std::size_t j = 0; j < list.size(); ++j) {
      const int d = dist[j];
      const std::int32_t idx = list[j];
      if (d < m.distance) {
        m.second_best = m.distance;
        m.distance = d;
        m.train = idx;
      } else if (d < m.second_best) {
        m.second_best = d;
      }
      if (options.cross_check) {
        const std::size_t t = static_cast<std::size_t>(idx);
        if (d < train_best_d[t]) {
          train_second_d[t] = train_best_d[t];
          train_best_d[t] = d;
          train_best_q[t] = static_cast<std::int32_t>(q);
        } else if (d < train_second_d[t]) {
          train_second_d[t] = d;
        }
      }
    }
  }

  out.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    Match m = forward[q];
    m.query = static_cast<int>(q);
    if (m.train < 0 || m.distance > options.max_distance) continue;
    if (options.ratio < 1.0 && !(m.distance < options.ratio * m.second_best))
      continue;
    if (options.cross_check) {
      const std::size_t t = static_cast<std::size_t>(m.train);
      if (train_best_q[t] != static_cast<std::int32_t>(q)) continue;
      if (options.ratio < 1.0 &&
          !(train_best_d[t] < options.ratio * train_second_d[t]))
        continue;
    }
    out.push_back(m);
  }
}

}  // namespace eslam
