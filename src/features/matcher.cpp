#include "features/matcher.h"

namespace eslam {

Match match_one(const Descriptor256& query,
                std::span<const Descriptor256> train) {
  Match m;
  for (std::size_t j = 0; j < train.size(); ++j) {
    const int d = hamming_distance(query, train[j]);
    if (d < m.distance) {
      m.second_best = m.distance;
      m.distance = d;
      m.train = static_cast<int>(j);
    } else if (d < m.second_best) {
      m.second_best = d;
    }
  }
  return m;
}

std::vector<Match> match_descriptors(std::span<const Descriptor256> queries,
                                     std::span<const Descriptor256> train,
                                     const MatcherOptions& options) {
  std::vector<Match> out;
  if (train.empty()) return out;
  out.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Match m = match_one(queries[i], train);
    m.query = static_cast<int>(i);
    if (m.train < 0 || m.distance > options.max_distance) continue;
    if (options.ratio < 1.0 &&
        !(m.distance < options.ratio * m.second_best))
      continue;
    if (options.cross_check) {
      // Symmetric check: the back match must itself pass the acceptance
      // gates, not just point back.  Once back.train == m.query the two
      // distances are the same Hamming pair, so max_distance holds by the
      // forward gate — the back-side condition that can differ is the
      // ratio test, whose runner-up comes from the query set instead of
      // the train set.  An out-of-gate back match (ratio failure) would
      // never be emitted as a forward match and must not confirm one.
      const Match back = match_one(train[static_cast<std::size_t>(m.train)],
                                   queries);
      if (back.train != m.query) continue;
      if (options.ratio < 1.0 &&
          !(back.distance < options.ratio * back.second_best))
        continue;
    }
    out.push_back(m);
  }
  return out;
}

}  // namespace eslam
