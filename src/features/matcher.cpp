#include "features/matcher.h"

#include "geometry/assert.h"

namespace eslam {

Match match_one(const Descriptor256& query,
                std::span<const Descriptor256> train) {
  Match m;
  for (std::size_t j = 0; j < train.size(); ++j) {
    const int d = hamming_distance(query, train[j]);
    if (d < m.distance) {
      m.second_best = m.distance;
      m.distance = d;
      m.train = static_cast<int>(j);
    } else if (d < m.second_best) {
      m.second_best = d;
    }
  }
  return m;
}

std::vector<Match> match_descriptors(std::span<const Descriptor256> queries,
                                     std::span<const Descriptor256> train,
                                     const MatcherOptions& options) {
  std::vector<Match> out;
  if (train.empty()) return out;
  out.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Match m = match_one(queries[i], train);
    m.query = static_cast<int>(i);
    if (m.train < 0 || m.distance > options.max_distance) continue;
    if (options.ratio < 1.0 &&
        !(m.distance < options.ratio * m.second_best))
      continue;
    if (options.cross_check) {
      // Symmetric check: the back match must itself pass the acceptance
      // gates, not just point back.  Once back.train == m.query the two
      // distances are the same Hamming pair, so max_distance holds by the
      // forward gate — the back-side condition that can differ is the
      // ratio test, whose runner-up comes from the query set instead of
      // the train set.  An out-of-gate back match (ratio failure) would
      // never be emitted as a forward match and must not confirm one.
      const Match back = match_one(train[static_cast<std::size_t>(m.train)],
                                   queries);
      if (back.train != m.query) continue;
      if (options.ratio < 1.0 &&
          !(back.distance < options.ratio * back.second_best))
        continue;
    }
    out.push_back(m);
  }
  return out;
}

Match match_one_candidates(const Descriptor256& query,
                           std::span<const Descriptor256> train,
                           std::span<const std::int32_t> candidates) {
  Match m;
  for (const std::int32_t idx : candidates) {
    const int d =
        hamming_distance(query, train[static_cast<std::size_t>(idx)]);
    if (d < m.distance) {
      m.second_best = m.distance;
      m.distance = d;
      m.train = idx;
    } else if (d < m.second_best) {
      m.second_best = d;
    }
  }
  return m;
}

std::vector<Match> match_candidates(std::span<const Descriptor256> queries,
                                    std::span<const Descriptor256> train,
                                    const CandidateSet& candidates,
                                    const MatcherOptions& options) {
  ESLAM_ASSERT(candidates.num_queries() == queries.size(),
               "candidate set does not cover the query set");
  std::vector<Match> out;
  if (train.empty() || queries.empty()) return out;

  // Forward pass: per-query best/second over its candidate list.  When
  // cross-checking, track each train point's best/second query over the
  // same candidate graph in the same pass — (query asc, candidate asc) is
  // the scan order match_one() would use for the back match.
  std::vector<Match> forward(queries.size());
  std::vector<int> train_best_d, train_second_d;
  std::vector<std::int32_t> train_best_q;
  if (options.cross_check) {
    train_best_d.assign(train.size(), 256);
    train_second_d.assign(train.size(), 256);
    train_best_q.assign(train.size(), -1);
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const std::int32_t idx : candidates.candidates(q)) {
      const int d =
          hamming_distance(queries[q], train[static_cast<std::size_t>(idx)]);
      Match& m = forward[q];
      if (d < m.distance) {
        m.second_best = m.distance;
        m.distance = d;
        m.train = idx;
      } else if (d < m.second_best) {
        m.second_best = d;
      }
      if (options.cross_check) {
        const std::size_t t = static_cast<std::size_t>(idx);
        if (d < train_best_d[t]) {
          train_second_d[t] = train_best_d[t];
          train_best_d[t] = d;
          train_best_q[t] = static_cast<std::int32_t>(q);
        } else if (d < train_second_d[t]) {
          train_second_d[t] = d;
        }
      }
    }
  }

  out.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    Match m = forward[q];
    m.query = static_cast<int>(q);
    if (m.train < 0 || m.distance > options.max_distance) continue;
    if (options.ratio < 1.0 && !(m.distance < options.ratio * m.second_best))
      continue;
    if (options.cross_check) {
      const std::size_t t = static_cast<std::size_t>(m.train);
      if (train_best_q[t] != static_cast<std::int32_t>(q)) continue;
      if (options.ratio < 1.0 &&
          !(train_best_d[t] < options.ratio * train_second_d[t]))
        continue;
    }
    out.push_back(m);
  }
  return out;
}

}  // namespace eslam
