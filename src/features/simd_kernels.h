// Vectorized hot-path kernels with bit-exact scalar parity.
//
// Two kernels dominate steady-state tracking (paper section 2.2: feature
// matching is the FPGA-side bottleneck; here it is the ARM-side one):
//
//   1. One query descriptor against a block (or gathered candidate list)
//      of train descriptors: 256-bit XOR + popcount over the DescriptorSoA
//      word planes.  Distances are exact integers, so the SIMD paths are
//      trivially bit-identical to hamming_distance(); best-match selection
//      stays scalar over the distance buffer in ascending index order,
//      which preserves the matcher's lowest-index tie rule for free.
//
//   2. Batched map-point projection for the match gate: SE3 transform +
//      pinhole projection + padded-bounds mask over x/y/z lanes.  The
//      scalar path replicates the exact FP operation order of
//      `SE3::operator*` / `PinholeCamera::project` (sum association,
//      no FMA), and the SIMD paths perform the same operations per lane,
//      so kept u/v coordinates are bit-identical across ISAs.  NaN inputs
//      fail the keep mask on every path.
//
// Dispatch is picked once at runtime (core/simd_dispatch.h); the _scalar
// variants are exposed for the parity test suite.
#pragma once

#include <cstdint>
#include <span>

#include "features/descriptor_soa.h"
#include "geometry/camera.h"
#include "geometry/se3.h"

namespace eslam::simd {

// out_dist[j] = hamming(query, train[first + j]) for j in [0, count).
void hamming_block(const DescriptorSoA& train, const Descriptor256& query,
                   std::size_t first, std::size_t count,
                   std::uint16_t* out_dist);
void hamming_block_scalar(const DescriptorSoA& train,
                          const Descriptor256& query, std::size_t first,
                          std::size_t count, std::uint16_t* out_dist);

// out_dist[j] = hamming(query, train[candidates[j]]).
void hamming_gather(const DescriptorSoA& train, const Descriptor256& query,
                    std::span<const std::int32_t> candidates,
                    std::uint16_t* out_dist);
void hamming_gather_scalar(const DescriptorSoA& train,
                           const Descriptor256& query,
                           std::span<const std::int32_t> candidates,
                           std::uint16_t* out_dist);

// Projects n map points (xs/ys/zs lanes) through pose_cw and the pinhole
// model.  out_keep[i] != 0 iff depth > PinholeCamera::kMinDepth and the
// pixel lands inside the image padded by `margin` on every side; out_u/v
// are only meaningful for kept lanes.  Matches the scalar gate math
// bit-for-bit on kept lanes.
void project_batch(std::span<const double> xs, std::span<const double> ys,
                   std::span<const double> zs, const SE3& pose_cw,
                   const PinholeCamera& camera, double margin, double* out_u,
                   double* out_v, std::uint8_t* out_keep);
void project_batch_scalar(std::span<const double> xs,
                          std::span<const double> ys,
                          std::span<const double> zs, const SE3& pose_cw,
                          const PinholeCamera& camera, double margin,
                          double* out_u, double* out_v,
                          std::uint8_t* out_keep);

}  // namespace eslam::simd
