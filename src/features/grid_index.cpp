#include "features/grid_index.h"

#include <algorithm>
#include <cmath>

#include "geometry/assert.h"

namespace eslam {

GridIndex2d::GridIndex2d(double width, double height, double cell_size)
    : cell_size_(cell_size) {
  ESLAM_ASSERT(width > 0 && height > 0, "grid extent must be positive");
  ESLAM_ASSERT(cell_size > 0, "grid cell size must be positive");
  cols_ = std::max(1, static_cast<int>(std::ceil(width / cell_size)));
  rows_ = std::max(1, static_cast<int>(std::ceil(height / cell_size)));
  cell_start_.assign(static_cast<std::size_t>(cols_) * rows_ + 1, 0);
}

int GridIndex2d::cell_x(double u) const {
  return std::clamp(static_cast<int>(std::floor(u / cell_size_)), 0,
                    cols_ - 1);
}

int GridIndex2d::cell_y(double v) const {
  return std::clamp(static_cast<int>(std::floor(v / cell_size_)), 0,
                    rows_ - 1);
}

void GridIndex2d::build(std::vector<GridEntry> entries) {
  const std::size_t n_cells = static_cast<std::size_t>(cols_) * rows_;
  std::vector<std::int32_t> counts(n_cells, 0);
  for (const GridEntry& e : entries)
    ++counts[static_cast<std::size_t>(cell_y(e.v)) * cols_ + cell_x(e.u)];

  cell_start_.assign(n_cells + 1, 0);
  for (std::size_t c = 0; c < n_cells; ++c)
    cell_start_[c + 1] = cell_start_[c] + counts[c];

  // Counting-sort into place; within a cell the input order (ascending map
  // index, the way the gate inserts) is preserved.
  std::vector<std::int32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  entries_.resize(entries.size());
  for (const GridEntry& e : entries) {
    const std::size_t cell =
        static_cast<std::size_t>(cell_y(e.v)) * cols_ + cell_x(e.u);
    entries_[static_cast<std::size_t>(cursor[cell]++)] = e;
  }
}

void GridIndex2d::query(double u, double v, double radius,
                        std::vector<std::int32_t>& out) const {
  const std::size_t first = out.size();
  const int x0 = cell_x(u - radius);
  const int x1 = cell_x(u + radius);
  const int y0 = cell_y(v - radius);
  const int y1 = cell_y(v + radius);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const std::size_t cell = static_cast<std::size_t>(y) * cols_ + x;
      const std::int32_t a = cell_start_[cell];
      const std::int32_t b = cell_start_[cell + 1];
      for (std::int32_t i = a; i < b; ++i) {
        const GridEntry& e = entries_[static_cast<std::size_t>(i)];
        if (std::abs(e.u - u) <= radius && std::abs(e.v - v) <= radius)
          out.push_back(e.id);
      }
    }
  }
  // Cells are visited in row-major order, not id order; the contract is
  // ascending ids (tie parity with the brute-force scan), so sort the
  // appended slice.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

}  // namespace eslam
