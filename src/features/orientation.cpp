#include "features/orientation.h"

#include <cmath>

#include "geometry/assert.h"

namespace eslam {

int circle_span(int abs_dy) {
  ESLAM_ASSERT(abs_dy >= 0 && abs_dy <= kPatchRadius, "row outside patch");
  // floor(sqrt(r^2 - dy^2)) precomputed for r = 15 (same table ORB uses).
  static constexpr int kSpan[kPatchRadius + 1] = {
      15, 14, 14, 14, 14, 14, 13, 13, 12, 12, 11, 10, 9, 8, 6, 3};
  return kSpan[abs_dy];
}

void patch_moments(const ImageU8& img, int x, int y, std::int64_t& m10,
                   std::int64_t& m01) {
  ESLAM_ASSERT(x >= kPatchRadius && y >= kPatchRadius &&
                   x < img.width() - kPatchRadius &&
                   y < img.height() - kPatchRadius,
               "patch out of bounds");
  m10 = 0;
  m01 = 0;
  for (int dy = -kPatchRadius; dy <= kPatchRadius; ++dy) {
    const int span = circle_span(std::abs(dy));
    const std::uint8_t* row = img.row(y + dy);
    std::int64_t row_sum = 0, row_weighted = 0;
    for (int dx = -span; dx <= span; ++dx) {
      const int v = row[x + dx];
      row_sum += v;
      row_weighted += static_cast<std::int64_t>(v) * dx;
    }
    m10 += row_weighted;
    m01 += row_sum * dy;
  }
}

double orientation_angle(const ImageU8& img, int x, int y) {
  std::int64_t m10, m01;
  patch_moments(img, x, y, m10, m01);
  if (m10 == 0 && m01 == 0) return 0.0;
  return std::atan2(static_cast<double>(m01), static_cast<double>(m10));
}

int discretize_orientation(double angle_radians) {
  const double step = kOrientationStepDeg * M_PI / 180.0;
  const int n = static_cast<int>(std::lround(angle_radians / step));
  return ((n % kOrientationBins) + kOrientationBins) % kOrientationBins;
}

}  // namespace eslam
