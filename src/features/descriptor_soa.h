// Structure-of-arrays descriptor storage: word plane w holds word w of
// every descriptor contiguously (plane(w)[i] == descriptor i, word w).
// The SIMD Hamming kernels stream one query word against a whole plane
// with aligned vector loads, which the AoS Descriptor256 layout cannot
// offer.  The map keeps a DescriptorSoA mirror of its descriptor cache
// (same order, same epoch), so matching reads both views of the same
// data without any per-frame conversion.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "features/descriptor.h"

namespace eslam {

class DescriptorSoA {
 public:
  static constexpr int kWords = Descriptor256::kWords;

  std::size_t size() const { return planes_[0].size(); }
  bool empty() const { return planes_[0].empty(); }

  void clear() {
    for (auto& p : planes_) p.clear();
  }

  void reserve(std::size_t n) {
    for (auto& p : planes_) p.reserve(n);
  }

  void push_back(const Descriptor256& d) {
    for (int w = 0; w < kWords; ++w) planes_[w].push_back(d.words()[w]);
  }

  void assign(std::span<const Descriptor256> descriptors) {
    clear();
    reserve(descriptors.size());
    for (const Descriptor256& d : descriptors) push_back(d);
  }

  const std::uint64_t* plane(int w) const {
    return planes_[static_cast<std::size_t>(w)].data();
  }

  Descriptor256 get(std::size_t i) const {
    Descriptor256 d;
    for (int w = 0; w < kWords; ++w) d.words()[w] = planes_[w][i];
    return d;
  }

 private:
  std::array<std::vector<std::uint64_t>, kWords> planes_;
};

}  // namespace eslam
