#include "features/fast.h"

namespace eslam {

const std::array<FastOffset, 16>& fast_circle() {
  static const std::array<FastOffset, 16> kCircle = {{{0, -3},
                                                      {1, -3},
                                                      {2, -2},
                                                      {3, -1},
                                                      {3, 0},
                                                      {3, 1},
                                                      {2, 2},
                                                      {1, 3},
                                                      {0, 3},
                                                      {-1, 3},
                                                      {-2, 2},
                                                      {-3, 1},
                                                      {-3, 0},
                                                      {-3, -1},
                                                      {-2, -2},
                                                      {-1, -3}}};
  return kCircle;
}

namespace {

// Classifies the 16 circle pixels against (center ± t) and scans for a
// contiguous arc of >= 9 equal classifications (wrapping).
bool segment_test(const int ring[16], int center, int threshold) {
  const int hi = center + threshold;
  const int lo = center - threshold;

  // Fast reject: a 9-arc must contain at least 2 of the 4 compass pixels
  // {0, 4, 8, 12} on the same side.
  int brighter4 = 0, darker4 = 0;
  for (int i = 0; i < 16; i += 4) {
    if (ring[i] > hi) ++brighter4;
    if (ring[i] < lo) ++darker4;
  }
  if (brighter4 < 2 && darker4 < 2) return false;

  auto has_arc = [&](auto pred) {
    int run = 0;
    // Scan 16 + 8 entries so wrapping arcs are found without special cases.
    for (int i = 0; i < 16 + kFastArcLength - 1; ++i) {
      if (pred(ring[i % 16])) {
        if (++run >= kFastArcLength) return true;
      } else {
        run = 0;
      }
    }
    return false;
  };
  if (brighter4 >= 2 && has_arc([&](int v) { return v > hi; })) return true;
  if (darker4 >= 2 && has_arc([&](int v) { return v < lo; })) return true;
  return false;
}

}  // namespace

bool is_fast_corner(const ImageU8& img, int x, int y, int threshold) {
  ESLAM_ASSERT(x >= 3 && y >= 3 && x < img.width() - 3 && y < img.height() - 3,
               "FAST test requires a 3-pixel border");
  int ring[16];
  const auto& circle = fast_circle();
  for (int i = 0; i < 16; ++i)
    ring[i] = img.at(x + circle[i].dx, y + circle[i].dy);
  return segment_test(ring, img.at(x, y), threshold);
}

bool is_fast_corner_window(const std::uint8_t win[7][7], int threshold) {
  int ring[16];
  const auto& circle = fast_circle();
  for (int i = 0; i < 16; ++i)
    ring[i] = win[3 + circle[i].dy][3 + circle[i].dx];
  return segment_test(ring, win[3][3], threshold);
}

std::vector<Keypoint> detect_fast(const ImageU8& img, int threshold,
                                  int margin) {
  std::vector<Keypoint> out;
  detect_fast_into(img, threshold, margin, out);
  return out;
}

void detect_fast_into(const ImageU8& img, int threshold, int margin,
                      std::vector<Keypoint>& out) {
  ESLAM_ASSERT(margin >= 3, "margin must cover the FAST circle");
  out.clear();
  for (int y = margin; y < img.height() - margin; ++y)
    for (int x = margin; x < img.width() - margin; ++x)
      if (is_fast_corner(img, x, y, threshold)) {
        Keypoint kp;
        kp.x = x;
        kp.y = y;
        out.push_back(kp);
      }
}

}  // namespace eslam
