// FAST-9/16 corner detector (Features from Accelerated Segment Test).
//
// A pixel p is a corner when >= 9 contiguous pixels on the radius-3
// Bresenham circle are all brighter than p + t or all darker than p - t.
// The circle spans a 7x7 window — exactly the patch the paper's FAST
// Detection module consumes per cycle.
#pragma once

#include <vector>

#include "features/keypoint.h"
#include "image/image.h"

namespace eslam {

// The 16 circle offsets in clockwise order starting at 12 o'clock.
struct FastOffset {
  int dx, dy;
};
const std::array<FastOffset, 16>& fast_circle();

inline constexpr int kFastArcLength = 9;
inline constexpr int kFastDefaultThreshold = 20;

// Tests a single pixel.  (x, y) must be >= 3 pixels from every border.
bool is_fast_corner(const ImageU8& img, int x, int y, int threshold);

// Same decision from an explicit 7x7 window (row-major, win[3][3] is the
// candidate) — the form the streaming hardware evaluates.  Bit-identical to
// is_fast_corner on the same pixels.
bool is_fast_corner_window(const std::uint8_t win[7][7], int threshold);

// Detects all FAST corners with a border margin (margin >= 3).
std::vector<Keypoint> detect_fast(const ImageU8& img, int threshold,
                                  int margin = 3);

// Same scan into a recycled vector (cleared first).
void detect_fast_into(const ImageU8& img, int threshold, int margin,
                      std::vector<Keypoint>& out);

}  // namespace eslam
