// Keypoint and feature records shared by the software and hardware paths.
#pragma once

#include <cstdint>
#include <vector>

#include "features/descriptor.h"

namespace eslam {

struct Keypoint {
  // Position in the coordinates of the pyramid level it was detected on.
  int x = 0;
  int y = 0;
  int level = 0;
  // Scale of that level (level coords * scale = level-0 coords).
  double scale = 1.0;
  // Harris corner response used for filtering (fixed-point in the HW path).
  std::int64_t score = 0;
  // Continuous orientation (radians, atan2 convention) — software path.
  double angle = 0.0;
  // Discretized orientation label n in [0, 32): n * 11.25 degrees.
  int orientation_label = 0;

  double x0() const { return x * scale; }  // level-0 pixel coordinates
  double y0() const { return y * scale; }
};

struct Feature {
  Keypoint keypoint;
  Descriptor256 descriptor;
};

using FeatureList = std::vector<Feature>;

}  // namespace eslam
