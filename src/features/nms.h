// 3x3 non-maximum suppression over keypoint scores (paper's NMS module):
// keeps a keypoint only when its Harris score is the maximum within its
// 3x3 pixel neighbourhood.
#pragma once

#include <vector>

#include "features/keypoint.h"

namespace eslam {

// Suppresses keypoints that are not the local score maximum.  `width` and
// `height` bound the coordinate grid.  Ties are broken toward the earlier
// (raster-order) keypoint, matching the streaming hardware which emits the
// first maximal candidate it sees.
std::vector<Keypoint> nms_3x3(const std::vector<Keypoint>& keypoints,
                              int width, int height);

// Reusable scratch for nms_3x3_into: a dense keypoint-index grid, grown to
// the largest image seen and restored to "empty" (-1) after every call, so
// repeated calls never allocate.  Own one per extractor.
struct NmsScratch {
  std::vector<std::int32_t> grid;
};

// Same suppression into recycled buffers, identical output to nms_3x3().
void nms_3x3_into(const std::vector<Keypoint>& keypoints, int width,
                  int height, NmsScratch& scratch, std::vector<Keypoint>& out);

}  // namespace eslam
