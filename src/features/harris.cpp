#include "features/harris.h"

#include "geometry/assert.h"

namespace eslam {

namespace {

// Sobel gradients at a single pixel.
inline void sobel(const ImageU8& img, int x, int y, int& gx, int& gy) {
  const int a = img.at(x - 1, y - 1), b = img.at(x, y - 1),
            c = img.at(x + 1, y - 1);
  const int d = img.at(x - 1, y), f = img.at(x + 1, y);
  const int g = img.at(x - 1, y + 1), h = img.at(x, y + 1),
            i = img.at(x + 1, y + 1);
  gx = (c + 2 * f + i) - (a + 2 * d + g);
  gy = (g + 2 * h + i) - (a + 2 * b + c);
}

}  // namespace

std::int64_t harris_score_int(const ImageU8& img, int x, int y) {
  constexpr int r = kHarrisBlock / 2;
  ESLAM_ASSERT(x >= r + 1 && y >= r + 1 && x < img.width() - r - 1 &&
                   y < img.height() - r - 1,
               "Harris window out of bounds");
  std::int64_t sxx = 0, syy = 0, sxy = 0;
  for (int dy = -r; dy <= r; ++dy)
    for (int dx = -r; dx <= r; ++dx) {
      int gx, gy;
      sobel(img, x + dx, y + dy, gx, gy);
      // >>3 keeps the per-pixel product within 8+8 bit multiplier range
      // (|g| <= 1020 -> <= 127), the same quantization the DSP slices use.
      gx >>= 3;
      gy >>= 3;
      sxx += gx * gx;
      syy += gy * gy;
      sxy += gx * gy;
    }
  const std::int64_t det = sxx * syy - sxy * sxy;
  const std::int64_t tr = sxx + syy;
  return det - ((41 * tr * tr) >> 10);  // k = 41/1024 ~ 0.04004
}

double harris_score_ref(const ImageU8& img, int x, int y) {
  constexpr int r = kHarrisBlock / 2;
  ESLAM_ASSERT(x >= r + 1 && y >= r + 1 && x < img.width() - r - 1 &&
                   y < img.height() - r - 1,
               "Harris window out of bounds");
  double sxx = 0, syy = 0, sxy = 0;
  for (int dy = -r; dy <= r; ++dy)
    for (int dx = -r; dx <= r; ++dx) {
      int gx, gy;
      sobel(img, x + dx, y + dy, gx, gy);
      const double fx = gx / 8.0, fy = gy / 8.0;
      sxx += fx * fx;
      syy += fy * fy;
      sxy += fx * fy;
    }
  return (sxx * syy - sxy * sxy) - 0.04 * (sxx + syy) * (sxx + syy);
}

}  // namespace eslam
