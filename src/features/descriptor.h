// 256-bit binary descriptors and Hamming distance.
//
// Bit i of the descriptor is test pair i of the BRIEF/RS-BRIEF pattern.
// For RS-BRIEF, bits are grouped 8 per rotation increment: bits
// [8j, 8j+7] hold the tests of rotation group j (j in 0..31).  Steering by
// orientation label n is then the 256-bit rotation moving the first 8n bits
// to the end (paper section 3.1, "BRIEF Rotator").
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "geometry/assert.h"

namespace eslam {

class Descriptor256 {
 public:
  constexpr Descriptor256() : words_{} {}

  static constexpr int kBits = 256;
  static constexpr int kWords = 4;

  constexpr bool bit(int i) const {
    ESLAM_ASSERT(i >= 0 && i < kBits, "bit index out of range");
    return (words_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1u;
  }
  constexpr void set_bit(int i, bool v) {
    ESLAM_ASSERT(i >= 0 && i < kBits, "bit index out of range");
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (v)
      words_[static_cast<std::size_t>(i) / 64] |= mask;
    else
      words_[static_cast<std::size_t>(i) / 64] &= ~mask;
  }

  const std::array<std::uint64_t, kWords>& words() const { return words_; }
  std::array<std::uint64_t, kWords>& words() { return words_; }

  // Moves the first `n_bytes` bytes (8*n_bytes bits) of the bit sequence to
  // its end — the BRIEF Rotator's barrel shift.  n_bytes in [0, 32).
  Descriptor256 rotated_bytes(int n_bytes) const {
    ESLAM_ASSERT(n_bytes >= 0 && n_bytes < 32, "rotation out of range");
    Descriptor256 out;
    const int shift = n_bytes * 8;
    if (shift == 0) return *this;
    // 256-bit rotate right by `shift`: new bit b = old bit (b + shift) % 256.
    const int word_shift = shift / 64;
    const int bit_shift = shift % 64;
    for (int w = 0; w < kWords; ++w) {
      const std::uint64_t lo = words_[(w + word_shift) % kWords];
      const std::uint64_t hi = words_[(w + word_shift + 1) % kWords];
      out.words_[w] =
          bit_shift == 0 ? lo : (lo >> bit_shift) | (hi << (64 - bit_shift));
    }
    return out;
  }

  std::string to_hex() const;

  friend constexpr bool operator==(const Descriptor256& a,
                                   const Descriptor256& b) {
    return a.words_ == b.words_;
  }
  friend constexpr bool operator!=(const Descriptor256& a,
                                   const Descriptor256& b) {
    return !(a == b);
  }

 private:
  std::array<std::uint64_t, kWords> words_;
};

// Hamming distance; the HW Distance Computing module evaluates this with a
// popcount adder tree in one cycle per descriptor pair.
constexpr int hamming_distance(const Descriptor256& a, const Descriptor256& b) {
  int d = 0;
  for (int w = 0; w < Descriptor256::kWords; ++w)
    d += std::popcount(a.words()[w] ^ b.words()[w]);
  return d;
}

}  // namespace eslam
