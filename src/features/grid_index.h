// 2D spatial bucket grid over the image plane, used by the matching gate
// to turn "all map points" into "map points projecting near this feature".
//
// Built per frame from the projected map points (CSR layout: one counting
// sort, no per-cell allocations), then queried once per feature with a
// square window.  Queries return the caller-supplied ids of every entry
// whose exact position falls inside the window, in ascending id order —
// the order matters: the candidate matcher resolves Hamming ties to the
// lowest train index, exactly like the brute-force scan it replaces, so
// gated and brute tiers agree whenever the window covers the true match.
#pragma once

#include <cstdint>
#include <vector>

namespace eslam {

// One indexed point: a position in pixels plus the caller's id for it
// (the matching gate stores map-point indices).
struct GridEntry {
  double u = 0;
  double v = 0;
  std::int32_t id = 0;
};

class GridIndex2d {
 public:
  // Grid covering [0, width) x [0, height); entries outside are clamped
  // into the border cells, so nothing inserted is ever lost.
  GridIndex2d(double width, double height, double cell_size);

  // Replaces the contents with `entries` (previous build discarded).
  void build(std::vector<GridEntry> entries);

  // Appends the ids of entries within the square window of half-width
  // `radius` around (u, v) to `out`, in ascending id order.
  void query(double u, double v, double radius,
             std::vector<std::int32_t>& out) const;

  std::size_t size() const { return entries_.size(); }
  int cols() const { return cols_; }
  int rows() const { return rows_; }

 private:
  int cell_x(double u) const;
  int cell_y(double v) const;

  double cell_size_;
  int cols_;
  int rows_;
  std::vector<GridEntry> entries_;       // sorted by cell (counting sort)
  std::vector<std::int32_t> cell_start_; // CSR offsets, size cols*rows + 1
};

}  // namespace eslam
