#include "server/slam_service.h"

#include <chrono>
#include <utility>

#include "geometry/assert.h"

namespace eslam {

// The service-side body of one session: the tracker (which owns the
// backend) plus its scheduler slot.  Held by shared_ptr from the handle so
// a moved-from handle stays cheap and the body dies exactly once.
struct ServiceSession {
  int id = -1;           // service-assigned, stable across the lifetime
  SessionKind kind = SessionKind::kMapping;
  SessionRef slot;       // per-session scheduler state (no lookups)
  // Exactly one of the two is set, per `kind`.
  std::unique_ptr<Tracker> tracker;
  std::unique_ptr<Localizer> localizer;
  // Open timestamp for the close-time lifetime rollup.
  std::chrono::steady_clock::time_point opened_at;
};

// ---- SessionHandle ---------------------------------------------------------

SessionHandle::SessionHandle(SlamService* service,
                             std::shared_ptr<ServiceSession> session)
    : service_(service), session_(std::move(session)) {}

SessionHandle::~SessionHandle() { close(); }

SessionHandle::SessionHandle(SessionHandle&& other) noexcept
    : service_(std::exchange(other.service_, nullptr)),
      session_(std::move(other.session_)) {}

SessionHandle& SessionHandle::operator=(SessionHandle&& other) noexcept {
  if (this != &other) {
    close();
    service_ = std::exchange(other.service_, nullptr);
    session_ = std::move(other.session_);
  }
  return *this;
}

int SessionHandle::id() const { return session_ ? session_->id : -1; }

SessionKind SessionHandle::kind() const {
  return session_ ? session_->kind : SessionKind::kMapping;
}

bool SessionHandle::try_feed(FrameInput frame) {
  if (!service_) return false;
  return service_->scheduler_.try_feed(session_->slot, std::move(frame));
}

void SessionHandle::feed(FrameInput frame) {
  if (!service_) return;
  service_->scheduler_.feed(session_->slot, std::move(frame));
}

std::optional<TrackResult> SessionHandle::poll() {
  if (!service_) return std::nullopt;
  return service_->scheduler_.poll(session_->slot);
}

std::vector<TrackResult> SessionHandle::drain() {
  if (!service_) return {};
  return service_->scheduler_.drain(session_->slot);
}

int SessionHandle::in_flight() const {
  return service_ ? service_->scheduler_.in_flight(session_->slot) : 0;
}

PipelineStats SessionHandle::stats() const {
  return service_ ? service_->scheduler_.stats(session_->slot) : PipelineStats{};
}

backend::BackendStats SessionHandle::backend_stats() const {
  // Localization sessions have no backend lane: all-zero stats.
  return service_ && session_->tracker ? session_->tracker->backend_stats()
                                       : backend::BackendStats{};
}

std::vector<StageEvent> SessionHandle::stage_events() const {
  if (!service_) return {};
  return service_->scheduler_.stage_events(session_->slot);
}

const Tracker& SessionHandle::tracker() const {
  ESLAM_ASSERT(session_ != nullptr, "tracker() on a closed session handle");
  ESLAM_ASSERT(session_->tracker != nullptr,
               "tracker() on a localization session");
  return *session_->tracker;
}

const Localizer& SessionHandle::localizer() const {
  ESLAM_ASSERT(session_ != nullptr, "localizer() on a closed session handle");
  ESLAM_ASSERT(session_->localizer != nullptr,
               "localizer() on a mapping session");
  return *session_->localizer;
}

long SessionHandle::frozen_map_use_count() const {
  if (!session_ || !session_->localizer) return 0;
  return session_->localizer->map_ptr().use_count();
}

std::vector<TrackResult> SessionHandle::close() {
  if (!service_) return {};
  std::vector<TrackResult> leftovers =
      service_->scheduler_.drain(session_->slot);
  // Rollups before the slot goes away: how long the session lived and how
  // many frames it retired (frames_retired is final after the drain).
  const PipelineStats final_stats = service_->scheduler_.stats(session_->slot);
  service_->scheduler_.remove_session(session_->slot);
  service_->closed_total_->add();
  service_->session_lifetime_ms_->record(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - session_->opened_at)
          .count());
  service_->session_frames_->record(
      static_cast<double>(final_stats.frames_retired));
  service_ = nullptr;
  session_.reset();  // destroys the tracker + backend
  return leftovers;
}

// ---- SlamService -----------------------------------------------------------

SlamService::SlamService(const ServiceOptions& options)
    : options_(options),
      scheduler_(SchedulerOptions{std::max(1, options.arm_workers),
                                  options.backend_queue_capacity,
                                  options.backend_priority}) {
  obs::MetricsRegistry& reg = obs::metrics();
  opened_mapping_total_ =
      &reg.counter("eslam_sessions_opened_total{kind=\"mapping\"}");
  opened_localization_total_ =
      &reg.counter("eslam_sessions_opened_total{kind=\"localization\"}");
  closed_total_ = &reg.counter("eslam_sessions_closed_total");
  session_lifetime_ms_ = &reg.histogram("eslam_session_lifetime_ms");
  session_frames_ = &reg.histogram("eslam_session_frames");
}

SlamService::~SlamService() = default;

SessionHandle SlamService::open_session(const SessionConfig& config) {
  auto session = std::make_shared<ServiceSession>();
  session->kind = config.kind;

  SchedulerSessionOptions scheduler_options;
  scheduler_options.queue_capacity = config.queue_capacity;
  scheduler_options.speculative_match = config.speculative_match;
  scheduler_options.record_events = config.record_events;
  scheduler_options.pacer = config.pacer;

  if (config.kind == SessionKind::kLocalization) {
    ESLAM_ASSERT(config.frozen_map != nullptr,
                 "a localization session needs a frozen map");
    session->localizer = std::make_unique<Localizer>(
        config.frozen_map,
        config.backend_factory ? config.backend_factory()
                               : make_feature_backend(config.backend),
        config.localizer);
    session->slot = scheduler_.add_localization_session(*session->localizer,
                                                        scheduler_options);
  } else {
    session->tracker = std::make_unique<Tracker>(
        config.camera,
        config.backend_factory ? config.backend_factory()
                               : make_feature_backend(config.backend),
        config.tracker);
    session->slot = scheduler_.add_session(*session->tracker,
                                           scheduler_options);
  }
  session->opened_at = std::chrono::steady_clock::now();
  (config.kind == SessionKind::kLocalization ? opened_localization_total_
                                             : opened_mapping_total_)
      ->add();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    session->id = sessions_opened_++;
    if (config.kind == SessionKind::kLocalization)
      ++localization_opened_;
    else
      ++mapping_opened_;
  }
  return SessionHandle(this, std::move(session));
}

int SlamService::session_count() const { return scheduler_.session_count(); }

std::string SlamService::metrics_exposition() const {
  return obs::metrics().exposition();
}

ServiceStats SlamService::stats() const {
  ServiceStats s;
  s.sessions_open = scheduler_.session_count();
  s.localization_sessions_open = scheduler_.localization_session_count();
  s.mapping_sessions_open = s.sessions_open - s.localization_sessions_open;
  s.arm_workers = std::max(1, options_.arm_workers);
  s.device_dispatches = scheduler_.total_dispatches();
  s.backend_concurrent_hwm = scheduler_.backend_concurrent_high_water();
  s.localization_coldstart_attempts =
      scheduler_.localization_coldstart_attempts();
  s.localization_coldstart_successes =
      scheduler_.localization_coldstart_successes();
  const std::lock_guard<std::mutex> lock(mutex_);
  s.sessions_opened_total = sessions_opened_;
  s.mapping_sessions_opened_total = mapping_opened_;
  s.localization_sessions_opened_total = localization_opened_;
  return s;
}

}  // namespace eslam
