// Multi-session SLAM serving layer.
//
// SlamService owns the shared execution resources of the platform — one
// device lane standing in for the FPGA fabric and a fixed pool of ARM
// worker threads (TrackerScheduler) — and multiplexes N independent
// tracking sessions over them.  Each open_session() builds a private
// Tracker + feature backend from a SessionConfig (per-session camera,
// platform, tracker tuning) and registers it with the scheduler; the
// returned SessionHandle is the client's connection: feed/poll/drain,
// stats, stage events, and lifecycle.
//
// Sharing model (the paper's, scaled out): the fabric is the scarce
// resource, so FE+FM of *all* sessions serialize on the one device lane
// under round-robin fairness, while PE/PO/MU parallelize across sessions
// up to the worker-pool width — at most one worker per session at a time,
// so every session's results stay bit-identical to running that sequence
// alone in ExecutionMode::kSequential.  Back-pressure is per session: one
// slow or stalled session fills only its own bounded input ring and never
// blocks the lane for the others.
//
// Localization tier: a session opened with SessionKind::kLocalization
// serves read-only against a FrozenMap loaded from a map snapshot instead
// of building its own map.  It cold-starts through indexed relocalization
// (the kidnapped-robot path is the entry path), runs match ->
// estimate_pose -> optimize_pose only — no map updating, no keyframes, no
// backend jobs — and is scheduled on the ARM worker pool concurrently
// with everything else rather than serialized behind the device lane, so
// localization throughput scales with cores.  Any number of localization
// sessions share one frozen map through its shared_ptr.
//
// Threading: a SessionHandle must be driven by one thread at a time;
// different handles may be driven from different threads concurrently.
// open_session()/close() may race with other sessions' traffic.  The
// service must outlive every handle it issued.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "accel/backend_factory.h"
#include "geometry/camera.h"
#include "obs/metrics.h"
#include "runtime/tracker_scheduler.h"
#include "slam/localizer.h"
#include "slam/tracker.h"

namespace eslam {

class SlamService;
struct ServiceSession;

// What a session does with its map: build one (the full FE->FM->PE->PO->MU
// pipeline over a private live map) or serve against a frozen one
// (read-only localization; see the file comment).
enum class SessionKind { kMapping, kLocalization };

struct ServiceOptions {
  // ARM worker pool width (how many sessions can be in PE/PO/MU at once).
  int arm_workers = 2;
  // Bound on the shared background-job lane (frozen shard-BA and
  // loop-verification jobs awaiting pool slack); see
  // runtime/SchedulerOptions.
  int backend_queue_capacity = 16;
  // Two-class priority discipline for the lane (loop verification pops
  // before routine shard BA); see runtime/SchedulerOptions.
  bool backend_priority = true;
};

// Everything one session needs: sensor, platform, tracker tuning, and its
// runtime knobs.  Sessions are fully independent — distinct cameras,
// distinct backends, distinct maps.
struct SessionConfig {
  SessionKind kind = SessionKind::kMapping;
  // Mapping sessions only; a localization session projects with the
  // camera stored in its frozen map (the one that built it), so `camera`
  // is ignored there.
  PinholeCamera camera = PinholeCamera::tum_freiburg1();
  BackendConfig backend;
  // Mapping-session tuning (ignored for kLocalization).
  TrackerOptions tracker;
  // kLocalization only: the shared immutable map to serve against
  // (required — open_session asserts) and the localizer's tuning.
  std::shared_ptr<const FrozenMap> frozen_map;
  LocalizerOptions localizer;
  int queue_capacity = 4;         // this session's input/handoff ring depth
  bool speculative_match = true;
  bool record_events = false;     // off by default: sessions are long-lived
  StagePacer pacer;               // platform-emulation padding (benches)
  // Overrides make_feature_backend(backend) when set — lets tests and
  // benches inject instrumented/emulated backends per session.
  std::function<std::unique_ptr<FeatureBackend>()> backend_factory;
};

struct ServiceStats {
  int sessions_open = 0;
  int sessions_opened_total = 0;
  // Per-kind split of the two counters above.
  int mapping_sessions_open = 0;
  int localization_sessions_open = 0;
  int mapping_sessions_opened_total = 0;
  int localization_sessions_opened_total = 0;
  int arm_workers = 0;
  std::int64_t device_dispatches = 0;  // across live sessions (fairness)
  // Most backend jobs ever simultaneously running on the pool, across all
  // sessions (shard-BA concurrency witness).
  int backend_concurrent_hwm = 0;
  // Localization-tier cold-start relocalizations, lifetime across all
  // localization sessions (attempts engage the recognition index; a
  // success recovered a pose).
  std::int64_t localization_coldstart_attempts = 0;
  std::int64_t localization_coldstart_successes = 0;
};

// A client's connection to one tracking session.  Move-only; closing (or
// destroying) the handle drains the session and releases its scheduler
// slot and tracker.
class SessionHandle {
 public:
  SessionHandle() = default;
  ~SessionHandle();
  SessionHandle(SessionHandle&& other) noexcept;
  SessionHandle& operator=(SessionHandle&& other) noexcept;
  SessionHandle(const SessionHandle&) = delete;
  SessionHandle& operator=(const SessionHandle&) = delete;

  bool valid() const { return service_ != nullptr; }
  int id() const;
  // kMapping on an invalid handle (the default-constructed state).
  SessionKind kind() const;

  // Non-blocking feed; false on this session's back-pressure (input ring
  // full) or on an invalid handle.
  bool try_feed(FrameInput frame);
  // Blocking feed (waits for ring space; other sessions are unaffected).
  void feed(FrameInput frame);
  // Next result in feed order, if ready.
  std::optional<TrackResult> poll();
  // Blocks until every fed frame is delivered and this session's
  // background BA job (if any) has finished; returns the remainder.
  std::vector<TrackResult> drain();

  int in_flight() const;
  // Runtime stats, including the background lane's per-class job counts
  // and queue latencies, the pool-wide backend-concurrency high-water
  // mark, and the per-session pruned/culled/fused map-maintenance totals.
  PipelineStats stats() const;
  // The tracker's own local-mapping counters (per-class jobs run, shard
  // freeze accounting, BA iterations/costs, points moved).  Thread-safe
  // at any time — the tracker snapshots them under its backend mutex.
  // Zeros for a localization session (it has no backend lane).
  backend::BackendStats backend_stats() const;
  std::vector<StageEvent> stage_events() const;

  // The session's tracker (trajectory, map).  Mapping sessions only
  // (asserts); only valid while quiescent — after drain() and before the
  // next feed.
  const Tracker& tracker() const;
  // The session's localizer.  Localization sessions only (asserts); same
  // quiescence rule as tracker().
  const Localizer& localizer() const;
  // use_count of this session's frozen-map handle — how many owners
  // (sessions, caller copies) currently share the map.  0 for mapping
  // sessions and invalid handles.
  long frozen_map_use_count() const;

  // Drains, unregisters and destroys the session; returns the not-yet-
  // polled results.  The handle is invalid afterwards (idempotent).
  std::vector<TrackResult> close();

 private:
  friend class SlamService;
  SessionHandle(SlamService* service, std::shared_ptr<ServiceSession> session);

  SlamService* service_ = nullptr;
  std::shared_ptr<ServiceSession> session_;
};

class SlamService {
 public:
  explicit SlamService(const ServiceOptions& options = {});
  ~SlamService();

  SlamService(const SlamService&) = delete;
  SlamService& operator=(const SlamService&) = delete;

  // Opens a new independent tracking session.
  SessionHandle open_session(const SessionConfig& config = {});

  int session_count() const;
  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  // Prometheus-style text exposition of the process-wide metrics registry
  // (obs/metrics.h): every counter, gauge and latency histogram the
  // engine's layers registered — tracker stages, scheduler dispatch,
  // backend queue waits, localizer frame latency, plus the service-level
  // session rollups below.  This string is what a wire endpoint would
  // serve; until the protocol lands, callers scrape it directly.
  std::string metrics_exposition() const;

 private:
  friend class SessionHandle;

  ServiceOptions options_;
  TrackerScheduler scheduler_;
  mutable std::mutex mutex_;
  int sessions_opened_ = 0;
  int mapping_opened_ = 0;       // guarded by mutex_
  int localization_opened_ = 0;  // guarded by mutex_

  // Service-level session rollups (resolved once at construction; see
  // obs/metrics.h).  Lifetime/frames are recorded at close — a session
  // that never closes contributes only to the opened counters.
  obs::Counter* opened_mapping_total_ = nullptr;
  obs::Counter* opened_localization_total_ = nullptr;
  obs::Counter* closed_total_ = nullptr;
  obs::Histogram* session_lifetime_ms_ = nullptr;
  obs::Histogram* session_frames_ = nullptr;
};

}  // namespace eslam
