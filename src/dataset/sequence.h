// Synthetic TUM-like RGB-D sequences: trajectory generator + box-room
// renderer behind a lazy per-frame interface (frames are rendered on
// demand so a 5-sequence evaluation does not hold gigabytes of pixels).
#pragma once

#include <string>
#include <vector>

#include "dataset/scene.h"
#include "dataset/trajectory_gen.h"
#include "geometry/camera.h"
#include "slam/tracker.h"

namespace eslam {

struct SequenceOptions {
  int frames = 100;
  double fps = 30.0;
  BoxRoomOptions room;
};

class SyntheticSequence {
 public:
  SyntheticSequence(SequenceId id, const SequenceOptions& options = {});

  int size() const { return options_.frames; }
  const std::string& name() const { return name_; }
  const PinholeCamera& camera() const { return camera_; }

  // Renders frame i (gray + depth + timestamp).
  FrameInput frame(int i) const;

  // Ground-truth camera-in-world pose of frame i.
  const SE3& ground_truth(int i) const;
  const std::vector<SE3>& ground_truth() const { return ground_truth_; }

  double timestamp(int i) const { return i / options_.fps; }

 private:
  SequenceId id_;
  SequenceOptions options_;
  std::string name_;
  PinholeCamera camera_;
  BoxRoomScene scene_;
  std::vector<SE3> ground_truth_;
};

}  // namespace eslam
