#include "dataset/trajectory_gen.h"

#include <cmath>

#include "geometry/assert.h"

namespace eslam {

namespace {

constexpr double kTau = 2.0 * M_PI;

// Yaw-pitch-roll rotation, camera convention (z forward, x right, y down):
// yaw about the vertical (y) axis, pitch about x, roll about z.
Mat3 ypr(double yaw, double pitch, double roll) {
  return axis_rotation(1, yaw) * axis_rotation(0, pitch) *
         axis_rotation(2, roll);
}

}  // namespace

const std::vector<SequenceId>& evaluation_sequences() {
  static const std::vector<SequenceId> kAll = {
      SequenceId::kFr1Xyz, SequenceId::kFr2Xyz, SequenceId::kFr1Desk,
      SequenceId::kFr1Room, SequenceId::kFr2Rpy};
  return kAll;
}

std::string sequence_name(SequenceId id) {
  switch (id) {
    case SequenceId::kFr1Xyz:
      return "fr1/xyz";
    case SequenceId::kFr1Desk:
      return "fr1/desk";
    case SequenceId::kFr1Room:
      return "fr1/room";
    case SequenceId::kFr2Xyz:
      return "fr2/xyz";
    case SequenceId::kFr2Rpy:
      return "fr2/rpy";
    case SequenceId::kLoopRevisit:
      return "synthetic/loop";
  }
  return "unknown";
}

SE3 trajectory_pose(SequenceId id, double s) {
  ESLAM_ASSERT(s >= 0.0 && s <= 1.0, "normalized time out of range");
  switch (id) {
    case SequenceId::kFr1Xyz: {
      // Hand-held axis jiggle: translation-dominant, small yaw wobble.
      const Vec3 t{0.45 * std::sin(kTau * s),
                   0.22 * std::sin(2.0 * kTau * s + 1.0),
                   -0.6 + 0.35 * std::sin(1.5 * kTau * s + 0.5)};
      const Mat3 r = ypr(0.04 * std::sin(kTau * s + 0.3),
                         0.03 * std::sin(kTau * s * 2.0), 0.0);
      return SE3{r, t};
    }
    case SequenceId::kFr1Desk: {
      // Sweep across a desk: lateral arc plus a moderate yaw pan.
      const double yaw = 0.45 * std::sin(kTau * s);
      const Vec3 t{0.9 * std::sin(kTau * s),
                   0.10 * std::sin(2.0 * kTau * s),
                   -0.4 + 0.25 * std::cos(kTau * s)};
      const Mat3 r = ypr(yaw, 0.08 * std::sin(kTau * s * 1.5), 0.0);
      return SE3{r, t};
    }
    case SequenceId::kFr1Room: {
      // Orbit around the room with a large (but not closing) yaw sweep;
      // wide viewpoint changes make this the hardest sequence, as in the
      // paper's Figure 8.
      const double yaw = 1.6 * std::sin(kTau * s);  // +-92 degrees
      const Vec3 t{1.1 * std::sin(kTau * s), 0.12 * std::sin(2.0 * kTau * s),
                   -0.8 + 0.5 * std::cos(kTau * s)};
      const Mat3 r = ypr(yaw, 0.05 * std::sin(kTau * s * 2.0), 0.0);
      return SE3{r, t};
    }
    case SequenceId::kFr2Xyz: {
      // fr2 rig: slower, smoother, smaller amplitudes.
      const Vec3 t{0.28 * std::sin(kTau * s),
                   0.14 * std::sin(2.0 * kTau * s + 0.8),
                   -0.5 + 0.20 * std::sin(kTau * s + 1.2)};
      const Mat3 r = ypr(0.02 * std::sin(kTau * s), 0.015 * std::sin(kTau * s),
                         0.0);
      return SE3{r, t};
    }
    case SequenceId::kFr2Rpy: {
      // Rotation-dominant: the camera mostly spins in place.
      const double roll = 0.18 * std::sin(kTau * s);
      const double pitch = 0.14 * std::sin(kTau * s * 2.0 + 0.4);
      const double yaw = 0.28 * std::sin(kTau * s * 1.5 + 1.0);
      const Vec3 t{0.05 * std::sin(kTau * s), 0.04 * std::sin(kTau * s * 2.0),
                   -0.5 + 0.05 * std::cos(kTau * s)};
      return SE3{ypr(yaw, pitch, roll), t};
    }
    case SequenceId::kLoopRevisit: {
      // Out-and-back revisit: u(s) = sin^2(pi s) sweeps 0 -> 1 -> 0, so
      // the camera traverses a long desk-like lateral arc (bounded yaw —
      // the motion envelope the matcher is robust in) and smoothly
      // retraces it.  The return leg re-observes outbound viewpoints
      // after an absence that grows toward the start: with an
      // active-window map (small prune age) the old points are long gone
      // by then, so the revisit is genuine recognition territory — drift
      // has accumulated over the round trip, and only the keyframe
      // database remembers the place.
      const double sp = std::sin(M_PI * s);
      const double u = sp * sp;
      const double yaw = 0.6 * u;
      const Vec3 t{2.2 * u, 0.08 * std::sin(kTau * s), -0.4 + 0.3 * u};
      const Mat3 r = ypr(yaw, 0.06 * std::sin(kTau * s), 0.0);
      return SE3{r, t};
    }
  }
  return SE3{};
}

std::vector<SE3> sample_trajectory(SequenceId id, int frames) {
  ESLAM_ASSERT(frames >= 2, "need at least two frames");
  std::vector<SE3> poses;
  poses.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i)
    poses.push_back(trajectory_pose(id, static_cast<double>(i) / (frames - 1)));
  return poses;
}

}  // namespace eslam
