#include "dataset/texture.h"

#include <algorithm>
#include <cmath>

namespace eslam {

namespace {

// Lattice value in [0, 1) at integer cell (ix, iy).
double lattice(std::uint32_t seed, int face, std::int32_t ix, std::int32_t iy,
               std::uint32_t octave) {
  std::uint32_t h = hash_combine(seed, static_cast<std::uint32_t>(face + 1));
  h = hash_combine(h, octave);
  h = hash_combine(h, static_cast<std::uint32_t>(ix));
  h = hash_combine(h, static_cast<std::uint32_t>(iy));
  return h * (1.0 / 4294967296.0);
}

// Quantized (stepwise-constant) value noise: each lattice cell is one flat
// intensity plateau — boundaries between cells are sharp edges and their
// junctions are corners.
double quantized_noise(std::uint32_t seed, int face, double u, double v,
                       double cell_size, std::uint32_t octave, int levels) {
  const auto fi = [](double x) {
    return static_cast<std::int32_t>(std::floor(x));
  };
  const double raw = lattice(seed, face, fi(u / cell_size), fi(v / cell_size),
                             octave);
  return std::floor(raw * levels) / (levels - 1.0);
}

}  // namespace

std::uint8_t texture_intensity(int face, double u, double v,
                               std::uint32_t seed) {
  // Three octaves of plateau noise: coarse room-scale patches, mid-scale
  // blocks, fine detail.  Weights sum to 1.
  const double coarse = quantized_noise(seed, face, u, v, 0.45, 11u, 4);
  const double mid = quantized_noise(seed, face, u, v, 0.13, 23u, 5);
  const double fine = quantized_noise(seed, face, u, v, 0.042, 37u, 3);

  double value = 0.35 * coarse + 0.40 * mid + 0.17 * fine;

  // A sparse checker accent: strong dark/light squares on ~7% of cells,
  // guaranteeing high-contrast corners even where noise octaves agree.
  const std::int32_t cx = static_cast<std::int32_t>(std::floor(u / 0.09));
  const std::int32_t cy = static_cast<std::int32_t>(std::floor(v / 0.09));
  const std::uint32_t h = hash_combine(
      hash_combine(seed, static_cast<std::uint32_t>(face + 101)),
      hash_combine(static_cast<std::uint32_t>(cx),
                   static_cast<std::uint32_t>(cy)));
  if ((h & 15u) == 0u) value = (h & 16u) ? 0.95 : 0.05;

  const double scaled = 20.0 + value * 215.0;  // keep away from clipping
  return static_cast<std::uint8_t>(
      std::clamp(static_cast<int>(std::lround(scaled)), 0, 255));
}

}  // namespace eslam
