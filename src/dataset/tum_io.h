// TUM trajectory file format: one pose per line,
//   timestamp tx ty tz qx qy qz qw
// (camera-in-world).  This is the interchange format of the TUM RGB-D
// benchmark tools; Figure 9's trajectory dump uses it.
#pragma once

#include <string>
#include <vector>

#include "geometry/se3.h"

namespace eslam {

struct TimedPose {
  double timestamp = 0;
  SE3 pose_wc;
};

bool write_tum_trajectory(const std::string& path,
                          const std::vector<TimedPose>& trajectory);

// Returns an empty vector on I/O or parse failure.
std::vector<TimedPose> read_tum_trajectory(const std::string& path);

// Formats a single pose as a TUM line (no trailing newline).
std::string tum_line(const TimedPose& pose);

}  // namespace eslam
