#include "dataset/tum_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "geometry/quaternion.h"

namespace eslam {

std::string tum_line(const TimedPose& pose) {
  const Quaternion q = Quaternion::from_rotation(pose.pose_wc.rotation());
  const Vec3& t = pose.pose_wc.translation();
  char buf[256];
  std::snprintf(buf, sizeof buf, "%.6f %.6f %.6f %.6f %.6f %.6f %.6f %.6f",
                pose.timestamp, t[0], t[1], t[2], q.x, q.y, q.z, q.w);
  return buf;
}

bool write_tum_trajectory(const std::string& path,
                          const std::vector<TimedPose>& trajectory) {
  std::ofstream os(path);
  if (!os) return false;
  os << "# timestamp tx ty tz qx qy qz qw\n";
  for (const TimedPose& p : trajectory) os << tum_line(p) << "\n";
  return static_cast<bool>(os);
}

std::vector<TimedPose> read_tum_trajectory(const std::string& path) {
  std::ifstream is(path);
  if (!is) return {};
  std::vector<TimedPose> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    double ts, tx, ty, tz, qx, qy, qz, qw;
    if (!(ls >> ts >> tx >> ty >> tz >> qx >> qy >> qz >> qw)) return {};
    TimedPose p;
    p.timestamp = ts;
    p.pose_wc = SE3{Quaternion{qw, qx, qy, qz}.to_rotation(),
                    Vec3{tx, ty, tz}};
    out.push_back(p);
  }
  return out;
}

}  // namespace eslam
