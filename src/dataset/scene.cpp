#include "dataset/scene.h"

#include <cmath>
#include <limits>

#include "dataset/texture.h"

namespace eslam {

BoxRoomScene::BoxRoomScene(const BoxRoomOptions& options) : options_(options) {
  ESLAM_ASSERT(options.hx > 0 && options.hy > 0 && options.hz > 0,
               "room extents must be positive");
}

bool BoxRoomScene::cast_ray(const Vec3& origin, const Vec3& dir, double& t,
                            int& face, double& u, double& v) const {
  // The camera is inside the box, so along each axis the ray exits through
  // at most one wall; the hit is the *smallest* positive exit parameter.
  const double half[3] = {options_.hx, options_.hy, options_.hz};
  t = std::numeric_limits<double>::infinity();
  face = -1;
  for (int axis = 0; axis < 3; ++axis) {
    if (dir[axis] == 0.0) continue;
    const double wall = dir[axis] > 0.0 ? half[axis] : -half[axis];
    const double ti = (wall - origin[axis]) / dir[axis];
    if (ti > 0.0 && ti < t) {
      t = ti;
      face = axis * 2 + (dir[axis] > 0.0 ? 0 : 1);
    }
  }
  if (face < 0) return false;
  const Vec3 hit = origin + t * dir;
  // In-face coordinates: the two axes other than the face normal.
  const int axis = face / 2;
  const int ua = (axis + 1) % 3;
  const int va = (axis + 2) % 3;
  u = hit[ua];
  v = hit[va];
  return true;
}

RenderedFrame BoxRoomScene::render(const PinholeCamera& camera,
                                   const SE3& pose_wc,
                                   std::uint32_t frame_id) const {
  const Vec3 origin = pose_wc.translation();
  ESLAM_ASSERT(std::abs(origin[0]) < options_.hx &&
                   std::abs(origin[1]) < options_.hy &&
                   std::abs(origin[2]) < options_.hz,
               "camera must stay inside the room");

  RenderedFrame frame;
  frame.gray = ImageU8(camera.width(), camera.height());
  frame.depth = ImageU16(camera.width(), camera.height());

  const Mat3& r = pose_wc.rotation();
  const double inv_fx = 1.0 / camera.fx();
  const double inv_fy = 1.0 / camera.fy();

  for (int y = 0; y < camera.height(); ++y) {
    std::uint8_t* gray_row = frame.gray.row(y);
    std::uint16_t* depth_row = frame.depth.row(y);
    const double dy = (y - camera.cy()) * inv_fy;
    for (int x = 0; x < camera.width(); ++x) {
      const double dx = (x - camera.cx()) * inv_fx;
      // Camera-frame direction with z = 1, so the hit parameter t equals
      // the projective depth z directly.
      const Vec3 dir_w = r * Vec3{dx, dy, 1.0};
      double t, u, v;
      int face;
      if (!cast_ray(origin, dir_w, t, face, u, v)) {
        gray_row[x] = 0;
        depth_row[x] = 0;
        continue;
      }
      int intensity = texture_intensity(face, u, v, options_.texture_seed);
      if (options_.noise_sigma > 0.0) {
        // Two-hash Box-Muller-ish perturbation: cheap symmetric noise from
        // a deterministic per-pixel hash (uniform sum approximation).
        std::uint32_t h = hash_combine(frame_id + 0x51edu,
                                       static_cast<std::uint32_t>(y) * 40961u +
                                           static_cast<std::uint32_t>(x));
        const double n01 = ((h & 0xffffu) + ((h >> 16) & 0xffffu)) /
                               65535.0 -
                           1.0;  // triangular in [-1, 1]
        intensity += static_cast<int>(
            std::lround(n01 * options_.noise_sigma * 2.0));
      }
      gray_row[x] = static_cast<std::uint8_t>(std::clamp(intensity, 0, 255));
      const double depth_units = t * options_.depth_factor;
      depth_row[x] = static_cast<std::uint16_t>(
          std::clamp(depth_units, 0.0, 65535.0));
    }
  }
  return frame;
}

}  // namespace eslam
