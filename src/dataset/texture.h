// Deterministic procedural wall texture for the synthetic box-room scene.
//
// The texture must give FAST something to detect: it is built from
// several octaves of *quantized* value noise (flat plateaus with sharp
// steps -> strong corners at plateau junctions) plus a fine checker
// component.  Everything derives from integer hashes, so a (face, u, v)
// query is bit-stable across platforms and frames.
#pragma once

#include <cstdint>

namespace eslam {

// 32-bit avalanche hash (finalizer of MurmurHash3).
constexpr std::uint32_t hash_u32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x85ebca6bu;
  x ^= x >> 13;
  x *= 0xc2b2ae35u;
  x ^= x >> 16;
  return x;
}

constexpr std::uint32_t hash_combine(std::uint32_t a, std::uint32_t b) {
  return hash_u32(a ^ (b + 0x9e3779b9u + (a << 6) + (a >> 2)));
}

// Texture intensity in [0, 255] at metric coordinates (u, v) on `face`
// (0..5).  `seed` varies the world.
std::uint8_t texture_intensity(int face, double u, double v,
                               std::uint32_t seed = 1u);

}  // namespace eslam
