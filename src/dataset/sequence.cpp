#include "dataset/sequence.h"

namespace eslam {

namespace {

PinholeCamera camera_for(SequenceId id) {
  switch (id) {
    case SequenceId::kFr2Xyz:
    case SequenceId::kFr2Rpy:
      return PinholeCamera::tum_freiburg2();
    default:
      return PinholeCamera::tum_freiburg1();
  }
}

}  // namespace

SyntheticSequence::SyntheticSequence(SequenceId id,
                                     const SequenceOptions& options)
    : id_(id),
      options_(options),
      name_(sequence_name(id)),
      camera_(camera_for(id)),
      scene_(options.room),
      ground_truth_(sample_trajectory(id, options.frames)) {}

FrameInput SyntheticSequence::frame(int i) const {
  ESLAM_ASSERT(i >= 0 && i < size(), "frame index out of range");
  RenderedFrame rendered = scene_.render(
      camera_, ground_truth_[static_cast<std::size_t>(i)],
      static_cast<std::uint32_t>(i));
  FrameInput input;
  input.gray = std::move(rendered.gray);
  input.depth = std::move(rendered.depth);
  input.timestamp = timestamp(i);
  return input;
}

const SE3& SyntheticSequence::ground_truth(int i) const {
  ESLAM_ASSERT(i >= 0 && i < size(), "frame index out of range");
  return ground_truth_[static_cast<std::size_t>(i)];
}

}  // namespace eslam
