// Ground-truth trajectory generators mimicking the motion character of the
// five TUM sequences the paper evaluates (section 4.1):
//   fr1/xyz  — translation-dominant, hand-held jiggle along the axes
//   fr1/desk — sweep across a desk: arc translation + moderate yaw
//   fr1/room — loop around the room with large yaw coverage
//   fr2/xyz  — like fr1/xyz but slower and smoother (fr2 rig)
//   fr2/rpy  — rotation-dominant: roll/pitch/yaw wiggles, little translation
// All motions are C-infinity (sums of sinusoids), so numeric differentiation
// in tests is well behaved, and all stay inside the default BoxRoom.
#pragma once

#include <string>
#include <vector>

#include "geometry/se3.h"

namespace eslam {

enum class SequenceId {
  kFr1Xyz,
  kFr1Desk,
  kFr1Room,
  kFr2Xyz,
  kFr2Rpy,
  // Synthetic loop-revisit preset (not one of the paper's five, so not in
  // evaluation_sequences()): a closed full-yaw circuit whose final frames
  // re-observe the opening views — the loop-closure and relocalization
  // workload for bench/loop_closure and the backend tests.
  kLoopRevisit,
};

// The five evaluation sequences in the paper's Figure 8 order.
const std::vector<SequenceId>& evaluation_sequences();

std::string sequence_name(SequenceId id);

// Camera-in-world pose at normalized time s in [0, 1].
SE3 trajectory_pose(SequenceId id, double s);

// Sampled ground truth, `frames` poses at uniform time steps.
std::vector<SE3> sample_trajectory(SequenceId id, int frames);

}  // namespace eslam
