#include "dataset/multi_sequence.h"

#include "geometry/assert.h"

namespace eslam {

namespace {

// splitmix64-style finalizer: decorrelates (base seed, stream index) into
// a texture seed, so adjacent streams get unrelated wall textures.
std::uint32_t derive_seed(std::uint32_t base, std::uint32_t set_seed,
                          int stream) {
  std::uint64_t z = (static_cast<std::uint64_t>(base) << 32) ^
                    (static_cast<std::uint64_t>(set_seed) +
                     0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                 stream + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  // Never zero: keep a valid texture seed even for adversarial inputs.
  const std::uint32_t seed = static_cast<std::uint32_t>(z);
  return seed == 0 ? 1u : seed;
}

}  // namespace

MultiSequenceSet::MultiSequenceSet(const MultiSequenceOptions& options)
    : options_(options) {
  ESLAM_ASSERT(options.streams > 0, "need at least one stream");
  streams_.reserve(static_cast<std::size_t>(options.streams));
  for (int i = 0; i < options.streams; ++i) {
    SequenceOptions per_stream = options.sequence;
    per_stream.room.texture_seed =
        derive_seed(options.sequence.room.texture_seed, options.set_seed, i);
    streams_.push_back(
        std::make_unique<SyntheticSequence>(stream_id(i), per_stream));
  }
}

SequenceId MultiSequenceSet::stream_id(int i) const {
  const std::vector<SequenceId>& ids = evaluation_sequences();
  return ids[static_cast<std::size_t>(i) % ids.size()];
}

}  // namespace eslam
