// N distinct synthetic camera streams for multi-session workloads.
//
// A multi-session service is only exercised honestly when its sessions see
// genuinely different data: different trajectories, different room
// textures, and therefore different maps, key-frame cadences and match
// populations.  MultiSequenceSet builds N SyntheticSequences by cycling
// the five evaluation trajectories and deriving a per-stream texture seed,
// so "open K sessions on K independent cameras" is one constructor call in
// tests and benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "dataset/sequence.h"

namespace eslam {

struct MultiSequenceOptions {
  int streams = 4;
  // Per-stream sequence shape (frames, fps, room).  room.texture_seed acts
  // as the base: stream i renders with a seed derived from (it, i), so no
  // two streams share wall textures unless the derivation is forced.
  SequenceOptions sequence;
  // Extra entropy for the per-stream derivation (lets two sets with the
  // same base options produce disjoint stream families).
  std::uint32_t set_seed = 0x5e551071u;  // "session"
};

class MultiSequenceSet {
 public:
  explicit MultiSequenceSet(const MultiSequenceOptions& options = {});

  int size() const { return static_cast<int>(streams_.size()); }
  const SyntheticSequence& stream(int i) const { return *streams_.at(i); }
  const MultiSequenceOptions& options() const { return options_; }

  // The trajectory family stream i follows (cycled evaluation sequences).
  SequenceId stream_id(int i) const;

 private:
  MultiSequenceOptions options_;
  std::vector<std::unique_ptr<SyntheticSequence>> streams_;
};

}  // namespace eslam
