// Synthetic box-room scene rendered by per-pixel ray casting.
//
// This is the stand-in for the TUM RGB-D recordings (see DESIGN.md): the
// camera moves inside an axis-aligned textured box; every pixel's ray is
// intersected with the walls, giving a grayscale intensity (procedural
// texture) and an exact depth map — the same data layout a Kinect frame
// provides, with perfect ground truth.
#pragma once

#include <cstdint>

#include "geometry/camera.h"
#include "geometry/se3.h"
#include "image/image.h"

namespace eslam {

struct RenderedFrame {
  ImageU8 gray;
  ImageU16 depth;  // TUM convention: metres * depth_factor (5000)
};

struct BoxRoomOptions {
  // Half-extents of the room (metres): x in [-hx, hx] etc.
  double hx = 3.2;
  double hy = 2.2;
  double hz = 3.2;
  std::uint32_t texture_seed = 1u;
  double depth_factor = 5000.0;
  // Additive Gaussian pixel noise (sigma, gray levels); 0 disables.  Noise
  // is hash-derived from (frame_id, x, y) so renders stay deterministic.
  double noise_sigma = 2.0;
};

class BoxRoomScene {
 public:
  explicit BoxRoomScene(const BoxRoomOptions& options = {});

  // Renders the view from `pose_wc` (camera-in-world).  The camera centre
  // must be strictly inside the room.  `frame_id` seeds the pixel noise.
  RenderedFrame render(const PinholeCamera& camera, const SE3& pose_wc,
                       std::uint32_t frame_id = 0) const;

  // Casts a single world-space ray from `origin` along (non-zero) `dir`;
  // returns the hit parameter t (point = origin + t * dir), face index and
  // in-face texture coordinates.  Used directly by tests.
  bool cast_ray(const Vec3& origin, const Vec3& dir, double& t, int& face,
                double& u, double& v) const;

  const BoxRoomOptions& options() const { return options_; }

 private:
  BoxRoomOptions options_;
};

}  // namespace eslam
