#include "image/draw.h"

#include <cmath>
#include <cstdlib>

namespace eslam {

void draw_point(ImageRgb& img, int x, int y, Rgb color, int radius) {
  for (int dy = -radius; dy <= radius; ++dy)
    for (int dx = -radius; dx <= radius; ++dx)
      if (img.contains(x + dx, y + dy)) img.at(x + dx, y + dy) = color;
}

void draw_line(ImageRgb& img, int x0, int y0, int x1, int y1, Rgb color) {
  // Bresenham.
  const int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  const int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    if (img.contains(x0, y0)) img.at(x0, y0) = color;
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void draw_circle(ImageRgb& img, int cx, int cy, int radius, Rgb color) {
  // Midpoint circle.
  int x = radius, y = 0, err = 1 - radius;
  auto plot8 = [&](int px, int py) {
    const int xs[8] = {cx + px, cx - px, cx + px, cx - px,
                       cx + py, cx - py, cx + py, cx - py};
    const int ys[8] = {cy + py, cy + py, cy - py, cy - py,
                       cy + px, cy + px, cy - px, cy - px};
    for (int i = 0; i < 8; ++i)
      if (img.contains(xs[i], ys[i])) img.at(xs[i], ys[i]) = color;
  };
  while (x >= y) {
    plot8(x, y);
    ++y;
    if (err < 0) {
      err += 2 * y + 1;
    } else {
      --x;
      err += 2 * (y - x) + 1;
    }
  }
}

void draw_cross(ImageRgb& img, int x, int y, int arm, Rgb color) {
  draw_line(img, x - arm, y, x + arm, y, color);
  draw_line(img, x, y - arm, x, y + arm, color);
}

ImageRgb hstack(const ImageRgb& left, const ImageRgb& right) {
  const int h = std::max(left.height(), right.height());
  ImageRgb out(left.width() + right.width(), h);
  for (int y = 0; y < left.height(); ++y)
    for (int x = 0; x < left.width(); ++x) out.at(x, y) = left.at(x, y);
  for (int y = 0; y < right.height(); ++y)
    for (int x = 0; x < right.width(); ++x)
      out.at(left.width() + x, y) = right.at(x, y);
  return out;
}

}  // namespace eslam
