// Dense row-major image container.
//
// Image<uint8_t> is the grayscale workhorse; Image<uint16_t> carries depth
// in millimetres (TUM convention: depth_mm = metres * 5000 clipped to
// uint16 in the real dataset; we use a plain millimetre scale documented in
// dataset/sequence.h).  Image<float> appears in the Harris reference path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/assert.h"

namespace eslam {

template <typename T>
class Image {
 public:
  Image() = default;
  Image(int width, int height, T fill_value = T{})
      : width_(width),
        height_(height),
        data_(static_cast<std::size_t>(width) * height, fill_value) {
    ESLAM_ASSERT(width > 0 && height > 0, "image dimensions must be positive");
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }
  std::size_t pixel_count() const { return data_.size(); }

  T& at(int x, int y) {
    ESLAM_ASSERT(contains(x, y), "pixel out of bounds");
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  T at(int x, int y) const {
    ESLAM_ASSERT(contains(x, y), "pixel out of bounds");
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  // Clamp-to-edge access, used by window operators near borders.
  T at_clamped(int x, int y) const {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  bool contains(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  const T* row(int y) const {
    ESLAM_ASSERT(y >= 0 && y < height_, "row out of bounds");
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }
  T* row(int y) {
    ESLAM_ASSERT(y >= 0 && y < height_, "row out of bounds");
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  // Resizes to width x height, reusing the existing buffer when its
  // capacity allows (the _into operators call this every frame; after the
  // first frame it never allocates).  Pixel contents are unspecified.
  void reset(int width, int height) {
    ESLAM_ASSERT(width > 0 && height > 0, "image dimensions must be positive");
    width_ = width;
    height_ = height;
    data_.resize(static_cast<std::size_t>(width) * height);
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.data_ == b.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using ImageU8 = Image<std::uint8_t>;
using ImageU16 = Image<std::uint16_t>;
using ImageF32 = Image<float>;

// Simple RGB image for visualization output (PPM).
struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  friend bool operator==(const Rgb&, const Rgb&) = default;
};
using ImageRgb = Image<Rgb>;

// Converts RGB to luma (ITU-R BT.601 integer approximation, matching what a
// camera ISP / FPGA frontend would compute).
ImageU8 to_gray(const ImageRgb& rgb);

// Expands grayscale to RGB for drawing overlays.
ImageRgb to_rgb(const ImageU8& gray);

}  // namespace eslam
