#include "image/pnm_io.h"

#include <fstream>

namespace eslam {

namespace {

// Skips whitespace and '#' comment lines between PNM header tokens.
bool next_header_int(std::istream& is, int& value) {
  while (true) {
    const int c = is.peek();
    if (c == '#') {
      std::string line;
      std::getline(is, line);
    } else if (std::isspace(c)) {
      is.get();
    } else {
      break;
    }
  }
  return static_cast<bool>(is >> value);
}

}  // namespace

bool write_pgm(const std::string& path, const ImageU8& image) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(image.data().data()),
           static_cast<std::streamsize>(image.pixel_count()));
  return static_cast<bool>(os);
}

bool write_ppm(const std::string& path, const ImageRgb& image) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(image.data().data()),
           static_cast<std::streamsize>(image.pixel_count() * 3));
  return static_cast<bool>(os);
}

ImageU8 read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::string magic;
  is >> magic;
  if (magic != "P5") return {};
  int w = 0, h = 0, maxval = 0;
  if (!next_header_int(is, w) || !next_header_int(is, h) ||
      !next_header_int(is, maxval))
    return {};
  if (w <= 0 || h <= 0 || maxval != 255) return {};
  is.get();  // single whitespace after maxval
  ImageU8 image(w, h);
  is.read(reinterpret_cast<char*>(image.data().data()),
          static_cast<std::streamsize>(image.pixel_count()));
  if (!is) return {};
  return image;
}

ImageRgb read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::string magic;
  is >> magic;
  if (magic != "P6") return {};
  int w = 0, h = 0, maxval = 0;
  if (!next_header_int(is, w) || !next_header_int(is, h) ||
      !next_header_int(is, maxval))
    return {};
  if (w <= 0 || h <= 0 || maxval != 255) return {};
  is.get();
  ImageRgb image(w, h);
  is.read(reinterpret_cast<char*>(image.data().data()),
          static_cast<std::streamsize>(image.pixel_count() * 3));
  if (!is) return {};
  return image;
}

}  // namespace eslam
