#include "image/pnm_io.h"

#include <cctype>
#include <fstream>
#include <string>

namespace eslam {

namespace {

// Largest accepted image: rejects absurd header dimensions before any
// allocation (a hostile or corrupt "1000000 1000000" header would
// otherwise attempt a terabyte-scale ImageU8).
constexpr long long kMaxPixels = 1LL << 26;  // 64 Mpixel, ~256 MB for RGB
constexpr int kMaxDimension = 1 << 20;

// Skips whitespace and '#' comment lines between PNM header tokens.
// Returns false on a truncated header (EOF before a token) or a malformed
// token.  peek() can return Traits::eof(), which must never reach
// std::isspace — passing a negative non-EOF value is UB per cctype.
bool next_header_int(std::istream& is, int& value) {
  while (true) {
    const int c = is.peek();
    if (c == std::istream::traits_type::eof()) return false;
    if (c == '#') {
      std::string line;
      std::getline(is, line);
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      is.get();
    } else {
      break;
    }
  }
  return static_cast<bool>(is >> value);
}

// Shared header validation for P5/P6: positive dimensions, 8-bit maxval,
// and a sane total pixel count.
bool header_ok(int w, int h, int maxval) {
  return w > 0 && h > 0 && maxval == 255 && w <= kMaxDimension &&
         h <= kMaxDimension &&
         static_cast<long long>(w) * static_cast<long long>(h) <= kMaxPixels;
}

}  // namespace

bool write_pgm(const std::string& path, const ImageU8& image) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(image.data().data()),
           static_cast<std::streamsize>(image.pixel_count()));
  return static_cast<bool>(os);
}

bool write_ppm(const std::string& path, const ImageRgb& image) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(image.data().data()),
           static_cast<std::streamsize>(image.pixel_count() * 3));
  return static_cast<bool>(os);
}

ImageU8 read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::string magic;
  is >> magic;
  if (magic != "P5") return {};
  int w = 0, h = 0, maxval = 0;
  if (!next_header_int(is, w) || !next_header_int(is, h) ||
      !next_header_int(is, maxval))
    return {};
  if (!header_ok(w, h, maxval)) return {};
  is.get();  // single whitespace after maxval
  ImageU8 image(w, h);
  is.read(reinterpret_cast<char*>(image.data().data()),
          static_cast<std::streamsize>(image.pixel_count()));
  if (!is) return {};
  return image;
}

ImageRgb read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::string magic;
  is >> magic;
  if (magic != "P6") return {};
  int w = 0, h = 0, maxval = 0;
  if (!next_header_int(is, w) || !next_header_int(is, h) ||
      !next_header_int(is, maxval))
    return {};
  if (!header_ok(w, h, maxval)) return {};
  is.get();
  ImageRgb image(w, h);
  is.read(reinterpret_cast<char*>(image.data().data()),
          static_cast<std::streamsize>(image.pixel_count() * 3));
  if (!is) return {};
  return image;
}

}  // namespace eslam
