#include "image/image.h"

namespace eslam {

ImageU8 to_gray(const ImageRgb& rgb) {
  ImageU8 gray(rgb.width(), rgb.height());
  for (int y = 0; y < rgb.height(); ++y) {
    const Rgb* src = rgb.row(y);
    std::uint8_t* dst = gray.row(y);
    for (int x = 0; x < rgb.width(); ++x) {
      // BT.601 luma with 8-bit fixed-point weights (77, 150, 29)/256.
      const int v = (77 * src[x].r + 150 * src[x].g + 29 * src[x].b) >> 8;
      dst[x] = static_cast<std::uint8_t>(v);
    }
  }
  return gray;
}

ImageRgb to_rgb(const ImageU8& gray) {
  ImageRgb rgb(gray.width(), gray.height());
  for (int y = 0; y < gray.height(); ++y) {
    const std::uint8_t* src = gray.row(y);
    Rgb* dst = rgb.row(y);
    for (int x = 0; x < gray.width(); ++x) dst[x] = Rgb{src[x], src[x], src[x]};
  }
  return rgb;
}

}  // namespace eslam
