#include "image/pyramid.h"

#include <cmath>

namespace eslam {

ImageU8 resize_nearest(const ImageU8& src, int dst_width, int dst_height) {
  ImageU8 dst;
  resize_nearest_into(src, dst_width, dst_height, dst);
  return dst;
}

void resize_nearest_into(const ImageU8& src, int dst_width, int dst_height,
                         ImageU8& dst) {
  ESLAM_ASSERT(dst_width > 0 && dst_height > 0, "bad target size");
  dst.reset(dst_width, dst_height);
  // Fixed-point 16.16 stepping, as a hardware address generator would do.
  const std::uint32_t x_step =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(src.width()) << 16) / dst_width);
  const std::uint32_t y_step =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(src.height()) << 16) / dst_height);
  std::uint32_t sy = y_step / 2;
  for (int y = 0; y < dst_height; ++y, sy += y_step) {
    const int src_y = std::min(static_cast<int>(sy >> 16), src.height() - 1);
    const std::uint8_t* src_row = src.row(src_y);
    std::uint8_t* dst_row = dst.row(y);
    std::uint32_t sx = x_step / 2;
    for (int x = 0; x < dst_width; ++x, sx += x_step) {
      const int src_x = std::min(static_cast<int>(sx >> 16), src.width() - 1);
      dst_row[x] = src_row[src_x];
    }
  }
}

ImageU8 resize_bilinear(const ImageU8& src, int dst_width, int dst_height) {
  ESLAM_ASSERT(dst_width > 0 && dst_height > 0, "bad target size");
  ImageU8 dst(dst_width, dst_height);
  const double x_ratio = static_cast<double>(src.width()) / dst_width;
  const double y_ratio = static_cast<double>(src.height()) / dst_height;
  for (int y = 0; y < dst_height; ++y) {
    const double fy = (y + 0.5) * y_ratio - 0.5;
    const int y0 = static_cast<int>(std::floor(fy));
    const double wy = fy - y0;
    for (int x = 0; x < dst_width; ++x) {
      const double fx = (x + 0.5) * x_ratio - 0.5;
      const int x0 = static_cast<int>(std::floor(fx));
      const double wx = fx - x0;
      const double v =
          (1 - wy) * ((1 - wx) * src.at_clamped(x0, y0) +
                      wx * src.at_clamped(x0 + 1, y0)) +
          wy * ((1 - wx) * src.at_clamped(x0, y0 + 1) +
                wx * src.at_clamped(x0 + 1, y0 + 1));
      dst.at(x, y) = static_cast<std::uint8_t>(std::lround(v));
    }
  }
  return dst;
}

ImagePyramid::ImagePyramid(const ImageU8& base, int levels, double scale,
                           bool use_bilinear) {
  rebuild(base, levels, scale, use_bilinear);
}

void ImagePyramid::rebuild(const ImageU8& base, int levels, double scale,
                           bool use_bilinear) {
  ESLAM_ASSERT(levels >= 1, "pyramid needs at least one level");
  ESLAM_ASSERT(scale > 1.0, "scale factor must exceed 1");
  levels_.resize(static_cast<std::size_t>(levels));
  levels_[0].image = base;  // copy-assign reuses the level-0 buffer
  levels_[0].scale = 1.0;
  for (int i = 1; i < levels; ++i) {
    const double level_scale = std::pow(scale, i);
    const int w = std::max(
        8, static_cast<int>(std::lround(base.width() / level_scale)));
    const int h = std::max(
        8, static_cast<int>(std::lround(base.height() / level_scale)));
    const std::size_t li = static_cast<std::size_t>(i);
    const ImageU8& prev = levels_[li - 1].image;
    if (use_bilinear)
      levels_[li].image = resize_bilinear(prev, w, h);
    else
      resize_nearest_into(prev, w, h, levels_[li].image);
    levels_[li].scale = level_scale;
  }
}

std::size_t ImagePyramid::total_pixels() const {
  std::size_t n = 0;
  for (const auto& l : levels_) n += l.image.pixel_count();
  return n;
}

}  // namespace eslam
