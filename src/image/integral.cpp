#include "image/integral.h"

#include <algorithm>

namespace eslam {

IntegralImage::IntegralImage(const ImageU8& src)
    : width_(src.width()),
      height_(src.height()),
      table_(static_cast<std::size_t>(src.width() + 1) * (src.height() + 1)) {
  for (int y = 0; y < height_; ++y) {
    std::int64_t row_sum = 0;
    const std::uint8_t* row = src.row(y);
    for (int x = 0; x < width_; ++x) {
      row_sum += row[x];
      table_[static_cast<std::size_t>(y + 1) * (width_ + 1) + (x + 1)] =
          at(x + 1, y) + row_sum;
    }
  }
}

std::int64_t IntegralImage::rect_sum(int x0, int y0, int x1, int y1) const {
  x0 = std::clamp(x0, 0, width_ - 1);
  x1 = std::clamp(x1, 0, width_ - 1);
  y0 = std::clamp(y0, 0, height_ - 1);
  y1 = std::clamp(y1, 0, height_ - 1);
  if (x1 < x0 || y1 < y0) return 0;
  return at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0) + at(x0, y0);
}

}  // namespace eslam
