// Minimal rasterization helpers for the example programs' visual output
// (keypoint overlays, match lines, trajectory plots).
#pragma once

#include "image/image.h"

namespace eslam {

void draw_point(ImageRgb& img, int x, int y, Rgb color, int radius = 1);
void draw_line(ImageRgb& img, int x0, int y0, int x1, int y1, Rgb color);
void draw_circle(ImageRgb& img, int cx, int cy, int radius, Rgb color);
void draw_cross(ImageRgb& img, int x, int y, int arm, Rgb color);

// Stitches two images side by side (heights may differ; padded with black).
ImageRgb hstack(const ImageRgb& left, const ImageRgb& right);

}  // namespace eslam
