// Image pyramid for scale-invariant ORB.
//
// The paper uses a 4-layer pyramid; the accelerator's Image Resizing module
// generates layer k+1 from layer k by nearest-neighbour downsampling while
// the ORB Extractor is still consuming layer k.  The scale factor between
// layers is 1.2 (the ORB-SLAM default, consistent with the paper's "48%
// more pixels than [4]" arithmetic: a 4-layer 1.2-pyramid processes ~1.48x
// the pixels of a 2-layer one).
#pragma once

#include <vector>

#include "image/image.h"

namespace eslam {

inline constexpr int kPyramidLevels = 4;
inline constexpr double kPyramidScale = 1.2;

// Nearest-neighbour resize, the operation the HW Image Resizing module
// implements (paper section 3).
ImageU8 resize_nearest(const ImageU8& src, int dst_width, int dst_height);

// Same computation into a recycled destination (no allocation once dst's
// buffer has grown to size).
void resize_nearest_into(const ImageU8& src, int dst_width, int dst_height,
                         ImageU8& dst);

// Bilinear resize, the software-reference alternative.
ImageU8 resize_bilinear(const ImageU8& src, int dst_width, int dst_height);

struct PyramidLevel {
  ImageU8 image;
  double scale = 1.0;  // multiply level coordinates by this to reach level 0
};

class ImagePyramid {
 public:
  ImagePyramid() = default;

  // Builds `levels` layers, each `scale` times smaller than the previous,
  // using nearest-neighbour downsampling (use_bilinear = false, HW-faithful)
  // or bilinear (software reference).
  ImagePyramid(const ImageU8& base, int levels = kPyramidLevels,
               double scale = kPyramidScale, bool use_bilinear = false);

  // Rebuilds in place, recycling every level's pixel buffer.  Same output
  // as constructing a fresh pyramid; zero allocations once the level
  // images have reached their steady-state sizes (nearest-neighbour path).
  void rebuild(const ImageU8& base, int levels = kPyramidLevels,
               double scale = kPyramidScale, bool use_bilinear = false);

  int levels() const { return static_cast<int>(levels_.size()); }
  const PyramidLevel& level(int i) const {
    ESLAM_ASSERT(i >= 0 && i < levels(), "pyramid level out of range");
    return levels_[static_cast<std::size_t>(i)];
  }

  // Total pixels across all levels (drives the extractor's cycle count).
  std::size_t total_pixels() const;

 private:
  std::vector<PyramidLevel> levels_;
};

}  // namespace eslam
