// Integral image (summed-area table) with 64-bit accumulators; used by the
// Harris reference implementation and texture-energy tests.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"

namespace eslam {

class IntegralImage {
 public:
  explicit IntegralImage(const ImageU8& src);

  // Sum of pixels in the inclusive rectangle [x0, x1] x [y0, y1],
  // clamped to the image bounds.
  std::int64_t rect_sum(int x0, int y0, int x1, int y1) const;

  int width() const { return width_; }
  int height() const { return height_; }

 private:
  // table_[(y+1)*(w+1) + (x+1)] = sum of src[0..x, 0..y].
  std::int64_t at(int x, int y) const {
    return table_[static_cast<std::size_t>(y) * (width_ + 1) + x];
  }
  int width_, height_;
  std::vector<std::int64_t> table_;
};

}  // namespace eslam
