#include "image/convolve.h"

#include <cmath>
#include <vector>

namespace eslam {

namespace {

constexpr int kBinomial7[7] = {1, 6, 15, 20, 15, 6, 1};  // sums to 64

}  // namespace

ImageU8 convolve_separable_u8(const ImageU8& src, const int* taps, int n,
                              int shift) {
  ESLAM_ASSERT(n % 2 == 1, "kernel length must be odd");
  const int r = n / 2;
  const int w = src.width(), h = src.height();

  // Horizontal pass into a 16-bit intermediate to keep full precision of
  // the first pass before the second shift (matches the HW datapath which
  // carries 14 bits between the two passes).
  Image<std::uint16_t> tmp(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int acc = 0;
      for (int k = -r; k <= r; ++k)
        acc += taps[k + r] * src.at_clamped(x + k, y);
      tmp.at(x, y) = static_cast<std::uint16_t>(acc);
    }
  }
  ImageU8 dst(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int acc = 0;
      for (int k = -r; k <= r; ++k)
        acc += taps[k + r] * tmp.at_clamped(x, y + k);
      // Two passes accumulate a factor of (2^shift)^2; divide once with
      // round-half-up.
      const int v = (acc + (1 << (2 * shift - 1))) >> (2 * shift);
      dst.at(x, y) = static_cast<std::uint8_t>(std::min(v, 255));
    }
  }
  return dst;
}

ImageU8 smooth_gaussian7_u8(const ImageU8& src) {
  Image<std::uint16_t> tmp;
  ImageU8 dst;
  smooth_gaussian7_u8_into(src, tmp, dst);
  return dst;
}

void smooth_gaussian7_u8_into(const ImageU8& src, Image<std::uint16_t>& tmp,
                              ImageU8& dst) {
  const int w = src.width(), h = src.height();
  tmp.reset(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int acc = 0;
      for (int k = -3; k <= 3; ++k)
        acc += kBinomial7[k + 3] * src.at_clamped(x + k, y);
      tmp.at(x, y) = static_cast<std::uint16_t>(acc);  // <= 255*64 = 16320
    }
  }
  dst.reset(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int acc = 0;
      for (int k = -3; k <= 3; ++k)
        acc += kBinomial7[k + 3] * tmp.at_clamped(x, y + k);
      // acc <= 255 * 64 * 64; normalize by 4096 with round-half-up.
      const int v = (acc + 2048) >> 12;
      dst.at(x, y) = static_cast<std::uint8_t>(std::min(v, 255));
    }
  }
}

ImageF32 smooth_gaussian7_f32(const ImageU8& src) {
  constexpr double kSigma = 2.0;
  double taps[7];
  double sum = 0.0;
  for (int k = -3; k <= 3; ++k) {
    taps[k + 3] = std::exp(-(k * k) / (2.0 * kSigma * kSigma));
    sum += taps[k + 3];
  }
  for (double& t : taps) t /= sum;

  const int w = src.width(), h = src.height();
  ImageF32 tmp(w, h), dst(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -3; k <= 3; ++k)
        acc += taps[k + 3] * src.at_clamped(x + k, y);
      tmp.at(x, y) = static_cast<float>(acc);
    }
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -3; k <= 3; ++k)
        acc += taps[k + 3] * tmp.at_clamped(x, y + k);
      dst.at(x, y) = static_cast<float>(acc);
    }
  return dst;
}

}  // namespace eslam
