// Smoothing filters.
//
// The accelerator's Image Smoother applies a 7x7 Gaussian before descriptor
// and orientation computation (paper section 3.1).  The hardware-friendly
// kernel is the separable binomial [1 6 15 20 15 6 1]/64, which needs only
// shifts and adds; smooth_gaussian7_u8 is bit-exact with the HW model in
// accel/smoother_hw.  A float reference is kept for accuracy tests.
#pragma once

#include "image/image.h"

namespace eslam {

// Integer separable 7-tap binomial smoothing with clamp-to-edge borders.
// Rounding: (sum + 32) >> 6 per pass (round-half-up), the same arithmetic
// the fixed-point hardware pipeline performs.
ImageU8 smooth_gaussian7_u8(const ImageU8& src);

// Same arithmetic into recycled intermediate + destination buffers (the
// extractor owns one pair and smooths every pyramid level through them).
void smooth_gaussian7_u8_into(const ImageU8& src, Image<std::uint16_t>& tmp,
                              ImageU8& dst);

// Float reference: true Gaussian, sigma = 2.0 (the sampling Gaussian used
// when BRIEF patterns are generated), 7x7 support, clamp-to-edge.
ImageF32 smooth_gaussian7_f32(const ImageU8& src);

// Generic separable convolution with an odd-length integer kernel whose
// taps sum to a power of two (shift is log2 of that sum).
ImageU8 convolve_separable_u8(const ImageU8& src, const int* taps, int n,
                              int shift);

}  // namespace eslam
