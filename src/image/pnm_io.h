// Binary PGM (P5) / PPM (P6) reading and writing — the only image file
// formats the project needs (examples dump visualizations as PPM, tests
// round-trip PGM).
#pragma once

#include <string>

#include "image/image.h"

namespace eslam {

bool write_pgm(const std::string& path, const ImageU8& image);
bool write_ppm(const std::string& path, const ImageRgb& image);

// Returns an empty image on failure (missing file, bad magic, bad header).
ImageU8 read_pgm(const std::string& path);
ImageRgb read_ppm(const std::string& path);

}  // namespace eslam
