// Projection gate for feature matching — tier one of the two-tier
// matching subsystem.
//
// Instead of matching every frame against the whole map (brute force,
// linear in map age), the gate projects the map's positions() snapshot
// into the image under a constant-velocity prior pose, buckets the
// projections in a spatial grid (features/GridIndex2d), and emits one
// candidate list per feature: the map points landing within a square
// window around the feature's pixel.  The candidate matcher
// (match_candidates) then does the Hamming work on those lists only, so
// per-frame match cost tracks the *visible* map, not the whole map.
//
// Brute force remains the second tier: the tracker falls back to it when
// no prior is available (bootstrap, the frame after it, the frames after
// a tracking loss) or when gating yields too few matches (the prior was
// wrong — relocalization needs the full-map search).  MatchPolicy selects
// and tunes the tiers per tracker (and, through SessionConfig, per served
// session).
#pragma once

#include <span>

#include "features/keypoint.h"
#include "features/matcher.h"
#include "geometry/camera.h"
#include "geometry/se3.h"

namespace eslam {

// Which tier produced a frame's matches (reported in TrackResult).
enum class MatchTier {
  kBruteForce,  // full-map scan (bootstrap / index-miss fallback)
  kGated,       // projection-gated candidate search
  kRelocIndex,  // keyframe-recognition index -> best keyframe's local
                // neighbourhood (post-loss relocalization)
};

struct MatchPolicy {
  // Master switch: false pins every frame to the brute-force tier.
  bool use_gate = true;
  // Half-width of the square search window around the predicted pixel.
  // Must absorb the prior's prediction error (a one-frame-stale
  // constant-velocity extrapolation) plus keypoint quantization.
  double search_radius_px = 24.0;
  // Grid bucket size; ~search radius keeps the query at <= 9 cells.
  double cell_size_px = 32.0;
  // Below this map size brute force is at least as cheap as projecting
  // and bucketing, so the gate is skipped.
  int min_map_points_for_gate = 512;
  // Fallback triggers: a gated result is accepted only when it matches at
  // least min_gated_matches features AND at least min_gated_match_fraction
  // of the queries.  Too few surviving matches is the signature of a
  // wrong prior — fast motion beyond the window, post-loss frames,
  // relocalization — and those frames need the full-map search.  (The
  // fraction is the load-bearing guard: on violent motion a misplaced
  // window still collects hundreds of aliased matches, but nowhere near
  // the share of queries a correct window yields — a healthy gate matches
  // nearly everything a full scan would.)
  int min_gated_matches = 30;
  double min_gated_match_fraction = 0.7;
};

struct GateResult {
  CandidateSet candidates;
  int projected = 0;     // map points landing inside the (padded) image
  double build_ms = 0;   // host-side projection + bucketing time
};

// Projects `map_positions` by `prior_pose_cw`, buckets the projections,
// and collects each feature's candidate list (ascending map indices, as
// match_candidates requires).  Points projecting up to search_radius_px
// outside the image are kept — their window can still cover features near
// the border.
GateResult build_candidate_set(std::span<const Vec3> map_positions,
                               const SE3& prior_pose_cw,
                               const PinholeCamera& camera,
                               const FeatureList& features,
                               const MatchPolicy& policy);

// Zero-allocation variant of the same computation: positions arrive as
// SoA lanes (the frame's borrowed MapReadView's xs()/ys()/zs() spans —
// frozen for the stage, no lock, no per-frame snapshot copy), projection runs
// through the batched SIMD kernel, and the bucket grid lives in `scratch`
// (may be null: thread-local fallback).  `out`'s CSR vectors are recycled
// across frames.  Candidate lists, projected counts, and list ordering are
// identical to build_candidate_set() on the same inputs (asserted by
// tests/features/simd_parity_test.cpp).
void build_candidate_set_into(std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const double> zs,
                              const SE3& prior_pose_cw,
                              const PinholeCamera& camera,
                              const FeatureList& features,
                              const MatchPolicy& policy, Arena* scratch,
                              GateResult& out);

const char* to_string(MatchTier tier);

}  // namespace eslam
