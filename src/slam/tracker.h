// The full RGB-D ORB-SLAM frontend of Figure 1: feature extraction ->
// feature matching -> pose estimation -> pose optimization -> (key frames
// only) map updating.
//
// Feature extraction and matching are delegated to a FeatureBackend so the
// same tracker runs with the software ORB pipeline or with the simulated
// FPGA accelerator (accel/), mirroring the paper's hardware/software split.
//
// The five stages are exposed individually (extract / match /
// estimate_pose / optimize_pose / update_map) operating on an explicit
// per-frame FrameState, so a pipeline runtime (runtime/) can keep stages
// of *different* frames in flight simultaneously as in the paper's
// Figure 7; process() is the synchronous composition of the five.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "backend/local_mapper.h"
#include "backend/map_lifecycle.h"
#include "core/arena.h"
#include "features/matcher.h"
#include "features/orb.h"
#include "geometry/camera.h"
#include "geometry/se3.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "slam/keyframe.h"
#include "slam/map.h"
#include "slam/match_gate.h"
#include "slam/ransac.h"

namespace eslam {

// Abstraction over "who computes features and matches" (ARM software vs
// FPGA fabric).  last_*_time_ms() report the backend's own notion of time:
// wall-clock for software, cycles / 100 MHz for the simulated accelerator.
//
// Matching is two-tier: match() is the full-scan tier (bootstrap /
// relocalization / fallback), match_candidates() the gated tier — each
// query scans only the candidate list the projection gate built for it.
// Every backend must implement both with consistent acceptance semantics,
// so the tracker can fall back between tiers within one frame.
class FeatureBackend {
 public:
  virtual ~FeatureBackend() = default;
  virtual FeatureList extract(const ImageU8& image) = 0;
  virtual std::vector<Match> match(std::span<const Descriptor256> queries,
                                   std::span<const Descriptor256> train) = 0;
  virtual std::vector<Match> match_candidates(
      std::span<const Descriptor256> queries,
      std::span<const Descriptor256> train,
      const CandidateSet& candidates) = 0;

  // Allocation-free variants the tracker's hot path calls: outputs land in
  // recycled buffers, matcher scratch comes from the frame's arena, and the
  // train side arrives as a TrainView so SoA-capable backends can use the
  // map's word-plane mirror.  The default adapters below stage through the
  // allocating API, so existing backends (the simulated fabric, test mocks)
  // keep working unchanged; backends on the steady-state path override.
  virtual void extract_into(const ImageU8& image, FeatureList& out) {
    out = extract(image);
  }
  virtual void match_into(std::span<const Feature> queries,
                          const TrainView& train, Arena* /*scratch*/,
                          std::vector<Match>& out) {
    std::vector<Descriptor256> staged;
    staged.reserve(queries.size());
    for (const Feature& f : queries) staged.push_back(f.descriptor);
    out = match(staged, train.aos);
  }
  virtual void match_candidates_into(std::span<const Feature> queries,
                                     const TrainView& train,
                                     const CandidateSet& candidates,
                                     Arena* /*scratch*/,
                                     std::vector<Match>& out) {
    std::vector<Descriptor256> staged;
    staged.reserve(queries.size());
    for (const Feature& f : queries) staged.push_back(f.descriptor);
    out = match_candidates(staged, train.aos, candidates);
  }

  virtual double last_extract_time_ms() const = 0;
  virtual double last_match_time_ms() const = 0;
  virtual const char* name() const = 0;
};

// Software backend: OrbExtractor + Hamming matching kernels, timed by wall
// clock.  The timing caches are atomics so the last-stage times can be
// read from a different thread than the one driving extract()/match() (the
// pipeline runtime runs both on its FPGA-model lane while stats readers
// poll).
class SoftwareBackend final : public FeatureBackend {
 public:
  explicit SoftwareBackend(const OrbConfig& orb = {},
                           const MatcherOptions& matcher = {});
  FeatureList extract(const ImageU8& image) override;
  std::vector<Match> match(std::span<const Descriptor256> queries,
                           std::span<const Descriptor256> train) override;
  std::vector<Match> match_candidates(std::span<const Descriptor256> queries,
                                      std::span<const Descriptor256> train,
                                      const CandidateSet& candidates) override;
  void extract_into(const ImageU8& image, FeatureList& out) override;
  void match_into(std::span<const Feature> queries, const TrainView& train,
                  Arena* scratch, std::vector<Match>& out) override;
  void match_candidates_into(std::span<const Feature> queries,
                             const TrainView& train,
                             const CandidateSet& candidates, Arena* scratch,
                             std::vector<Match>& out) override;
  double last_extract_time_ms() const override { return extract_ms_.load(); }
  double last_match_time_ms() const override { return match_ms_.load(); }
  const char* name() const override { return "software"; }

  OrbExtractor& extractor() { return extractor_; }

 private:
  OrbExtractor extractor_;
  MatcherOptions matcher_options_;
  std::atomic<double> extract_ms_{0.0};
  std::atomic<double> match_ms_{0.0};
};

struct FrameInput {
  ImageU8 gray;
  ImageU16 depth;       // raw sensor units; metres = value / depth_factor
  double timestamp = 0;
};

struct StageTimesMs {
  double feature_extraction = 0;
  double feature_matching = 0;
  double pose_estimation = 0;
  double pose_optimization = 0;
  double map_updating = 0;
  double total() const {
    return feature_extraction + feature_matching + pose_estimation +
           pose_optimization + map_updating;
  }
};

struct TrackResult {
  SE3 pose_cw;  // world-to-camera (the PnP estimate)
  SE3 pose_wc;  // camera-in-world (what trajectories record)
  bool lost = false;
  bool keyframe = false;
  int n_features = 0;
  int n_matches = 0;
  int n_inliers = 0;
  // Which matching tier produced this frame's matches (after fallback).
  MatchTier match_tier = MatchTier::kBruteForce;
  // Map maintenance visibility: age-pruned points from this frame's map
  // update, and — when a local-mapping backend delta was applied at this
  // keyframe — the culled/fused point counts it removed.
  int n_points_pruned = 0;
  int n_points_culled = 0;
  int n_points_fused = 0;
  bool backend_applied = false;
  // Recovery/correction visibility (a lost tracker used to burn full-map
  // matches with no signal anywhere): reloc_attempted marks a post-loss
  // frame that engaged the keyframe-recognition path (match_tier then
  // tells whether the index answered or the brute-force fallback ran);
  // relocalized marks the frame that actually recovered a pose from that
  // state; loop_closed marks a frame whose map update applied a verified
  // loop-closure correction.
  bool reloc_attempted = false;
  bool relocalized = false;
  bool loop_closed = false;
  double timestamp = 0;
  StageTimesMs times;
};

// Post-loss relocalization policy.  Active only with the local-mapping
// backend enabled (the keyframe graph + recognition index are its data);
// without it — or before the graph holds min_keyframes — a lost tracker
// falls back to the old map-wide brute-force scan.
struct RelocOptions {
  // Master switch for the indexed tier.
  bool use_index = true;
  // Consecutive lost retirements before recognition engages.  A
  // momentary flake (a 1-2 frame RANSAC dropout) recovers best through
  // the existing motion-model path — its prior is still good, and on the
  // desk regime routing those frames through recognition measurably
  // worsened ATE.  Recognition is for *persistent* loss, where the prior
  // is meaningfully stale (ORB-SLAM's lost mode).
  int min_lost_frames = 3;
  // Graph size before the index is trusted for recovery.
  int min_keyframes = 3;
  // Ranked index hits to try before falling back to brute force.
  int max_candidates = 3;
  // Best keyframe + its top covisible neighbours form the match set.
  int neighbourhood = 5;
  // A candidate neighbourhood must yield at least this many descriptor
  // matches to feed P3P; fewer means the recognition was wrong and the
  // next candidate (or the full-map fallback) runs.
  int min_matches = 20;
  // Recovery matching is verification-grade, like the loop job's: the
  // tracking tiers deliberately run at 64 bits without cross-check (and
  // the map's near-duplicates forbid a ratio test everywhere), but a lost
  // tracker matching a recognized neighbourhood needs precision — junk
  // matches are what kept P3P from ever finding the true consensus.  A
  // tighter distance plus symmetric cross-check prunes them without
  // starving on duplicates (the agreed best pair still agrees when the
  // corner exists twice).
  MatcherOptions matcher{/*max_distance=*/48, /*ratio=*/1.0,
                         /*cross_check=*/true};
  // Absolute consensus to accept a relocalized pose.  The tracking path
  // gates on an inlier *ratio* because a map-wide match set is mostly
  // aliased junk on novel views — which is exactly why a lost tracker
  // could never pass it (genuine consensus ~100 of ~1000 "matches" loses
  // to a 20% ratio floor) and stayed lost forever.  The reloc tier
  // matches only the recognized keyframe's neighbourhood, where aliasing
  // is bounded, so an absolute gate (ORB-SLAM accepts at 50) is both safe
  // and the thing that makes recovery actually terminate.
  int min_inliers = 50;
  // Plausibility gate on the recovered pose: recognizing keyframe K means
  // the camera sees K's scene, so the recovered camera centre must lie
  // within visibility range of K and face roughly the same way.  On
  // repetitive texture a wrong-place consensus can be large — without
  // this gate one such acceptance seeds map points at a phantom location
  // and every later recovery compounds it (observed: poses km out of the
  // room within 150 frames).
  double max_distance_m = 2.5;
  double max_rotation_rad = 1.3;
};

struct TrackerOptions {
  TrackerOptions() {
    // NOTE: no ratio test against the map — the map accumulates near-
    // duplicate points over keyframes, so best/second-best are often the
    // same physical corner and a ratio test starves the matcher.
    // Degenerate consensus is handled by min_inlier_ratio + P3P instead.
    // 4-point samples need more draws once the inlier share drops below
    // ~50% under viewpoint change.
    ransac.max_iterations = 256;
    // Keypoints detected on pyramid level l are quantized by scale^l when
    // mapped to level-0 coordinates; 3 px is too strict at level 3.
    ransac.inlier_threshold_px = 4.0;
  }

  MatcherOptions matcher;
  // Tier selection for feature matching against the map (projection gate
  // vs brute force); see slam/match_gate.h.  Per-session when threaded
  // through server/SessionConfig::tracker.
  MatchPolicy match;
  // Post-loss recovery via the keyframe-recognition index (backend on
  // only); see RelocOptions.
  RelocOptions reloc;
  RansacOptions ransac;
  PnpOptions pose_optimization{/*max_iterations=*/15,
                               /*initial_lambda=*/1e-4,
                               /*huber_delta=*/2.5,
                               /*convergence_step=*/1e-8};
  KeyframeOptions keyframe;
  // Asynchronous local-mapping backend (keyframe graph + windowed BA);
  // disabled by default — the frontend is then bit-identical to a
  // backend-less build.  Per-session when threaded through
  // server/SessionConfig::tracker.
  backend::BackendOptions backend;
  // Unified map-point lifecycle policy (age prune + BA cull/fuse); the one
  // owner of every point-removal decision.  Active regardless of the
  // backend switch (age pruning predates the backend); the BA evidence
  // passes only run when backend jobs run.  See backend/map_lifecycle.h.
  backend::MapLifecycleOptions lifecycle;
  double depth_factor = 5000.0;  // TUM: depth_png / 5000 = metres
  int min_tracked_inliers = 10;
  // A pose is only accepted (and allowed to trigger a key frame) when the
  // RANSAC consensus covers at least this share of the matches; guards
  // against degenerate consensus sets on repetitive texture, which would
  // otherwise pollute the map with misplaced points.
  double min_inlier_ratio = 0.2;
  // ...unless the consensus is large in absolute terms.  This must stay
  // conservative: on repetitive texture a *wrong* pose can collect tens of
  // aliased-but-consistent matches out of ~1000, so a small override
  // silently poisons the map (observed at 60; 400 keeps the gate honest
  // while still accepting overwhelming consensus on sparse match sets).
  int strong_consensus_inliers = 400;
  // Constant-velocity motion model: seed RANSAC/PnP with the previous pose
  // advanced by the last inter-frame motion instead of the raw previous
  // pose.  Essential when inter-frame motion is large.
  bool use_motion_model = true;
  // When both prior-seeded RANSAC attempts fail, run a prior-free P3P
  // RANSAC against the map (relocalization after tracking loss).
  bool relocalize_with_p3p = true;
};

// Everything one frame carries between pipeline stages.  A FrameState is
// created by begin_frame() and threaded through the five stage methods;
// because all per-frame intermediates live here (not in the Tracker),
// stages of different frames can execute concurrently under the lane
// contract documented on the stage methods.
struct FrameState {
  FrameInput input;
  int index = 0;  // frame index, assigned in feed order by begin_frame()
  FeatureList features;
  std::vector<Match> matches;
  // Tier that produced `matches` (gated candidate search vs brute force).
  MatchTier match_tier = MatchTier::kBruteForce;
  // Map structural epoch the matches were computed under.  Matches are
  // index-based, so they are only usable while the map still has this
  // epoch; the pipeline runtime replays match() when a key frame's map
  // update intervened (the paper's "FM waits for MU" dependency).  The
  // epoch check covers the gated tier too: the gate prior for frame N is
  // frozen when frame N-2 retires (see Tracker::match), so between a
  // speculative match and its finalize the only input that can move is
  // the map itself.
  std::uint64_t map_epoch = 0;
  // The immutable map version `matches` were computed against: borrowed
  // wait-free from Map::read_view() at the top of match() (one refcount
  // acquisition, no lock shared with any writer) and held until the frame
  // is recycled, so the descriptor/position spans estimate_pose() reads
  // stay frozen even while a concurrent session's map update publishes a
  // successor view.  map_epoch mirrors view->epoch() for the replay check.
  std::shared_ptr<const MapReadView> view;
  bool bootstrap = false;  // map was empty: frame initializes the map
  // Relocalization tier only (match_tier == kRelocIndex): the 3D side of
  // each match, aligned with `matches`, reconstructed from the recognized
  // keyframes' own depth observations (pose_wc * point_cam) rather than
  // from live map positions — recovery must not depend on what pruning
  // or drift did to the map since the keyframe was made.  A match whose
  // map point is gone carries train == -1 (pose evidence only).
  std::vector<Vec3> reloc_positions;
  // The recognized keyframe's stored pose — the plausibility reference
  // for RelocOptions::max_distance_m / max_rotation_rad.
  SE3 reloc_reference_cw;
  RansacResult ransac;
  std::vector<Correspondence> correspondences;
  TrackResult result;
  // Per-frame bump arena for stage scratch (matcher distance rows, gate
  // CSR, RANSAC index buffers, the map-maintenance matched mask).  Reset
  // once per frame by Tracker::acquire_frame(); after warm-up its slab
  // chain is capacity-stable, so every arena draw on the steady-state path
  // is pointer arithmetic, not heap traffic.  unique_ptr (rather than a
  // plain member) keeps FrameState cheaply movable through the pipeline
  // queues.
  std::unique_ptr<Arena> arena;
  // Gated tier's candidate structure, built into recycled vectors.
  GateResult gate;
  // Scratch result for estimate_pose()'s retry attempts (reused so a retry
  // does not allocate a fresh inlier vector every lost-ish frame).
  RansacResult ransac_retry;
};

// Stage-decomposed tracker.  Threading contract (matching the paper's
// hardware split): extract() and match() form the FPGA lane; the three
// estimate_pose() / optimize_pose() / update_map() stages form the ARM
// lane and must run serially in frame order.  begin_frame() must be
// called from the lane that feeds extract().  match() of frame N+1 may
// run concurrently with ARM stages of frame N — it borrows the map's
// current published MapReadView wait-free (no lock shared with
// update_map()'s structural writes; see slam/map_view.h) and records the
// view's epoch so the caller can detect and replay a match invalidated by
// a key frame.  Only the relocalization tier takes a lock (graph_mutex_,
// shared) — it reads the keyframe graph + recognition index, which have
// no published-view equivalent.
class Tracker {
 public:
  Tracker(const PinholeCamera& camera, std::unique_ptr<FeatureBackend> backend,
          const TrackerOptions& options = {});

  // Synchronous composition of the five stages (the sequential platform).
  TrackResult process(const FrameInput& frame);

  // --- pipeline stage API -------------------------------------------------
  // Assigns the next frame index and wraps the input.  The returned shell
  // comes from the recycling pool when one is available: its vectors keep
  // their capacity and its arena is reset, so a steady-state frame reuses
  // last frame's memory instead of allocating.
  FrameState begin_frame(FrameInput frame);
  // Returns a retired frame's shell to the pool (capacities intact) for
  // begin_frame() to hand out again.  Optional — a dropped FrameState just
  // frees its memory — but required for the zero-allocation steady state.
  void recycle_frame(FrameState&& fs);
  // Feature extraction (FPGA in the paper).  No tracker state touched.
  void extract(FrameState& fs);
  // Feature matching against the current map (FPGA in the paper).  Safe to
  // call concurrently with ARM stages of an earlier frame; re-entrant for
  // the same frame (a replay discards the previous matches).
  //
  // Two-tier: when MatchPolicy allows and a gate prior is published for
  // this frame (update_map of frame N-2 publishes the prior for frame N —
  // deliberately one frame staler than the motion model so it exists
  // before the device lane matches frame N speculatively, and identical
  // in sequential and pipelined execution), map points are projection-
  // gated into per-feature candidate lists and matched via the backend's
  // match_candidates(); otherwise, or when gating yields fewer than
  // MatchPolicy::min_gated_matches matches, the full-map brute-force tier
  // runs (bootstrap / relocalization behavior unchanged).
  void match(FrameState& fs);
  // PnP + RANSAC from the motion prior (ARM).  Decides bootstrap/lost.
  void estimate_pose(FrameState& fs);
  // LM refinement on the RANSAC inliers (ARM).
  void optimize_pose(FrameState& fs);
  // Map bookkeeping + key-frame map update + commit: appends to the
  // trajectory, advances the motion model, and returns the final result.
  // This is the only stage that structurally mutates the map.
  TrackResult update_map(FrameState& fs);

  // True while fs.matches are still valid against the current map (no
  // structural map change since match(fs) ran).  Only meaningful when no
  // update_map() is concurrently in flight.
  bool matches_current(const FrameState& fs) const {
    return fs.map_epoch == map_.epoch();
  }

  const Map& map() const { return map_; }
  const std::vector<TrackResult>& trajectory() const { return trajectory_; }
  FeatureBackend& backend() { return *backend_; }
  int frame_index() const { return frame_index_; }

  // --- local-mapping backend ---------------------------------------------
  // update_map() freezes backend jobs at a keyframe: either ONE high-
  // priority loop-verification job, or up to max_inflight_jobs routine BA
  // jobs over the covisibility-disjoint shards compute_shards() yields.
  // Jobs are independent — each owns a disjoint set of free keyframes and
  // map points (per-shard serialization across freezes: a shard whose
  // window intersects an in-flight job's is skipped until that job's
  // delta lands) — so workers may run them concurrently.  Completed
  // deltas apply at the next keyframe in job-id order; applying a loop
  // correction discards every other in-flight job (their snapshots
  // predate the correction).  See backend/local_mapper.h for the
  // protocol.
  bool backend_enabled() const { return options_.backend.enabled; }
  // What the scheduler needs to know about a frozen job to queue it: its
  // handle, and whether it is loop verification (the high-priority class).
  struct BackendJobTicket {
    int job_id = -1;
    bool loop = false;
  };
  // At least one frozen job has not been offered to a worker yet.
  bool backend_job_pending() const;
  // A worker is inside run_backend_job() right now.  The tracker must not
  // be destroyed while true (the scheduler's remove_session waits).
  bool backend_busy() const;
  // Marks every unoffered ready job offered and appends its ticket —
  // the scheduler's claim step (each ticket is then queued exactly once).
  void take_backend_jobs(std::vector<BackendJobTicket>& out);
  // Returns an offered-but-unrun job to the pending pool (queue overflow:
  // the scheduler could not enqueue the ticket it took).
  void unoffer_backend_job(int job_id);
  // Executes one frozen job by id (no-op if it no longer exists).
  // Thread-safe; takes no map lock — the job runs entirely on the frozen
  // snapshot, and distinct jobs may run concurrently on distinct workers.
  void run_backend_job(int job_id);
  // Executes every ready job inline, in job-id order (the sequential
  // platform's deterministic drain).
  void run_backend_job();
  // Keyframe database + covisibility graph.  Only valid while quiescent
  // (no update_map in flight).
  const backend::KeyframeGraph& keyframe_graph() const { return kf_graph_; }
  backend::BackendStats backend_stats() const;

  // --- observability -------------------------------------------------------
  // Trace topology + resolved metric handles (obs/): registered once at
  // construction (cold), recorded into on the hot path — pure atomics and
  // preallocated-ring stores, so the zero-allocation steady-state contract
  // holds with instrumentation live.  The stage spans land on this
  // session's own trace process row ("mapping-N"), lanes split the way the
  // paper splits the hardware: device (FE/FM), ARM (PE/PO/MU), and one
  // track per backend job class.
  struct TrackerObs {
    int pid = 0;
    obs::TrackId device_track = obs::kDefaultTrack;  // FE/FM
    obs::TrackId arm_track = obs::kDefaultTrack;     // PE/PO/MU + apply
    obs::TrackId ba_track = obs::kDefaultTrack;      // routine-BA jobs
    obs::TrackId loop_track = obs::kDefaultTrack;    // loop-verify jobs
    obs::Histogram* stage_fe = nullptr;
    obs::Histogram* stage_fm = nullptr;
    obs::Histogram* stage_pe = nullptr;
    obs::Histogram* stage_po = nullptr;
    obs::Histogram* stage_mu = nullptr;  // keyframes only (others are ~0)
    obs::Histogram* backend_freeze = nullptr;
    obs::Histogram* backend_optimize_ba = nullptr;
    obs::Histogram* backend_optimize_loop = nullptr;
    obs::Histogram* backend_apply = nullptr;
  };
  const TrackerObs& observability() const { return obs_; }

 private:
  void bootstrap_map(FrameState& fs,
                     std::vector<backend::KeyframeObservation>* observations);
  // Inserts unmatched features as new map points (recording their backend
  // observations when requested), then age-prunes; returns the prune count.
  // feature_matched is a 0/1 mask over fs.features (arena-backed on the
  // hot path, hence span rather than vector<bool>).
  std::size_t insert_map_points(
      const FrameState& fs, std::span<const std::uint8_t> feature_matched,
      const SE3& pose_wc,
      std::vector<backend::KeyframeObservation>* observations);
  // Pops a recycled frame shell (or default-constructs one) and resets its
  // per-frame state: vectors cleared capacity-intact, arena reset.
  FrameState acquire_frame();
  // Applies every completed backend delta in job-id order (one structural
  // map write + view publish + epoch bump each; loop corrections also
  // rebase the keyframe graph).  Caller holds the exclusive graph lock.
  void apply_pending_backend_deltas(FrameState& fs);
  // Graph + recognition-index insertion for a retired keyframe (caller
  // holds the exclusive graph lock — the device lane's reloc tier reads
  // both under the shared one).  Returns the new keyframe's graph id.
  int backend_insert_keyframe(
      const FrameState& fs,
      std::vector<backend::KeyframeObservation> observations);
  // Loop detection + job-snapshot freezing for the keyframe just
  // inserted: one loop job, or the shard decomposition's BA jobs up to
  // the in-flight budget.  Read-only over map/graph/index, so it runs
  // *outside* the exclusive lock (this stage is their sole writer) — a
  // keyframe must not stall every session's matching on the shared device
  // lane.
  void backend_freeze_jobs(int kf_id, const FrameState& fs);
  // Depth unprojection at pixel (u, v): camera-frame 3D, or nullopt on a
  // sensor hole / out-of-range depth.  World position = pose_wc * result.
  std::optional<Vec3> camera_point_from_depth(const FrameInput& frame,
                                              double u, double v) const;

  // Motion prior for the next frame (constant-velocity extrapolation).
  SE3 predicted_pose_cw() const;

  // --- gate prior publication --------------------------------------------
  // update_map() of frame N publishes the matching gate's prior pose for
  // frame N+2 (a double-step constant-velocity extrapolation, or invalid
  // after a loss).  Keying the prior of frame N to the retirement of
  // frame N-2 makes it available before the pipeline runtime's
  // *speculative* match of frame N (frame N-2 has always retired by then)
  // and makes sequential and pipelined matching read the identical value,
  // at the cost of a one-frame-staler prediction — which the gate's
  // search window absorbs.
  void publish_gate_prior(const FrameState& fs);
  // What the slot says about this frame: a usable prior pose, or the
  // explicit "the publishing frame was lost" signal that routes match()
  // into the relocalization tier.
  struct GatePrior {
    std::optional<SE3> pose_cw;
    bool lost = false;
    int lost_streak = 0;  // consecutive lost retirements at publication
  };
  GatePrior gate_prior_for(int frame_index) const;

  // Post-loss recovery: query the keyframe-recognition index with this
  // frame's descriptors and match against the best keyframe's local
  // neighbourhood only.  Returns true when it produced fs.matches (tier
  // kRelocIndex); false routes the frame to the brute-force fallback.
  // Caller holds the shared graph lock (reads the graph + index); map
  // reads go through fs.view.
  bool match_against_reloc_index(FrameState& fs,
                                 std::span<const Descriptor256> query,
                                 double& match_ms);

  PinholeCamera camera_;
  std::unique_ptr<FeatureBackend> backend_;
  TrackerOptions options_;
  Map map_;
  KeyframePolicy keyframe_policy_;
  SE3 last_pose_cw_;
  SE3 prev_pose_cw_;        // pose two frames back (for the velocity)
  bool have_velocity_ = false;
  int lost_streak_ = 0;     // consecutive lost retirements (reloc gating)
  int next_index_ = 0;      // assigned by begin_frame (feed order)
  int frame_index_ = 0;     // frames retired through update_map
  std::vector<TrackResult> trajectory_;
  // Retired frame shells awaiting reuse (begin_frame pops, recycle_frame
  // pushes).  Own mutex: the pipeline runtime recycles from the ARM lane
  // while the device lane begins the next frame.
  std::vector<FrameState> frame_pool_;
  std::mutex frame_pool_mutex_;
  static constexpr std::size_t kFramePoolCap = 16;
  // Guards the keyframe graph + recognition index ONLY.  The map itself
  // needs no reader lock anymore — match() borrows an immutable published
  // MapReadView — but the graph/index pair has no versioned-view
  // equivalent, so the relocalization tier (rare: post-loss frames)
  // still takes this shared against update_map()'s keyframe insertion
  // and loop-rebase writes.  Steady-state tracked frames never touch it.
  mutable std::shared_mutex graph_mutex_;

  // Gate prior slots (see publish_gate_prior): a two-deep ring keyed by
  // target frame index, written by update_map() (ARM lane) and read by
  // match() (device lane).  Published as a seqlock so the device lane's
  // per-frame read is wait-free against the writer: the writer makes the
  // sequence odd, stores the payload (all relaxed atomics — a speculative
  // match CAN overlap the store, e.g. match(f+2) racing update_map(f)
  // before the device lane observes the new retired_through), and closes
  // with an even sequence; a reader retries until it gets a stable even
  // sequence around its loads.  Same frozen-prior semantics and values as
  // the old mutex'd slot — covered by the bit-identity tests.
  struct GatePriorSlot {
    std::atomic<std::uint32_t> seq{0};  // odd = write in progress
    std::atomic<std::int64_t> for_frame{-1};
    // SE3 payload: rotation (9, Mat3::data() order) then translation (3).
    std::array<std::atomic<double>, 12> pose_cw{};
    std::atomic<std::int32_t> valid{0};
    std::atomic<std::int32_t> lost_streak{0};  // see GatePrior
  };
  GatePriorSlot gate_prior_[2];

  // --- local-mapping backend state ---------------------------------------
  // The graph and recognition index are mutated only by update_map() (the
  // single map-writing stage) *inside the exclusive graph lock*, and read
  // by match()'s relocalization tier on the device lane under the shared
  // one — graph_mutex_ is their reader/writer guard (the map itself is
  // read through published views and needs none).  The job table below is
  // the tracker/worker handshake and lives under backend_mutex_.
  backend::KeyframeGraph kf_graph_;
  backend::KeyframeIndex kf_index_;
  // Loop-closure detection cooldown: suppressed until this frame index
  // (set when a correction applies; the corrected map needs new keyframes
  // before a second detection means anything).
  int loop_cooldown_until_ = 0;
  // One frozen backend job.  Lifecycle: kReady (snapshot frozen, maybe
  // offered to a scheduler queue) -> kRunning (a worker owns the moved-out
  // snapshot) -> kDone (delta ready; applied + erased at the next
  // keyframe, in id order).  `claimed_kfs` / `owned_points` are the job's
  // exclusive write set — what later freezes must not hand to another
  // concurrent job, and what the applied delta is checked against.
  // `discarded` flags a running job invalidated by an applied loop
  // correction; its worker erases it on completion instead of publishing
  // the delta.
  struct BackendJob {
    int id = 0;
    bool loop = false;
    int shard = 0;
    enum class State { kReady, kRunning, kDone };
    State state = State::kReady;
    bool offered = false;
    bool discarded = false;
    backend::BackendSnapshot snapshot;  // valid in kReady
    backend::BackendDelta delta;        // valid in kDone
    std::vector<int> claimed_kfs;             // free keyframes (post-demote)
    std::vector<std::int64_t> owned_points;   // sorted ascending
  };
  mutable std::mutex backend_mutex_;
  std::vector<BackendJob> backend_jobs_;  // ascending id
  int next_backend_job_id_ = 0;
  backend::BackendStats backend_stats_;

  // --- observability handles (see TrackerObs) ------------------------------
  TrackerObs obs_;
  // Cross-thread-folded rollups, registry atomics (see obs/metrics.h).
  obs::Counter* frames_retired_total_ = nullptr;
  obs::Counter* keyframes_total_ = nullptr;
  obs::Counter* points_pruned_total_ = nullptr;
  obs::Counter* points_culled_total_ = nullptr;
  obs::Counter* points_fused_total_ = nullptr;
  obs::Counter* reloc_attempts_total_ = nullptr;
  obs::Counter* reloc_successes_total_ = nullptr;
  obs::Counter* loops_closed_total_ = nullptr;
  // Times a device-lane read path had to *wait* on a lock a map writer
  // could hold.  With the view read path this only counts reloc-tier
  // graph-lock contention — ~0 in steady state, gated in the
  // multi-session bench.
  obs::Counter* map_reader_stalls_total_ = nullptr;
};

}  // namespace eslam
