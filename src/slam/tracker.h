// The full RGB-D ORB-SLAM frontend of Figure 1: feature extraction ->
// feature matching -> pose estimation -> pose optimization -> (key frames
// only) map updating.
//
// Feature extraction and matching are delegated to a FeatureBackend so the
// same tracker runs with the software ORB pipeline or with the simulated
// FPGA accelerator (accel/), mirroring the paper's hardware/software split.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "features/matcher.h"
#include "features/orb.h"
#include "geometry/camera.h"
#include "geometry/se3.h"
#include "slam/keyframe.h"
#include "slam/map.h"
#include "slam/ransac.h"

namespace eslam {

// Abstraction over "who computes features and matches" (ARM software vs
// FPGA fabric).  last_*_time_ms() report the backend's own notion of time:
// wall-clock for software, cycles / 100 MHz for the simulated accelerator.
class FeatureBackend {
 public:
  virtual ~FeatureBackend() = default;
  virtual FeatureList extract(const ImageU8& image) = 0;
  virtual std::vector<Match> match(std::span<const Descriptor256> queries,
                                   std::span<const Descriptor256> train) = 0;
  virtual double last_extract_time_ms() const = 0;
  virtual double last_match_time_ms() const = 0;
  virtual const char* name() const = 0;
};

// Software backend: OrbExtractor + brute-force matcher, timed by wall clock.
class SoftwareBackend final : public FeatureBackend {
 public:
  explicit SoftwareBackend(const OrbConfig& orb = {},
                           const MatcherOptions& matcher = {});
  FeatureList extract(const ImageU8& image) override;
  std::vector<Match> match(std::span<const Descriptor256> queries,
                           std::span<const Descriptor256> train) override;
  double last_extract_time_ms() const override { return extract_ms_; }
  double last_match_time_ms() const override { return match_ms_; }
  const char* name() const override { return "software"; }

  OrbExtractor& extractor() { return extractor_; }

 private:
  OrbExtractor extractor_;
  MatcherOptions matcher_options_;
  double extract_ms_ = 0.0;
  double match_ms_ = 0.0;
};

struct FrameInput {
  ImageU8 gray;
  ImageU16 depth;       // raw sensor units; metres = value / depth_factor
  double timestamp = 0;
};

struct StageTimesMs {
  double feature_extraction = 0;
  double feature_matching = 0;
  double pose_estimation = 0;
  double pose_optimization = 0;
  double map_updating = 0;
  double total() const {
    return feature_extraction + feature_matching + pose_estimation +
           pose_optimization + map_updating;
  }
};

struct TrackResult {
  SE3 pose_cw;  // world-to-camera (the PnP estimate)
  SE3 pose_wc;  // camera-in-world (what trajectories record)
  bool lost = false;
  bool keyframe = false;
  int n_features = 0;
  int n_matches = 0;
  int n_inliers = 0;
  double timestamp = 0;
  StageTimesMs times;
};

struct TrackerOptions {
  TrackerOptions() {
    // NOTE: no ratio test against the map — the map accumulates near-
    // duplicate points over keyframes, so best/second-best are often the
    // same physical corner and a ratio test starves the matcher.
    // Degenerate consensus is handled by min_inlier_ratio + P3P instead.
    // 4-point samples need more draws once the inlier share drops below
    // ~50% under viewpoint change.
    ransac.max_iterations = 256;
    // Keypoints detected on pyramid level l are quantized by scale^l when
    // mapped to level-0 coordinates; 3 px is too strict at level 3.
    ransac.inlier_threshold_px = 4.0;
  }

  MatcherOptions matcher;
  RansacOptions ransac;
  PnpOptions pose_optimization{/*max_iterations=*/15,
                               /*initial_lambda=*/1e-4,
                               /*huber_delta=*/2.5,
                               /*convergence_step=*/1e-8};
  KeyframeOptions keyframe;
  double depth_factor = 5000.0;  // TUM: depth_png / 5000 = metres
  int map_prune_age = 200;       // frames without a match before deletion
  int min_tracked_inliers = 10;
  // A pose is only accepted (and allowed to trigger a key frame) when the
  // RANSAC consensus covers at least this share of the matches; guards
  // against degenerate consensus sets on repetitive texture, which would
  // otherwise pollute the map with misplaced points.
  double min_inlier_ratio = 0.2;
  // ...unless the consensus is large in absolute terms.  This must stay
  // conservative: on repetitive texture a *wrong* pose can collect tens of
  // aliased-but-consistent matches out of ~1000, so a small override
  // silently poisons the map (observed at 60; 400 keeps the gate honest
  // while still accepting overwhelming consensus on sparse match sets).
  int strong_consensus_inliers = 400;
  // Constant-velocity motion model: seed RANSAC/PnP with the previous pose
  // advanced by the last inter-frame motion instead of the raw previous
  // pose.  Essential when inter-frame motion is large.
  bool use_motion_model = true;
  // When both prior-seeded RANSAC attempts fail, run a prior-free P3P
  // RANSAC against the map (relocalization after tracking loss).
  bool relocalize_with_p3p = true;
};

class Tracker {
 public:
  Tracker(const PinholeCamera& camera, std::unique_ptr<FeatureBackend> backend,
          const TrackerOptions& options = {});

  TrackResult process(const FrameInput& frame);

  const Map& map() const { return map_; }
  const std::vector<TrackResult>& trajectory() const { return trajectory_; }
  FeatureBackend& backend() { return *backend_; }
  int frame_index() const { return frame_index_; }

 private:
  void bootstrap(const FrameInput& frame, const FeatureList& features,
                 TrackResult& result);
  int update_map(const FrameInput& frame, const FeatureList& features,
                 const std::vector<bool>& feature_matched, const SE3& pose_wc);
  std::optional<Vec3> world_point_from_depth(const FrameInput& frame,
                                             double u, double v,
                                             const SE3& pose_wc) const;

  // Motion prior for the next frame (constant-velocity extrapolation).
  SE3 predicted_pose_cw() const;

  PinholeCamera camera_;
  std::unique_ptr<FeatureBackend> backend_;
  TrackerOptions options_;
  Map map_;
  KeyframePolicy keyframe_policy_;
  SE3 last_pose_cw_;
  SE3 prev_pose_cw_;        // pose two frames back (for the velocity)
  bool have_velocity_ = false;
  int frame_index_ = 0;
  std::vector<TrackResult> trajectory_;
};

}  // namespace eslam
