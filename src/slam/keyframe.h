// Key-frame policy (paper section 2.1): a frame becomes a key frame when
// the camera has translated or rotated more than a threshold since the
// last key frame.  Map updating runs only on key frames.
#pragma once

#include "geometry/se3.h"

namespace eslam {

struct KeyframeOptions {
  double translation_threshold = 0.15;          // metres
  double rotation_threshold = 15.0 * M_PI / 180.0;  // radians
};

class KeyframePolicy {
 public:
  explicit KeyframePolicy(const KeyframeOptions& options = {})
      : options_(options) {}

  // Decides from camera-in-world poses; the first query is always a key
  // frame (bootstrap).
  bool should_insert(const SE3& pose_wc) {
    if (!have_reference_) {
      reference_ = pose_wc;
      have_reference_ = true;
      return true;
    }
    const bool trigger =
        reference_.translation_distance(pose_wc) >
            options_.translation_threshold ||
        reference_.rotation_angle(pose_wc) > options_.rotation_threshold;
    if (trigger) reference_ = pose_wc;
    return trigger;
  }

  void reset() { have_reference_ = false; }

  // A loop-closure correction moves the world under the camera: the
  // reference pose must ride along (pose_wc' = correction * pose_wc) or
  // the very next frame would spuriously trigger (or suppress) a
  // keyframe by the size of the correction.
  void rebase(const SE3& world_correction) {
    if (have_reference_) reference_ = world_correction * reference_;
  }

  const KeyframeOptions& options() const { return options_; }

 private:
  KeyframeOptions options_;
  SE3 reference_;
  bool have_reference_ = false;
};

}  // namespace eslam
