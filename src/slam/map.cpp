#include "slam/map.h"

#include <algorithm>

#include "geometry/assert.h"

namespace eslam {

std::int64_t Map::add_point(const Vec3& position,
                            const Descriptor256& descriptor, int frame_index) {
  MapPoint p;
  p.id = next_id_++;
  p.position = position;
  p.descriptor = descriptor;
  p.created_frame = frame_index;
  p.last_matched_frame = frame_index;
  points_.push_back(p);
  // Eager cache maintenance: appends are O(1), so a bootstrap inserting
  // thousands of points never rebuilds.
  descriptor_cache_.push_back(p.descriptor);
  position_cache_.push_back(p.position);
  ++epoch_;
  return p.id;
}

void Map::note_match(std::size_t index, int frame_index) {
  ESLAM_ASSERT(index < points_.size(), "map point index out of range");
  points_[index].last_matched_frame = frame_index;
  ++points_[index].match_count;
}

std::size_t Map::prune(int current_frame, int max_age) {
  const std::size_t before = points_.size();
  std::erase_if(points_, [&](const MapPoint& p) {
    return current_frame - p.last_matched_frame > max_age;
  });
  if (points_.size() != before) {
    rebuild_caches();
    ++epoch_;
  }
  return before - points_.size();
}

void Map::rebuild_caches() {
  descriptor_cache_.clear();
  descriptor_cache_.reserve(points_.size());
  position_cache_.clear();
  position_cache_.reserve(points_.size());
  for (const MapPoint& p : points_) {
    descriptor_cache_.push_back(p.descriptor);
    position_cache_.push_back(p.position);
  }
}

}  // namespace eslam
