#include "slam/map.h"

#include <algorithm>
#include <chrono>

#include "geometry/assert.h"
#include "obs/metrics.h"

namespace eslam {

namespace {

// Per-row footprint of the published read state: descriptor AoS + 4 SoA
// word planes, position AoS + 3 lanes, id column.  Used for the
// copied/shared byte accounting only.
constexpr std::uint64_t kRowBytes =
    sizeof(Descriptor256) + 4 * sizeof(std::uint64_t) +  // descriptor AoS+SoA
    sizeof(Vec3) + 3 * sizeof(double) +                  // position AoS+SoA
    sizeof(std::int64_t);                                // id column

constexpr std::size_t kMinBlockCapacity = 256;

}  // namespace

Map::Map()
    : desc_block_(std::make_shared<detail::DescriptorBlock>()),
      pos_block_(std::make_shared<detail::PositionBlock>()),
      id_block_(std::make_shared<detail::IdBlock>()),
      alive_(std::make_shared<std::atomic<std::int64_t>>(0)),
      publish_ms_(&obs::metrics().histogram("eslam_map_publish_ms")),
      publishes_total_(&obs::metrics().counter("eslam_map_publishes_total")),
      block_copies_total_(
          &obs::metrics().counter("eslam_map_block_copies_total")),
      bytes_copied_total_(
          &obs::metrics().counter("eslam_map_bytes_copied_total")),
      bytes_shared_total_(
          &obs::metrics().counter("eslam_map_bytes_shared_total")) {
  // Publish the empty epoch-0 view so read_view() is never null.
  publish();
  // The bootstrap publish isn't a mutation; don't count it.
  stats_ = MapViewStats{};
}

std::int64_t Map::add_point(const Vec3& position,
                            const Descriptor256& descriptor, int frame_index) {
  MapPoint p;
  p.id = next_id_++;
  p.position = position;
  p.descriptor = descriptor;
  p.created_frame = frame_index;
  p.last_matched_frame = frame_index;
  points_.push_back(p);
  // Frozen-prefix append: published views only cover rows [0, view.size),
  // so pushing row `size` into the live blocks (within reserved capacity;
  // clone-on-full otherwise) is invisible to every borrowed view and the
  // successor view shares all three blocks outright.
  ensure_append_capacity(1);
  desc_block_->aos.push_back(p.descriptor);
  desc_block_->soa.push_back(p.descriptor);
  pos_block_->aos.push_back(p.position);
  pos_block_->soa.push_back(p.position);
  id_block_->ids.push_back(p.id);
  ++epoch_;
  publish();
  return p.id;
}

void Map::note_match(std::size_t index, int frame_index) {
  ESLAM_ASSERT(index < points_.size(), "map point index out of range");
  points_[index].last_matched_frame = frame_index;
  ++points_[index].match_count;
}

std::size_t Map::prune(int current_frame, int max_age) {
  const std::size_t before = points_.size();
  std::erase_if(points_, [&](const MapPoint& p) {
    return current_frame - p.last_matched_frame > max_age;
  });
  if (points_.size() != before) {
    rebuild_blocks();
    ++epoch_;
    publish();
  }
  return before - points_.size();
}

std::optional<std::size_t> Map::index_of(std::int64_t id) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), id,
      [](const MapPoint& p, std::int64_t v) { return p.id < v; });
  if (it == points_.end() || it->id != id) return std::nullopt;
  return static_cast<std::size_t>(it - points_.begin());
}

MapApplyStats Map::apply_update(
    std::span<const std::pair<std::int64_t, Vec3>> moves,
    std::span<const std::int64_t> remove_ids) {
  MapApplyStats stats;
  // Stage moves into the metadata first; the storage blocks are rebuilt
  // or cloned below so published views never see a row change in place.
  for (const auto& [id, position] : moves) {
    const auto index = index_of(id);
    if (!index) continue;
    points_[*index].position = position;
    ++stats.moved;
  }
  if (!remove_ids.empty()) {
    const std::size_t before = points_.size();
    std::erase_if(points_, [&](const MapPoint& p) {
      return std::binary_search(remove_ids.begin(), remove_ids.end(), p.id);
    });
    stats.removed = before - points_.size();
  }
  if (stats.removed > 0) {
    // Rows shifted: every column is structurally new.
    rebuild_blocks();
  } else if (stats.moved > 0) {
    // Moves only: clone just the position block (descriptors and ids stay
    // shared with every live view).
    clone_position_block();
  }
  if (stats.moved > 0 || stats.removed > 0) {
    ++epoch_;
    publish();
  }
  return stats;
}

MapViewStats Map::view_stats() const {
  MapViewStats s = stats_;
  s.views_alive = alive_->load(std::memory_order_relaxed);
  return s;
}

void Map::ensure_append_capacity(std::size_t extra) {
  const std::size_t need = desc_block_->aos.size() + extra;
  if (need <= desc_block_->aos.capacity() &&
      need <= pos_block_->aos.capacity() &&
      need <= id_block_->ids.capacity()) {
    return;
  }
  // Clone-on-full into doubled capacity — the only copy appends ever pay,
  // amortized O(1).  The old blocks stay alive for the views that hold
  // them; vectors are reserved up front so later push_backs never
  // reallocate (readers hold raw spans into the heap buffers).
  const std::size_t cap =
      std::max({need * 2, desc_block_->aos.capacity(), kMinBlockCapacity});

  auto desc = std::make_shared<detail::DescriptorBlock>();
  desc->aos.reserve(cap);
  desc->soa.reserve(cap);  // reserve() never shrinks; assign() keeps it
  desc->aos.insert(desc->aos.end(), desc_block_->aos.begin(),
                   desc_block_->aos.end());
  desc->soa.assign({desc->aos.data(), desc->aos.size()});

  auto pos = std::make_shared<detail::PositionBlock>();
  pos->aos.reserve(cap);
  pos->soa.reserve(cap);
  pos->aos.insert(pos->aos.end(), pos_block_->aos.begin(),
                  pos_block_->aos.end());
  pos->soa.x.insert(pos->soa.x.end(), pos_block_->soa.x.begin(),
                    pos_block_->soa.x.end());
  pos->soa.y.insert(pos->soa.y.end(), pos_block_->soa.y.begin(),
                    pos_block_->soa.y.end());
  pos->soa.z.insert(pos->soa.z.end(), pos_block_->soa.z.begin(),
                    pos_block_->soa.z.end());

  auto ids = std::make_shared<detail::IdBlock>();
  ids->ids.reserve(cap);
  ids->ids.insert(ids->ids.end(), id_block_->ids.begin(),
                  id_block_->ids.end());

  const std::uint64_t copied = desc_block_->aos.size() * kRowBytes;
  stats_.block_copies += 3;
  stats_.bytes_copied += copied;
  bytes_copied_this_mutation_ += copied;
  block_copies_total_->add(3);
  bytes_copied_total_->add(static_cast<std::int64_t>(copied));

  desc_block_ = std::move(desc);
  pos_block_ = std::move(pos);
  id_block_ = std::move(ids);
}

void Map::rebuild_blocks() {
  // Structural removal: surviving rows shift, so all three columns are
  // rewritten into fresh blocks.  Capacity is kept so post-prune appends
  // don't immediately clone again.
  const std::size_t cap =
      std::max({points_.size(), desc_block_->aos.capacity(),
                kMinBlockCapacity});

  auto desc = std::make_shared<detail::DescriptorBlock>();
  desc->aos.reserve(cap);
  desc->soa.reserve(cap);
  auto pos = std::make_shared<detail::PositionBlock>();
  pos->aos.reserve(cap);
  pos->soa.reserve(cap);
  auto ids = std::make_shared<detail::IdBlock>();
  ids->ids.reserve(cap);
  for (const MapPoint& p : points_) {
    desc->aos.push_back(p.descriptor);
    desc->soa.push_back(p.descriptor);
    pos->aos.push_back(p.position);
    pos->soa.push_back(p.position);
    ids->ids.push_back(p.id);
  }

  const std::uint64_t copied = points_.size() * kRowBytes;
  stats_.block_copies += 3;
  stats_.bytes_copied += copied;
  bytes_copied_this_mutation_ += copied;
  block_copies_total_->add(3);
  bytes_copied_total_->add(static_cast<std::int64_t>(copied));

  desc_block_ = std::move(desc);
  pos_block_ = std::move(pos);
  id_block_ = std::move(ids);
}

void Map::clone_position_block() {
  const std::size_t cap =
      std::max(pos_block_->aos.capacity(), kMinBlockCapacity);
  auto pos = std::make_shared<detail::PositionBlock>();
  pos->aos.reserve(cap);
  pos->soa.reserve(cap);
  for (const MapPoint& p : points_) {
    pos->aos.push_back(p.position);
    pos->soa.push_back(p.position);
  }

  const std::uint64_t copied =
      points_.size() * (sizeof(Vec3) + 3 * sizeof(double));
  stats_.block_copies += 1;
  stats_.bytes_copied += copied;
  bytes_copied_this_mutation_ += copied;
  block_copies_total_->add(1);
  bytes_copied_total_->add(static_cast<std::int64_t>(copied));

  pos_block_ = std::move(pos);
}

void Map::publish() {
  const auto t0 = std::chrono::steady_clock::now();
  view_.store(std::make_shared<const MapReadView>(
      epoch_, points_.size(), desc_block_, pos_block_, id_block_, alive_));
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  const std::uint64_t published = points_.size() * kRowBytes;
  const std::uint64_t shared =
      published > bytes_copied_this_mutation_
          ? published - bytes_copied_this_mutation_
          : 0;
  bytes_copied_this_mutation_ = 0;
  ++stats_.publishes;
  stats_.bytes_shared += shared;
  publishes_total_->add(1);
  bytes_shared_total_->add(static_cast<std::int64_t>(shared));
  publish_ms_->record(ms);
}

}  // namespace eslam
