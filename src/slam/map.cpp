#include "slam/map.h"

#include <algorithm>

#include "geometry/assert.h"

namespace eslam {

std::int64_t Map::add_point(const Vec3& position,
                            const Descriptor256& descriptor, int frame_index) {
  MapPoint p;
  p.id = next_id_++;
  p.position = position;
  p.descriptor = descriptor;
  p.created_frame = frame_index;
  p.last_matched_frame = frame_index;
  points_.push_back(p);
  // Eager cache maintenance: appends are O(1), so a bootstrap inserting
  // thousands of points never rebuilds.
  descriptor_cache_.push_back(p.descriptor);
  position_cache_.push_back(p.position);
  descriptor_soa_.push_back(p.descriptor);
  position_soa_.push_back(p.position);
  ++epoch_;
  return p.id;
}

void Map::note_match(std::size_t index, int frame_index) {
  ESLAM_ASSERT(index < points_.size(), "map point index out of range");
  points_[index].last_matched_frame = frame_index;
  ++points_[index].match_count;
}

std::size_t Map::prune(int current_frame, int max_age) {
  const std::size_t before = points_.size();
  std::erase_if(points_, [&](const MapPoint& p) {
    return current_frame - p.last_matched_frame > max_age;
  });
  if (points_.size() != before) {
    rebuild_caches();
    ++epoch_;
  }
  return before - points_.size();
}

std::optional<std::size_t> Map::index_of(std::int64_t id) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), id,
      [](const MapPoint& p, std::int64_t v) { return p.id < v; });
  if (it == points_.end() || it->id != id) return std::nullopt;
  return static_cast<std::size_t>(it - points_.begin());
}

MapApplyStats Map::apply_update(
    std::span<const std::pair<std::int64_t, Vec3>> moves,
    std::span<const std::int64_t> remove_ids) {
  MapApplyStats stats;
  for (const auto& [id, position] : moves) {
    const auto index = index_of(id);
    if (!index) continue;
    points_[*index].position = position;
    position_cache_[*index] = position;
    position_soa_.set(*index, position);
    ++stats.moved;
  }
  if (!remove_ids.empty()) {
    const std::size_t before = points_.size();
    std::erase_if(points_, [&](const MapPoint& p) {
      return std::binary_search(remove_ids.begin(), remove_ids.end(), p.id);
    });
    stats.removed = before - points_.size();
    if (stats.removed > 0) rebuild_caches();
  }
  if (stats.moved > 0 || stats.removed > 0) ++epoch_;
  return stats;
}

void Map::rebuild_caches() {
  descriptor_cache_.clear();
  descriptor_cache_.reserve(points_.size());
  position_cache_.clear();
  position_cache_.reserve(points_.size());
  descriptor_soa_.clear();
  descriptor_soa_.reserve(points_.size());
  position_soa_.clear();
  position_soa_.reserve(points_.size());
  for (const MapPoint& p : points_) {
    descriptor_cache_.push_back(p.descriptor);
    position_cache_.push_back(p.position);
    descriptor_soa_.push_back(p.descriptor);
    position_soa_.push_back(p.position);
  }
}

}  // namespace eslam
