// MapReadView — the wait-free read side of the live map.
//
// The map's readers (feature matching, the projection gate, the
// relocalization tier's id lookup) used to take a shared lock against map
// updating's exclusive one.  On the shared device lane that lock is
// head-of-line blocking: one session's keyframe insert stalls FM dispatch
// for every session.  A MapReadView replaces the lock with RCU-style
// versioned publication:
//
//   - `Map` keeps its point storage in refcounted *blocks* (descriptor
//     AoS + SoA word planes, position AoS + SoA lanes, the sorted id
//     column), each sized to a capacity and written only by the single
//     map-updating stage.
//   - Every structural mutation ends by publishing a fresh immutable
//     MapReadView: the view captures raw spans bounded to the published
//     row count plus the epoch, holds the blocks alive through
//     shared_ptr, and is swapped into a ViewSlot.
//   - Readers load the slot (one refcount acquisition under a
//     pointer-swap spinlock that is never held across map mutation — a
//     reader can only collide with another slot access, never with the
//     writer's copy/publish work) and borrow the view for the whole
//     stage.  A borrowed view is frozen: its spans
//     never move or change meaning, regardless of what the writer
//     publishes next.  The last release reclaims the blocks.
//
// Copy-on-write at block granularity keeps successive views cheap:
//
//   - Appends (map updating's dominant write) go into the current block
//     past every published view's extent — published rows are a frozen
//     prefix, so the new view *shares* every block and copies nothing.
//     A full block is cloned once into doubled capacity (the only copy
//     appends ever pay, amortized O(1)).
//   - Position refinements (backend BA moves) clone only the position
//     block; descriptors and ids stay shared.
//   - Removals (prune, cull/fuse, loop rebase) rewrite the surviving
//     rows into fresh blocks — the one genuinely structural copy.
//
// The epoch keeps exactly its old meaning: bumped once per structural
// mutation, never by note_match, and published views always carry the
// epoch the map had when they were built — so the speculative-match
// replay rule (`fs.map_epoch == map.epoch()`) and sequential/pipelined
// bit-identity are untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "features/descriptor.h"
#include "features/descriptor_soa.h"
#include "geometry/matrix.h"

namespace eslam {

// Map-point positions as separate x/y/z lanes, aligned with the
// descriptor column.  This is the layout the batched projection kernel
// streams.  (Lives here rather than slam/map.h so the storage blocks can
// hold one by value; map.h re-exports it by including this header.)
struct PositionSoA {
  std::vector<double> x, y, z;

  std::size_t size() const { return x.size(); }
  void clear() {
    x.clear();
    y.clear();
    z.clear();
  }
  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
  }
  void push_back(const Vec3& p) {
    x.push_back(p[0]);
    y.push_back(p[1]);
    z.push_back(p[2]);
  }
  void set(std::size_t i, const Vec3& p) {
    x[i] = p[0];
    y[i] = p[1];
    z[i] = p[2];
  }
};

namespace detail {

// Refcounted storage blocks.  A block is written only by the map-updating
// stage and only at rows no published view covers; readers reach rows
// [0, view.size) through spans the view captured at publish time, so the
// writer's appends (including the vectors' own size bookkeeping) never
// touch memory a reader loads.  Blocks never reallocate in place: when
// capacity runs out the writer clones into a bigger block and the old one
// stays alive for the views that hold it.
struct DescriptorBlock {
  std::vector<Descriptor256> aos;
  DescriptorSoA soa;
};

struct PositionBlock {
  std::vector<Vec3> aos;
  PositionSoA soa;
};

struct IdBlock {
  std::vector<std::int64_t> ids;  // ascending (Map's sort-by-id invariant)
};

}  // namespace detail

// Per-Map publication/sharing statistics (plain counters folded by the
// single writer; read by desk_slam / the bench for visibility).  The
// process-wide obs/ mirrors carry the same quantities across all maps.
struct MapViewStats {
  std::uint64_t publishes = 0;      // views published (== epoch bumps)
  std::uint64_t block_copies = 0;   // blocks cloned/rebuilt (COW events)
  std::uint64_t bytes_copied = 0;   // bytes those copies moved
  std::uint64_t bytes_shared = 0;   // published bytes reused from live blocks
  std::int64_t views_alive = 0;     // views currently borrowed (incl. current)
};

// One immutable published version of the map's read state.  Everything a
// reader stage needs — the matcher's TrainView (descriptor AoS + SoA word
// planes), the projection gate's position lanes, pose estimation's
// position column, the relocalization tier's id lookup — bounded to the
// published row count and stamped with the epoch it was built under.
// Thread-safe by construction: all accessors are const over frozen data.
class MapReadView {
 public:
  MapReadView(std::uint64_t epoch, std::size_t size,
              std::shared_ptr<const detail::DescriptorBlock> desc,
              std::shared_ptr<const detail::PositionBlock> pos,
              std::shared_ptr<const detail::IdBlock> ids,
              std::shared_ptr<std::atomic<std::int64_t>> alive);
  ~MapReadView();

  MapReadView(const MapReadView&) = delete;
  MapReadView& operator=(const MapReadView&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t epoch() const { return epoch_; }

  // Matcher train side — plugs into TrainView{descriptors(),
  // &descriptor_soa()} unchanged.  The SoA planes may extend past size()
  // (the writer appends in place behind published views); the kernels
  // take their count from the AoS span, which is bounded here.
  std::span<const Descriptor256> descriptors() const { return descriptors_; }
  const DescriptorSoA& descriptor_soa() const { return desc_->soa; }

  // Projection-gate lanes and pose estimation's position column, aligned
  // with descriptors().
  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }
  std::span<const double> zs() const { return zs_; }
  std::span<const Vec3> positions() const { return positions_; }
  const Vec3& position(std::size_t index) const { return positions_[index]; }

  // Point ids aligned with descriptors(); index_of is the relocalization
  // tier's id lookup, answered against THIS view so match train indices
  // stay epoch-consistent.
  std::span<const std::int64_t> ids() const { return ids_span_; }
  std::optional<std::size_t> index_of(std::int64_t id) const;

 private:
  std::uint64_t epoch_ = 0;
  std::size_t size_ = 0;
  std::span<const Descriptor256> descriptors_;
  std::span<const double> xs_, ys_, zs_;
  std::span<const Vec3> positions_;
  std::span<const std::int64_t> ids_span_;
  std::shared_ptr<const detail::DescriptorBlock> desc_;
  std::shared_ptr<const detail::PositionBlock> pos_;
  std::shared_ptr<const detail::IdBlock> ids_;
  std::shared_ptr<std::atomic<std::int64_t>> alive_;
};

// The publication slot: the current view behind a pointer-swap spinlock.
//
// Why not std::atomic<shared_ptr>?  libstdc++ (GCC 12) implements it
// with the same kind of embedded spinlock, but its reader-side unlock is
// a *relaxed* RMW — there is no release edge from a completed load back
// to the next store's plain pointer write, which is a genuine memory-
// model race (TSan reports it, and a weakly-ordered target could
// misorder it).  This slot is semantically identical with the orderings
// done right: acquire on lock, release on unlock, both directions.
//
// The critical section is two pointer-sized operations (a shared_ptr
// copy or swap) — it is never held across block copies, view
// construction, or any map mutation, so a reader can only ever collide
// with another slot access.  The writer's retired view is released
// *outside* the lock (swap out, destroy after unlock), keeping the
// last-release block reclamation off the slot too.  Loads allocate
// nothing: borrowing is safe inside the zero-alloc steady-state window.
class ViewSlot {
 public:
  std::shared_ptr<const MapReadView> load() const {
    lock();
    std::shared_ptr<const MapReadView> borrowed = view_;
    unlock();
    return borrowed;
  }

  void store(std::shared_ptr<const MapReadView> next) {
    lock();
    view_.swap(next);
    unlock();
    // `next` now holds the retired view; its (possibly last) release —
    // and any block reclamation behind it — happens here, off the lock.
  }

 private:
  void lock() const {
    while (locked_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() const { locked_.clear(std::memory_order_release); }

  mutable std::atomic_flag locked_ = ATOMIC_FLAG_INIT;
  std::shared_ptr<const MapReadView> view_;
};

}  // namespace eslam
