#include "slam/map_snapshot.h"

#include <cmath>
#include <cstdio>

#include "backend/graph_serialization.h"
#include "core/byte_io.h"

namespace eslam {

namespace {

constexpr std::size_t kHeaderBytes = 32;
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kPointBytes =
    8 +        // id
    3 * 8 +    // position
    4 * 8 +    // descriptor words
    3 * 4;     // created_frame, last_matched_frame, match_count

// "ESLMSNAP" as the little-endian u64 the header writes — byte 0 is 'E'.
constexpr std::uint64_t kMagic = []() {
  const char tag[8] = {'E', 'S', 'L', 'M', 'S', 'N', 'A', 'P'};
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(tag[i]))
         << (8 * i);
  return v;
}();

bool finite(double v) { return std::isfinite(v); }

void write_payload(const MapSnapshot& snapshot, ByteWriter& out) {
  out.f64(snapshot.camera.fx());
  out.f64(snapshot.camera.fy());
  out.f64(snapshot.camera.cx());
  out.f64(snapshot.camera.cy());
  out.i32(snapshot.camera.width());
  out.i32(snapshot.camera.height());

  out.i64(snapshot.next_point_id);
  out.u64(snapshot.points.size());
  for (const MapPoint& p : snapshot.points) {
    out.i64(p.id);
    for (int i = 0; i < 3; ++i) out.f64(p.position[i]);
    for (int w = 0; w < Descriptor256::kWords; ++w)
      out.u64(p.descriptor.words()[w]);
    out.i32(p.created_frame);
    out.i32(p.last_matched_frame);
    out.i32(p.match_count);
  }

  backend::write_graph_section(snapshot.graph_options, snapshot.keyframes,
                               out);
}

bool parse_payload(std::span<const std::uint8_t> payload, MapSnapshot& out,
                   std::string* error) {
  ByteReader in(payload);
  const auto reject = [&](const std::string& why) {
    in.fail(why);
    if (error) *error = in.error();
    return false;
  };

  const double fx = in.f64();
  const double fy = in.f64();
  const double cx = in.f64();
  const double cy = in.f64();
  const std::int32_t width = in.i32();
  const std::int32_t height = in.i32();
  if (!in.ok()) return reject(in.error());
  if (!finite(fx) || !finite(fy) || !finite(cx) || !finite(cy) ||
      !(fx > 0) || !(fy > 0))
    return reject("invalid camera intrinsics");
  if (width <= 0 || width > 65536 || height <= 0 || height > 65536)
    return reject("invalid camera image size");
  out.camera = PinholeCamera(fx, fy, cx, cy, width, height);

  out.next_point_id = in.i64();
  if (!in.ok()) return reject(in.error());
  if (out.next_point_id < 0) return reject("negative next point id");
  const std::uint64_t n_points = in.u64();
  if (!in.ok()) return reject(in.error());
  if (n_points > in.remaining() / kPointBytes)
    return reject("point count exceeds stream size");
  out.points.clear();
  out.points.reserve(static_cast<std::size_t>(n_points));
  std::int64_t prev_id = -1;
  for (std::uint64_t k = 0; k < n_points; ++k) {
    MapPoint p;
    p.id = in.i64();
    for (int i = 0; i < 3; ++i) p.position[i] = in.f64();
    for (int w = 0; w < Descriptor256::kWords; ++w)
      p.descriptor.words()[w] = in.u64();
    p.created_frame = in.i32();
    p.last_matched_frame = in.i32();
    p.match_count = in.i32();
    if (!in.ok()) return reject(in.error());
    // Ascending ids are the Map's binary-search invariant; an id at or
    // above next_point_id was never issued.
    if (p.id <= prev_id) return reject("map point ids not strictly ascending");
    if (p.id >= out.next_point_id)
      return reject("map point id at or above next_point_id");
    if (!finite(p.position[0]) || !finite(p.position[1]) ||
        !finite(p.position[2]))
      return reject("non-finite map point position");
    prev_id = p.id;
    out.points.push_back(p);
  }

  if (!backend::read_graph_section(in, out.next_point_id, out.graph_options,
                                   out.keyframes, error))
    return false;

  if (!in.at_end()) return reject("trailing bytes after graph section");
  return true;
}

}  // namespace

MapSnapshot capture_snapshot(const Map& map,
                             const backend::KeyframeGraph& graph,
                             const PinholeCamera& camera) {
  MapSnapshot snapshot;
  snapshot.camera = camera;
  snapshot.next_point_id = map.next_id();
  snapshot.points = map.points();
  snapshot.graph_options = graph.options();
  snapshot.keyframes = backend::collect_keyframes(graph);
  return snapshot;
}

std::vector<std::uint8_t> serialize_snapshot(const MapSnapshot& snapshot) {
  std::vector<std::uint8_t> payload;
  {
    ByteWriter writer(payload);
    write_payload(snapshot, writer);
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  ByteWriter header(bytes);
  header.u64(kMagic);
  header.u32(kVersion);
  header.u32(0);  // flags (reserved)
  header.u64(payload.size());
  header.u64(fnv1a64(payload));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

bool parse_snapshot(std::span<const std::uint8_t> bytes, MapSnapshot& out,
                    std::string* error) {
  const auto reject = [&](const char* why) {
    if (error) *error = why;
    return false;
  };
  if (bytes.size() < kHeaderBytes) return reject("file shorter than header");
  ByteReader header(bytes.first(kHeaderBytes));
  if (header.u64() != kMagic) return reject("bad magic (not a map snapshot)");
  const std::uint32_t version = header.u32();
  if (version != kVersion) return reject("unsupported snapshot version");
  if (header.u32() != 0) return reject("unsupported snapshot flags");
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderBytes);
  if (payload_size != payload.size())
    return reject("payload size does not match file size");
  if (fnv1a64(payload) != checksum) return reject("payload checksum mismatch");
  return parse_payload(payload, out, error);
}

bool save_snapshot(const std::string& path, const MapSnapshot& snapshot,
                   std::string* error) {
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snapshot);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool load_snapshot(const std::string& path, MapSnapshot& out,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[64 * 1024];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0)
    bytes.insert(bytes.end(), buffer, buffer + n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error) *error = "read error on " + path;
    return false;
  }
  return parse_snapshot(bytes, out, error);
}

}  // namespace eslam
