#include "slam/localizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "geometry/wall_timer.h"

namespace eslam {

namespace {
std::atomic<int> g_localization_session_ordinal{0};
}  // namespace

Localizer::Localizer(std::shared_ptr<const FrozenMap> map,
                     std::unique_ptr<FeatureBackend> backend,
                     const LocalizerOptions& options)
    : map_(std::move(map)), backend_(std::move(backend)), options_(options) {
  ESLAM_ASSERT(map_ != nullptr, "localizer needs a frozen map");
  ESLAM_ASSERT(backend_ != nullptr, "localizer needs a feature backend");
  const int ordinal =
      g_localization_session_ordinal.fetch_add(1, std::memory_order_relaxed);
  obs_.pid = obs::register_process("localization-" + std::to_string(ordinal));
  obs_.frame_track = obs::register_track(obs_.pid, "frame");
  obs_.frame_ms = &obs::metrics().histogram("eslam_localizer_frame_ms");
  obs_.coldstart_ms =
      &obs::metrics().histogram("eslam_localizer_coldstart_ms");
}

SE3 Localizer::predicted_pose_cw() const {
  if (!options_.use_motion_model || !have_velocity_) return last_pose_cw_;
  // Constant velocity: T(t+1) ~ [T(t) T(t-1)^-1] T(t).
  return (last_pose_cw_ * prev_pose_cw_.inverse()) * last_pose_cw_;
}

TrackResult Localizer::process(const FrameInput& frame) {
  ESLAM_TRACE_SCOPE(obs_.frame_track, "frame");
  const WallTimer frame_timer;
  arena_.reset();
  // Reset the recycled per-frame outputs capacity-intact (the same reset
  // Tracker::acquire_frame performs on a pooled frame shell).
  matches_.clear();
  reloc_positions_.clear();
  reloc_reference_cw_ = SE3{};
  match_tier_ = MatchTier::kBruteForce;
  gate_.candidates.indices.clear();
  gate_.candidates.offsets.clear();
  gate_.projected = 0;
  gate_.build_ms = 0;
  ransac_.pose = SE3{};
  ransac_.inliers.clear();
  ransac_.success = false;
  ransac_.iterations = 0;
  ransac_retry_.inliers.clear();
  correspondences_.clear();

  TrackResult result;
  result.timestamp = frame.timestamp;

  // --- Feature extraction (FPGA in the paper) ---------------------------
  {
    ESLAM_TRACE_SCOPE(obs_.frame_track, "FE");
    backend_->extract_into(frame.gray, features_);
  }
  result.times.feature_extraction = backend_->last_extract_time_ms();
  result.n_features = static_cast<int>(features_.size());

  match(result);
  estimate_pose(result);
  optimize_pose(result);

  // Commit — pose state only; there is no map to update.
  if (result.lost) {
    have_velocity_ = false;
    tracking_ = false;
  } else {
    // A cold/lost frame that reached here recovered a pose through the
    // recognition path — that is the relocalization the stats report.
    result.relocalized = result.reloc_attempted;
    prev_pose_cw_ = last_pose_cw_;
    last_pose_cw_ = result.pose_cw;
    // A recovered pose has no meaningful predecessor for a velocity;
    // restart the motion model from it alone (same rule as the tracker).
    have_velocity_ = !result.reloc_attempted;
    tracking_ = true;
  }
  ++frames_processed_;
  // Latency rollups: every frame, plus the cold-start distribution for
  // frames that engaged the relocalization entry path (the tier's
  // time-to-first-pose signal).
  const double frame_ms = frame_timer.elapsed_ms();
  obs_.frame_ms->record(frame_ms);
  if (result.reloc_attempted) obs_.coldstart_ms->record(frame_ms);
  return result;
}

void Localizer::match(TrackResult& result) {
  ESLAM_TRACE_SCOPE(obs_.frame_track, "FM");
  // --- Feature matching (FPGA in the paper) -----------------------------
  // No lock, no epoch check: the frozen tier is the degenerate
  // one-version case of the live map's published-view read path — the
  // FrozenMap pins a single MapReadView forever, so the borrow below is
  // valid unconditionally and a match is never replayed.
  const MapReadView& view = *map_->view();
  if (view.empty()) {
    result.times.feature_matching = 0.0;
    result.n_matches = 0;
    return;
  }
  const TrainView train{view.descriptors(), &view.descriptor_soa()};

  double match_ms = 0.0;
  bool gated = false;
  // Tier one: projection-gated candidate search off the fresh motion
  // model (no published slot — see the header's file comment).
  if (tracking_ && options_.match.use_gate &&
      static_cast<int>(view.size()) >=
          options_.match.min_map_points_for_gate) {
    build_candidate_set_into(view.xs(), view.ys(), view.zs(),
                             predicted_pose_cw(), map_->camera(), features_,
                             options_.match, &arena_, gate_);
    backend_->match_candidates_into(features_, train, gate_.candidates,
                                    &arena_, matches_);
    match_ms += gate_.build_ms + backend_->last_match_time_ms();
    const int required = std::max(
        options_.match.min_gated_matches,
        static_cast<int>(std::ceil(options_.match.min_gated_match_fraction *
                                   static_cast<double>(features_.size()))));
    if (static_cast<int>(matches_.size()) >= required) gated = true;
    // else: the prior is likely wrong — fall through to the full-map tier
    // (which overwrites matches_).
  }
  // Cold-start / post-loss tier: indexed relocalization, engaged
  // immediately (no lost-streak delay — a localizer without a pose has no
  // motion prior worth waiting for, unlike the mapping tracker).
  bool relocated = false;
  if (!gated && !tracking_ && options_.reloc.use_index &&
      static_cast<int>(features_.size()) >= options_.reloc.min_matches &&
      static_cast<int>(map_->graph().size()) >= options_.reloc.min_keyframes) {
    // (A frame without enough features — a dropout/blank — cannot
    // relocalize by any tier; it is not counted as an attempt.)
    result.reloc_attempted = true;
    // Recovery is off the steady-state path: the descriptor staging copy
    // the index query needs is allocated here, not on every frame.
    std::vector<Descriptor256> query;
    query.reserve(features_.size());
    for (const Feature& f : features_) query.push_back(f.descriptor);
    relocated = match_against_reloc_index(query, match_ms);
  }
  // Fallback tier: full-map brute force (small maps, gate fallback, or a
  // cold start the recognition index could not answer).
  if (!gated && !relocated) {
    backend_->match_into(features_, train, &arena_, matches_);
    match_ms += backend_->last_match_time_ms();
  }
  match_tier_ = gated ? MatchTier::kGated
              : relocated ? MatchTier::kRelocIndex
                          : MatchTier::kBruteForce;
  result.match_tier = match_tier_;
  result.times.feature_matching = match_ms;
  result.n_matches = static_cast<int>(matches_.size());
}

bool Localizer::match_against_reloc_index(std::span<const Descriptor256> query,
                                          double& match_ms) {
  const backend::KeyframeGraph& graph = map_->graph();
  const std::vector<backend::KeyframeScore> ranked =
      map_->keyframe_index().query(query, options_.reloc.max_candidates);
  for (const backend::KeyframeScore& hit : ranked) {
    if (!graph.contains(hit.keyframe_id)) continue;
    // The candidate's local place: the keyframe plus its top covisible
    // neighbours; the 3D side is each observation's own depth
    // unprojection lifted by its keyframe pose (see Tracker's reloc tier).
    const std::vector<int> hood =
        graph.neighbourhood(hit.keyframe_id, options_.reloc.neighbourhood);
    const std::vector<backend::KeyframeGraph::PlaceObservation> place =
        graph.place_observations(hood);
    std::vector<Descriptor256> subset;
    std::vector<std::int32_t> map_index;  // frozen-map index or -1
    subset.reserve(place.size());
    map_index.reserve(place.size());
    for (const auto& obs : place) {
      subset.push_back(obs.descriptor);
      const auto index = map_->index_of(obs.point_id);
      map_index.push_back(index ? static_cast<std::int32_t>(*index) : -1);
    }
    if (static_cast<int>(subset.size()) < options_.reloc.min_matches)
      continue;
    // Verification-grade matching, host-side (see RelocOptions::matcher).
    const WallTimer reloc_timer;
    std::vector<Match> matches =
        match_descriptors(query, subset, options_.reloc.matcher);
    match_ms += reloc_timer.elapsed_ms();
    if (static_cast<int>(matches.size()) < options_.reloc.min_matches)
      continue;  // recognition was wrong for this hit; try the next one
    reloc_positions_.clear();
    reloc_positions_.reserve(matches.size());
    for (Match& m : matches) {
      reloc_positions_.push_back(
          place[static_cast<std::size_t>(m.train)].position_w);
      m.train = map_index[static_cast<std::size_t>(m.train)];
    }
    matches_ = std::move(matches);
    reloc_reference_cw_ = graph.keyframe(hit.keyframe_id).pose_cw;
    return true;
  }
  return false;
}

void Localizer::estimate_pose(TrackResult& result) {
  if (map_->empty()) {
    // Nothing to localize against — unlike the tracker there is no
    // bootstrap: a frozen map is the session's whole world.
    result.lost = true;
    result.pose_cw = last_pose_cw_;
    result.pose_wc = last_pose_cw_.inverse();
    return;
  }

  // --- Pose estimation: PnP + RANSAC (ARM) ------------------------------
  ESLAM_TRACE_SCOPE(obs_.frame_track, "PE");
  WallTimer pe_timer;
  correspondences_.clear();
  correspondences_.reserve(matches_.size());
  const bool reloc = match_tier_ == MatchTier::kRelocIndex;
  for (std::size_t i = 0; i < matches_.size(); ++i) {
    const Match& m = matches_[i];
    const Feature& f = features_[static_cast<std::size_t>(m.query)];
    // Reloc matches carry their own 3D (keyframe-observation geometry).
    correspondences_.push_back(Correspondence{
        reloc ? reloc_positions_[i]
              : map_->point(static_cast<std::size_t>(m.train)).position,
        Vec2{f.keypoint.x0(), f.keypoint.y0()}});
  }
  // Same acceptance gates as the tracker: absolute for the reloc tier's
  // neighbourhood-bounded match set, ratio (with the strong-consensus
  // override) for map-wide sets.
  const int required_inliers =
      reloc ? std::max(options_.min_tracked_inliers,
                       options_.reloc.min_inliers)
            : std::max(options_.min_tracked_inliers,
                       std::min(options_.strong_consensus_inliers,
                                static_cast<int>(
                                    options_.min_inlier_ratio *
                                    static_cast<double>(
                                        correspondences_.size()))));
  const SE3 prior = predicted_pose_cw();
  ransac_pnp_into(correspondences_, map_->camera(), prior, options_.ransac,
                  &arena_, ransac_);
  if (!ransac_.success ||
      static_cast<int>(ransac_.inliers.size()) < required_inliers) {
    // Retry once from the raw previous pose (the velocity extrapolation
    // itself can be the problem after an abrupt motion change).
    if (options_.use_motion_model && have_velocity_) {
      ransac_pnp_into(correspondences_, map_->camera(), last_pose_cw_,
                      options_.ransac, &arena_, ransac_retry_);
      if (ransac_retry_.inliers.size() > ransac_.inliers.size())
        std::swap(ransac_, ransac_retry_);
    }
  }
  if (options_.relocalize_with_p3p &&
      (!ransac_.success ||
       static_cast<int>(ransac_.inliers.size()) < required_inliers)) {
    // Closed-form P3P hypotheses need no pose prior — the cold-start
    // workhorse (a fresh localizer has no prior at all).
    RansacOptions reloc_opts = options_.ransac;
    reloc_opts.use_p3p = true;
    ransac_pnp_into(correspondences_, map_->camera(), SE3{}, reloc_opts,
                    &arena_, ransac_retry_);
    if (ransac_retry_.inliers.size() > ransac_.inliers.size())
      std::swap(ransac_, ransac_retry_);
  }
  result.times.pose_estimation = pe_timer.elapsed_ms();
  result.n_inliers = static_cast<int>(ransac_.inliers.size());
  if (reloc && ransac_.success) {
    // Plausibility: the recovered camera must be where the recognized
    // keyframe's scene is visible from.  Accept-only-when-provably-
    // plausible so a NaN pose fails the gate (NaN fails every comparison).
    const Vec3 centre = ransac_.pose.inverse().translation();
    const Vec3 reference = reloc_reference_cw_.inverse().translation();
    const double distance = (centre - reference).norm();
    const double rotation = ransac_.pose.rotation_angle(reloc_reference_cw_);
    if (!(distance <= options_.reloc.max_distance_m &&
          rotation <= options_.reloc.max_rotation_rad))
      ransac_.success = false;
  }
  if (!ransac_.success || result.n_inliers < required_inliers) {
    // Lost: keep the previous pose; the commit step drops the velocity.
    result.lost = true;
    result.pose_cw = last_pose_cw_;
    result.pose_wc = last_pose_cw_.inverse();
  }
}

void Localizer::optimize_pose(TrackResult& result) {
  if (result.lost) return;

  // --- Pose optimization: LM on inlier reprojection error (ARM) ---------
  ESLAM_TRACE_SCOPE(obs_.frame_track, "PO");
  WallTimer po_timer;
  const ArenaScope scope(arena_);
  std::span<Correspondence> inlier_set =
      arena_.alloc_span<Correspondence>(ransac_.inliers.size());
  std::size_t k = 0;
  for (int idx : ransac_.inliers)
    inlier_set[k++] = correspondences_[static_cast<std::size_t>(idx)];
  const PnpResult optimized = solve_pnp(inlier_set, map_->camera(),
                                        ransac_.pose,
                                        options_.pose_optimization);
  result.times.pose_optimization = po_timer.elapsed_ms();
  result.pose_cw = optimized.pose;
  result.pose_wc = optimized.pose.inverse();
}

}  // namespace eslam
