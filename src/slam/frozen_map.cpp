#include "slam/frozen_map.h"

#include <algorithm>

#include "backend/graph_serialization.h"

namespace eslam {

FrozenMap::FrozenMap(MapSnapshot snapshot)
    : camera_(snapshot.camera),
      points_(std::move(snapshot.points)),
      graph_(backend::rebuild_graph(snapshot.graph_options,
                                    snapshot.keyframes)) {
  descriptor_cache_.reserve(points_.size());
  position_cache_.reserve(points_.size());
  descriptor_soa_.reserve(points_.size());
  position_soa_.reserve(points_.size());
  for (const MapPoint& p : points_) {
    descriptor_cache_.push_back(p.descriptor);
    position_cache_.push_back(p.position);
    descriptor_soa_.push_back(p.descriptor);
    position_soa_.push_back(p.position);
  }
  backend::rebuild_index(graph_, index_);
}

std::shared_ptr<const FrozenMap> FrozenMap::load(const std::string& path,
                                                 std::string* error) {
  MapSnapshot snapshot;
  if (!load_snapshot(path, snapshot, error)) return nullptr;
  return from_snapshot(std::move(snapshot));
}

std::optional<std::size_t> FrozenMap::index_of(std::int64_t id) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), id,
      [](const MapPoint& p, std::int64_t key) { return p.id < key; });
  if (it == points_.end() || it->id != id) return std::nullopt;
  return static_cast<std::size_t>(it - points_.begin());
}

}  // namespace eslam
