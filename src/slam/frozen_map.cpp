#include "slam/frozen_map.h"

#include <algorithm>

#include "backend/graph_serialization.h"

namespace eslam {

FrozenMap::FrozenMap(MapSnapshot snapshot)
    : camera_(snapshot.camera),
      points_(std::move(snapshot.points)),
      graph_(backend::rebuild_graph(snapshot.graph_options,
                                    snapshot.keyframes)) {
  auto desc = std::make_shared<detail::DescriptorBlock>();
  auto pos = std::make_shared<detail::PositionBlock>();
  auto ids = std::make_shared<detail::IdBlock>();
  desc->aos.reserve(points_.size());
  desc->soa.reserve(points_.size());
  pos->aos.reserve(points_.size());
  pos->soa.reserve(points_.size());
  ids->ids.reserve(points_.size());
  for (const MapPoint& p : points_) {
    desc->aos.push_back(p.descriptor);
    desc->soa.push_back(p.descriptor);
    pos->aos.push_back(p.position);
    pos->soa.push_back(p.position);
    ids->ids.push_back(p.id);
  }
  desc_block_ = std::move(desc);
  pos_block_ = std::move(pos);
  id_block_ = std::move(ids);
  alive_ = std::make_shared<std::atomic<std::int64_t>>(0);
  view_ = std::make_shared<const MapReadView>(/*epoch=*/0, points_.size(),
                                              desc_block_, pos_block_,
                                              id_block_, alive_);
  backend::rebuild_index(graph_, index_);
}

std::shared_ptr<const FrozenMap> FrozenMap::load(const std::string& path,
                                                 std::string* error) {
  MapSnapshot snapshot;
  if (!load_snapshot(path, snapshot, error)) return nullptr;
  return from_snapshot(std::move(snapshot));
}

}  // namespace eslam
