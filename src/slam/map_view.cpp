#include "slam/map_view.h"

#include <algorithm>

#include "obs/metrics.h"

namespace eslam {

namespace {

// Process-wide live-view accounting, shared by every Map (and FrozenMap's
// degenerate one-version case): a plain up/down counter plus its
// high-water mark.  Resolved once — view construction/destruction happens
// on mutation paths and at borrow release, where a registry lookup's lock
// would be unwelcome and an allocation would break the steady-state
// contract (a borrow release is refcount-only).
struct ViewObs {
  obs::Counter* alive;
  obs::MaxGauge* alive_hwm;
};

ViewObs& view_obs() {
  static ViewObs handles{&obs::metrics().counter("eslam_map_views_alive"),
                         &obs::metrics().max_gauge("eslam_map_views_alive_hwm")};
  return handles;
}

}  // namespace

MapReadView::MapReadView(std::uint64_t epoch, std::size_t size,
                         std::shared_ptr<const detail::DescriptorBlock> desc,
                         std::shared_ptr<const detail::PositionBlock> pos,
                         std::shared_ptr<const detail::IdBlock> ids,
                         std::shared_ptr<std::atomic<std::int64_t>> alive)
    : epoch_(epoch),
      size_(size),
      descriptors_(desc->aos.data(), size),
      xs_(pos->soa.x.data(), size),
      ys_(pos->soa.y.data(), size),
      zs_(pos->soa.z.data(), size),
      positions_(pos->aos.data(), size),
      ids_span_(ids->ids.data(), size),
      desc_(std::move(desc)),
      pos_(std::move(pos)),
      ids_(std::move(ids)),
      alive_(std::move(alive)) {
  const std::int64_t now =
      alive_->fetch_add(1, std::memory_order_relaxed) + 1;
  ViewObs& obs = view_obs();
  obs.alive->add(1);
  obs.alive_hwm->update(now);
}

MapReadView::~MapReadView() {
  alive_->fetch_sub(1, std::memory_order_relaxed);
  view_obs().alive->add(-1);
}

std::optional<std::size_t> MapReadView::index_of(std::int64_t id) const {
  const auto it = std::lower_bound(ids_span_.begin(), ids_span_.end(), id);
  if (it == ids_span_.end() || *it != id) return std::nullopt;
  return static_cast<std::size_t>(it - ids_span_.begin());
}

}  // namespace eslam
