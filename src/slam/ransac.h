// RANSAC wrapper around iterative PnP (paper: "RANSAC is used to eliminate
// the mismatches").  Minimal sample size is 4; each hypothesis is refit by
// a few Gauss-Newton iterations starting from the motion prior (previous
// frame pose), which is the standard choice for frame-to-frame tracking
// where inter-frame motion is small.
#pragma once

#include <span>
#include <vector>

#include "core/arena.h"
#include "slam/p3p.h"
#include "slam/pnp.h"

namespace eslam {

struct RansacOptions {
  int max_iterations = 64;
  int sample_size = 4;
  // Hypothesis generation: false = iterative PnP refit seeded from the
  // motion prior (cheap, needs a decent prior); true = closed-form P3P on
  // the first 3 sample points, disambiguated by the 4th (prior-free; used
  // for relocalization).
  bool use_p3p = false;
  double inlier_threshold_px = 3.0;   // reprojection inlier gate
  int min_inliers = 10;               // below this the frame counts as lost
  double early_exit_ratio = 0.8;      // stop once this inlier share reached
  // Adaptive termination (standard RANSAC): after each improvement,
  // recompute the iteration count needed to sample an all-inlier minimal
  // set with this confidence, and stop there.  Keeps the easy case (good
  // prior, high inlier share) at a handful of iterations while still
  // spending max_iterations on hard frames.
  double confidence = 0.999;
  int min_iterations = 16;  // floor under the adaptive stop
  // Deterministic sampling: the same seed yields the same sample sequence
  // on every toolchain (mt19937_64 stream + the explicit bounded reduction
  // in slam/sampling.h — never std::uniform_int_distribution, which is
  // implementation-defined).
  std::uint64_t seed = 0x5eed5eedULL;
  PnpOptions refit;                   // per-hypothesis PnP settings
};

struct RansacResult {
  SE3 pose;
  std::vector<int> inliers;  // indices into the correspondence span
  bool success = false;
  int iterations = 0;
};

RansacResult ransac_pnp(std::span<const Correspondence> correspondences,
                        const PinholeCamera& camera, const SE3& prior_pose,
                        const RansacOptions& options = {});

// Allocation-free variant for the per-frame hot path: sample/index/inlier
// scratch lives in `scratch` (may be null: thread-local fallback) and the
// result — including its inlier vector's capacity — is recycled across
// calls.  The RNG stream, hypothesis order, adaptive termination, and
// refit are identical to ransac_pnp(), so both produce the same pose and
// inlier set for the same inputs.
void ransac_pnp_into(std::span<const Correspondence> correspondences,
                     const PinholeCamera& camera, const SE3& prior_pose,
                     const RansacOptions& options, Arena* scratch,
                     RansacResult& out);

}  // namespace eslam
