// Versioned binary persistence for a session's map: the Map's points plus
// the backend's keyframe database, captured at a quiescent moment and
// written as one self-describing file.  This is the handoff artifact
// between the mapping tier and the localization tier: a mapping session
// saves a snapshot, any number of localization sessions load it into an
// immutable FrozenMap (slam/frozen_map.h) and serve against it.
//
// File layout (all fields little-endian):
//
//   header (32 bytes)
//     u64  magic      "ESLMSNAP" (byte-literal, not host-endian)
//     u32  version    1
//     u32  flags      0 (reserved; parser requires 0)
//     u64  payload    payload byte count (file size minus 32)
//     u64  checksum   FNV-1a 64 over the payload bytes
//   payload
//     camera          fx fy cx cy (f64), width height (i32)
//     map section     next_point_id (i64), point count (u64), then per
//                     point: id (i64), position (3 f64), descriptor
//                     (4 u64), created/last_matched/match_count (3 i32)
//     graph section   see backend/graph_serialization.h
//
// Parsing is strict and bounds-checked end to end: magic/version/flags,
// payload size and checksum must match, counts are validated against the
// remaining bytes before any allocation, point ids must be strictly
// ascending and below next_point_id, all floats must be finite, and the
// payload must be consumed exactly.  A malformed file yields false + an
// error string — never UB (tests/slam/map_snapshot_test.cpp runs the
// malformed corpus under the ASan/UBSan CI leg).
//
// Derived state (AoS caches, SoA mirrors, covisibility edges, the
// recognition index) is NOT serialized — FrozenMap rebuilds it
// deterministically on load.  That is what makes the round trip exact:
// serialize(parse(serialize(s))) == serialize(s) byte for byte.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "backend/keyframe_graph.h"
#include "geometry/camera.h"
#include "slam/map.h"

namespace eslam {

class Map;

// The serializable state, decoupled from the live containers so capture,
// parse and FrozenMap construction all speak one type.
struct MapSnapshot {
  PinholeCamera camera = PinholeCamera::tum_freiburg1();
  std::int64_t next_point_id = 0;
  std::vector<MapPoint> points;  // ascending id (the Map invariant)
  backend::KeyframeGraphOptions graph_options;
  std::vector<backend::Keyframe> keyframes;  // insertion order
};

// Copies the quiescent session state (no stages in flight; the caller owns
// that quiescence — e.g. after SessionHandle::drain() or between
// sequential process() calls).
MapSnapshot capture_snapshot(const Map& map,
                             const backend::KeyframeGraph& graph,
                             const PinholeCamera& camera);

// Snapshot -> bytes (header + payload).  Deterministic: a given snapshot
// always serializes to the same bytes.
std::vector<std::uint8_t> serialize_snapshot(const MapSnapshot& snapshot);

// Bytes -> snapshot with full validation (see file comment).  On failure
// returns false, sets *error (when non-null), and leaves `out`
// unspecified.
bool parse_snapshot(std::span<const std::uint8_t> bytes, MapSnapshot& out,
                    std::string* error = nullptr);

// File wrappers around the two, with I/O errors reported the same way.
bool save_snapshot(const std::string& path, const MapSnapshot& snapshot,
                   std::string* error = nullptr);
bool load_snapshot(const std::string& path, MapSnapshot& out,
                   std::string* error = nullptr);

}  // namespace eslam
