// Global map: 3D points with BRIEF descriptors (paper section 2.1, Map
// Updating).  Points unmatched for a long period are pruned so the map —
// and the matcher's working set — stays bounded.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "features/descriptor.h"
#include "features/descriptor_soa.h"
#include "geometry/matrix.h"

namespace eslam {

// Map-point positions as separate x/y/z lanes, aligned with points().
// This is the layout the batched projection kernel streams.
struct PositionSoA {
  std::vector<double> x, y, z;

  std::size_t size() const { return x.size(); }
  void clear() {
    x.clear();
    y.clear();
    z.clear();
  }
  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
  }
  void push_back(const Vec3& p) {
    x.push_back(p[0]);
    y.push_back(p[1]);
    z.push_back(p[2]);
  }
  void set(std::size_t i, const Vec3& p) {
    x[i] = p[0];
    y[i] = p[1];
    z[i] = p[2];
  }
};

struct MapApplyStats {
  std::size_t moved = 0;
  std::size_t removed = 0;
};

struct MapPoint {
  std::int64_t id = 0;
  Vec3 position;  // world frame
  Descriptor256 descriptor;
  int created_frame = 0;
  int last_matched_frame = 0;
  int match_count = 0;
};

class Map {
 public:
  // Adds a point; returns its id.
  std::int64_t add_point(const Vec3& position, const Descriptor256& descriptor,
                         int frame_index);

  // Marks point at `index` (not id) as matched in `frame_index`.
  void note_match(std::size_t index, int frame_index);

  // Removes points whose last match is older than `max_age` frames
  // (the paper's "not matched for a long period of time" rule).
  // Returns the number of points removed.
  std::size_t prune(int current_frame, int max_age);

  // Index of the point with `id`, if still alive.  Ids are assigned
  // monotonically and removals preserve order, so points_ is always
  // sorted by id and this is a binary search.
  std::optional<std::size_t> index_of(std::int64_t id) const;

  // One structural update from the local-mapping backend: moves point
  // positions (by id) and removes culled/fused points (`remove_ids`
  // sorted ascending).  Ids no longer alive are skipped.  The epoch is
  // bumped exactly once when anything changed — position refinements
  // shift the projection gate's view, so matches computed before the
  // apply must replay exactly as they do after add_point()/prune().
  //
  // Concurrent-shard contract: deltas from covisibility-disjoint backend
  // shards commute under this call *provided each delta only moves or
  // removes points its shard owned* (the tracker asserts per-delta
  // ownership before applying).  Disjoint id sets touch disjoint rows, a
  // skipped-stale id stays skipped regardless of order, and each apply
  // is one structural write + one epoch bump — so any apply order of a
  // freeze's deltas yields the same map.  Calls themselves still
  // serialize on the tracker's map mutex; commutativity is what makes
  // the *order* (worker completion order) irrelevant.
  MapApplyStats apply_update(
      std::span<const std::pair<std::int64_t, Vec3>> moves,
      std::span<const std::int64_t> remove_ids);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  // The id the next add_point() will assign (strictly above every id ever
  // issued).  Snapshot capture persists it so a map restored from disk
  // never reuses a dead point's id.
  std::int64_t next_id() const { return next_id_; }

  // Structural version: bumped whenever point indices or descriptors can
  // change (add_point, prune) — never by note_match.  Feature matches are
  // index-based, so a match set is only valid against the epoch it was
  // computed under; the pipeline runtime uses this to detect when a
  // speculative match must be replayed after a key frame's map update.
  std::uint64_t epoch() const { return epoch_; }
  const MapPoint& point(std::size_t index) const { return points_[index]; }
  const std::vector<MapPoint>& points() const { return points_; }

  // Projection snapshot: arrays aligned with points(), exported under one
  // epoch.  descriptors() feeds the brute-force/HW matcher, positions()
  // the projection gate.  Both caches are maintained *eagerly* by
  // add_point()/prune(), so these calls are pure reads — safe under a
  // shared lock with any number of concurrent readers (the device lane's
  // match() runs against them while stats readers poll).
  std::span<const Descriptor256> descriptors() const {
    return descriptor_cache_;
  }
  std::span<const Vec3> positions() const { return position_cache_; }

  // SoA mirrors of the same caches, maintained on exactly the same paths
  // and valid under the same epoch.  The matcher reads the descriptor word
  // planes, the projection gate the position lanes — all borrowed views;
  // no per-frame snapshot copies are taken anywhere.
  const DescriptorSoA& descriptor_soa() const { return descriptor_soa_; }
  const PositionSoA& position_soa() const { return position_soa_; }

 private:
  void rebuild_caches();

  std::vector<MapPoint> points_;
  std::int64_t next_id_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<Descriptor256> descriptor_cache_;
  std::vector<Vec3> position_cache_;
  DescriptorSoA descriptor_soa_;
  PositionSoA position_soa_;
};

}  // namespace eslam
