// Global map: 3D points with BRIEF descriptors (paper section 2.1, Map
// Updating).  Points unmatched for a long period are pruned so the map —
// and the matcher's working set — stays bounded.
//
// Storage lives in refcounted blocks (slam/map_view.h) and every
// structural mutation publishes an immutable MapReadView into a ViewSlot:
// readers on other threads borrow the current view with one refcount
// acquisition (no lock shared with the writer's mutation work)
// while the single map-updating stage keeps appending behind it.
// Mutators themselves are NOT thread-safe against each other — exactly
// one stage writes the map, as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "features/descriptor.h"
#include "features/descriptor_soa.h"
#include "geometry/matrix.h"
#include "slam/map_view.h"

namespace eslam {

namespace obs {
class Counter;
class Histogram;
}  // namespace obs

struct MapApplyStats {
  std::size_t moved = 0;
  std::size_t removed = 0;
};

struct MapPoint {
  std::int64_t id = 0;
  Vec3 position;  // world frame
  Descriptor256 descriptor;
  int created_frame = 0;
  int last_matched_frame = 0;
  int match_count = 0;
};

class Map {
 public:
  Map();
  // Blocks are shared with published views; the view slot pins the
  // object's address.
  Map(const Map&) = delete;
  Map& operator=(const Map&) = delete;

  // Adds a point; returns its id.
  std::int64_t add_point(const Vec3& position, const Descriptor256& descriptor,
                         int frame_index);

  // Marks point at `index` (not id) as matched in `frame_index`.
  void note_match(std::size_t index, int frame_index);

  // Removes points whose last match is older than `max_age` frames
  // (the paper's "not matched for a long period of time" rule).
  // Returns the number of points removed.
  std::size_t prune(int current_frame, int max_age);

  // Index of the point with `id`, if still alive.  Ids are assigned
  // monotonically and removals preserve order, so points_ is always
  // sorted by id and this is a binary search.
  std::optional<std::size_t> index_of(std::int64_t id) const;

  // One structural update from the local-mapping backend: moves point
  // positions (by id) and removes culled/fused points (`remove_ids`
  // sorted ascending).  Ids no longer alive are skipped.  The epoch is
  // bumped exactly once when anything changed — position refinements
  // shift the projection gate's view, so matches computed before the
  // apply must replay exactly as they do after add_point()/prune().
  //
  // Concurrent-shard contract: deltas from covisibility-disjoint backend
  // shards commute under this call *provided each delta only moves or
  // removes points its shard owned* (the tracker asserts per-delta
  // ownership before applying).  Disjoint id sets touch disjoint rows, a
  // skipped-stale id stays skipped regardless of order, and each apply
  // is one structural write + one epoch bump — so any apply order of a
  // freeze's deltas yields the same map.  Calls themselves still
  // serialize on the single map-updating stage; commutativity is what
  // makes the *order* (worker completion order) irrelevant.
  MapApplyStats apply_update(
      std::span<const std::pair<std::int64_t, Vec3>> moves,
      std::span<const std::int64_t> remove_ids);

  // The current published view.  One refcount acquisition under the
  // slot's pointer-swap spinlock (no allocation — safe inside the
  // zero-alloc steady-state window; never blocks on the writer's
  // mutation work) and safe from any thread; the borrowed view stays
  // frozen for as long as the caller holds it, regardless of concurrent
  // publishes.
  std::shared_ptr<const MapReadView> read_view() const { return view_.load(); }

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  // The id the next add_point() will assign (strictly above every id ever
  // issued).  Snapshot capture persists it so a map restored from disk
  // never reuses a dead point's id.
  std::int64_t next_id() const { return next_id_; }

  // Structural version: bumped whenever point indices or descriptors can
  // change (add_point, prune, apply_update-with-effect) — never by
  // note_match.  Feature matches are index-based, so a match set is only
  // valid against the epoch it was computed under; the pipeline runtime
  // uses this to detect when a speculative match must be replayed after a
  // key frame's map update.  Every published view carries the epoch it
  // was built under, and a view is published on every bump — epoch() and
  // read_view()->epoch() agree at quiescence.
  std::uint64_t epoch() const { return epoch_; }
  const MapPoint& point(std::size_t index) const { return points_[index]; }
  const std::vector<MapPoint>& points() const { return points_; }

  // Writer-thread borrows of the live blocks, aligned with points() and
  // valid under the current epoch.  Cross-thread readers must go through
  // read_view() instead — these spans can move under a concurrent
  // mutation (block clone on capacity growth).
  std::span<const Descriptor256> descriptors() const {
    return {desc_block_->aos.data(), points_.size()};
  }
  std::span<const Vec3> positions() const {
    return {pos_block_->aos.data(), points_.size()};
  }
  const DescriptorSoA& descriptor_soa() const { return desc_block_->soa; }
  const PositionSoA& position_soa() const { return pos_block_->soa; }

  // Copy-on-write/publication accounting (single-writer folded; the
  // views_alive field is sampled from the shared refcount).
  MapViewStats view_stats() const;

 private:
  // Clones a block when its capacity is exhausted (appends) or a
  // mutation must not write rows a published view covers (moves,
  // removals).  Defined in map.cpp.
  void ensure_append_capacity(std::size_t extra);
  void rebuild_blocks();
  void clone_position_block();
  void publish();

  std::vector<MapPoint> points_;
  std::int64_t next_id_ = 0;
  std::uint64_t epoch_ = 0;

  // Live blocks: written only by the map-updating stage, shared read-only
  // with every view published since their creation.
  std::shared_ptr<detail::DescriptorBlock> desc_block_;
  std::shared_ptr<detail::PositionBlock> pos_block_;
  std::shared_ptr<detail::IdBlock> id_block_;
  std::shared_ptr<std::atomic<std::int64_t>> alive_;
  ViewSlot view_;

  MapViewStats stats_;
  std::uint64_t bytes_copied_this_mutation_ = 0;

  obs::Histogram* publish_ms_ = nullptr;
  obs::Counter* publishes_total_ = nullptr;
  obs::Counter* block_copies_total_ = nullptr;
  obs::Counter* bytes_copied_total_ = nullptr;
  obs::Counter* bytes_shared_total_ = nullptr;
};

}  // namespace eslam
