#include "slam/ransac.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>

#include "slam/sampling.h"

namespace eslam {

RansacResult ransac_pnp(std::span<const Correspondence> correspondences,
                        const PinholeCamera& camera, const SE3& prior_pose,
                        const RansacOptions& options) {
  RansacResult best;
  ransac_pnp_into(correspondences, camera, prior_pose, options, nullptr, best);
  return best;
}

void ransac_pnp_into(std::span<const Correspondence> correspondences,
                     const PinholeCamera& camera, const SE3& prior_pose,
                     const RansacOptions& options, Arena* scratch,
                     RansacResult& out) {
  RansacResult& best = out;
  best.pose = prior_pose;
  best.inliers.clear();
  best.success = false;
  best.iterations = 0;
  const int n = static_cast<int>(correspondences.size());
  if (n < options.sample_size) return;

  thread_local Arena fallback;
  Arena& arena = scratch != nullptr ? *scratch : fallback;
  const ArenaScope arena_scope(arena);

  // Explicit bounded reduction (not std::uniform_int_distribution, whose
  // mapping is implementation-defined): the same seed must yield the same
  // samples — and therefore the same pose and inlier set — on every
  // standard library, per the RansacOptions::seed contract.
  std::mt19937_64 rng(options.seed);
  auto pick = [&rng, n] {
    return static_cast<int>(bounded_draw(rng, static_cast<std::uint64_t>(n)));
  };
  const double thresh_sq =
      options.inlier_threshold_px * options.inlier_threshold_px;

  PnpOptions refit = options.refit;
  refit.max_iterations = std::max(refit.max_iterations, 5);

  const std::span<Correspondence> sample = arena.alloc_span<Correspondence>(
      static_cast<std::size_t>(options.sample_size), Correspondence{});
  const std::span<int> indices = arena.alloc_span<int>(
      static_cast<std::size_t>(options.sample_size), 0);
  const std::span<int> current =
      arena.alloc_span<int>(static_cast<std::size_t>(n));
  best.inliers.reserve(static_cast<std::size_t>(n));

  int needed_iterations = options.max_iterations;
  for (int iter = 0; iter < needed_iterations; ++iter) {
    best.iterations = iter + 1;
    // Draw a minimal sample without replacement.
    for (int k = 0; k < options.sample_size; ++k) {
      bool fresh;
      do {
        indices[static_cast<std::size_t>(k)] = pick();
        fresh = true;
        for (int j = 0; j < k; ++j)
          if (indices[static_cast<std::size_t>(j)] ==
              indices[static_cast<std::size_t>(k)])
            fresh = false;
      } while (!fresh);
      sample[static_cast<std::size_t>(k)] =
          correspondences[static_cast<std::size_t>(
              indices[static_cast<std::size_t>(k)])];
    }

    SE3 hypothesis_pose;
    if (options.use_p3p) {
      ESLAM_ASSERT(options.sample_size >= 4, "P3P+1 needs 4 samples");
      const std::array<Vec3, 4> world = {sample[0].world, sample[1].world,
                                         sample[2].world, sample[3].world};
      const std::array<Vec2, 4> pixels = {sample[0].pixel, sample[1].pixel,
                                          sample[2].pixel, sample[3].pixel};
      const auto p3p = solve_p3p_with_check(world, pixels, camera);
      if (!p3p) continue;
      // One polish step on the minimal set tightens the closed-form pose.
      hypothesis_pose = solve_pnp(sample, camera, *p3p, refit).pose;
    } else {
      hypothesis_pose = solve_pnp(sample, camera, prior_pose, refit).pose;
    }

    std::size_t inlier_count = 0;
    for (int i = 0; i < n; ++i)
      if (reprojection_error_sq(correspondences[static_cast<std::size_t>(i)],
                                camera, hypothesis_pose) < thresh_sq)
        current[inlier_count++] = i;

    if (inlier_count > best.inliers.size()) {
      best.inliers.assign(current.begin(),
                          current.begin() + static_cast<std::ptrdiff_t>(
                                                inlier_count));
      best.pose = hypothesis_pose;
      if (static_cast<double>(best.inliers.size()) >=
          options.early_exit_ratio * n)
        break;
      // Adaptive termination from the observed inlier ratio w:
      // needed = log(1 - confidence) / log(1 - w^sample_size).
      const double w = static_cast<double>(best.inliers.size()) / n;
      const double all_inlier_prob =
          std::pow(w, static_cast<double>(options.sample_size));
      if (all_inlier_prob > 1e-9 && all_inlier_prob < 1.0) {
        const int adaptive = static_cast<int>(std::ceil(
            std::log(1.0 - options.confidence) /
            std::log(1.0 - all_inlier_prob)));
        needed_iterations = std::clamp(
            std::max(adaptive, options.min_iterations), iter + 1,
            options.max_iterations);
      }
    }
  }

  if (static_cast<int>(best.inliers.size()) >= options.min_inliers) {
    // Final refit on all inliers (this is the "pose estimation" output the
    // Pose Optimization stage then polishes further).
    const std::span<Correspondence> inlier_set =
        arena.alloc_span<Correspondence>(best.inliers.size());
    std::size_t k = 0;
    for (int i : best.inliers)
      inlier_set[k++] = correspondences[static_cast<std::size_t>(i)];
    PnpOptions final_fit = options.refit;
    final_fit.max_iterations = 10;
    best.pose = solve_pnp(inlier_set, camera, best.pose, final_fit).pose;
    best.success = true;
  }
}

}  // namespace eslam
