// Localizer — the read-only session kind's frame loop.
//
// A Localizer runs the tracking half of the paper's pipeline — feature
// extraction -> feature matching -> pose estimation -> pose optimization —
// against an immutable FrozenMap.  There is no map updating: no keyframe
// insertions, no pruning, no backend jobs, no gate-prior publication
// protocol, no lock and no epoch check anywhere on the frame path.  The
// map cannot change, so the speculative-match machinery the mapping tier
// needs is simply absent, and N localizers sharing one FrozenMap read it
// concurrently with zero coordination.
//
// Entry path (the kidnapped-robot path as the front door): a Localizer
// starts cold — no pose, no motion model.  Until it acquires a pose (and
// again whenever tracking is lost) each frame runs *indexed
// relocalization*: query the frozen recognition index, match against the
// best keyframe's covisible neighbourhood with the verification-grade
// matcher, and recover the pose by P3P RANSAC under the absolute-inlier +
// plausibility gates — exactly the tracker's post-loss recovery, minus
// the lost-streak delay (a cold localizer has no motion prior worth
// waiting for, so RelocOptions::min_lost_frames is not consulted here).
// When the index comes up empty the map-wide brute-force tier is the
// deterministic fallback.
//
// Tracked frames mirror the mapping tracker's nominal path: a constant-
// velocity prior feeds the projection gate (built over the frozen
// position SoA lanes), candidates are matched through the SIMD kernels on
// the frozen descriptor planes, and the same RANSAC/retry/P3P ladder and
// LM refinement run on the ARM side.  The prior is the *fresh* motion
// model, not the mapping tier's two-frame-stale published slot — with no
// device/ARM split per frame there is nothing to pre-publish for.
//
// Steady-state tracked frames are zero-heap-allocation: all per-frame
// outputs live in recycled members, scratch comes from the per-frame
// arena, and the frozen views are borrowed (asserted by
// tests/runtime/steady_state_alloc_test.cpp).  Cold-start / reloc frames
// may allocate, matching the tracker's documented exemption.
//
// Threading: one Localizer is driven by one thread at a time (the
// scheduler serializes a session's frames); distinct Localizers sharing a
// FrozenMap are fully independent.  Determinism: given the same frame
// sequence and map, the output sequence is bit-identical across runs and
// across solo/served execution.
#pragma once

#include <memory>

#include "core/arena.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "slam/frozen_map.h"
#include "slam/match_gate.h"
#include "slam/ransac.h"
#include "slam/tracker.h"

namespace eslam {

// Mirrors the TrackerOptions the localization path consumes; defaults are
// identical so a localizer behaves like the tracker that built the map.
struct LocalizerOptions {
  LocalizerOptions() {
    // Same RANSAC operating point as TrackerOptions (see its constructor
    // comment): more draws for low-inlier frames, 4 px to absorb pyramid
    // quantization.
    ransac.max_iterations = 256;
    ransac.inlier_threshold_px = 4.0;
  }

  MatcherOptions matcher;
  // Gated-vs-brute-force tier selection (slam/match_gate.h).
  MatchPolicy match;
  // Cold-start / post-loss recovery knobs: index trust, neighbourhood
  // matching, the verification matcher, absolute inlier gate and pose
  // plausibility gate.  min_lost_frames is ignored (see file comment).
  RelocOptions reloc;
  RansacOptions ransac;
  PnpOptions pose_optimization{/*max_iterations=*/15,
                               /*initial_lambda=*/1e-4,
                               /*huber_delta=*/2.5,
                               /*convergence_step=*/1e-8};
  int min_tracked_inliers = 10;
  double min_inlier_ratio = 0.2;
  int strong_consensus_inliers = 400;
  bool use_motion_model = true;
  bool relocalize_with_p3p = true;
};

class Localizer {
 public:
  // The camera comes from the frozen map (the mapping session's
  // intrinsics) — frames fed here must match it.
  Localizer(std::shared_ptr<const FrozenMap> map,
            std::unique_ptr<FeatureBackend> backend,
            const LocalizerOptions& options = {});

  // One frame through FE -> FM -> PE -> PO (no MU).  TrackResult fields
  // that only map updating produces (keyframe, prune/cull counts,
  // loop_closed) stay at their defaults.
  TrackResult process(const FrameInput& frame);

  // True after a pose was acquired and not since lost; false means the
  // next frame takes the cold-start relocalization path.
  bool tracking() const { return tracking_; }
  int frames_processed() const { return frames_processed_; }

  // --- observability -------------------------------------------------------
  // This session's trace process row ("localization-N") with one "frame"
  // track (FE/FM/PE/PO nest inside the frame span), plus the tier's two
  // latency histograms: per-frame, and cold-start (frames that engaged
  // the relocalization entry path).  Registered at construction; the
  // frame loop only touches the resolved handles (zero-alloc contract).
  struct LocalizerObs {
    int pid = 0;
    obs::TrackId frame_track = obs::kDefaultTrack;
    obs::Histogram* frame_ms = nullptr;
    obs::Histogram* coldstart_ms = nullptr;
  };
  const LocalizerObs& observability() const { return obs_; }

  const FrozenMap& map() const { return *map_; }
  // The shared handle itself — its use_count is the tier's "how many
  // owners share this map" observability signal.
  const std::shared_ptr<const FrozenMap>& map_ptr() const { return map_; }
  FeatureBackend& backend() { return *backend_; }
  const PinholeCamera& camera() const { return map_->camera(); }

 private:
  void match(TrackResult& result);
  bool match_against_reloc_index(std::span<const Descriptor256> query,
                                 double& match_ms);
  void estimate_pose(TrackResult& result);
  void optimize_pose(TrackResult& result);
  SE3 predicted_pose_cw() const;

  std::shared_ptr<const FrozenMap> map_;
  std::unique_ptr<FeatureBackend> backend_;
  LocalizerOptions options_;

  // Pose state (the tracker's, minus everything map-writing).
  SE3 last_pose_cw_;
  SE3 prev_pose_cw_;
  bool have_velocity_ = false;
  bool tracking_ = false;
  int frames_processed_ = 0;

  // Recycled per-frame storage — the FrameState fields the localization
  // stages use, owned directly since frames never cross a lane boundary.
  FeatureList features_;
  std::vector<Match> matches_;
  MatchTier match_tier_ = MatchTier::kBruteForce;
  std::vector<Vec3> reloc_positions_;
  SE3 reloc_reference_cw_;
  GateResult gate_;
  std::vector<Correspondence> correspondences_;
  RansacResult ransac_;
  RansacResult ransac_retry_;
  Arena arena_;  // reset once per frame

  LocalizerObs obs_;
};

}  // namespace eslam
