// Deterministic bounded random draws for RANSAC sampling.
//
// std::uniform_int_distribution is implementation-defined: the same engine
// seed produces different draw sequences on libstdc++, libc++ and MSVC, so
// sampling through it silently breaks the "deterministic sampling" contract
// of RansacOptions::seed across toolchains.  The mt19937_64 *engine* stream
// itself is standard-mandated, so reducing its raw 64-bit outputs with an
// explicitly specified algorithm pins the exact sample sequence everywhere.
#pragma once

#include <cstdint>
#include <random>

namespace eslam {

namespace detail {

struct Mul128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

// Schoolbook 64x64 -> 128 multiply from 32-bit limbs.  Pure standard
// C++, so the reduction below compiles (and stays bit-identical) on
// toolchains without a 128-bit integer extension; kept callable on every
// platform so tests can pin it against the fast path.
inline Mul128 mul_64x64_portable(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
  const std::uint64_t ll = a_lo * b_lo;
  const std::uint64_t lh = a_lo * b_hi;
  const std::uint64_t hl = a_hi * b_lo;
  const std::uint64_t hh = a_hi * b_hi;
  const std::uint64_t mid = (ll >> 32) + (lh & 0xffffffffULL) + hl;  // no carry loss
  Mul128 out;
  out.lo = (mid << 32) | (ll & 0xffffffffULL);
  out.hi = hh + (lh >> 32) + (mid >> 32);
  return out;
}

inline Mul128 mul_64x64(std::uint64_t a, std::uint64_t b) {
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  return {static_cast<std::uint64_t>(p >> 64), static_cast<std::uint64_t>(p)};
#else
  return mul_64x64_portable(a, b);
#endif
}

}  // namespace detail

// Unbiased draw from [0, bound) using Lemire's multiply-shift reduction
// (Lemire 2019, "Fast Random Integer Generation in an Interval"): take the
// high 64 bits of rng() * bound, rejecting the small biased fringe where
// the low 64 bits fall under 2^64 mod bound.  Consumes a deterministic,
// implementation-independent number of engine outputs per call.
// Precondition: bound > 0.
inline std::uint64_t bounded_draw(std::mt19937_64& rng, std::uint64_t bound) {
  detail::Mul128 product = detail::mul_64x64(rng(), bound);
  if (product.lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    while (product.lo < threshold) product = detail::mul_64x64(rng(), bound);
  }
  return product.hi;
}

}  // namespace eslam
