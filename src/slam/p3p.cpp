#include "slam/p3p.h"

#include <algorithm>
#include <cmath>

#include "geometry/umeyama.h"

namespace eslam {

namespace {

// Cubic real roots (Cardano), used to find the quartic's critical points.
std::vector<double> solve_cubic(double a3, double a2, double a1, double a0) {
  if (std::abs(a3) < 1e-14) {
    // Quadratic fallback.
    if (std::abs(a2) < 1e-14) {
      if (std::abs(a1) < 1e-14) return {};
      return {-a0 / a1};
    }
    const double disc = a1 * a1 - 4 * a2 * a0;
    if (disc < 0) return {};
    const double s = std::sqrt(disc);
    return {(-a1 + s) / (2 * a2), (-a1 - s) / (2 * a2)};
  }
  const double b = a2 / a3, c = a1 / a3, d = a0 / a3;
  const double p = c - b * b / 3.0;
  const double q = 2.0 * b * b * b / 27.0 - b * c / 3.0 + d;
  const double shift = -b / 3.0;
  const double disc = q * q / 4.0 + p * p * p / 27.0;
  std::vector<double> roots;
  if (disc > 1e-18) {
    const double s = std::sqrt(disc);
    const double u = std::cbrt(-q / 2.0 + s);
    const double v = std::cbrt(-q / 2.0 - s);
    roots.push_back(u + v + shift);
  } else if (disc > -1e-18) {
    if (std::abs(q) < 1e-18) {
      roots.push_back(shift);
    } else {
      const double u = std::cbrt(-q / 2.0);
      roots.push_back(2 * u + shift);
      roots.push_back(-u + shift);
    }
  } else {
    const double r = std::sqrt(-p * p * p / 27.0);
    const double phi = std::acos(std::clamp(-q / (2.0 * r), -1.0, 1.0));
    const double m = 2.0 * std::sqrt(-p / 3.0);
    for (int k = 0; k < 3; ++k)
      roots.push_back(m * std::cos((phi + 2 * M_PI * k) / 3.0) + shift);
  }
  return roots;
}

double eval_quartic(const double* a, double x) {
  return (((a[4] * x + a[3]) * x + a[2]) * x + a[1]) * x + a[0];
}

// Newton polish from a bracketing interval.
double refine_root(const double* a, double lo, double hi) {
  double flo = eval_quartic(a, lo);
  double x = 0.5 * (lo + hi);
  for (int iter = 0; iter < 80; ++iter) {
    const double fx = eval_quartic(a, x);
    if ((fx > 0) == (flo > 0)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
    }
    x = 0.5 * (lo + hi);
  }
  // Final Newton steps for extra precision.
  for (int iter = 0; iter < 3; ++iter) {
    const double fx = eval_quartic(a, x);
    const double dfx =
        ((4 * a[4] * x + 3 * a[3]) * x + 2 * a[2]) * x + a[1];
    if (std::abs(dfx) < 1e-16) break;
    const double next = x - fx / dfx;
    if (next > lo && next < hi) x = next;
  }
  return x;
}

// Degree-bounded polynomial multiply (c = a * b).
void poly_mul(const std::vector<double>& a, const std::vector<double>& b,
              std::vector<double>& c) {
  c.assign(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) c[i + j] += a[i] * b[j];
}

}  // namespace

std::vector<double> solve_quartic(double a4, double a3, double a2, double a1,
                                  double a0) {
  const double coeffs[5] = {a0, a1, a2, a3, a4};
  if (std::abs(a4) < 1e-14) {
    // Degenerate: cubic (or lower).
    return solve_cubic(a3, a2, a1, a0);
  }
  // Critical points of the quartic partition the line into monotone
  // intervals; a sign change on an interval brackets exactly one root.
  std::vector<double> crit = solve_cubic(4 * a4, 3 * a3, 2 * a2, a1);
  std::sort(crit.begin(), crit.end());

  // Cauchy root bound.
  double bound = 0.0;
  for (int i = 0; i < 4; ++i)
    bound = std::max(bound, std::abs(coeffs[i] / a4));
  bound += 1.0;

  std::vector<double> knots = {-bound};
  for (double c : crit)
    if (c > -bound && c < bound) knots.push_back(c);
  knots.push_back(bound);

  std::vector<double> roots;
  for (std::size_t i = 0; i + 1 < knots.size(); ++i) {
    const double lo = knots[i], hi = knots[i + 1];
    const double flo = eval_quartic(coeffs, lo);
    const double fhi = eval_quartic(coeffs, hi);
    if (flo == 0.0) roots.push_back(lo);
    if ((flo > 0) != (fhi > 0))
      roots.push_back(refine_root(coeffs, lo, hi));
  }
  // Critical points that are themselves (double) roots.
  for (double c : crit)
    if (std::abs(eval_quartic(coeffs, c)) <
        1e-9 * std::max(1.0, std::abs(a4)) * std::max(1.0, c * c * c * c))
      roots.push_back(c);
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end(),
                          [](double a, double b) {
                            return std::abs(a - b) < 1e-9;
                          }),
              roots.end());
  return roots;
}

std::vector<SE3> solve_p3p(const std::array<Vec3, 3>& world,
                           const std::array<Vec3, 3>& rays) {
  const double a = (world[1] - world[2]).norm();
  const double b = (world[0] - world[2]).norm();
  const double c = (world[0] - world[1]).norm();
  if (a < 1e-9 || b < 1e-9 || c < 1e-9) return {};  // coincident points

  const double cos_alpha = dot(rays[1], rays[2]);
  const double cos_beta = dot(rays[0], rays[2]);
  const double cos_gamma = dot(rays[0], rays[1]);

  // Grunert's system with u = s2/s1, v = s3/s1 and
  //   u(v) = N(v) / D(v),
  //   N(v) = (m-1) v^2 - 2 m cos(beta) v + (m+1),  m = (a^2 - c^2)/b^2
  //   D(v) = 2 (cos(gamma) - cos(alpha) v)
  // substituted into
  //   u^2 - 2 cos(gamma) u + 1 - (c^2/b^2)(1 + v^2 - 2 cos(beta) v) = 0
  // giving N^2 - 2 cos(gamma) N D + D^2 Q = 0, a quartic in v, where
  //   Q(v) = 1 - (c^2/b^2)(1 + v^2 - 2 cos(beta) v).
  const double m = (a * a - c * c) / (b * b);
  const double c2b2 = (c * c) / (b * b);

  const std::vector<double> n_poly = {m + 1.0, -2.0 * m * cos_beta, m - 1.0};
  const std::vector<double> d_poly = {2.0 * cos_gamma, -2.0 * cos_alpha};
  const std::vector<double> q_poly = {1.0 - c2b2, 2.0 * c2b2 * cos_beta,
                                      -c2b2};

  std::vector<double> n2, nd, d2, d2q, quartic(5, 0.0);
  poly_mul(n_poly, n_poly, n2);
  poly_mul(n_poly, d_poly, nd);
  poly_mul(d_poly, d_poly, d2);
  poly_mul(d2, q_poly, d2q);
  for (std::size_t i = 0; i < 5; ++i) {
    double v = 0.0;
    if (i < n2.size()) v += n2[i];
    if (i < nd.size()) v -= 2.0 * cos_gamma * nd[i];
    if (i < d2q.size()) v += d2q[i];
    quartic[i] = v;
  }

  const std::vector<double> v_roots =
      solve_quartic(quartic[4], quartic[3], quartic[2], quartic[1],
                    quartic[0]);

  std::vector<SE3> poses;
  for (double v : v_roots) {
    if (v <= 1e-9) continue;  // distances must be positive
    const double denom_d = 2.0 * (cos_gamma - cos_alpha * v);
    if (std::abs(denom_d) < 1e-9) continue;
    const double u =
        ((m - 1.0) * v * v - 2.0 * m * cos_beta * v + (m + 1.0)) / denom_d;
    if (u <= 1e-9) continue;
    const double s1_sq = b * b / (1.0 + v * v - 2.0 * v * cos_beta);
    if (s1_sq <= 0.0) continue;
    const double s1 = std::sqrt(s1_sq);
    const double s2 = u * s1;
    const double s3 = v * s1;

    // Camera-frame triangle.
    std::array<Vec3, 3> cam = {s1 * rays[0], s2 * rays[1], s3 * rays[2]};

    // Rigid transform world -> camera via closed-form alignment.
    const AlignmentResult align =
        umeyama(std::span<const Vec3>(world), std::span<const Vec3>(cam));
    if (align.rmse > 1e-3 * std::max(1.0, b)) continue;  // inconsistent root
    poses.push_back(align.transform);
  }
  return poses;
}

std::optional<SE3> solve_p3p_with_check(
    const std::array<Vec3, 4>& world, const std::array<Vec2, 4>& pixels,
    const PinholeCamera& camera) {
  const std::array<Vec3, 3> w3 = {world[0], world[1], world[2]};
  const std::array<Vec3, 3> rays = {camera.ray(pixels[0][0], pixels[0][1]),
                                    camera.ray(pixels[1][0], pixels[1][1]),
                                    camera.ray(pixels[2][0], pixels[2][1])};
  const std::vector<SE3> candidates = solve_p3p(w3, rays);
  std::optional<SE3> best;
  double best_err = std::numeric_limits<double>::infinity();
  for (const SE3& pose : candidates) {
    const auto proj = camera.project(pose * world[3]);
    if (!proj) continue;
    const double err = (*proj - pixels[3]).squared_norm();
    if (err < best_err) {
      best_err = err;
      best = pose;
    }
  }
  return best;
}

}  // namespace eslam
