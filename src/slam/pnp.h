// Perspective-n-Point pose estimation by iterative Gauss-Newton /
// Levenberg-Marquardt on the reprojection error (paper Eq. 1):
//   E(p) = sum_i || c_i - h(g_i, p) ||^2
// where g_i are matched world points, c_i their pixel observations and p
// the world-to-camera pose.  Used both inside RANSAC (minimal 4-point
// refits) and as the final Pose Optimization stage (with a Huber kernel).
#pragma once

#include <span>

#include "geometry/camera.h"
#include "geometry/se3.h"

namespace eslam {

struct Correspondence {
  Vec3 world;   // g_i: matched 3D map point (world frame)
  Vec2 pixel;   // c_i: observed pixel in the current frame (level-0 coords)
};

struct PnpOptions {
  int max_iterations = 10;
  double initial_lambda = 1e-4;  // LM damping; 0 gives pure Gauss-Newton
  // Huber kernel width in pixels; <= 0 disables the robust kernel.
  double huber_delta = 0.0;
  double convergence_step = 1e-8;  // stop when |delta| drops below this
};

struct PnpResult {
  SE3 pose;               // refined world-to-camera transform
  double final_cost = 0;  // robustified mean squared reprojection error
  int iterations = 0;
  bool converged = false;
};

// Refines `initial_pose` against the correspondences.  Requires >= 3
// correspondences (6 DoF from 2 residuals each needs >= 3).
PnpResult solve_pnp(std::span<const Correspondence> correspondences,
                    const PinholeCamera& camera, const SE3& initial_pose,
                    const PnpOptions& options = {});

// Squared reprojection error of a single correspondence under `pose`;
// returns a large sentinel when the point falls behind the camera.
double reprojection_error_sq(const Correspondence& c,
                             const PinholeCamera& camera, const SE3& pose);

}  // namespace eslam
