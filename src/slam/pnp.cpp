#include "slam/pnp.h"

#include <cmath>

namespace eslam {

namespace {

// Accumulates the normal equations for one correspondence.  Returns false
// when the point is behind the camera (it is then skipped).
bool accumulate(const Correspondence& c, const PinholeCamera& camera,
                const SE3& pose, double huber_delta, Mat6& h, Vec6& b,
                double& cost) {
  const Vec3 p = pose * c.world;  // camera-frame point
  if (p[2] <= PinholeCamera::kMinDepth) return false;

  const double x = p[0], y = p[1], z = p[2];
  const double inv_z = 1.0 / z;
  const Vec2 proj{camera.fx() * x * inv_z + camera.cx(),
                  camera.fy() * y * inv_z + camera.cy()};
  const Vec2 r = proj - c.pixel;

  // Projection Jacobian wrt the camera-frame point.
  Mat<2, 3> j_proj;
  j_proj(0, 0) = camera.fx() * inv_z;
  j_proj(0, 2) = -camera.fx() * x * inv_z * inv_z;
  j_proj(1, 1) = camera.fy() * inv_z;
  j_proj(1, 2) = -camera.fy() * y * inv_z * inv_z;

  // Left-perturbation pose Jacobian: d(T p)/d xi = [I | -hat(p)].
  Mat<3, 6> j_point;
  j_point.set_block(0, 0, Mat3::identity());
  j_point.set_block(0, 3, -hat(p));

  const Mat<2, 6> j = j_proj * j_point;

  const double err_sq = r.squared_norm();
  double weight = 1.0;
  if (huber_delta > 0.0) {
    const double err = std::sqrt(err_sq);
    if (err > huber_delta) weight = huber_delta / err;
    cost += weight * err_sq * (2.0 - weight);  // Huber rho
  } else {
    cost += err_sq;
  }

  const Mat<6, 2> jt = j.transposed();
  h += weight * (jt * j);
  b += weight * (jt * r);
  return true;
}

}  // namespace

double reprojection_error_sq(const Correspondence& c,
                             const PinholeCamera& camera, const SE3& pose) {
  const Vec3 p = pose * c.world;
  const auto proj = camera.project(p);
  if (!proj) return 1e12;
  return (*proj - c.pixel).squared_norm();
}

PnpResult solve_pnp(std::span<const Correspondence> correspondences,
                    const PinholeCamera& camera, const SE3& initial_pose,
                    const PnpOptions& options) {
  ESLAM_ASSERT(correspondences.size() >= 3, "PnP needs >= 3 correspondences");
  PnpResult result;
  result.pose = initial_pose;
  double lambda = options.initial_lambda;

  double prev_cost = -1.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Mat6 h;
    Vec6 b;
    double cost = 0.0;
    int used = 0;
    for (const Correspondence& c : correspondences)
      if (accumulate(c, camera, result.pose, options.huber_delta, h, b, cost))
        ++used;
    if (used < 3) break;  // degenerate: almost everything behind the camera
    cost /= used;

    // LM damping on the diagonal.
    for (int i = 0; i < 6; ++i) h(i, i) += lambda * h(i, i) + 1e-12;

    Vec6 delta;
    if (!solve(h, Vec6(-1.0 * b), delta)) break;

    const SE3 candidate = SE3::exp(delta) * result.pose;

    // Evaluate the candidate; accept when cost does not increase.
    double cand_cost = 0.0;
    int cand_used = 0;
    for (const Correspondence& c : correspondences) {
      Mat6 h_unused;
      Vec6 b_unused;
      if (accumulate(c, camera, candidate, options.huber_delta, h_unused,
                     b_unused, cand_cost))
        ++cand_used;
    }
    if (cand_used >= 3) cand_cost /= cand_used;

    result.iterations = iter + 1;
    if (cand_used >= 3 && (prev_cost < 0.0 || cand_cost <= cost)) {
      result.pose = candidate;
      result.final_cost = cand_cost;
      lambda = std::max(lambda * 0.5, 1e-9);
      if (delta.norm() < options.convergence_step) {
        result.converged = true;
        break;
      }
    } else {
      lambda *= 8.0;  // reject step, increase damping
      result.final_cost = cost;
      if (lambda > 1e6) break;
    }
    prev_cost = cost;
  }
  return result;
}

}  // namespace eslam
