// Minimal Perspective-3-Point solver (Grunert's classical formulation).
//
// Given 3 world points and their bearing rays, recovers up to 4 candidate
// camera poses without any initial guess — this is what makes RANSAC
// prior-free and enables relocalization after tracking loss.  The
// iterative PnP of pnp.h then polishes the winning candidate.
//
// Method: reduce to the triangle side-length system (Grunert 1841; see
// Haralick et al., "Review and Analysis of Solutions of the Three Point
// Perspective Pose Estimation Problem", IJCV 1994), solve the resulting
// quartic, and recover R, t by aligning the camera-frame triangle to the
// world-frame triangle (Horn's closed form via SVD).
#pragma once

#include <vector>

#include "geometry/camera.h"
#include "geometry/se3.h"

namespace eslam {

// Solves the quartic a4 x^4 + ... + a0 = 0; returns the real roots.
// Exposed for direct testing.
std::vector<double> solve_quartic(double a4, double a3, double a2, double a1,
                                  double a0);

// Candidate world-to-camera poses for 3 correspondences.  `rays` are unit
// bearing vectors in the camera frame (z forward).  Degenerate input
// (collinear points, coincident rays) yields an empty result.
std::vector<SE3> solve_p3p(const std::array<Vec3, 3>& world,
                           const std::array<Vec3, 3>& rays);

// Convenience: pixel observations instead of rays, plus a 4th
// correspondence to disambiguate the up-to-4 candidates (standard
// "P3P + 1" scheme).  Returns the candidate with the smallest reprojection
// error on the 4th point, or nullopt when no candidate survives.
std::optional<SE3> solve_p3p_with_check(
    const std::array<Vec3, 4>& world, const std::array<Vec2, 4>& pixels,
    const PinholeCamera& camera);

}  // namespace eslam
