#include "slam/tracker.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace eslam {

namespace {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

SoftwareBackend::SoftwareBackend(const OrbConfig& orb,
                                 const MatcherOptions& matcher)
    : extractor_(orb), matcher_options_(matcher) {}

FeatureList SoftwareBackend::extract(const ImageU8& image) {
  const WallTimer timer;
  FeatureList features = extractor_.extract(image);
  extract_ms_ = timer.elapsed_ms();
  return features;
}

std::vector<Match> SoftwareBackend::match(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train) {
  const WallTimer timer;
  std::vector<Match> matches = match_descriptors(queries, train,
                                                 matcher_options_);
  match_ms_ = timer.elapsed_ms();
  return matches;
}

Tracker::Tracker(const PinholeCamera& camera,
                 std::unique_ptr<FeatureBackend> backend,
                 const TrackerOptions& options)
    : camera_(camera),
      backend_(std::move(backend)),
      options_(options),
      keyframe_policy_(options.keyframe) {
  ESLAM_ASSERT(backend_ != nullptr, "tracker needs a feature backend");
}

std::optional<Vec3> Tracker::world_point_from_depth(const FrameInput& frame,
                                                    double u, double v,
                                                    const SE3& pose_wc) const {
  const int xi = static_cast<int>(std::lround(u));
  const int yi = static_cast<int>(std::lround(v));
  if (!frame.depth.contains(xi, yi)) return std::nullopt;
  const std::uint16_t raw = frame.depth.at(xi, yi);
  if (raw == 0) return std::nullopt;  // invalid depth (sensor hole)
  const double z = raw / options_.depth_factor;
  if (z <= 0.05 || z > 40.0) return std::nullopt;
  return pose_wc * camera_.unproject(u, v, z);
}

void Tracker::bootstrap(const FrameInput& frame, const FeatureList& features,
                        TrackResult& result) {
  const WallTimer timer;
  const SE3 identity;
  int added = 0;
  for (const Feature& f : features) {
    const auto p =
        world_point_from_depth(frame, f.keypoint.x0(), f.keypoint.y0(),
                               identity);
    if (!p) continue;
    map_.add_point(*p, f.descriptor, frame_index_);
    ++added;
  }
  result.keyframe = true;
  result.lost = added == 0;
  result.times.map_updating = timer.elapsed_ms();
  keyframe_policy_.should_insert(SE3{});  // registers the reference pose
}

int Tracker::update_map(const FrameInput& frame, const FeatureList& features,
                        const std::vector<bool>& feature_matched,
                        const SE3& pose_wc) {
  int added = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (feature_matched[i]) continue;  // already represented in the map
    const Feature& f = features[i];
    const auto p = world_point_from_depth(frame, f.keypoint.x0(),
                                          f.keypoint.y0(), pose_wc);
    if (!p) continue;
    map_.add_point(*p, f.descriptor, frame_index_);
    ++added;
  }
  map_.prune(frame_index_, options_.map_prune_age);
  return added;
}

SE3 Tracker::predicted_pose_cw() const {
  if (!options_.use_motion_model || !have_velocity_) return last_pose_cw_;
  // Constant velocity: T(t+1) ~ [T(t) T(t-1)^-1] T(t).
  return (last_pose_cw_ * prev_pose_cw_.inverse()) * last_pose_cw_;
}

TrackResult Tracker::process(const FrameInput& frame) {
  TrackResult result;
  result.timestamp = frame.timestamp;

  // --- Feature extraction (FPGA in the paper) ---------------------------
  const FeatureList features = backend_->extract(frame.gray);
  result.times.feature_extraction = backend_->last_extract_time_ms();
  result.n_features = static_cast<int>(features.size());

  if (map_.empty()) {
    bootstrap(frame, features, result);
    last_pose_cw_ = SE3{};
    trajectory_.push_back(result);
    ++frame_index_;
    return result;
  }

  // --- Feature matching (FPGA in the paper) ------------------------------
  std::vector<Descriptor256> query;
  query.reserve(features.size());
  for (const Feature& f : features) query.push_back(f.descriptor);
  const std::vector<Match> matches = backend_->match(query,
                                                     map_.descriptors());
  result.times.feature_matching = backend_->last_match_time_ms();
  result.n_matches = static_cast<int>(matches.size());

  // --- Pose estimation: PnP + RANSAC (ARM) -------------------------------
  WallTimer pe_timer;
  std::vector<Correspondence> correspondences;
  correspondences.reserve(matches.size());
  for (const Match& m : matches) {
    const Feature& f = features[static_cast<std::size_t>(m.query)];
    correspondences.push_back(Correspondence{
        map_.point(static_cast<std::size_t>(m.train)).position,
        Vec2{f.keypoint.x0(), f.keypoint.y0()}});
  }
  const int required_inliers = std::max(
      options_.min_tracked_inliers,
      std::min(options_.strong_consensus_inliers,
               static_cast<int>(options_.min_inlier_ratio *
                                static_cast<double>(correspondences.size()))));
  const SE3 prior = predicted_pose_cw();
  RansacResult ransac = ransac_pnp(correspondences, camera_, prior,
                                   options_.ransac);
  if (!ransac.success ||
      static_cast<int>(ransac.inliers.size()) < required_inliers) {
    // Retry once from the raw previous pose: the velocity extrapolation
    // itself can be the problem after an abrupt motion change, and a
    // low-consensus "success" is often a degenerate pose on repetitive
    // texture rather than the true one.
    if (options_.use_motion_model && have_velocity_) {
      RansacResult retry = ransac_pnp(correspondences, camera_,
                                      last_pose_cw_, options_.ransac);
      if (retry.inliers.size() > ransac.inliers.size())
        ransac = std::move(retry);
    }
  }
  if (options_.relocalize_with_p3p &&
      (!ransac.success ||
       static_cast<int>(ransac.inliers.size()) < required_inliers)) {
    // Relocalization: closed-form P3P hypotheses need no pose prior.
    RansacOptions reloc = options_.ransac;
    reloc.use_p3p = true;
    RansacResult retry =
        ransac_pnp(correspondences, camera_, SE3{}, reloc);
    if (retry.inliers.size() > ransac.inliers.size())
      ransac = std::move(retry);
  }
  result.times.pose_estimation = pe_timer.elapsed_ms();
  result.n_inliers = static_cast<int>(ransac.inliers.size());
  if (!ransac.success || result.n_inliers < required_inliers) {
    // Lost: keep the previous pose, skip optimization and map updating,
    // and drop the (now unreliable) velocity estimate.
    have_velocity_ = false;
    result.lost = true;
    result.pose_cw = last_pose_cw_;
    result.pose_wc = last_pose_cw_.inverse();
    trajectory_.push_back(result);
    ++frame_index_;
    return result;
  }

  // --- Pose optimization: LM on inlier reprojection error (ARM) ----------
  WallTimer po_timer;
  std::vector<Correspondence> inlier_set;
  inlier_set.reserve(ransac.inliers.size());
  for (int idx : ransac.inliers)
    inlier_set.push_back(correspondences[static_cast<std::size_t>(idx)]);
  const PnpResult optimized = solve_pnp(inlier_set, camera_, ransac.pose,
                                        options_.pose_optimization);
  result.times.pose_optimization = po_timer.elapsed_ms();
  result.pose_cw = optimized.pose;
  result.pose_wc = optimized.pose.inverse();

  // Record which features/map points were matched (for map maintenance).
  std::vector<bool> feature_matched(features.size(), false);
  for (int idx : ransac.inliers) {
    const Match& m = matches[static_cast<std::size_t>(idx)];
    feature_matched[static_cast<std::size_t>(m.query)] = true;
    map_.note_match(static_cast<std::size_t>(m.train), frame_index_);
  }

  // --- Map updating (key frames only, ARM) --------------------------------
  if (keyframe_policy_.should_insert(result.pose_wc)) {
    WallTimer mu_timer;
    update_map(frame, features, feature_matched, result.pose_wc);
    result.times.map_updating = mu_timer.elapsed_ms();
    result.keyframe = true;
  }

  prev_pose_cw_ = last_pose_cw_;
  last_pose_cw_ = result.pose_cw;
  have_velocity_ = true;
  trajectory_.push_back(result);
  ++frame_index_;
  return result;
}

}  // namespace eslam
