#include "slam/tracker.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <string>

#include "geometry/wall_timer.h"

namespace eslam {

namespace {
// Session ordinal for the trace process row ("mapping-N"): process-wide so
// rows stay distinct across schedulers and services.
std::atomic<int> g_mapping_session_ordinal{0};
}  // namespace

SoftwareBackend::SoftwareBackend(const OrbConfig& orb,
                                 const MatcherOptions& matcher)
    : extractor_(orb), matcher_options_(matcher) {}

FeatureList SoftwareBackend::extract(const ImageU8& image) {
  const WallTimer timer;
  FeatureList features = extractor_.extract(image);
  extract_ms_.store(timer.elapsed_ms());
  return features;
}

std::vector<Match> SoftwareBackend::match(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train) {
  const WallTimer timer;
  std::vector<Match> matches = match_descriptors(queries, train,
                                                 matcher_options_);
  match_ms_.store(timer.elapsed_ms());
  return matches;
}

std::vector<Match> SoftwareBackend::match_candidates(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train, const CandidateSet& candidates) {
  const WallTimer timer;
  std::vector<Match> matches =
      eslam::match_candidates(queries, train, candidates, matcher_options_);
  match_ms_.store(timer.elapsed_ms());
  return matches;
}

void SoftwareBackend::extract_into(const ImageU8& image, FeatureList& out) {
  const WallTimer timer;
  extractor_.extract_into(image, out);
  extract_ms_.store(timer.elapsed_ms());
}

void SoftwareBackend::match_into(std::span<const Feature> queries,
                                 const TrainView& train, Arena* scratch,
                                 std::vector<Match>& out) {
  const WallTimer timer;
  match_descriptors_into(queries, train, matcher_options_, scratch, out);
  match_ms_.store(timer.elapsed_ms());
}

void SoftwareBackend::match_candidates_into(std::span<const Feature> queries,
                                            const TrainView& train,
                                            const CandidateSet& candidates,
                                            Arena* scratch,
                                            std::vector<Match>& out) {
  const WallTimer timer;
  eslam::match_candidates_into(queries, train, candidates, matcher_options_,
                               scratch, out);
  match_ms_.store(timer.elapsed_ms());
}

Tracker::Tracker(const PinholeCamera& camera,
                 std::unique_ptr<FeatureBackend> backend,
                 const TrackerOptions& options)
    : camera_(camera),
      backend_(std::move(backend)),
      options_(options),
      keyframe_policy_(options.keyframe),
      kf_graph_(options.backend.graph) {
  ESLAM_ASSERT(backend_ != nullptr, "tracker needs a feature backend");
  // Pre-size the growth-only containers so the steady-state loop never
  // reallocates them (the allocation regression test counts every heap
  // call after warm-up).
  trajectory_.reserve(1024);
  frame_pool_.reserve(kFramePoolCap);

  // Observability registration — the cold half of the obs/ contract: all
  // allocation (track names, registry lookups) happens here, once; stage
  // methods then only touch the resolved handles.
  const int ordinal =
      g_mapping_session_ordinal.fetch_add(1, std::memory_order_relaxed);
  obs_.pid = obs::register_process("mapping-" + std::to_string(ordinal));
  obs_.device_track = obs::register_track(obs_.pid, "device (FE/FM)");
  obs_.arm_track = obs::register_track(obs_.pid, "arm (PE/PO/MU)");
  obs_.ba_track = obs::register_track(obs_.pid, "backend routine-ba");
  obs_.loop_track = obs::register_track(obs_.pid, "backend loop-verify");
  obs::MetricsRegistry& reg = obs::metrics();
  obs_.stage_fe = &reg.histogram("eslam_tracker_stage_ms{stage=\"fe\"}");
  obs_.stage_fm = &reg.histogram("eslam_tracker_stage_ms{stage=\"fm\"}");
  obs_.stage_pe = &reg.histogram("eslam_tracker_stage_ms{stage=\"pe\"}");
  obs_.stage_po = &reg.histogram("eslam_tracker_stage_ms{stage=\"po\"}");
  obs_.stage_mu = &reg.histogram("eslam_tracker_stage_ms{stage=\"mu\"}");
  obs_.backend_freeze = &reg.histogram("eslam_backend_freeze_ms");
  obs_.backend_optimize_ba =
      &reg.histogram("eslam_backend_optimize_ms{class=\"ba\"}");
  obs_.backend_optimize_loop =
      &reg.histogram("eslam_backend_optimize_ms{class=\"loop\"}");
  obs_.backend_apply = &reg.histogram("eslam_backend_apply_ms");
  frames_retired_total_ = &reg.counter("eslam_frames_retired_total");
  keyframes_total_ = &reg.counter("eslam_keyframes_total");
  points_pruned_total_ = &reg.counter("eslam_points_pruned_total");
  points_culled_total_ = &reg.counter("eslam_points_culled_total");
  points_fused_total_ = &reg.counter("eslam_points_fused_total");
  reloc_attempts_total_ = &reg.counter("eslam_reloc_attempts_total");
  reloc_successes_total_ = &reg.counter("eslam_reloc_successes_total");
  loops_closed_total_ = &reg.counter("eslam_loops_closed_total");
  map_reader_stalls_total_ = &reg.counter("eslam_map_reader_stalls_total");
}

std::optional<Vec3> Tracker::camera_point_from_depth(const FrameInput& frame,
                                                     double u, double v) const {
  const int xi = static_cast<int>(std::lround(u));
  const int yi = static_cast<int>(std::lround(v));
  if (!frame.depth.contains(xi, yi)) return std::nullopt;
  const std::uint16_t raw = frame.depth.at(xi, yi);
  if (raw == 0) return std::nullopt;  // invalid depth (sensor hole)
  const double z = raw / options_.depth_factor;
  if (z <= 0.05 || z > 40.0) return std::nullopt;
  return camera_.unproject(u, v, z);
}

void Tracker::bootstrap_map(
    FrameState& fs, std::vector<backend::KeyframeObservation>* observations) {
  const WallTimer timer;
  int added = 0;
  for (const Feature& f : fs.features) {
    const auto p_cam =
        camera_point_from_depth(fs.input, f.keypoint.x0(), f.keypoint.y0());
    if (!p_cam) continue;
    // Bootstrap pose is the identity: world == camera frame.
    const std::int64_t id = map_.add_point(*p_cam, f.descriptor, fs.index);
    if (observations)
      observations->push_back({id, Vec2{f.keypoint.x0(), f.keypoint.y0()},
                               f.descriptor, *p_cam});
    ++added;
  }
  fs.result.keyframe = true;
  fs.result.lost = added == 0;
  fs.result.times.map_updating = timer.elapsed_ms();
  keyframe_policy_.should_insert(SE3{});  // registers the reference pose
}

std::size_t Tracker::insert_map_points(
    const FrameState& fs, std::span<const std::uint8_t> feature_matched,
    const SE3& pose_wc,
    std::vector<backend::KeyframeObservation>* observations) {
  for (std::size_t i = 0; i < fs.features.size(); ++i) {
    if (feature_matched[i]) continue;  // already represented in the map
    const Feature& f = fs.features[i];
    const auto p_cam = camera_point_from_depth(fs.input, f.keypoint.x0(),
                                               f.keypoint.y0());
    if (!p_cam) continue;
    const std::int64_t id =
        map_.add_point(pose_wc * *p_cam, f.descriptor, fs.index);
    if (observations)
      observations->push_back({id, Vec2{f.keypoint.x0(), f.keypoint.y0()},
                               f.descriptor, *p_cam});
  }
  // Retention is the lifecycle policy's call now (age + protection), not a
  // bare map prune; same structural-write/epoch rules either way.
  return backend::run_map_maintenance(map_, fs.index, options_.lifecycle);
}

SE3 Tracker::predicted_pose_cw() const {
  if (!options_.use_motion_model || !have_velocity_) return last_pose_cw_;
  // Constant velocity: T(t+1) ~ [T(t) T(t-1)^-1] T(t).
  return (last_pose_cw_ * prev_pose_cw_.inverse()) * last_pose_cw_;
}

void Tracker::publish_gate_prior(const FrameState& fs) {
  lost_streak_ = fs.result.lost ? lost_streak_ + 1 : 0;
  const std::int64_t for_frame = fs.index + 2;
  bool valid = false;
  SE3 pose_cw;
  if (!fs.result.lost) {
    valid = true;
    if (options_.use_motion_model && have_velocity_) {
      // Double-step constant velocity: the target frame is two frames
      // ahead of the pose this publication is based on.
      const SE3 step = last_pose_cw_ * prev_pose_cw_.inverse();
      pose_cw = step * (step * last_pose_cw_);
    } else {
      pose_cw = last_pose_cw_;
    }
  }
  // else: no trustworthy pose — published as invalid, which routes the
  // target frame into the relocalization tier.

  // Seqlock write: odd sequence opens, payload stores are relaxed (a
  // speculative device-lane match may genuinely overlap them — it will
  // observe the odd/changed sequence and retry), even sequence closes
  // with release so a reader that sees it also sees the payload.
  GatePriorSlot& slot = gate_prior_[static_cast<std::size_t>(for_frame % 2)];
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.for_frame.store(for_frame, std::memory_order_relaxed);
  slot.valid.store(valid ? 1 : 0, std::memory_order_relaxed);
  slot.lost_streak.store(lost_streak_, std::memory_order_relaxed);
  const double* r = pose_cw.rotation().data();
  for (std::size_t k = 0; k < 9; ++k)
    slot.pose_cw[k].store(r[k], std::memory_order_relaxed);
  const double* t = pose_cw.translation().data();
  for (std::size_t k = 0; k < 3; ++k)
    slot.pose_cw[9 + k].store(t[k], std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

Tracker::GatePrior Tracker::gate_prior_for(int frame_index) const {
  const GatePriorSlot& slot =
      gate_prior_[static_cast<std::size_t>(frame_index % 2)];
  GatePrior out;
  for (;;) {
    const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 & 1u) continue;  // writer mid-publish; retry
    const std::int64_t for_frame =
        slot.for_frame.load(std::memory_order_relaxed);
    const std::int32_t valid = slot.valid.load(std::memory_order_relaxed);
    const std::int32_t streak =
        slot.lost_streak.load(std::memory_order_relaxed);
    Mat3 r;
    for (std::size_t k = 0; k < 9; ++k)
      r.data()[k] = slot.pose_cw[k].load(std::memory_order_relaxed);
    Vec3 t;
    for (std::size_t k = 0; k < 3; ++k)
      t.data()[k] = slot.pose_cw[9 + k].load(std::memory_order_relaxed);
    // The acquire fence orders the payload loads above before the
    // sequence re-check: an unchanged even sequence proves no write
    // overlapped them.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
    if (for_frame != frame_index) return out;  // nothing published yet
    out.lost_streak = streak;
    if (valid)
      out.pose_cw = SE3{r, t};
    else
      out.lost = true;  // explicitly published as lost: relocalize
    return out;
  }
}

FrameState Tracker::acquire_frame() {
  FrameState fs;
  {
    const std::lock_guard<std::mutex> lock(frame_pool_mutex_);
    if (!frame_pool_.empty()) {
      fs = std::move(frame_pool_.back());
      frame_pool_.pop_back();
    }
  }
  // Reset per-frame state, keeping every container's capacity.
  fs.features.clear();
  fs.matches.clear();
  fs.match_tier = MatchTier::kBruteForce;
  fs.map_epoch = 0;
  fs.view.reset();  // release the borrowed map view (refcount only)
  fs.bootstrap = false;
  fs.reloc_positions.clear();
  fs.reloc_reference_cw = SE3{};
  fs.ransac.pose = SE3{};
  fs.ransac.inliers.clear();
  fs.ransac.success = false;
  fs.ransac.iterations = 0;
  fs.ransac_retry.inliers.clear();
  fs.correspondences.clear();
  fs.gate.candidates.indices.clear();
  fs.gate.candidates.offsets.clear();
  fs.gate.projected = 0;
  fs.gate.build_ms = 0;
  fs.result = TrackResult{};
  if (fs.arena)
    fs.arena->reset();
  else
    fs.arena = std::make_unique<Arena>();
  return fs;
}

void Tracker::recycle_frame(FrameState&& fs) {
  const std::lock_guard<std::mutex> lock(frame_pool_mutex_);
  if (frame_pool_.size() < kFramePoolCap)
    frame_pool_.push_back(std::move(fs));
}

FrameState Tracker::begin_frame(FrameInput frame) {
  FrameState fs = acquire_frame();
  fs.input = std::move(frame);
  fs.index = next_index_++;
  fs.result.timestamp = fs.input.timestamp;
  return fs;
}

void Tracker::extract(FrameState& fs) {
  // --- Feature extraction (FPGA in the paper) ---------------------------
  ESLAM_TRACE_SCOPE(obs_.device_track, "FE");
  backend_->extract_into(fs.input.gray, fs.features);
  fs.result.times.feature_extraction = backend_->last_extract_time_ms();
  fs.result.n_features = static_cast<int>(fs.features.size());
  obs_.stage_fe->record(fs.result.times.feature_extraction);
}

void Tracker::match(FrameState& fs) {
  ESLAM_TRACE_SCOPE(obs_.device_track, "FM");
  // --- Feature matching (FPGA in the paper) ------------------------------
  // Wait-free against update_map()'s structural writes: the matcher
  // borrows the map's current published MapReadView (one atomic refcount
  // acquisition — no lock any writer can hold) and reads only through it
  // for the whole stage.  A concurrent publish leaves the borrowed view
  // frozen; the epoch recorded below detects it, and a replay simply
  // overwrites the previous matches against a fresh borrow.
  fs.view = map_.read_view();
  const MapReadView& view = *fs.view;
  fs.map_epoch = view.epoch();
  fs.matches.clear();
  fs.reloc_positions.clear();
  fs.match_tier = MatchTier::kBruteForce;
  if (view.empty()) {
    // Nothing to match against — the frame will bootstrap the map.
    fs.result.times.feature_matching = 0.0;
    fs.result.n_matches = 0;
    return;
  }
  // Queries go to the backend as the features themselves (no per-frame
  // descriptor staging copy); the train side is the view's AoS span plus
  // its SoA word-plane mirror, both frozen for the duration of this
  // stage (and beyond, for as long as fs.view is held).
  const TrainView train{view.descriptors(), &view.descriptor_soa()};

  const GatePrior prior = gate_prior_for(fs.index);

  // Tier one: projection-gated candidate search, when the policy allows,
  // the map is big enough to be worth gating, and a prior was published
  // for this frame (none right after bootstrap or a tracking loss).
  double match_ms = 0.0;
  bool gated = false;
  if (options_.match.use_gate && prior.pose_cw &&
      static_cast<int>(view.size()) >= options_.match.min_map_points_for_gate) {
    build_candidate_set_into(view.xs(), view.ys(), view.zs(), *prior.pose_cw,
                             camera_, fs.features, options_.match,
                             fs.arena.get(), fs.gate);
    backend_->match_candidates_into(fs.features, train, fs.gate.candidates,
                                    fs.arena.get(), fs.matches);
    match_ms += fs.gate.build_ms + backend_->last_match_time_ms();
    const int required = std::max(
        options_.match.min_gated_matches,
        static_cast<int>(std::ceil(options_.match.min_gated_match_fraction *
                                   static_cast<double>(fs.features.size()))));
    if (static_cast<int>(fs.matches.size()) >= required) gated = true;
    // else: too few matches survived — the prior is likely wrong (fast
    // motion beyond the window, viewpoint jump), so fall through to the
    // full-map tier (which overwrites fs.matches).
  }
  // Relocalization tier: the publishing frame retired *lost*, so there is
  // no pose to gate with — recognize where we are instead.  Query the
  // keyframe index, match only against the best keyframe's local
  // neighbourhood, and leave P3P to estimate_pose(); the map-wide brute
  // force below is demoted to the deterministic fallback for when
  // recognition comes up empty.  This is the one read path that still
  // locks (graph_mutex_, shared — the graph/index have no published
  // views), and it only runs on persistently-lost frames, never in
  // steady state.
  bool relocated = false;
  if (!gated && prior.lost &&
      prior.lost_streak >= options_.reloc.min_lost_frames &&
      options_.backend.enabled && options_.reloc.use_index &&
      static_cast<int>(fs.features.size()) >= options_.reloc.min_matches) {
    std::shared_lock glock(graph_mutex_, std::try_to_lock);
    if (!glock.owns_lock()) {
      // A keyframe insert / loop rebase holds the graph exclusively right
      // now — the only remaining way a reader waits on a map writer.
      map_reader_stalls_total_->add(1);
      glock.lock();
    }
    if (static_cast<int>(kf_graph_.size()) >= options_.reloc.min_keyframes) {
      // (A frame without enough features — a dropout/blank — cannot
      // relocalize by any tier; it is not counted as an attempt.)
      fs.result.reloc_attempted = true;
      // Relocalization is a rare, off-schedule path: the descriptor
      // staging copy the index query needs is allocated here, not on
      // every frame.
      std::vector<Descriptor256> query;
      query.reserve(fs.features.size());
      for (const Feature& f : fs.features) query.push_back(f.descriptor);
      relocated = match_against_reloc_index(fs, query, match_ms);
    }
  }
  // Fallback tier: full-map brute force (bootstrap-adjacent frames,
  // post-loss frames without a usable index, small maps, gate/reloc
  // fallback).
  if (!gated && !relocated) {
    backend_->match_into(fs.features, train, fs.arena.get(), fs.matches);
    match_ms += backend_->last_match_time_ms();
  }
  fs.match_tier = gated ? MatchTier::kGated
                : relocated ? MatchTier::kRelocIndex
                            : MatchTier::kBruteForce;
  fs.result.match_tier = fs.match_tier;
  fs.result.times.feature_matching = match_ms;
  fs.result.n_matches = static_cast<int>(fs.matches.size());
  obs_.stage_fm->record(match_ms);
}

bool Tracker::match_against_reloc_index(FrameState& fs,
                                        std::span<const Descriptor256> query,
                                        double& match_ms) {
  const std::vector<backend::KeyframeScore> ranked =
      kf_index_.query(query, options_.reloc.max_candidates);
  for (const backend::KeyframeScore& hit : ranked) {
    if (!kf_graph_.contains(hit.keyframe_id)) continue;
    // The candidate's local place: the keyframe plus its top covisible
    // neighbours.
    const std::vector<int> hood =
        kf_graph_.neighbourhood(hit.keyframe_id, options_.reloc.neighbourhood);
    // The neighbourhood's observations ARE the recovery substrate: the
    // 3D side is each observation's own depth unprojection lifted by its
    // keyframe pose — drift-consistent, immune to map pruning, and
    // O(window) to assemble.
    const std::vector<backend::KeyframeGraph::PlaceObservation> place =
        kf_graph_.place_observations(hood);
    std::vector<Descriptor256> subset;
    std::vector<std::int32_t> map_index;  // live map index or -1
    subset.reserve(place.size());
    map_index.reserve(place.size());
    for (const auto& obs : place) {
      subset.push_back(obs.descriptor);
      // Id lookup against the borrowed view, not the live map: the match
      // train indices must be consistent with the epoch fs carries.
      const auto index = fs.view->index_of(obs.point_id);
      map_index.push_back(index ? static_cast<std::int32_t>(*index) : -1);
    }
    if (static_cast<int>(subset.size()) < options_.reloc.min_matches)
      continue;
    // Verification-grade matching (see RelocOptions::matcher), host-side
    // like the loop job's — the fabric's bulk matcher has no precision
    // knobs, and a lost session is off the nominal fabric schedule anyway.
    const WallTimer reloc_timer;
    std::vector<Match> matches =
        match_descriptors(query, subset, options_.reloc.matcher);
    match_ms += reloc_timer.elapsed_ms();
    if (static_cast<int>(matches.size()) < options_.reloc.min_matches)
      continue;  // recognition was wrong for this hit; try the next one
    fs.reloc_positions.clear();
    fs.reloc_positions.reserve(matches.size());
    for (Match& m : matches) {
      fs.reloc_positions.push_back(
          place[static_cast<std::size_t>(m.train)].position_w);
      m.train = map_index[static_cast<std::size_t>(m.train)];
    }
    fs.matches = std::move(matches);
    fs.reloc_reference_cw = kf_graph_.keyframe(hit.keyframe_id).pose_cw;
    return true;
  }
  return false;
}

void Tracker::estimate_pose(FrameState& fs) {
  if (fs.view ? fs.view->empty() : map_.empty()) {
    // First (or post-reset) frame: no pose to estimate, update_map() will
    // bootstrap the map at the identity pose.
    fs.bootstrap = true;
    return;
  }
  ESLAM_ASSERT(matches_current(fs),
               "stale matches: match() must be replayed after a key frame");

  // --- Pose estimation: PnP + RANSAC (ARM) -------------------------------
  ESLAM_TRACE_SCOPE(obs_.arm_track, "PE");
  WallTimer pe_timer;
  fs.correspondences.clear();
  fs.correspondences.reserve(fs.matches.size());
  const bool reloc = fs.match_tier == MatchTier::kRelocIndex;
  for (std::size_t i = 0; i < fs.matches.size(); ++i) {
    const Match& m = fs.matches[i];
    const Feature& f = fs.features[static_cast<std::size_t>(m.query)];
    // Reloc matches carry their own 3D (keyframe-observation geometry);
    // map matches read the borrowed view's frozen position column (same
    // values the matches were computed against — the epoch assert above
    // guarantees the live map agrees).
    fs.correspondences.push_back(Correspondence{
        reloc ? fs.reloc_positions[i]
              : fs.view->position(static_cast<std::size_t>(m.train)),
        Vec2{f.keypoint.x0(), f.keypoint.y0()}});
  }
  // Relocalization matches cover only the recognized neighbourhood, so
  // the acceptance gate is absolute (see RelocOptions::min_inliers); the
  // ratio gate below assumes the map-wide match set.
  const int required_inliers =
      fs.match_tier == MatchTier::kRelocIndex
          ? std::max(options_.min_tracked_inliers,
                     options_.reloc.min_inliers)
          : std::max(options_.min_tracked_inliers,
                     std::min(options_.strong_consensus_inliers,
                              static_cast<int>(
                                  options_.min_inlier_ratio *
                                  static_cast<double>(
                                      fs.correspondences.size()))));
  const SE3 prior = predicted_pose_cw();
  ransac_pnp_into(fs.correspondences, camera_, prior, options_.ransac,
                  fs.arena.get(), fs.ransac);
  if (!fs.ransac.success ||
      static_cast<int>(fs.ransac.inliers.size()) < required_inliers) {
    // Retry once from the raw previous pose: the velocity extrapolation
    // itself can be the problem after an abrupt motion change, and a
    // low-consensus "success" is often a degenerate pose on repetitive
    // texture rather than the true one.
    if (options_.use_motion_model && have_velocity_) {
      ransac_pnp_into(fs.correspondences, camera_, last_pose_cw_,
                      options_.ransac, fs.arena.get(), fs.ransac_retry);
      if (fs.ransac_retry.inliers.size() > fs.ransac.inliers.size())
        std::swap(fs.ransac, fs.ransac_retry);
    }
  }
  if (options_.relocalize_with_p3p &&
      (!fs.ransac.success ||
       static_cast<int>(fs.ransac.inliers.size()) < required_inliers)) {
    // Relocalization: closed-form P3P hypotheses need no pose prior.
    RansacOptions reloc_opts = options_.ransac;
    reloc_opts.use_p3p = true;
    ransac_pnp_into(fs.correspondences, camera_, SE3{}, reloc_opts,
                    fs.arena.get(), fs.ransac_retry);
    if (fs.ransac_retry.inliers.size() > fs.ransac.inliers.size())
      std::swap(fs.ransac, fs.ransac_retry);
  }
  fs.result.times.pose_estimation = pe_timer.elapsed_ms();
  obs_.stage_pe->record(fs.result.times.pose_estimation);
  fs.result.n_inliers = static_cast<int>(fs.ransac.inliers.size());
  if (reloc && fs.ransac.success) {
    // Plausibility: the recovered camera must be where the recognized
    // keyframe's scene is visible from.  A wrong-place consensus (large
    // on repetitive texture) that slips through would seed phantom map
    // geometry that every later recovery compounds.
    const Vec3 centre = fs.ransac.pose.inverse().translation();
    const Vec3 reference = fs.reloc_reference_cw.inverse().translation();
    const double distance = (centre - reference).norm();
    const double rotation =
        fs.ransac.pose.rotation_angle(fs.reloc_reference_cw);
    // Written as accept-only-when-provably-plausible: a NaN pose (a
    // degenerate refit can produce one) must fail this gate, and NaN
    // fails every comparison.
    if (!(distance <= options_.reloc.max_distance_m &&
          rotation <= options_.reloc.max_rotation_rad))
      fs.ransac.success = false;
  }
  if (!fs.ransac.success || fs.result.n_inliers < required_inliers) {
    // Lost: keep the previous pose; update_map() drops the velocity.
    fs.result.lost = true;
    fs.result.pose_cw = last_pose_cw_;
    fs.result.pose_wc = last_pose_cw_.inverse();
  }
}

void Tracker::optimize_pose(FrameState& fs) {
  if (fs.bootstrap || fs.result.lost) return;

  // --- Pose optimization: LM on inlier reprojection error (ARM) ----------
  ESLAM_TRACE_SCOPE(obs_.arm_track, "PO");
  WallTimer po_timer;
  if (!fs.arena) fs.arena = std::make_unique<Arena>();
  const ArenaScope scope(*fs.arena);
  std::span<Correspondence> inlier_set =
      fs.arena->alloc_span<Correspondence>(fs.ransac.inliers.size());
  std::size_t k = 0;
  for (int idx : fs.ransac.inliers)
    inlier_set[k++] = fs.correspondences[static_cast<std::size_t>(idx)];
  const PnpResult optimized = solve_pnp(inlier_set, camera_, fs.ransac.pose,
                                        options_.pose_optimization);
  fs.result.times.pose_optimization = po_timer.elapsed_ms();
  obs_.stage_po->record(fs.result.times.pose_optimization);
  fs.result.pose_cw = optimized.pose;
  fs.result.pose_wc = optimized.pose.inverse();
}

TrackResult Tracker::update_map(FrameState& fs) {
  ESLAM_TRACE_SCOPE(obs_.arm_track, "MU");
  const bool backend_on = options_.backend.enabled;
  if (fs.bootstrap) {
    std::vector<backend::KeyframeObservation> observations;
    int new_kf = -1;
    {
      // Graph/index insertion happens under the exclusive graph lock: the
      // device lane's relocalization tier reads both under the shared
      // one.  The map writes themselves (bootstrap_map's add_point loop)
      // need no lock — each publishes a fresh view; concurrent matchers
      // keep reading whichever view they borrowed.
      const std::unique_lock lock(graph_mutex_);
      bootstrap_map(fs, backend_on ? &observations : nullptr);
      last_pose_cw_ = SE3{};
      if (backend_on && !fs.result.lost)
        new_kf = backend_insert_keyframe(fs, std::move(observations));
    }
    if (new_kf >= 0) backend_freeze_jobs(new_kf, fs);
  } else if (fs.result.lost) {
    // Drop the (now unreliable) velocity estimate; the map is untouched.
    have_velocity_ = false;
  } else {
    // The keyframe decision only needs the final pose; taking it first
    // lets non-keyframes (the common case) skip the backend observation
    // collection below entirely.
    const bool is_keyframe = keyframe_policy_.should_insert(fs.result.pose_wc);

    // Record which features/map points were matched (for map maintenance).
    // A relocalization match may carry train == -1 — the correspondence
    // came from a keyframe observation whose map point is no longer alive
    // (pruned / culled / fused); it contributed pose evidence, but the
    // feature is treated as unmatched here so a fresh map point remaps
    // the revisited region.
    if (!fs.arena) fs.arena = std::make_unique<Arena>();
    const ArenaScope mask_scope(*fs.arena);
    const std::span<std::uint8_t> feature_matched =
        fs.arena->alloc_span<std::uint8_t>(fs.features.size(),
                                           std::uint8_t{0});
    std::vector<backend::KeyframeObservation> observations;
    for (int idx : fs.ransac.inliers) {
      const Match& m = fs.matches[static_cast<std::size_t>(idx)];
      if (m.train < 0) continue;
      feature_matched[static_cast<std::size_t>(m.query)] = 1;
      map_.note_match(static_cast<std::size_t>(m.train), fs.index);
      if (backend_on && is_keyframe) {
        const Feature& f = fs.features[static_cast<std::size_t>(m.query)];
        const auto p_cam = camera_point_from_depth(fs.input, f.keypoint.x0(),
                                                   f.keypoint.y0());
        observations.push_back(
            {map_.point(static_cast<std::size_t>(m.train)).id,
             Vec2{f.keypoint.x0(), f.keypoint.y0()}, f.descriptor,
             // Prefer the frame's own depth; a sensor hole falls back to
             // the map point seen from this frame's pose.
             p_cam ? *p_cam
                   : fs.result.pose_cw *
                         map_.point(static_cast<std::size_t>(m.train))
                             .position});
      }
    }

    // --- Map updating (key frames only, ARM) ------------------------------
    if (is_keyframe) {
      WallTimer mu_timer;
      int new_kf = -1;
      {
        // The exclusive section guards the keyframe graph + recognition
        // index only (reloc-tier readers take it shared).  The map writes
        // inside — delta application, point insertion, pruning — need no
        // reader arbitration: each mutation publishes an immutable view,
        // and device-lane matchers never wait on this section.  A
        // speculative match that borrowed a mid-update view fails the
        // epoch check at finalize and replays, exactly as before.
        const std::unique_lock lock(graph_mutex_);
        // Completed backend deltas land here — the next keyframe after
        // their completion — each as one more structural map write under
        // the same lock and epoch rules as the insertions below, applied
        // in job-id order.  A loop delta also rebases fs.result.pose_cw/wc
        // and the motion model, so the insertions below land in the
        // corrected frame.
        if (backend_on) apply_pending_backend_deltas(fs);
        fs.result.n_points_pruned = static_cast<int>(insert_map_points(
            fs, feature_matched, fs.result.pose_wc,
            backend_on ? &observations : nullptr));
        if (backend_on)
          new_kf = backend_insert_keyframe(fs, std::move(observations));
      }
      // Job freezing (loop detection + snapshot copies) reads only, so it
      // runs after the lock is released — see backend_freeze_jobs.
      if (new_kf >= 0) backend_freeze_jobs(new_kf, fs);
      fs.result.times.map_updating = mu_timer.elapsed_ms();
      fs.result.keyframe = true;
      obs_.stage_mu->record(fs.result.times.map_updating);
    }

    // A post-loss frame that reached here recovered a pose — that is the
    // relocalization the stats and server events report.
    fs.result.relocalized = fs.result.reloc_attempted;
    prev_pose_cw_ = last_pose_cw_;
    last_pose_cw_ = fs.result.pose_cw;
    // After a relocalization the pre-loss pose pair is meaningless as a
    // velocity estimate (the camera may have recovered anywhere); restart
    // the motion model from the recovered pose alone.  Backend-off runs
    // never set reloc_attempted, so their trajectories are untouched.
    have_velocity_ = !fs.result.reloc_attempted;
  }

  // Publish the matching gate's prior for frame index + 2 before this
  // frame's retirement becomes visible to the device lane (the scheduler
  // stores retired_through *after* update_map returns, so a match that
  // observed the retirement also observes this publication).
  publish_gate_prior(fs);

  // Retirement rollups: cross-thread-folded quantities go through the
  // registry's atomics (many trackers, one set of process-wide totals).
  frames_retired_total_->add(1);
  if (fs.result.keyframe) keyframes_total_->add(1);
  if (fs.result.n_points_pruned > 0)
    points_pruned_total_->add(fs.result.n_points_pruned);
  if (fs.result.n_points_culled > 0)
    points_culled_total_->add(fs.result.n_points_culled);
  if (fs.result.n_points_fused > 0)
    points_fused_total_->add(fs.result.n_points_fused);
  if (fs.result.reloc_attempted) reloc_attempts_total_->add(1);
  if (fs.result.relocalized) reloc_successes_total_->add(1);
  if (fs.result.loop_closed) loops_closed_total_->add(1);

  trajectory_.push_back(fs.result);
  frame_index_ = fs.index + 1;
  return fs.result;
}

TrackResult Tracker::process(const FrameInput& frame) {
  // Copy-assign the input into a recycled frame shell instead of routing
  // through begin_frame(FrameInput) — the shell's image buffers keep their
  // capacity across frames, so the sequential platform's steady state
  // allocates nothing per frame either.
  FrameState fs = acquire_frame();
  fs.input.gray = frame.gray;
  fs.input.depth = frame.depth;
  fs.input.timestamp = frame.timestamp;
  fs.index = next_index_++;
  fs.result.timestamp = frame.timestamp;
  extract(fs);
  match(fs);
  estimate_pose(fs);
  optimize_pose(fs);
  TrackResult result = update_map(fs);
  recycle_frame(std::move(fs));
  // Sequential platform: no worker pool, so every job frozen at this
  // keyframe runs inline right here, in job-id order (deltas apply at the
  // next keyframe, the same protocol the asynchronous lane follows) —
  // deterministic by construction, sharding included.
  if (backend_job_pending()) run_backend_job();
  return result;
}

// ---- local-mapping backend --------------------------------------------------

bool Tracker::backend_job_pending() const {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  for (const BackendJob& job : backend_jobs_)
    if (job.state == BackendJob::State::kReady && !job.offered) return true;
  return false;
}

bool Tracker::backend_busy() const {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  for (const BackendJob& job : backend_jobs_)
    if (job.state == BackendJob::State::kRunning) return true;
  return false;
}

void Tracker::take_backend_jobs(std::vector<BackendJobTicket>& out) {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  for (BackendJob& job : backend_jobs_) {
    if (job.state != BackendJob::State::kReady || job.offered) continue;
    job.offered = true;
    out.push_back({job.id, job.loop});
  }
}

void Tracker::unoffer_backend_job(int job_id) {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  for (BackendJob& job : backend_jobs_)
    if (job.id == job_id && job.state == BackendJob::State::kReady)
      job.offered = false;
}

backend::BackendStats Tracker::backend_stats() const {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  return backend_stats_;
}

int Tracker::backend_insert_keyframe(
    const FrameState& fs,
    std::vector<backend::KeyframeObservation> observations) {
  // Caller holds the exclusive graph lock: graph + index mutations here
  // are what the device lane's relocalization tier reads under the shared
  // one.
  const int kf_id = kf_graph_.add_keyframe(fs.index, fs.result.pose_cw,
                                           std::move(observations));
  kf_index_.add_keyframe(kf_id, kf_graph_.keyframe(kf_id).observations);
  // The graph's FIFO bound may have evicted; the index follows it.
  kf_index_.remove_below(kf_graph_.first_live_id());
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  ++backend_stats_.keyframes_inserted;
  return kf_id;
}

void Tracker::backend_freeze_jobs(int kf_id, const FrameState& fs) {
  ESLAM_TRACE_SCOPE(obs_.arm_track, "freeze");
  // Records the freeze duration on every exit path (the function returns
  // early from several budget/conflict gates).
  struct FreezeTimecard {
    obs::Histogram* h;
    WallTimer timer;
    ~FreezeTimecard() { h->record(timer.elapsed_ms()); }
  } freeze_timecard{obs_.backend_freeze, {}};
  // Runs OUTSIDE the exclusive graph lock: detection and snapshot
  // building only *read* the graph/index/map, and this stage is their one
  // writer — concurrent reloc-tier readers (shared graph lock) are
  // unaffected, and keeping this work out of the exclusive section keeps
  // a keyframe from stalling a lost session's recovery.
  //
  // First, gather the in-flight jobs' claim sets.  Workers may transition
  // job *states* concurrently, but jobs only enter or leave the table on
  // this stage's own thread (freeze/apply) or — for discarded jobs — on a
  // worker, which can only shrink the claim set; reading it once here is
  // therefore conservative.
  std::vector<int> claimed_kfs;
  std::vector<std::int64_t> claimed_points;
  bool loop_in_flight = false;
  int inflight = 0;
  {
    const std::lock_guard<std::mutex> lock(backend_mutex_);
    for (const BackendJob& job : backend_jobs_) {
      ++inflight;
      if (job.loop) loop_in_flight = true;
      claimed_kfs.insert(claimed_kfs.end(), job.claimed_kfs.begin(),
                         job.claimed_kfs.end());
      claimed_points.insert(claimed_points.end(), job.owned_points.begin(),
                            job.owned_points.end());
    }
  }
  // A loop job owns everything (its correction rewrites every pose and
  // point): while one is in flight nothing else freezes, and nothing
  // freezes beside it — whatever we froze now would be discarded the
  // moment the correction applies.
  if (loop_in_flight) return;
  const int budget = std::max(1, options_.backend.max_inflight_jobs) - inflight;
  if (budget <= 0) return;

  // Loop detection first: a recognized revisit freezes ONE loop-
  // verification job — the high-priority class — and skips BA freezing at
  // this keyframe (windowed BA resumes at the next one).
  if (options_.backend.loop.enabled && fs.index >= loop_cooldown_until_) {
    const int candidate = backend::detect_loop_candidate(
        kf_graph_, kf_index_, kf_id, options_.backend.loop);
    backend::BackendSnapshot snapshot;
    if (candidate >= 0 &&
        backend::build_loop_snapshot(kf_graph_, map_, camera_,
                                     options_.backend, kf_id, candidate,
                                     fs.index, snapshot)) {
      const std::lock_guard<std::mutex> lock(backend_mutex_);
      ++backend_stats_.loops_detected;
      BackendJob job;
      job.id = next_backend_job_id_++;
      job.loop = true;
      job.snapshot = std::move(snapshot);
      backend_jobs_.push_back(std::move(job));
      backend_stats_.max_inflight_jobs_seen =
          std::max(backend_stats_.max_inflight_jobs_seen,
                   static_cast<int>(backend_jobs_.size()));
      return;
    }
  }

  // Routine BA: decompose into covisibility-disjoint shards and freeze
  // each one as an independent job, up to the in-flight budget.
  const std::vector<backend::BackendShard> shards =
      backend::compute_shards(kf_graph_, options_.backend);
  if (shards.empty()) return;
  std::sort(claimed_points.begin(), claimed_points.end());
  claimed_points.erase(
      std::unique(claimed_points.begin(), claimed_points.end()),
      claimed_points.end());
  int frozen = 0;
  for (std::size_t sid = 0; sid < shards.size(); ++sid) {
    if (frozen >= budget) break;
    const backend::BackendShard& shard = shards[sid];
    // Per-shard serialization across freezes: a shard whose free window
    // intersects an in-flight job's free window waits for that job's
    // delta (shard 0 usually overlaps the previous freeze's shard 0 —
    // exactly the old one-job-at-a-time skip, now per shard).
    bool conflict = false;
    for (const int id : shard.window_kfs)
      if (std::find(claimed_kfs.begin(), claimed_kfs.end(), id) !=
          claimed_kfs.end()) {
        conflict = true;
        break;
      }
    if (conflict) continue;
    backend::BackendSnapshot snapshot;
    if (!backend::build_shard_snapshot(kf_graph_, map_, camera_,
                                       options_.backend, shard,
                                       static_cast<int>(sid), fs.index,
                                       claimed_points, snapshot))
      continue;
    BackendJob job;
    job.shard = static_cast<int>(sid);
    job.claimed_kfs = snapshot.window_kfs;  // post-demote free set
    job.owned_points.reserve(snapshot.point_ids.size());
    for (std::size_t j = 0; j < snapshot.point_ids.size(); ++j)
      if (snapshot.point_owned.empty() || snapshot.point_owned[j] != 0)
        job.owned_points.push_back(snapshot.point_ids[j]);
    // Later shards this freeze (and later freezes) must treat this job's
    // points as claimed.
    claimed_points.insert(claimed_points.end(), job.owned_points.begin(),
                          job.owned_points.end());
    std::sort(claimed_points.begin(), claimed_points.end());
    job.snapshot = std::move(snapshot);
    {
      const std::lock_guard<std::mutex> lock(backend_mutex_);
      job.id = next_backend_job_id_++;
      backend_jobs_.push_back(std::move(job));
      backend_stats_.max_inflight_jobs_seen =
          std::max(backend_stats_.max_inflight_jobs_seen,
                   static_cast<int>(backend_jobs_.size()));
    }
    ++frozen;
  }
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  ++backend_stats_.freeze_events;
  backend_stats_.shard_jobs_frozen += frozen;
  backend_stats_.last_freeze_shards = static_cast<int>(shards.size());
  backend_stats_.max_shards_seen = std::max(
      backend_stats_.max_shards_seen, static_cast<int>(shards.size()));
}

void Tracker::run_backend_job(int job_id) {
  backend::BackendSnapshot snapshot;
  bool loop_job = false;
  {
    const std::lock_guard<std::mutex> lock(backend_mutex_);
    const auto it =
        std::find_if(backend_jobs_.begin(), backend_jobs_.end(),
                     [&](const BackendJob& j) { return j.id == job_id; });
    // The job may have been discarded and erased (loop correction) after
    // its ticket was queued; a vanished id is a silent no-op.
    if (it == backend_jobs_.end() || it->state != BackendJob::State::kReady)
      return;
    snapshot = std::move(it->snapshot);
    it->state = BackendJob::State::kRunning;
    loop_job = it->loop;
  }
  // The expensive part — windowed BA (or loop verification) on the frozen
  // copy.  No tracker lock is held: tracking stages proceed concurrently,
  // and so do other shards' jobs on other workers.
  ESLAM_TRACE_SCOPE(loop_job ? obs_.loop_track : obs_.ba_track,
                    loop_job ? "loop-verify" : "ba-job");
  backend::BackendDelta delta = backend::optimize_snapshot(
      std::move(snapshot), options_.backend, options_.lifecycle);
  (loop_job ? obs_.backend_optimize_loop : obs_.backend_optimize_ba)
      ->record(delta.optimize_ms);
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  ++backend_stats_.jobs_run;
  backend_stats_.total_optimize_ms += delta.optimize_ms;
  if (delta.loop_job) {
    ++backend_stats_.loop_jobs_run;
    if (delta.loop_closed) {
      ++backend_stats_.loops_verified;
    } else {
      ++backend_stats_.loops_rejected;
    }
    backend_stats_.last_loop_inliers = delta.loop_inliers;
    backend_stats_.total_pose_graph_iterations += delta.pose_graph.iterations;
  } else {
    ++backend_stats_.ba_jobs_run;
    backend_stats_.total_ba_iterations += delta.ba.iterations;
    backend_stats_.last_ba_initial_cost = delta.ba.initial_cost;
    backend_stats_.last_ba_final_cost = delta.ba.final_cost;
  }
  const auto it =
      std::find_if(backend_jobs_.begin(), backend_jobs_.end(),
                   [&](const BackendJob& j) { return j.id == job_id; });
  if (it == backend_jobs_.end()) return;
  if (it->discarded) {
    // A loop correction applied while this job ran: its snapshot predates
    // the corrected map, so the delta is dropped unapplied.
    ++backend_stats_.jobs_discarded;
    backend_jobs_.erase(it);
    return;
  }
  it->delta = std::move(delta);
  it->state = BackendJob::State::kDone;
}

void Tracker::run_backend_job() {
  // Sequential drain: run every ready job in ascending id order (loop
  // jobs freeze before BA jobs at the same keyframe, so they also run
  // first here — the inline analogue of the scheduler's priority pop).
  for (;;) {
    int next = -1;
    {
      const std::lock_guard<std::mutex> lock(backend_mutex_);
      for (const BackendJob& job : backend_jobs_)
        if (job.state == BackendJob::State::kReady &&
            (next < 0 || job.id < next))
          next = job.id;
    }
    if (next < 0) return;
    run_backend_job(next);
  }
}

void Tracker::apply_pending_backend_deltas(FrameState& fs) {
  // Applies every completed delta, smallest job id first — the order jobs
  // were frozen in, identical in sequential and threaded runs regardless
  // of worker completion order.  Concurrent jobs write disjoint keyframe
  // and owned-point sets (checked below), so this order is one valid
  // serialization of writes that commute anyway.
  for (;;) {
    backend::BackendDelta delta;
    std::vector<std::int64_t> owned;
    {
      const std::lock_guard<std::mutex> lock(backend_mutex_);
      const auto it =
          std::find_if(backend_jobs_.begin(), backend_jobs_.end(),
                       [](const BackendJob& j) {
                         return j.state == BackendJob::State::kDone;
                       });
      if (it == backend_jobs_.end()) return;
      delta = std::move(it->delta);
      owned = std::move(it->owned_points);
      backend_jobs_.erase(it);
    }
    // Per-delta ownership check: a shard delta may only write the points
    // its job owned at freeze time (what makes concurrent deltas commute).
    // Loop deltas are exempt — a correction legitimately rewrites the
    // whole map, and discards every other job below.
    if (!delta.loop_job) {
      const auto owns = [&](std::int64_t id) {
        return std::binary_search(owned.begin(), owned.end(), id);
      };
      for (const auto& [id, position] : delta.point_positions)
        ESLAM_ASSERT(owns(id), "shard delta moved a point it does not own");
      for (const std::int64_t id : delta.culled_ids)
        ESLAM_ASSERT(owns(id), "shard delta culled a point it does not own");
      for (const std::int64_t id : delta.fused_ids)
        ESLAM_ASSERT(owns(id), "shard delta fused a point it does not own");
    }
    const WallTimer apply_timer;
    ESLAM_TRACE_SCOPE(obs_.arm_track, "apply");
    const backend::ApplyOutcome outcome =
        backend::apply_delta(delta, map_, kf_graph_);
    obs_.backend_apply->record(apply_timer.elapsed_ms());
    fs.result.n_points_culled += outcome.points_culled;
    fs.result.n_points_fused += outcome.points_fused;
    fs.result.backend_applied = true;
    if (outcome.loop_applied) {
      // The world moved under the camera: rebase every piece of tracker
      // state expressed in world coordinates by the same correction the
      // live end of the map received, so the very next projection of the
      // corrected map is unchanged.  For a camera pose (world-to-camera)
      // the rebase is pose_cw' = pose_cw * adjust^{-1}; for a camera-in-
      // world reference it is pose_wc' = adjust * pose_wc.  The velocity
      // last * prev^{-1} is invariant (the adjusts cancel), so the motion
      // model carries straight through the correction.
      const SE3 adjust_inv = outcome.loop_adjust.inverse();
      fs.result.pose_cw = fs.result.pose_cw * adjust_inv;
      fs.result.pose_wc = fs.result.pose_cw.inverse();
      last_pose_cw_ = last_pose_cw_ * adjust_inv;
      prev_pose_cw_ = prev_pose_cw_ * adjust_inv;
      keyframe_policy_.rebase(outcome.loop_adjust);
      fs.result.loop_closed = true;
      loop_cooldown_until_ = fs.index + options_.backend.loop.cooldown_frames;
      // Every other in-flight job froze against the pre-correction map:
      // discard them all.  Ready/done jobs go now; a running job is
      // flagged and erased by its own worker on completion.
      const std::lock_guard<std::mutex> lock(backend_mutex_);
      std::erase_if(backend_jobs_, [&](BackendJob& job) {
        if (job.state == BackendJob::State::kRunning) {
          job.discarded = true;
          return false;
        }
        ++backend_stats_.jobs_discarded;
        return true;
      });
    } else if (delta.loop_job) {
      // Verification rejected the candidate: back off briefly so the same
      // false pair does not immediately re-freeze a loop job and starve
      // the BA lane.
      loop_cooldown_until_ =
          fs.index + std::max(1, options_.backend.loop.cooldown_frames / 4);
    }
    const std::lock_guard<std::mutex> lock(backend_mutex_);
    ++backend_stats_.deltas_applied;
    backend_stats_.points_moved += outcome.points_moved;
    backend_stats_.points_culled += outcome.points_culled;
    backend_stats_.points_fused += outcome.points_fused;
    if (outcome.loop_applied) {
      ++backend_stats_.loops_applied;
      backend_stats_.last_loop_correction_m =
          outcome.loop_adjust.translation().norm();
    }
  }
}

}  // namespace eslam
