#include "slam/tracker.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "geometry/wall_timer.h"

namespace eslam {

SoftwareBackend::SoftwareBackend(const OrbConfig& orb,
                                 const MatcherOptions& matcher)
    : extractor_(orb), matcher_options_(matcher) {}

FeatureList SoftwareBackend::extract(const ImageU8& image) {
  const WallTimer timer;
  FeatureList features = extractor_.extract(image);
  extract_ms_.store(timer.elapsed_ms());
  return features;
}

std::vector<Match> SoftwareBackend::match(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train) {
  const WallTimer timer;
  std::vector<Match> matches = match_descriptors(queries, train,
                                                 matcher_options_);
  match_ms_.store(timer.elapsed_ms());
  return matches;
}

std::vector<Match> SoftwareBackend::match_candidates(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train, const CandidateSet& candidates) {
  const WallTimer timer;
  std::vector<Match> matches =
      eslam::match_candidates(queries, train, candidates, matcher_options_);
  match_ms_.store(timer.elapsed_ms());
  return matches;
}

Tracker::Tracker(const PinholeCamera& camera,
                 std::unique_ptr<FeatureBackend> backend,
                 const TrackerOptions& options)
    : camera_(camera),
      backend_(std::move(backend)),
      options_(options),
      keyframe_policy_(options.keyframe),
      kf_graph_(options.backend.graph) {
  ESLAM_ASSERT(backend_ != nullptr, "tracker needs a feature backend");
}

std::optional<Vec3> Tracker::world_point_from_depth(const FrameInput& frame,
                                                    double u, double v,
                                                    const SE3& pose_wc) const {
  const int xi = static_cast<int>(std::lround(u));
  const int yi = static_cast<int>(std::lround(v));
  if (!frame.depth.contains(xi, yi)) return std::nullopt;
  const std::uint16_t raw = frame.depth.at(xi, yi);
  if (raw == 0) return std::nullopt;  // invalid depth (sensor hole)
  const double z = raw / options_.depth_factor;
  if (z <= 0.05 || z > 40.0) return std::nullopt;
  return pose_wc * camera_.unproject(u, v, z);
}

void Tracker::bootstrap_map(
    FrameState& fs, std::vector<backend::KeyframeObservation>* observations) {
  const WallTimer timer;
  const SE3 identity;
  int added = 0;
  for (const Feature& f : fs.features) {
    const auto p =
        world_point_from_depth(fs.input, f.keypoint.x0(), f.keypoint.y0(),
                               identity);
    if (!p) continue;
    const std::int64_t id = map_.add_point(*p, f.descriptor, fs.index);
    if (observations)
      observations->push_back({id, Vec2{f.keypoint.x0(), f.keypoint.y0()}});
    ++added;
  }
  fs.result.keyframe = true;
  fs.result.lost = added == 0;
  fs.result.times.map_updating = timer.elapsed_ms();
  keyframe_policy_.should_insert(SE3{});  // registers the reference pose
}

std::size_t Tracker::insert_map_points(
    const FrameState& fs, const std::vector<bool>& feature_matched,
    const SE3& pose_wc,
    std::vector<backend::KeyframeObservation>* observations) {
  for (std::size_t i = 0; i < fs.features.size(); ++i) {
    if (feature_matched[i]) continue;  // already represented in the map
    const Feature& f = fs.features[i];
    const auto p = world_point_from_depth(fs.input, f.keypoint.x0(),
                                          f.keypoint.y0(), pose_wc);
    if (!p) continue;
    const std::int64_t id = map_.add_point(*p, f.descriptor, fs.index);
    if (observations)
      observations->push_back({id, Vec2{f.keypoint.x0(), f.keypoint.y0()}});
  }
  return map_.prune(fs.index, options_.map_prune_age);
}

SE3 Tracker::predicted_pose_cw() const {
  if (!options_.use_motion_model || !have_velocity_) return last_pose_cw_;
  // Constant velocity: T(t+1) ~ [T(t) T(t-1)^-1] T(t).
  return (last_pose_cw_ * prev_pose_cw_.inverse()) * last_pose_cw_;
}

void Tracker::publish_gate_prior(const FrameState& fs) {
  GatePriorSlot slot;
  slot.for_frame = fs.index + 2;
  if (fs.result.lost) {
    // No trustworthy pose: the target frame must brute-force
    // (relocalization tier).
    slot.valid = false;
  } else {
    slot.valid = true;
    if (options_.use_motion_model && have_velocity_) {
      // Double-step constant velocity: the target frame is two frames
      // ahead of the pose this publication is based on.
      const SE3 step = last_pose_cw_ * prev_pose_cw_.inverse();
      slot.pose_cw = step * (step * last_pose_cw_);
    } else {
      slot.pose_cw = last_pose_cw_;
    }
  }
  const std::lock_guard<std::mutex> lock(gate_prior_mutex_);
  gate_prior_[static_cast<std::size_t>(slot.for_frame % 2)] = slot;
}

std::optional<SE3> Tracker::gate_prior_for(int frame_index) const {
  const std::lock_guard<std::mutex> lock(gate_prior_mutex_);
  const GatePriorSlot& slot =
      gate_prior_[static_cast<std::size_t>(frame_index % 2)];
  if (slot.for_frame != frame_index || !slot.valid) return std::nullopt;
  return slot.pose_cw;
}

FrameState Tracker::begin_frame(FrameInput frame) {
  FrameState fs;
  fs.input = std::move(frame);
  fs.index = next_index_++;
  fs.result.timestamp = fs.input.timestamp;
  return fs;
}

void Tracker::extract(FrameState& fs) {
  // --- Feature extraction (FPGA in the paper) ---------------------------
  fs.features = backend_->extract(fs.input.gray);
  fs.result.times.feature_extraction = backend_->last_extract_time_ms();
  fs.result.n_features = static_cast<int>(fs.features.size());
}

void Tracker::match(FrameState& fs) {
  // --- Feature matching (FPGA in the paper) ------------------------------
  // Shared-locked against update_map()'s structural writes: the matcher
  // reads the map's descriptor/position snapshot (the map region of
  // SDRAM), which only map updating rewrites.  A replay simply overwrites
  // the previous matches.
  const std::shared_lock lock(map_mutex_);
  fs.map_epoch = map_.epoch();
  fs.matches.clear();
  fs.match_tier = MatchTier::kBruteForce;
  if (map_.empty()) {
    // Nothing to match against — the frame will bootstrap the map.
    fs.result.times.feature_matching = 0.0;
    fs.result.n_matches = 0;
    return;
  }
  std::vector<Descriptor256> query;
  query.reserve(fs.features.size());
  for (const Feature& f : fs.features) query.push_back(f.descriptor);

  // Tier one: projection-gated candidate search, when the policy allows,
  // the map is big enough to be worth gating, and a prior was published
  // for this frame (none right after bootstrap or a tracking loss).
  double match_ms = 0.0;
  bool gated = false;
  if (options_.match.use_gate &&
      static_cast<int>(map_.size()) >= options_.match.min_map_points_for_gate) {
    if (const std::optional<SE3> prior = gate_prior_for(fs.index)) {
      const GateResult gate = build_candidate_set(
          map_.positions(), *prior, camera_, fs.features, options_.match);
      std::vector<Match> matches =
          backend_->match_candidates(query, map_.descriptors(),
                                     gate.candidates);
      match_ms += gate.build_ms + backend_->last_match_time_ms();
      const int required = std::max(
          options_.match.min_gated_matches,
          static_cast<int>(std::ceil(options_.match.min_gated_match_fraction *
                                     static_cast<double>(query.size()))));
      if (static_cast<int>(matches.size()) >= required) {
        fs.matches = std::move(matches);
        gated = true;
      }
      // else: too few matches survived — the prior is likely wrong (fast
      // motion beyond the window, post-loss, viewpoint jump), so fall
      // through to the full-map tier, which is also what relocalization
      // needs.
    }
  }
  // Tier two: full-map brute force (bootstrap-adjacent frames,
  // relocalization, small maps, gate fallback).
  if (!gated) {
    fs.matches = backend_->match(query, map_.descriptors());
    match_ms += backend_->last_match_time_ms();
  }
  fs.match_tier = gated ? MatchTier::kGated : MatchTier::kBruteForce;
  fs.result.match_tier = fs.match_tier;
  fs.result.times.feature_matching = match_ms;
  fs.result.n_matches = static_cast<int>(fs.matches.size());
}

void Tracker::estimate_pose(FrameState& fs) {
  if (map_.empty()) {
    // First (or post-reset) frame: no pose to estimate, update_map() will
    // bootstrap the map at the identity pose.
    fs.bootstrap = true;
    return;
  }
  ESLAM_ASSERT(matches_current(fs),
               "stale matches: match() must be replayed after a key frame");

  // --- Pose estimation: PnP + RANSAC (ARM) -------------------------------
  WallTimer pe_timer;
  fs.correspondences.clear();
  fs.correspondences.reserve(fs.matches.size());
  for (const Match& m : fs.matches) {
    const Feature& f = fs.features[static_cast<std::size_t>(m.query)];
    fs.correspondences.push_back(Correspondence{
        map_.point(static_cast<std::size_t>(m.train)).position,
        Vec2{f.keypoint.x0(), f.keypoint.y0()}});
  }
  const int required_inliers = std::max(
      options_.min_tracked_inliers,
      std::min(options_.strong_consensus_inliers,
               static_cast<int>(
                   options_.min_inlier_ratio *
                   static_cast<double>(fs.correspondences.size()))));
  const SE3 prior = predicted_pose_cw();
  RansacResult ransac = ransac_pnp(fs.correspondences, camera_, prior,
                                   options_.ransac);
  if (!ransac.success ||
      static_cast<int>(ransac.inliers.size()) < required_inliers) {
    // Retry once from the raw previous pose: the velocity extrapolation
    // itself can be the problem after an abrupt motion change, and a
    // low-consensus "success" is often a degenerate pose on repetitive
    // texture rather than the true one.
    if (options_.use_motion_model && have_velocity_) {
      RansacResult retry = ransac_pnp(fs.correspondences, camera_,
                                      last_pose_cw_, options_.ransac);
      if (retry.inliers.size() > ransac.inliers.size())
        ransac = std::move(retry);
    }
  }
  if (options_.relocalize_with_p3p &&
      (!ransac.success ||
       static_cast<int>(ransac.inliers.size()) < required_inliers)) {
    // Relocalization: closed-form P3P hypotheses need no pose prior.
    RansacOptions reloc = options_.ransac;
    reloc.use_p3p = true;
    RansacResult retry =
        ransac_pnp(fs.correspondences, camera_, SE3{}, reloc);
    if (retry.inliers.size() > ransac.inliers.size())
      ransac = std::move(retry);
  }
  fs.result.times.pose_estimation = pe_timer.elapsed_ms();
  fs.result.n_inliers = static_cast<int>(ransac.inliers.size());
  if (!ransac.success || fs.result.n_inliers < required_inliers) {
    // Lost: keep the previous pose; update_map() drops the velocity.
    fs.result.lost = true;
    fs.result.pose_cw = last_pose_cw_;
    fs.result.pose_wc = last_pose_cw_.inverse();
  }
  fs.ransac = std::move(ransac);
}

void Tracker::optimize_pose(FrameState& fs) {
  if (fs.bootstrap || fs.result.lost) return;

  // --- Pose optimization: LM on inlier reprojection error (ARM) ----------
  WallTimer po_timer;
  std::vector<Correspondence> inlier_set;
  inlier_set.reserve(fs.ransac.inliers.size());
  for (int idx : fs.ransac.inliers)
    inlier_set.push_back(fs.correspondences[static_cast<std::size_t>(idx)]);
  const PnpResult optimized = solve_pnp(inlier_set, camera_, fs.ransac.pose,
                                        options_.pose_optimization);
  fs.result.times.pose_optimization = po_timer.elapsed_ms();
  fs.result.pose_cw = optimized.pose;
  fs.result.pose_wc = optimized.pose.inverse();
}

TrackResult Tracker::update_map(FrameState& fs) {
  const bool backend_on = options_.backend.enabled;
  if (fs.bootstrap) {
    std::vector<backend::KeyframeObservation> observations;
    {
      const std::unique_lock lock(map_mutex_);
      bootstrap_map(fs, backend_on ? &observations : nullptr);
      last_pose_cw_ = SE3{};
    }
    if (backend_on && !fs.result.lost)
      backend_on_keyframe(fs, std::move(observations));
  } else if (fs.result.lost) {
    // Drop the (now unreliable) velocity estimate; the map is untouched.
    have_velocity_ = false;
  } else {
    // The keyframe decision only needs the final pose; taking it first
    // lets non-keyframes (the common case) skip the backend observation
    // collection below entirely.
    const bool is_keyframe = keyframe_policy_.should_insert(fs.result.pose_wc);

    // Record which features/map points were matched (for map maintenance).
    std::vector<bool> feature_matched(fs.features.size(), false);
    std::vector<backend::KeyframeObservation> observations;
    for (int idx : fs.ransac.inliers) {
      const Match& m = fs.matches[static_cast<std::size_t>(idx)];
      feature_matched[static_cast<std::size_t>(m.query)] = true;
      map_.note_match(static_cast<std::size_t>(m.train), fs.index);
      if (backend_on && is_keyframe) {
        const Feature& f = fs.features[static_cast<std::size_t>(m.query)];
        observations.push_back(
            {map_.point(static_cast<std::size_t>(m.train)).id,
             Vec2{f.keypoint.x0(), f.keypoint.y0()}});
      }
    }

    // --- Map updating (key frames only, ARM) ------------------------------
    if (is_keyframe) {
      WallTimer mu_timer;
      {
        // The map maintains its descriptor/position snapshot eagerly, so
        // releasing this lock immediately publishes a consistent epoch.
        const std::unique_lock lock(map_mutex_);
        // The previous backend job's delta lands here — the next keyframe
        // after its completion — as one more structural map write under
        // the same lock and epoch rules as the insertions below.
        if (backend_on) apply_pending_backend_delta(fs);
        fs.result.n_points_pruned = static_cast<int>(insert_map_points(
            fs, feature_matched, fs.result.pose_wc,
            backend_on ? &observations : nullptr));
      }
      if (backend_on) backend_on_keyframe(fs, std::move(observations));
      fs.result.times.map_updating = mu_timer.elapsed_ms();
      fs.result.keyframe = true;
    }

    prev_pose_cw_ = last_pose_cw_;
    last_pose_cw_ = fs.result.pose_cw;
    have_velocity_ = true;
  }

  // Publish the matching gate's prior for frame index + 2 before this
  // frame's retirement becomes visible to the device lane (the scheduler
  // stores retired_through *after* update_map returns, so a match that
  // observed the retirement also observes this publication).
  publish_gate_prior(fs);

  trajectory_.push_back(fs.result);
  frame_index_ = fs.index + 1;
  return fs.result;
}

TrackResult Tracker::process(const FrameInput& frame) {
  FrameState fs = begin_frame(frame);
  extract(fs);
  match(fs);
  estimate_pose(fs);
  optimize_pose(fs);
  TrackResult result = update_map(fs);
  // Sequential platform: no worker pool, so a job frozen at this keyframe
  // runs inline right here (its delta applies at the next keyframe, the
  // same protocol the asynchronous lane follows).
  if (backend_job_pending()) run_backend_job();
  return result;
}

// ---- local-mapping backend --------------------------------------------------

bool Tracker::backend_job_pending() const {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  return backend_state_ == BackendJobState::kSnapshotReady;
}

bool Tracker::backend_busy() const {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  return backend_state_ == BackendJobState::kRunning;
}

backend::BackendStats Tracker::backend_stats() const {
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  return backend_stats_;
}

void Tracker::backend_on_keyframe(
    const FrameState& fs,
    std::vector<backend::KeyframeObservation> observations) {
  kf_graph_.add_keyframe(fs.index, fs.result.pose_cw, std::move(observations));
  {
    const std::lock_guard<std::mutex> lock(backend_mutex_);
    ++backend_stats_.keyframes_inserted;
    // Per-tracker serialization: one job in any state at a time.  A busy
    // backend simply skips this keyframe; the next one retries.
    if (backend_state_ != BackendJobState::kIdle) return;
  }
  // Reading the map without the lock is safe here: update_map() is the
  // only structural writer and this runs from update_map().
  backend::BackendSnapshot snapshot;
  if (!backend::build_snapshot(kf_graph_, map_, camera_, options_.backend,
                               fs.index, snapshot))
    return;
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  backend_snapshot_ = std::move(snapshot);
  backend_state_ = BackendJobState::kSnapshotReady;
}

void Tracker::run_backend_job() {
  backend::BackendSnapshot snapshot;
  {
    const std::lock_guard<std::mutex> lock(backend_mutex_);
    if (backend_state_ != BackendJobState::kSnapshotReady) return;
    snapshot = std::move(backend_snapshot_);
    backend_state_ = BackendJobState::kRunning;
  }
  // The expensive part — windowed BA on the frozen copy.  No tracker lock
  // is held: tracking stages proceed concurrently.
  backend::BackendDelta delta =
      backend::optimize_snapshot(std::move(snapshot), options_.backend);
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  ++backend_stats_.jobs_run;
  backend_stats_.total_ba_iterations += delta.ba.iterations;
  backend_stats_.total_optimize_ms += delta.optimize_ms;
  backend_stats_.last_ba_initial_cost = delta.ba.initial_cost;
  backend_stats_.last_ba_final_cost = delta.ba.final_cost;
  backend_delta_ = std::move(delta);
  backend_state_ = BackendJobState::kDeltaReady;
}

void Tracker::apply_pending_backend_delta(FrameState& fs) {
  backend::BackendDelta delta;
  {
    const std::lock_guard<std::mutex> lock(backend_mutex_);
    if (backend_state_ != BackendJobState::kDeltaReady) return;
    delta = std::move(backend_delta_);
    backend_state_ = BackendJobState::kIdle;
  }
  const backend::ApplyOutcome outcome =
      backend::apply_delta(delta, map_, kf_graph_);
  fs.result.n_points_culled = outcome.points_culled;
  fs.result.n_points_fused = outcome.points_fused;
  fs.result.backend_applied = true;
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  ++backend_stats_.deltas_applied;
  backend_stats_.points_moved += outcome.points_moved;
  backend_stats_.points_culled += outcome.points_culled;
  backend_stats_.points_fused += outcome.points_fused;
}

}  // namespace eslam
