#include "slam/match_gate.h"

#include <chrono>

#include "features/grid_index.h"

namespace eslam {

const char* to_string(MatchTier tier) {
  switch (tier) {
    case MatchTier::kBruteForce: return "brute";
    case MatchTier::kGated: return "gated";
    case MatchTier::kRelocIndex: return "reloc-index";
  }
  return "?";
}

GateResult build_candidate_set(std::span<const Vec3> map_positions,
                               const SE3& prior_pose_cw,
                               const PinholeCamera& camera,
                               const FeatureList& features,
                               const MatchPolicy& policy) {
  const auto start = std::chrono::steady_clock::now();
  GateResult out;

  // Project every map point under the prior.  The grid is padded by the
  // search radius on every side (coordinates shifted by +margin) so
  // points projecting just outside the image stay indexable.
  const double margin = policy.search_radius_px;
  GridIndex2d grid(camera.width() + 2 * margin, camera.height() + 2 * margin,
                   policy.cell_size_px);
  std::vector<GridEntry> entries;
  entries.reserve(map_positions.size());
  for (std::size_t i = 0; i < map_positions.size(); ++i) {
    const Vec3 p_cam = prior_pose_cw * map_positions[i];
    const std::optional<Vec2> px = camera.project(p_cam);
    if (!px) continue;  // behind the camera
    const double u = (*px)[0];
    const double v = (*px)[1];
    if (u < -margin || u >= camera.width() + margin || v < -margin ||
        v >= camera.height() + margin)
      continue;
    entries.push_back(
        GridEntry{u + margin, v + margin, static_cast<std::int32_t>(i)});
  }
  out.projected = static_cast<int>(entries.size());
  grid.build(std::move(entries));

  out.candidates.offsets.reserve(features.size() + 1);
  out.candidates.offsets.push_back(0);
  for (const Feature& f : features) {
    grid.query(f.keypoint.x0() + margin, f.keypoint.y0() + margin,
               policy.search_radius_px, out.candidates.indices);
    out.candidates.offsets.push_back(
        static_cast<std::int32_t>(out.candidates.indices.size()));
  }

  out.build_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return out;
}

}  // namespace eslam
