#include "slam/match_gate.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "features/grid_index.h"
#include "features/simd_kernels.h"

namespace eslam {

const char* to_string(MatchTier tier) {
  switch (tier) {
    case MatchTier::kBruteForce: return "brute";
    case MatchTier::kGated: return "gated";
    case MatchTier::kRelocIndex: return "reloc-index";
  }
  return "?";
}

GateResult build_candidate_set(std::span<const Vec3> map_positions,
                               const SE3& prior_pose_cw,
                               const PinholeCamera& camera,
                               const FeatureList& features,
                               const MatchPolicy& policy) {
  const auto start = std::chrono::steady_clock::now();
  GateResult out;

  // Project every map point under the prior.  The grid is padded by the
  // search radius on every side (coordinates shifted by +margin) so
  // points projecting just outside the image stay indexable.
  const double margin = policy.search_radius_px;
  GridIndex2d grid(camera.width() + 2 * margin, camera.height() + 2 * margin,
                   policy.cell_size_px);
  std::vector<GridEntry> entries;
  entries.reserve(map_positions.size());
  for (std::size_t i = 0; i < map_positions.size(); ++i) {
    const Vec3 p_cam = prior_pose_cw * map_positions[i];
    const std::optional<Vec2> px = camera.project(p_cam);
    if (!px) continue;  // behind the camera
    const double u = (*px)[0];
    const double v = (*px)[1];
    if (u < -margin || u >= camera.width() + margin || v < -margin ||
        v >= camera.height() + margin)
      continue;
    entries.push_back(
        GridEntry{u + margin, v + margin, static_cast<std::int32_t>(i)});
  }
  out.projected = static_cast<int>(entries.size());
  grid.build(std::move(entries));

  out.candidates.offsets.reserve(features.size() + 1);
  out.candidates.offsets.push_back(0);
  for (const Feature& f : features) {
    grid.query(f.keypoint.x0() + margin, f.keypoint.y0() + margin,
               policy.search_radius_px, out.candidates.indices);
    out.candidates.offsets.push_back(
        static_cast<std::int32_t>(out.candidates.indices.size()));
  }

  out.build_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return out;
}

void build_candidate_set_into(std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const double> zs,
                              const SE3& prior_pose_cw,
                              const PinholeCamera& camera,
                              const FeatureList& features,
                              const MatchPolicy& policy, Arena* scratch,
                              GateResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out.candidates.indices.clear();
  out.candidates.offsets.clear();
  out.projected = 0;

  thread_local Arena fallback;
  Arena& arena = scratch != nullptr ? *scratch : fallback;
  const ArenaScope scope(arena);

  const std::size_t n = xs.size();
  const double margin = policy.search_radius_px;
  const std::span<double> u = arena.alloc_span<double>(n);
  const std::span<double> v = arena.alloc_span<double>(n);
  const std::span<std::uint8_t> keep = arena.alloc_span<std::uint8_t>(n);
  simd::project_batch(xs, ys, zs, prior_pose_cw, camera, margin, u.data(),
                      v.data(), keep.data());

  // Compact the kept projections, coordinates shifted into the padded
  // grid frame — same entries, same ascending-index order as the
  // GridIndex2d path in build_candidate_set().
  const std::span<GridEntry> entries = arena.alloc_span<GridEntry>(n);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    entries[kept++] = GridEntry{u[i] + margin, v[i] + margin,
                               static_cast<std::int32_t>(i)};
  }
  out.projected = static_cast<int>(kept);

  // Arena-resident replica of GridIndex2d's CSR counting sort (identical
  // cell math, identical within-cell order).
  const double cell_size = policy.cell_size_px;
  const double grid_w = camera.width() + 2 * margin;
  const double grid_h = camera.height() + 2 * margin;
  const int cols =
      std::max(1, static_cast<int>(std::ceil(grid_w / cell_size)));
  const int rows =
      std::max(1, static_cast<int>(std::ceil(grid_h / cell_size)));
  const auto cell_x = [cols, cell_size](double uu) {
    return std::clamp(static_cast<int>(std::floor(uu / cell_size)), 0,
                      cols - 1);
  };
  const auto cell_y = [rows, cell_size](double vv) {
    return std::clamp(static_cast<int>(std::floor(vv / cell_size)), 0,
                      rows - 1);
  };
  const std::size_t n_cells = static_cast<std::size_t>(cols) * rows;
  const std::span<std::int32_t> cell_start =
      arena.alloc_span<std::int32_t>(n_cells + 1, 0);
  for (std::size_t i = 0; i < kept; ++i)
    ++cell_start[static_cast<std::size_t>(cell_y(entries[i].v)) * cols +
                 cell_x(entries[i].u) + 1];
  for (std::size_t c = 0; c < n_cells; ++c) cell_start[c + 1] += cell_start[c];
  const std::span<std::int32_t> cursor =
      arena.alloc_span<std::int32_t>(n_cells);
  for (std::size_t c = 0; c < n_cells; ++c) cursor[c] = cell_start[c];
  const std::span<GridEntry> sorted = arena.alloc_span<GridEntry>(kept);
  for (std::size_t i = 0; i < kept; ++i) {
    const std::size_t cell =
        static_cast<std::size_t>(cell_y(entries[i].v)) * cols +
        cell_x(entries[i].u);
    sorted[static_cast<std::size_t>(cursor[cell]++)] = entries[i];
  }

  // Per-feature window queries, row-major cells, then sort each appended
  // slice ascending (tie parity with the brute-force scan).
  const double radius = policy.search_radius_px;
  std::vector<std::int32_t>& indices = out.candidates.indices;
  out.candidates.offsets.reserve(features.size() + 1);
  out.candidates.offsets.push_back(0);
  for (const Feature& f : features) {
    const double qu = f.keypoint.x0() + margin;
    const double qv = f.keypoint.y0() + margin;
    const std::size_t first = indices.size();
    const int x0 = cell_x(qu - radius);
    const int x1 = cell_x(qu + radius);
    const int y0 = cell_y(qv - radius);
    const int y1 = cell_y(qv + radius);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const std::size_t cell = static_cast<std::size_t>(y) * cols + x;
        const std::int32_t a = cell_start[cell];
        const std::int32_t b = cell_start[cell + 1];
        for (std::int32_t i = a; i < b; ++i) {
          const GridEntry& e = sorted[static_cast<std::size_t>(i)];
          if (std::abs(e.u - qu) <= radius && std::abs(e.v - qv) <= radius)
            indices.push_back(e.id);
        }
      }
    }
    std::sort(indices.begin() + static_cast<std::ptrdiff_t>(first),
              indices.end());
    out.candidates.offsets.push_back(
        static_cast<std::int32_t>(indices.size()));
  }

  out.build_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
}

}  // namespace eslam
