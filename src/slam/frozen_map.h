// FrozenMap — the localization tier's immutable map view.
//
// A FrozenMap is built once from a parsed MapSnapshot and never mutated:
// no add/prune/apply, no structural epoch bumps, no lock.  Since the live
// Map's read side moved to published MapReadViews, frozen serving is the
// *degenerate one-version case* of the same mechanism: construction
// builds the same refcounted storage blocks the live Map publishes and
// pins exactly one MapReadView over them, forever.  Every consumer —
// matcher TrainView, projection-gate lanes, pose estimation's position
// column, the reloc tier's id lookup — reads through that view with the
// identical API a live mapping frame uses, so the Localizer and Tracker
// share one read-path shape.  N localization sessions share one
// FrozenMap through shared_ptr<const FrozenMap> and read it concurrently
// with zero coordination, so served localization throughput scales with
// cores instead of with the mapping tier's single writer lane.
//
// Construction rebuilds every derived structure deterministically from
// the snapshot's canonical state: the descriptor/position/id blocks (AoS
// + SoA mirrors), the covisibility graph (keyframes re-inserted in stored
// order) and the recognition index.  Two loads of the same snapshot are
// therefore indistinguishable, which is what makes served localization
// output bit-identical to a solo sequential run against the same file.
//
// Immutability contract: every accessor is const, the object owns all
// storage, and the returned spans/references stay valid for the
// FrozenMap's lifetime.  Holders must keep the shared_ptr alive for as
// long as they use any borrowed view (the Localizer stores it).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "backend/keyframe_graph.h"
#include "backend/keyframe_index.h"
#include "features/descriptor_soa.h"
#include "geometry/camera.h"
#include "slam/map.h"
#include "slam/map_snapshot.h"
#include "slam/map_view.h"

namespace eslam {

class FrozenMap {
 public:
  // Builds the runtime view: takes the snapshot's points by move, rebuilds
  // blocks + graph + index and publishes the one permanent MapReadView.
  // Prefer the named constructors.
  explicit FrozenMap(MapSnapshot snapshot);

  static std::shared_ptr<const FrozenMap> from_snapshot(MapSnapshot snapshot) {
    return std::make_shared<const FrozenMap>(std::move(snapshot));
  }
  // load_snapshot() + from_snapshot(); nullptr (with *error set when
  // non-null) on I/O or parse failure.
  static std::shared_ptr<const FrozenMap> load(const std::string& path,
                                               std::string* error = nullptr);

  FrozenMap(const FrozenMap&) = delete;
  FrozenMap& operator=(const FrozenMap&) = delete;

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const MapPoint& point(std::size_t index) const { return points_[index]; }
  std::span<const MapPoint> points() const { return points_; }

  // Index of the point with `id`, if present (binary search — points are
  // stored ascending by id, the same invariant the live Map keeps).
  std::optional<std::size_t> index_of(std::int64_t id) const {
    return view_->index_of(id);
  }

  // The one permanent published view (epoch 0, never superseded).  The
  // Localizer borrows this exactly as a mapping frame borrows
  // Map::read_view() — same spans, same TrainView plumbing.
  const std::shared_ptr<const MapReadView>& view() const { return view_; }

  // Direct read accessors, all delegating to the view's frozen blocks —
  // same shapes the live Map exports.
  std::span<const Descriptor256> descriptors() const {
    return view_->descriptors();
  }
  std::span<const Vec3> positions() const { return view_->positions(); }
  const DescriptorSoA& descriptor_soa() const {
    return view_->descriptor_soa();
  }
  const PositionSoA& position_soa() const { return pos_block_->soa; }

  // The relocalization substrate: keyframe database + recognition index,
  // rebuilt from the snapshot (dense graph ids from 0).
  const backend::KeyframeGraph& graph() const { return graph_; }
  const backend::KeyframeIndex& keyframe_index() const { return index_; }

  // The mapping session's intrinsics — localization against this map must
  // project with the camera that built it.
  const PinholeCamera& camera() const { return camera_; }

 private:
  PinholeCamera camera_;
  std::vector<MapPoint> points_;
  // Storage blocks (capacity == size; nothing ever appends) and the one
  // view over them.  The view participates in the same process-wide
  // views-alive accounting as live published views.
  std::shared_ptr<const detail::DescriptorBlock> desc_block_;
  std::shared_ptr<const detail::PositionBlock> pos_block_;
  std::shared_ptr<const detail::IdBlock> id_block_;
  std::shared_ptr<std::atomic<std::int64_t>> alive_;
  std::shared_ptr<const MapReadView> view_;
  backend::KeyframeGraph graph_;
  backend::KeyframeIndex index_;
};

}  // namespace eslam
