// FrozenMap — the localization tier's immutable map view.
//
// A FrozenMap is built once from a parsed MapSnapshot and never mutated:
// no add/prune/apply, no structural epoch, no lock.  Every read API the
// matcher / projection gate / relocalization path needs is exposed as a
// plain borrowed view — the PR-6 SIMD candidate-gather and Hamming
// kernels run directly on the SoA planes here exactly as they do on the
// live Map's caches, minus the shared-lock acquisition and epoch stamp.
// That is the whole point of the tier: N localization sessions share one
// FrozenMap through shared_ptr<const FrozenMap> and read it concurrently
// with zero coordination, so served localization throughput scales with
// cores instead of with the mapping tier's single writer lane.
//
// Construction rebuilds every derived structure deterministically from
// the snapshot's canonical state: AoS descriptor/position caches, the SoA
// mirrors, the covisibility graph (keyframes re-inserted in stored order)
// and the recognition index.  Two loads of the same snapshot are
// therefore indistinguishable, which is what makes served localization
// output bit-identical to a solo sequential run against the same file.
//
// Immutability contract: every accessor is const, the object owns all
// storage, and the returned spans/references stay valid for the
// FrozenMap's lifetime.  Holders must keep the shared_ptr alive for as
// long as they use any borrowed view (the Localizer stores it).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "backend/keyframe_graph.h"
#include "backend/keyframe_index.h"
#include "features/descriptor_soa.h"
#include "geometry/camera.h"
#include "slam/map.h"
#include "slam/map_snapshot.h"

namespace eslam {

class FrozenMap {
 public:
  // Builds the runtime view: takes the snapshot's points by move, rebuilds
  // caches + SoA mirrors + graph + index.  Prefer the named constructors.
  explicit FrozenMap(MapSnapshot snapshot);

  static std::shared_ptr<const FrozenMap> from_snapshot(MapSnapshot snapshot) {
    return std::make_shared<const FrozenMap>(std::move(snapshot));
  }
  // load_snapshot() + from_snapshot(); nullptr (with *error set when
  // non-null) on I/O or parse failure.
  static std::shared_ptr<const FrozenMap> load(const std::string& path,
                                               std::string* error = nullptr);

  FrozenMap(const FrozenMap&) = delete;
  FrozenMap& operator=(const FrozenMap&) = delete;

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const MapPoint& point(std::size_t index) const { return points_[index]; }
  std::span<const MapPoint> points() const { return points_; }

  // Index of the point with `id`, if present (binary search — points are
  // stored ascending by id, the same invariant the live Map keeps).
  std::optional<std::size_t> index_of(std::int64_t id) const;

  // The matcher/gate views, aligned with points().  Same shapes the live
  // Map exports — TrainView{descriptors(), &descriptor_soa()} plugs
  // straight into the backends' match_into/match_candidates_into.
  std::span<const Descriptor256> descriptors() const {
    return descriptor_cache_;
  }
  std::span<const Vec3> positions() const { return position_cache_; }
  const DescriptorSoA& descriptor_soa() const { return descriptor_soa_; }
  const PositionSoA& position_soa() const { return position_soa_; }

  // The relocalization substrate: keyframe database + recognition index,
  // rebuilt from the snapshot (dense graph ids from 0).
  const backend::KeyframeGraph& graph() const { return graph_; }
  const backend::KeyframeIndex& keyframe_index() const { return index_; }

  // The mapping session's intrinsics — localization against this map must
  // project with the camera that built it.
  const PinholeCamera& camera() const { return camera_; }

 private:
  PinholeCamera camera_;
  std::vector<MapPoint> points_;
  std::vector<Descriptor256> descriptor_cache_;
  std::vector<Vec3> position_cache_;
  DescriptorSoA descriptor_soa_;
  PositionSoA position_soa_;
  backend::KeyframeGraph graph_;
  backend::KeyframeIndex index_;
};

}  // namespace eslam
