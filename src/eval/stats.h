// Small statistics helpers shared by benches and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "geometry/assert.h"

namespace eslam {

inline double mean(std::span<const double> xs) {
  ESLAM_ASSERT(!xs.empty(), "mean of empty set");
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double stddev(std::span<const double> xs) {
  ESLAM_ASSERT(xs.size() >= 2, "stddev needs >= 2 samples");
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

inline double median(std::vector<double> xs) {
  ESLAM_ASSERT(!xs.empty(), "median of empty set");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.end());
  return 0.5 * (hi + xs[mid - 1]);
}

inline double percentile(std::vector<double> xs, double p) {
  ESLAM_ASSERT(!xs.empty(), "percentile of empty set");
  ESLAM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx),
                   xs.end());
  return xs[idx];
}

}  // namespace eslam
