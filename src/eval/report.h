// Fixed-width console table formatting for the bench binaries that
// regenerate the paper's tables — keeps all benches printing in one style.
#pragma once

#include <string>
#include <vector>

namespace eslam {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Horizontal separator before the next row.
  void add_separator();

  std::string to_string() const;
  void print() const;

  // Formatting helpers.
  static std::string fmt(double value, int decimals = 2);
  static std::string fmt_ratio(double value, int decimals = 1);  // "3.6x"

 private:
  std::vector<std::string> headers_;
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace eslam
