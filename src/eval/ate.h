// Absolute Trajectory Error, the TUM benchmark metric the paper's Figure 8
// reports: rigidly align the estimated trajectory to ground truth
// (Umeyama), then take statistics of the per-frame translation residuals.
#pragma once

#include <span>
#include <vector>

#include "geometry/se3.h"
#include "geometry/umeyama.h"

namespace eslam {

struct AteResult {
  double rmse = 0.0;    // root-mean-square error (metres)
  double mean = 0.0;    // average trajectory error (paper's Figure 8 metric)
  double median = 0.0;
  double max = 0.0;
  SE3 alignment;        // transform applied to the estimate
  std::vector<double> per_frame_error;  // aligned residual norms
};

// `estimated` and `ground_truth` are camera-in-world poses, frame-aligned
// (same index = same frame).  Requires >= 3 frames.
AteResult absolute_trajectory_error(std::span<const SE3> estimated,
                                    std::span<const SE3> ground_truth);

// Convenience overload on translation lists.
AteResult absolute_trajectory_error(std::span<const Vec3> estimated,
                                    std::span<const Vec3> ground_truth);

}  // namespace eslam
