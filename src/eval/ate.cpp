#include "eval/ate.h"

#include <algorithm>
#include <cmath>

namespace eslam {

AteResult absolute_trajectory_error(std::span<const Vec3> estimated,
                                    std::span<const Vec3> ground_truth) {
  ESLAM_ASSERT(estimated.size() == ground_truth.size(),
               "trajectories must be frame-aligned");
  ESLAM_ASSERT(estimated.size() >= 3, "need >= 3 poses for alignment");

  const AlignmentResult alignment =
      umeyama(estimated, ground_truth, /*with_scale=*/false);

  AteResult result;
  result.alignment = alignment.transform;
  result.per_frame_error.reserve(estimated.size());
  double sum_sq = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    const Vec3 aligned = alignment.transform * estimated[i];
    const double err = (aligned - ground_truth[i]).norm();
    result.per_frame_error.push_back(err);
    sum_sq += err * err;
    sum += err;
    result.max = std::max(result.max, err);
  }
  const double n = static_cast<double>(estimated.size());
  result.rmse = std::sqrt(sum_sq / n);
  result.mean = sum / n;

  std::vector<double> sorted = result.per_frame_error;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  result.median = sorted[sorted.size() / 2];
  return result;
}

AteResult absolute_trajectory_error(std::span<const SE3> estimated,
                                    std::span<const SE3> ground_truth) {
  ESLAM_ASSERT(estimated.size() == ground_truth.size(),
               "trajectories must be frame-aligned");
  std::vector<Vec3> est, gt;
  est.reserve(estimated.size());
  gt.reserve(ground_truth.size());
  for (const SE3& p : estimated) est.push_back(p.translation());
  for (const SE3& p : ground_truth) gt.push_back(p.translation());
  return absolute_trajectory_error(std::span<const Vec3>(est),
                                   std::span<const Vec3>(gt));
}

}  // namespace eslam
