#include "eval/report.h"

#include <cstdio>
#include <sstream>

#include "geometry/assert.h"

namespace eslam {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ESLAM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ESLAM_ASSERT(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const Row& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());

  auto line = [&](char fill) {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, fill) + "+";
    return s + "\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
           " |";
    }
    return s + "\n";
  };

  std::string out = line('-');
  out += emit(headers_);
  out += line('=');
  for (const Row& row : rows_) {
    if (row.separator_before) out += line('-');
    out += emit(row.cells);
  }
  out += line('-');
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string Table::fmt_ratio(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", decimals, value);
  return buf;
}

}  // namespace eslam
