// Slab-chained bump allocator for per-frame scratch memory.
//
// The tracking hot path allocates the same family of transient buffers
// every frame (distance tables, gate grids, RANSAC index sets).  Instead
// of round-tripping each one through the global heap, every in-flight
// frame owns an Arena: allocation is a pointer bump, and begin_frame()
// resets the whole arena in O(1) while keeping the slabs.  After the
// first few frames the slab chain has grown to the steady-state
// high-water mark and the tracker performs zero heap allocations per
// frame (asserted by tests/runtime/steady_state_alloc_test.cpp).
//
// Not thread-safe: an arena belongs to exactly one frame, and a frame is
// touched by one thread at a time (the scheduler hands the whole
// FrameState across the device/ARM boundary).  Only trivially
// destructible types may be placed in an arena — reset() never runs
// destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <type_traits>

#include "geometry/assert.h"

namespace eslam {

class Arena {
  struct Slab_;

 public:
  struct Stats {
    std::size_t alloc_calls = 0;     // bumps since construction
    std::size_t live_bytes = 0;      // bytes handed out since last reset
    std::size_t high_water_bytes = 0;  // max live_bytes ever observed
    std::size_t slab_count = 0;      // slabs currently chained
    std::size_t slab_bytes = 0;      // total payload capacity of all slabs
    std::size_t slab_allocs = 0;     // heap allocations for slab growth
  };

  static constexpr std::size_t kDefaultSlabBytes = 256 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes < kMinSlabBytes ? kMinSlabBytes : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    Slab* s = head_;
    while (s != nullptr) {
      Slab* next = s->next;
      ::operator delete(static_cast<void*>(s));
      s = next;
    }
  }

  // Raw bump allocation.  Alignment must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    ESLAM_ASSERT(align != 0 && (align & (align - 1)) == 0,
                 "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    ++stats_.alloc_calls;
    while (true) {
      if (current_ != nullptr) {
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(current_->payload());
        const std::uintptr_t cursor = base + current_->used;
        const std::uintptr_t aligned = (cursor + (align - 1)) & ~(align - 1);
        const std::uintptr_t end = base + current_->capacity;
        if (aligned + bytes <= end) {
          current_->used = (aligned + bytes) - base;
          stats_.live_bytes += bytes;
          if (stats_.live_bytes > stats_.high_water_bytes)
            stats_.high_water_bytes = stats_.live_bytes;
          return reinterpret_cast<void*>(aligned);
        }
        // Current slab is full: advance to an already-chained slab if one
        // exists (reset() rewinds to the head but keeps the chain).
        if (current_->next != nullptr) {
          current_ = current_->next;
          current_->used = 0;
          continue;
        }
      }
      grow(bytes + align);
    }
  }

  // Typed scratch span.  The memory is uninitialised unless a fill value
  // is supplied; it stays valid until the next reset().
  template <typename T>
  std::span<T> alloc_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    if (count == 0) return {};
    T* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    return {p, count};
  }

  template <typename T>
  std::span<T> alloc_span(std::size_t count, const T& fill) {
    std::span<T> s = alloc_span<T>(count);
    for (T& v : s) v = fill;
    return s;
  }

  // Rewind everything in O(1).  Slabs are kept for reuse.
  void reset() {
    current_ = head_;
    if (current_ != nullptr) current_->used = 0;
    stats_.live_bytes = 0;
  }

  // Mark/rewind for nested scratch scopes within a frame.
  struct Marker {
    Slab_* slab;
    std::size_t used;
    std::size_t live_bytes;
  };

  Marker mark() const {
    return Marker{current_, current_ != nullptr ? current_->used : 0,
                  stats_.live_bytes};
  }

  void rewind(const Marker& m) {
    if (m.slab == nullptr) {
      reset();
      return;
    }
    current_ = m.slab;
    current_->used = m.used;
    stats_.live_bytes = m.live_bytes;
  }

  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kMinSlabBytes = 4 * 1024;

  struct Slab_ {
    Slab_* next = nullptr;
    std::size_t capacity = 0;  // payload bytes
    std::size_t used = 0;
    std::byte* payload() {
      return reinterpret_cast<std::byte*>(this) + sizeof(Slab_);
    }
  };
  using Slab = Slab_;

  void grow(std::size_t min_bytes) {
    std::size_t capacity = slab_bytes_;
    if (capacity < min_bytes) capacity = min_bytes;
    void* raw = ::operator new(sizeof(Slab) + capacity);
    Slab* slab = new (raw) Slab{};
    slab->capacity = capacity;
    ++stats_.slab_allocs;
    ++stats_.slab_count;
    stats_.slab_bytes += capacity;
    if (head_ == nullptr) {
      head_ = slab;
    } else {
      // Chain after the current slab so the bump cursor reaches it next.
      Slab* tail = current_ != nullptr ? current_ : head_;
      slab->next = tail->next;
      tail->next = slab;
    }
    current_ = slab;
    current_->used = 0;
  }

  std::size_t slab_bytes_;
  Slab* head_ = nullptr;
  Slab* current_ = nullptr;
  Stats stats_;
};

// RAII scratch scope: rewinds the arena to its construction point.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Marker mark_;
};

}  // namespace eslam
