// Runtime ISA selection for the vectorized hot-path kernels.
//
// Policy: AVX2 on x86-64 when the CPU reports it, NEON on aarch64
// (baseline, always present), scalar otherwise.  Two overrides force the
// scalar path: building with -DESLAM_FORCE_SCALAR=ON, or setting the
// ESLAM_FORCE_SCALAR environment variable to anything but "0" before the
// first kernel call.  The choice is made once and cached; every kernel in
// features/simd_kernels.h is bit-exact across ISAs, so the override only
// changes speed, never output.
#pragma once

namespace eslam::simd {

enum class IsaLevel { kScalar, kNeon, kAvx2 };

// Cached; first call performs detection.
IsaLevel active_isa();

const char* isa_name(IsaLevel level);
inline const char* active_isa_name() { return isa_name(active_isa()); }

}  // namespace eslam::simd
