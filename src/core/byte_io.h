// Little-endian byte stream primitives for the map snapshot format.
//
// ByteWriter appends fixed-width fields to a growable byte vector;
// ByteReader consumes them with sticky bounds checking — the first
// out-of-range read marks the stream failed, every later read returns a
// zero value, and the caller checks ok() once at the end of a section
// instead of after every field.  This is what makes the snapshot parser
// safe on truncated or hostile input: no read ever touches memory past
// the buffer, so malformed files fail cleanly instead of invoking UB
// (the property the ASan/UBSan robustness tests pin down).
//
// Encoding is explicitly little-endian byte-by-byte (not memcpy of host
// integers), so snapshot files are byte-identical across hosts; doubles
// round-trip bit-exactly through their IEEE-754 representation.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace eslam {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return bytes_[pos_ - 1];
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ - 4 + i]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ - 8 + i]) << (8 * i);
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  // Marks the stream failed with a reason (kept from the first failure).
  void fail(const std::string& why) {
    if (ok_) error_ = why;
    ok_ = false;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::size_t remaining() const { return ok_ ? bytes_.size() - pos_ : 0; }
  bool at_end() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool take(std::size_t n) {
    if (!ok_) return false;
    if (bytes_.size() - pos_ < n) {
      fail("truncated stream");
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// FNV-1a 64-bit over a byte span — the snapshot header's payload checksum.
// Not cryptographic; it catches the truncation/bit-rot/partial-write class
// of corruption a map file accumulates in practice.
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace eslam
