#include "core/simd_dispatch.h"

#include <cstdlib>
#include <cstring>

namespace eslam::simd {

namespace {

IsaLevel detect() {
#if !defined(ESLAM_FORCE_SCALAR)
  const char* env = std::getenv("ESLAM_FORCE_SCALAR");
  const bool forced =
      env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  if (!forced) {
#if defined(__aarch64__)
    return IsaLevel::kNeon;
#elif defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
  }
#endif
  return IsaLevel::kScalar;
}

}  // namespace

IsaLevel active_isa() {
  static const IsaLevel level = detect();
  return level;
}

const char* isa_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kNeon: return "neon";
    case IsaLevel::kAvx2: return "avx2";
  }
  return "?";
}

}  // namespace eslam::simd
