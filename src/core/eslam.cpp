#include "core/eslam.h"

#include "geometry/assert.h"

namespace eslam {

namespace {

// Maps the facade config onto the shared per-session backend factory (the
// same one server/SlamService uses to build each session's backend).
std::unique_ptr<FeatureBackend> make_backend(const SystemConfig& config) {
  BackendConfig backend;
  backend.platform = config.platform;
  backend.descriptor = config.descriptor;
  backend.orb = config.orb;
  backend.hw_extractor = config.hw_extractor;
  backend.hw_matcher = config.hw_matcher;
  backend.matcher = config.tracker.matcher;
  return make_feature_backend(backend);
}

}  // namespace

System::System(const PinholeCamera& camera, const SystemConfig& config)
    : config_(config),
      tracker_(std::make_unique<Tracker>(camera, make_backend(config),
                                         config.tracker)) {
  if (config_.execution == ExecutionMode::kPipelined)
    executor_ = std::make_unique<PipelineExecutor>(*tracker_,
                                                   config_.pipeline);
}

System::~System() = default;

TrackResult System::process(const FrameInput& frame) {
  ESLAM_ASSERT(executor_ == nullptr,
               "process() is sequential-only; pipelined systems use "
               "feed()/poll()/drain()");
  return tracker_->process(frame);
}

void System::feed(FrameInput frame) {
  if (executor_) {
    executor_->feed(std::move(frame));
    return;
  }
  pending_.push_back(tracker_->process(frame));
}

std::optional<TrackResult> System::poll() {
  if (executor_) return executor_->poll();
  if (pending_.empty()) return std::nullopt;
  TrackResult r = std::move(pending_.front());
  pending_.pop_front();
  return r;
}

std::vector<TrackResult> System::drain() {
  if (executor_) return executor_->drain();
  std::vector<TrackResult> out(pending_.begin(), pending_.end());
  pending_.clear();
  return out;
}

std::vector<SE3> System::poses() const {
  std::vector<SE3> out;
  out.reserve(tracker_->trajectory().size());
  for (const TrackResult& r : tracker_->trajectory()) out.push_back(r.pose_wc);
  return out;
}

SystemStats System::stats() const {
  SystemStats s;
  const auto& results = tracker_->trajectory();
  s.frames = static_cast<int>(results.size());
  if (results.empty()) return s;

  auto accumulate = [](StageDurations& acc, const StageTimesMs& t) {
    acc.feature_extraction += t.feature_extraction;
    acc.feature_matching += t.feature_matching;
    acc.pose_estimation += t.pose_estimation;
    acc.pose_optimization += t.pose_optimization;
    acc.map_updating += t.map_updating;
  };
  auto divide = [](StageDurations& acc, int n) {
    if (n == 0) return;
    acc.feature_extraction /= n;
    acc.feature_matching /= n;
    acc.pose_estimation /= n;
    acc.pose_optimization /= n;
    acc.map_updating /= n;
  };

  int normal = 0;
  for (const TrackResult& r : results) {
    accumulate(s.mean_times, r.times);
    if (r.keyframe) {
      accumulate(s.mean_times_key, r.times);
      ++s.key_frames;
    } else {
      accumulate(s.mean_times_normal, r.times);
      ++normal;
    }
    if (r.lost) ++s.lost_frames;
    s.mean_features += r.n_features;
    s.mean_matches += r.n_matches;
    s.mean_inliers += r.n_inliers;
  }
  divide(s.mean_times, s.frames);
  divide(s.mean_times_normal, normal);
  divide(s.mean_times_key, s.key_frames);
  s.mean_features /= s.frames;
  s.mean_matches /= s.frames;
  s.mean_inliers /= s.frames;
  return s;
}

}  // namespace eslam
