// eslam::System — the library's public entry point.
//
// Wraps the full heterogeneous pipeline of the paper behind one facade:
//
//   eslam::SystemConfig cfg;
//   cfg.platform = eslam::Platform::kAccelerated;   // FPGA simulation
//   eslam::System slam(eslam::PinholeCamera::tum_freiburg1(), cfg);
//   for (auto& frame : frames) eslam::TrackResult r = slam.process(frame);
//   auto ate = eslam::absolute_trajectory_error(slam.poses(), ground_truth);
//
// Platform::kSoftware runs the pure-CPU ORB pipeline (the paper's ARM/i7
// baseline); Platform::kAccelerated runs the cycle-simulated eSLAM fabric
// for feature extraction/matching with the same ARM-side tracker.
#pragma once

#include <memory>
#include <vector>

#include "accel/eslam_accel.h"
#include "accel/timing_model.h"
#include "slam/tracker.h"

namespace eslam {

enum class Platform {
  kSoftware,     // all five stages in software (baseline)
  kAccelerated,  // FE + FM on the simulated FPGA fabric (eSLAM)
};

struct SystemConfig {
  Platform platform = Platform::kAccelerated;
  // Descriptor for the software platform (the accelerator is RS-BRIEF by
  // construction — that is the paper's point).
  DescriptorMode descriptor = DescriptorMode::kRsBrief;
  OrbConfig orb;                  // software extractor settings
  HwExtractorConfig hw_extractor; // accelerated extractor settings
  HwMatcherConfig hw_matcher;
  TrackerOptions tracker;
};

struct SystemStats {
  StageDurations mean_times;       // average per-stage ms over all frames
  StageDurations mean_times_normal; // over normal frames only
  StageDurations mean_times_key;    // over key frames only
  int frames = 0;
  int key_frames = 0;
  int lost_frames = 0;
  double mean_features = 0;
  double mean_matches = 0;
  double mean_inliers = 0;
};

class System {
 public:
  System(const PinholeCamera& camera, const SystemConfig& config = {});

  // Processes one RGB-D frame and returns the tracking result.
  TrackResult process(const FrameInput& frame);

  // Estimated camera-in-world poses so far (one per processed frame).
  std::vector<SE3> poses() const;

  const std::vector<TrackResult>& results() const {
    return tracker_->trajectory();
  }
  const Map& map() const { return tracker_->map(); }
  const SystemConfig& config() const { return config_; }

  // Aggregated per-stage timing statistics.
  SystemStats stats() const;

  // The underlying backend (e.g. to query accelerator cycle reports).
  FeatureBackend& backend() { return tracker_->backend(); }

 private:
  SystemConfig config_;
  std::unique_ptr<Tracker> tracker_;
};

}  // namespace eslam
