// eslam::System — the library's public entry point.
//
// Wraps the full heterogeneous pipeline of the paper behind one facade:
//
//   eslam::SystemConfig cfg;
//   cfg.platform = eslam::Platform::kAccelerated;   // FPGA simulation
//   eslam::System slam(eslam::PinholeCamera::tum_freiburg1(), cfg);
//   for (auto& frame : frames) eslam::TrackResult r = slam.process(frame);
//   auto ate = eslam::absolute_trajectory_error(slam.poses(), ground_truth);
//
// Platform::kSoftware runs the pure-CPU ORB pipeline (the paper's ARM/i7
// baseline); Platform::kAccelerated runs the cycle-simulated eSLAM fabric
// for feature extraction/matching with the same ARM-side tracker.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "accel/backend_factory.h"
#include "accel/eslam_accel.h"
#include "accel/timing_model.h"
#include "runtime/pipeline_executor.h"
#include "slam/tracker.h"

namespace eslam {

// Platform (software vs simulated-FPGA backend) is defined in
// accel/backend_factory.h, shared with the multi-session server layer.

enum class ExecutionMode {
  // process()/feed() run all five stages inline, one frame start-to-finish
  // at a time.  The reference schedule: every other mode must reproduce
  // its results bit-for-bit (with the local-mapping backend disabled —
  // when TrackerOptions::backend.enabled is set, sequential mode runs BA
  // jobs inline at keyframes, deterministically, while pipelined mode
  // runs them on the scheduler's background lane, so delta timing may
  // legitimately differ between the modes).
  kSequential,
  // feed() streams frames through the Figure-7 runtime.  Since the server
  // layer (server/SlamService) was introduced, this is literally a
  // single-session instance of the service's scheduler: System's
  // PipelineExecutor wraps a TrackerScheduler with one registered tracker
  // and a one-worker ARM pool, the same engine SlamService runs with N
  // sessions and a wider pool.  A System is therefore "a SlamService of
  // one" — code that outgrows one camera migrates to SlamService without
  // changing its per-frame feed()/poll()/drain() calling pattern.
  kPipelined,
};

struct SystemConfig {
  Platform platform = Platform::kAccelerated;
  // Descriptor for the software platform (the accelerator is RS-BRIEF by
  // construction — that is the paper's point).
  DescriptorMode descriptor = DescriptorMode::kRsBrief;
  OrbConfig orb;                  // software extractor settings
  HwExtractorConfig hw_extractor; // accelerated extractor settings
  HwMatcherConfig hw_matcher;
  TrackerOptions tracker;
  // Execution of the five stages: sequential (one frame start-to-finish at
  // a time) or the concurrent frame-level pipeline of Figure 7.  Both
  // modes produce bit-identical poses for the same input order.
  ExecutionMode execution = ExecutionMode::kSequential;
  PipelineOptions pipeline;       // used when execution == kPipelined
};

struct SystemStats {
  StageDurations mean_times;       // average per-stage ms over all frames
  StageDurations mean_times_normal; // over normal frames only
  StageDurations mean_times_key;    // over key frames only
  int frames = 0;
  int key_frames = 0;
  int lost_frames = 0;
  double mean_features = 0;
  double mean_matches = 0;
  double mean_inliers = 0;
};

class System {
 public:
  System(const PinholeCamera& camera, const SystemConfig& config = {});
  ~System();

  // Processes one RGB-D frame synchronously and returns the tracking
  // result.  Only valid in ExecutionMode::kSequential — streaming systems
  // must use feed()/poll()/drain() exclusively.
  TrackResult process(const FrameInput& frame);

  // --- streaming API ------------------------------------------------------
  // feed() accepts a frame for processing (blocking on back-pressure in
  // pipelined mode); poll() returns the next completed result in feed
  // order, if any; drain() blocks until every fed frame has completed and
  // returns the not-yet-polled results.  In sequential mode feed()
  // processes inline, so the same calling code runs in both modes.
  void feed(FrameInput frame);
  std::optional<TrackResult> poll();
  std::vector<TrackResult> drain();

  // The pipeline runtime, for stats / stage events (nullptr when
  // execution == kSequential).
  const PipelineExecutor* pipeline() const { return executor_.get(); }

  // Estimated camera-in-world poses so far (one per processed frame).
  // In pipelined mode, only valid when quiescent (after drain()).
  std::vector<SE3> poses() const;

  const std::vector<TrackResult>& results() const {
    return tracker_->trajectory();
  }
  const Map& map() const { return tracker_->map(); }
  const SystemConfig& config() const { return config_; }

  // Aggregated per-stage timing statistics (quiescent-only, like poses()).
  SystemStats stats() const;

  // The underlying backend (e.g. to query accelerator cycle reports).
  FeatureBackend& backend() { return tracker_->backend(); }

 private:
  SystemConfig config_;
  std::unique_ptr<Tracker> tracker_;
  std::unique_ptr<PipelineExecutor> executor_;  // pipelined mode only
  std::deque<TrackResult> pending_;  // sequential-mode poll() buffer
};

}  // namespace eslam
