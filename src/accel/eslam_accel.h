// The accelerated feature backend: plugs the cycle-simulated ORB Extractor
// and BRIEF Matcher into the tracker, so the same SLAM frontend runs in
// "eSLAM mode".  Reported stage times are simulated FPGA milliseconds
// (cycles / 100 MHz), not wall clock.
//
// Concurrency: extract() and match() must be driven from one thread (the
// pipeline runtime's FPGA lane), but last_*_time_ms() may be read from any
// thread — the simulated durations are published into atomic caches when
// each operation completes, so readers never touch the cycle reports of an
// operation still in flight.  The full extractor()/matcher() reports are
// only safe to inspect while the backend is idle.
#pragma once

#include <atomic>

#include "accel/matcher_hw.h"
#include "accel/orb_extractor_hw.h"
#include "slam/tracker.h"

namespace eslam {

class AcceleratedBackend final : public FeatureBackend {
 public:
  explicit AcceleratedBackend(const HwExtractorConfig& extractor = {},
                              const HwMatcherConfig& matcher = {},
                              const MatcherOptions& accept = {});

  FeatureList extract(const ImageU8& image) override;
  std::vector<Match> match(std::span<const Descriptor256> queries,
                           std::span<const Descriptor256> train) override;
  // Gated tier: the fabric's candidate mode (BriefMatcherHw gated cycle
  // model), with the same host-side acceptance gates as match().
  std::vector<Match> match_candidates(std::span<const Descriptor256> queries,
                                      std::span<const Descriptor256> train,
                                      const CandidateSet& candidates) override;

  double last_extract_time_ms() const override { return extract_ms_.load(); }
  double last_match_time_ms() const override { return match_ms_.load(); }
  const char* name() const override { return "eslam-accel"; }

  const OrbExtractorHw& extractor() const { return extractor_; }
  const BriefMatcherHw& matcher() const { return matcher_; }

 private:
  OrbExtractorHw extractor_;
  BriefMatcherHw matcher_;
  MatcherOptions accept_;
  std::atomic<double> extract_ms_{0.0};
  std::atomic<double> match_ms_{0.0};
};

}  // namespace eslam
