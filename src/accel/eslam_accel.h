// The accelerated feature backend: plugs the cycle-simulated ORB Extractor
// and BRIEF Matcher into the tracker, so the same SLAM frontend runs in
// "eSLAM mode".  Reported stage times are simulated FPGA milliseconds
// (cycles / 100 MHz), not wall clock.
#pragma once

#include "accel/matcher_hw.h"
#include "accel/orb_extractor_hw.h"
#include "slam/tracker.h"

namespace eslam {

class AcceleratedBackend final : public FeatureBackend {
 public:
  explicit AcceleratedBackend(const HwExtractorConfig& extractor = {},
                              const HwMatcherConfig& matcher = {},
                              const MatcherOptions& accept = {});

  FeatureList extract(const ImageU8& image) override;
  std::vector<Match> match(std::span<const Descriptor256> queries,
                           std::span<const Descriptor256> train) override;

  double last_extract_time_ms() const override {
    return extractor_.report().ms();
  }
  double last_match_time_ms() const override { return matcher_.report().ms(); }
  const char* name() const override { return "eslam-accel"; }

  const OrbExtractorHw& extractor() const { return extractor_; }
  const BriefMatcherHw& matcher() const { return matcher_; }

 private:
  OrbExtractorHw extractor_;
  BriefMatcherHw matcher_;
  MatcherOptions accept_;
};

}  // namespace eslam
