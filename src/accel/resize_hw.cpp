#include "accel/resize_hw.h"

namespace eslam {

ImageU8 ImageResizerHw::resize(const ImageU8& src, int dst_width,
                               int dst_height) {
  ImageU8 out = resize_nearest(src, dst_width, dst_height);
  report_.cycles = out.pixel_count();
  report_.out_width = dst_width;
  report_.out_height = dst_height;
  return out;
}

}  // namespace eslam
