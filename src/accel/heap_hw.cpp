#include "accel/heap_hw.h"

#include "geometry/assert.h"

namespace eslam {

FilterHeap::FilterHeap(std::size_t capacity) : capacity_(capacity) {
  ESLAM_ASSERT(capacity > 0, "heap capacity must be positive");
  items_.reserve(capacity);
}

bool FilterHeap::weaker(const Feature& a, const Feature& b) const {
  // Tie-break on detection order is irrelevant for the heap invariant;
  // plain score comparison matches the hardware comparator.
  return a.keypoint.score < b.keypoint.score;
}

void FilterHeap::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    ++cycles_;  // one compare-exchange per level
    if (!weaker(items_[i], items_[parent])) break;
    std::swap(items_[i], items_[parent]);
    i = parent;
  }
}

void FilterHeap::sift_down(std::size_t i) {
  const std::size_t n = items_.size();
  while (true) {
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    std::size_t smallest = i;
    ++cycles_;  // level comparison
    if (l < n && weaker(items_[l], items_[smallest])) smallest = l;
    if (r < n && weaker(items_[r], items_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(items_[i], items_[smallest]);
    i = smallest;
  }
}

bool FilterHeap::offer(const Feature& feature) {
  ++cycles_;  // root/occupancy check
  if (items_.size() < capacity_) {
    items_.push_back(feature);
    sift_up(items_.size() - 1);
    return true;
  }
  if (!weaker(items_.front(), feature)) return false;  // weaker than the min
  items_.front() = feature;
  sift_down(0);
  return true;
}

std::int64_t FilterHeap::min_score() const {
  ESLAM_ASSERT(!items_.empty(), "heap is empty");
  return items_.front().keypoint.score;
}

FeatureList FilterHeap::drain() {
  FeatureList out = std::move(items_);
  items_.clear();
  items_.reserve(capacity_);
  return out;
}

}  // namespace eslam
