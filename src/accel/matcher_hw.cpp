#include "accel/matcher_hw.h"

#include "geometry/assert.h"

namespace eslam {

BriefMatcherHw::BriefMatcherHw(const HwMatcherConfig& config)
    : config_(config) {
  ESLAM_ASSERT(config.parallelism > 0, "parallelism must be positive");
}

std::vector<Match> BriefMatcherHw::match(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> map_descriptors) {
  report_ = {};
  report_.queries = static_cast<int>(queries.size());
  report_.map_points = static_cast<int>(map_descriptors.size());

  std::vector<Match> out;
  out.reserve(queries.size());
  if (map_descriptors.empty()) return out;

  // Functional result: exact running-minimum scan per query; ties resolve
  // to the lowest map index, the order the hardware scans the cache.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Match m = match_one(queries[i], map_descriptors);
    m.query = static_cast<int>(i);
    out.push_back(m);
  }

  // Timing: each query takes ceil(m / P) cycles of distance computing.
  const std::uint64_t m = map_descriptors.size();
  const std::uint64_t p = static_cast<std::uint64_t>(config_.parallelism);
  const std::uint64_t batches_per_query = (m + p - 1) / p;
  report_.compute_cycles =
      static_cast<std::uint64_t>(queries.size()) * batches_per_query +
      static_cast<std::uint64_t>(config_.pipeline_depth);

  AxiBusModel axi(config_.axi);
  report_.load_cycles = axi.read_cycles(m * 32u);  // 256-bit descriptors
  report_.writeback_cycles =
      axi.write_cycles(static_cast<std::uint64_t>(queries.size()) * 8u);

  // Descriptor load is double-buffered behind compute; writeback follows.
  report_.total_cycles =
      std::max(report_.compute_cycles, report_.load_cycles) +
      report_.writeback_cycles;
  return out;
}

std::vector<Match> BriefMatcherHw::match_candidates(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> map_descriptors,
    const CandidateSet& candidates) {
  ESLAM_ASSERT(candidates.num_queries() == queries.size(),
               "candidate set does not cover the query set");
  report_ = {};
  report_.gated = true;
  report_.queries = static_cast<int>(queries.size());
  report_.map_points = static_cast<int>(map_descriptors.size());
  report_.candidates = candidates.total_candidates();

  std::vector<Match> out;
  out.reserve(queries.size());
  if (map_descriptors.empty()) return out;

  // Functional result: running minimum over each candidate list; the list
  // arrives in ascending map order, so ties resolve exactly as the full
  // scan's lowest-index rule.
  const std::uint64_t p = static_cast<std::uint64_t>(config_.parallelism);
  std::uint64_t compute = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::span<const std::int32_t> list = candidates.candidates(i);
    Match m = match_one_candidates(queries[i], map_descriptors, list);
    m.query = static_cast<int>(i);
    out.push_back(m);
    // Each query occupies the comparator at least one cycle (issue/drain),
    // then ceil(|candidates| / P) distance batches.
    compute += std::max<std::uint64_t>(1, (list.size() + p - 1) / p);
  }
  report_.compute_cycles =
      compute + static_cast<std::uint64_t>(config_.pipeline_depth);

  // SDRAM traffic: the gather streams each referenced descriptor once per
  // candidate entry (32 bytes) plus the candidate index lists themselves
  // (4 bytes each) — no cross-query dedup, matching a streaming gather.
  AxiBusModel axi(config_.axi);
  report_.load_cycles =
      axi.read_cycles(report_.candidates * 32u) +
      axi.read_cycles(report_.candidates * 4u);
  report_.writeback_cycles =
      axi.write_cycles(static_cast<std::uint64_t>(queries.size()) * 8u);
  report_.total_cycles =
      std::max(report_.compute_cycles, report_.load_cycles) +
      report_.writeback_cycles;
  return out;
}

}  // namespace eslam
