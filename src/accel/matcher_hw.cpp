#include "accel/matcher_hw.h"

#include "geometry/assert.h"

namespace eslam {

BriefMatcherHw::BriefMatcherHw(const HwMatcherConfig& config)
    : config_(config) {
  ESLAM_ASSERT(config.parallelism > 0, "parallelism must be positive");
}

std::vector<Match> BriefMatcherHw::match(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> map_descriptors) {
  report_ = {};
  report_.queries = static_cast<int>(queries.size());
  report_.map_points = static_cast<int>(map_descriptors.size());

  std::vector<Match> out;
  out.reserve(queries.size());
  if (map_descriptors.empty()) return out;

  // Functional result: exact running-minimum scan per query; ties resolve
  // to the lowest map index, the order the hardware scans the cache.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Match m = match_one(queries[i], map_descriptors);
    m.query = static_cast<int>(i);
    out.push_back(m);
  }

  // Timing: each query takes ceil(m / P) cycles of distance computing.
  const std::uint64_t m = map_descriptors.size();
  const std::uint64_t p = static_cast<std::uint64_t>(config_.parallelism);
  const std::uint64_t batches_per_query = (m + p - 1) / p;
  report_.compute_cycles =
      static_cast<std::uint64_t>(queries.size()) * batches_per_query +
      static_cast<std::uint64_t>(config_.pipeline_depth);

  AxiBusModel axi(config_.axi);
  report_.load_cycles = axi.read_cycles(m * 32u);  // 256-bit descriptors
  report_.writeback_cycles =
      axi.write_cycles(static_cast<std::uint64_t>(queries.size()) * 8u);

  // Descriptor load is double-buffered behind compute; writeback follows.
  report_.total_cycles =
      std::max(report_.compute_cycles, report_.load_cycles) +
      report_.writeback_cycles;
  return out;
}

}  // namespace eslam
