// The Heap module (paper section 3.1): stores descriptors, coordinates and
// Harris scores of streaming features and keeps only the 1024 with the
// best scores.  Implemented exactly as the hardware would: a fixed-storage
// binary min-heap over scores — when full, a new feature replaces the root
// (the weakest kept feature) iff it scores higher, then sifts down.
//
// Cycle cost: 1 cycle to compare against the root + 1 compare-exchange per
// level traversed (log2(1024) = 10 levels worst case).
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.h"

namespace eslam {

class FilterHeap {
 public:
  explicit FilterHeap(std::size_t capacity = 1024);

  // Offers a feature; returns true when it was kept (possibly evicting a
  // weaker one).  Accumulates the cycle cost of the operation.
  bool offer(const Feature& feature);

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Weakest currently-kept score (heap root); only valid when non-empty.
  std::int64_t min_score() const;

  // Drains the heap contents (unspecified order, as the hardware streams
  // them to SDRAM).  The heap is empty afterwards.
  FeatureList drain();

  std::uint64_t cycles() const { return cycles_; }
  void reset_cycles() { cycles_ = 0; }

  // Storage footprint in bits: capacity x (256b descriptor + 2 x 16b
  // coords + 32b score + 8b level/orientation).
  std::size_t storage_bits() const {
    return capacity_ * (256 + 32 + 32 + 8);
  }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  bool weaker(const Feature& a, const Feature& b) const;

  std::size_t capacity_;
  FeatureList items_;  // binary min-heap by score
  std::uint64_t cycles_ = 0;
};

}  // namespace eslam
