// Hardware Orientation Computing module (paper section 3.1).
//
// Instead of an atan2, the module derives the 5-bit orientation label from
// the signs of the centroid moments (u = m10, v = m01) and a comparison
// ladder of |v| against tan(boundary) * |u| for the 8 sector boundaries
// inside one quadrant — a pure integer LUT-compare datapath.  Boundaries
// sit at (k + 0.5) * 11.25 degrees; thresholds are Q16.16 constants.
#pragma once

#include <cstdint>

namespace eslam {

// Orientation label in [0, 32) from integer moments.  Bit-faithful model of
// the LUT ladder; agrees with discretize_orientation(atan2(v, u)) except
// when the angle falls within the Q16 rounding of a bin boundary
// (property-tested in tests/accel/orientation_hw_test.cpp).
int orientation_label_hw(std::int64_t u, std::int64_t v);

// Number of compare stages the ladder evaluates (constant 8 plus quadrant
// fold) — documented for the resource model.
inline constexpr int kOrientationLadderStages = 8;

}  // namespace eslam
