#include "accel/timing_model.h"

#include <algorithm>

namespace eslam {

StageDurations arm_from_host(const StageDurations& host,
                             const PlatformScaling& scaling) {
  StageDurations arm;
  arm.feature_extraction = host.feature_extraction * scaling.fe;
  arm.feature_matching = host.feature_matching * scaling.fm;
  arm.pose_estimation = host.pose_estimation * scaling.pe;
  arm.pose_optimization = host.pose_optimization * scaling.po;
  arm.map_updating = host.map_updating * scaling.mu;
  return arm;
}

StageDurations paper_eslam_times() {
  StageDurations d;
  d.feature_extraction = 9.1;
  d.feature_matching = 4.0;
  d.pose_estimation = 9.2;   // runs on the ARM host
  d.pose_optimization = 8.7;
  d.map_updating = 9.9;
  return d;
}

StageDurations paper_arm_times() {
  StageDurations d;
  d.feature_extraction = 291.6;
  d.feature_matching = 246.2;
  d.pose_estimation = 9.2;
  d.pose_optimization = 8.7;
  d.map_updating = 9.9;
  return d;
}

StageDurations paper_i7_times() {
  StageDurations d;
  d.feature_extraction = 32.5;
  d.feature_matching = 19.7;
  d.pose_estimation = 0.9;
  d.pose_optimization = 0.5;
  d.map_updating = 1.2;
  return d;
}

double eslam_normal_frame_ms(const StageDurations& d) {
  return std::max(d.feature_extraction + d.feature_matching,
                  d.pose_estimation + d.pose_optimization);
}

double eslam_key_frame_ms(const StageDurations& d) {
  return std::max(d.feature_extraction,
                  d.pose_estimation + d.pose_optimization) +
         d.feature_matching + d.map_updating;
}

double software_normal_frame_ms(const StageDurations& d) {
  return d.feature_extraction + d.feature_matching + d.pose_estimation +
         d.pose_optimization;
}

double software_key_frame_ms(const StageDurations& d) {
  return software_normal_frame_ms(d) + d.map_updating;
}

std::vector<TimelineSegment> pipeline_timeline(const StageDurations& d,
                                               bool key_frame) {
  std::vector<TimelineSegment> t;
  // Frame N work on the ARM (its FE/FM already happened last period).
  double arm = 0.0;
  t.push_back({"ARM", "PE", 0, arm, arm + d.pose_estimation});
  arm += d.pose_estimation;
  t.push_back({"ARM", "PO", 0, arm, arm + d.pose_optimization});
  arm += d.pose_optimization;

  if (!key_frame) {
    // FPGA works on frame N+1 concurrently from time 0.
    double fpga = 0.0;
    t.push_back({"FPGA", "FE", 1, fpga, fpga + d.feature_extraction});
    fpga += d.feature_extraction;
    t.push_back({"FPGA", "FM", 1, fpga, fpga + d.feature_matching});
  } else {
    // Key frame: MU follows PO on the ARM; FE overlaps, FM waits for MU.
    t.push_back({"ARM", "MU", 0, arm, arm + d.map_updating});
    const double mu_end = arm + d.map_updating;
    t.push_back({"FPGA", "FE", 1, 0.0, d.feature_extraction});
    const double fm_start = std::max(mu_end, d.feature_extraction);
    t.push_back({"FPGA", "FM", 1, fm_start, fm_start + d.feature_matching});
  }
  return t;
}

}  // namespace eslam
