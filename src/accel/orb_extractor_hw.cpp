#include "accel/orb_extractor_hw.h"

#include <algorithm>

#include "accel/heap_hw.h"
#include "accel/orientation_hw.h"
#include "features/brief.h"
#include "features/fast.h"
#include "features/harris.h"
#include "features/nms.h"
#include "features/orientation.h"
#include "hw/linebuffer.h"
#include "image/convolve.h"

namespace eslam {

namespace {

// Arrival cycle of pixel (x, y) in the column-streaming order of the
// Image Cache (columns are filled left to right, each column top-down).
std::uint64_t arrival_cycle(int x, int y, int height) {
  return static_cast<std::uint64_t>(x) * height + y;
}

}  // namespace

OrbExtractorHw::OrbExtractorHw(const HwExtractorConfig& config)
    : config_(config), pattern_(kDefaultPatternSeed) {
  ESLAM_ASSERT(config.n_features > 0, "n_features must be positive");
  ESLAM_ASSERT(config.border >= kPatternRadius + 1,
               "border must cover the descriptor patch");
}

FeatureList OrbExtractorHw::extract(const ImageU8& image) {
  report_ = {};
  AxiBusModel axi(config_.axi);
  FilterHeap heap(static_cast<std::size_t>(config_.n_features));

  const ImagePyramid pyramid(image, config_.levels, config_.scale,
                             /*use_bilinear=*/false);

  // On-chip buffers: Image Cache + Score Cache + Smoothened Image Cache,
  // all 3-line ping-pong structures (sized for the largest level), plus
  // the heap.
  const LineBufferCache sizing_cache(image.height());
  report_.onchip_bits =
      3 * sizing_cache.storage_bits() + heap.storage_bits();

  struct PendingDescribe {
    Keypoint keypoint;
    std::uint64_t arrival = 0;
    int level = 0;
  };
  std::vector<PendingDescribe> deferred;  // original workflow only

  for (int li = 0; li < pyramid.levels(); ++li) {
    const ImageU8& img = pyramid.level(li).image;
    const double level_scale = pyramid.level(li).scale;
    LevelCycleReport lvl;
    lvl.level = li;
    lvl.width = img.width();
    lvl.height = img.height();
    lvl.fill_cycles =
        static_cast<std::uint64_t>(2 * LineBufferCache::kColumnsPerLine) *
        img.height();
    // BRIEF Computing at column x consumes smoothed pixels up to column
    // x + 15; smoothing itself lags the raw stream by 3 columns.
    lvl.skew_cycles =
        static_cast<std::uint64_t>(kPatternRadius + 3) * img.height();
    lvl.stream_cycles =
        static_cast<std::uint64_t>(img.width()) * img.height();
    lvl.drain_cycles = static_cast<std::uint64_t>(config_.pipeline_drain_cycles);
    report_.original_workflow_cache_bits += img.pixel_count() * 8;

    // Input image streamed from SDRAM (overlapped with compute).
    axi.read_cycles(img.pixel_count());

    if (img.width() <= 2 * config_.border ||
        img.height() <= 2 * config_.border) {
      report_.levels.push_back(lvl);
      continue;
    }

    // ---- functional datapath ---------------------------------------------
    std::vector<Keypoint> kps =
        detect_fast(img, config_.fast_threshold, config_.border);
    for (Keypoint& kp : kps) {
      kp.level = li;
      kp.scale = level_scale;
      kp.score = harris_score_int(img, kp.x, kp.y);
    }
    kps = nms_3x3(kps, img.width(), img.height());
    lvl.detected = static_cast<int>(kps.size());
    report_.detected += lvl.detected;

    // Hardware streams column-major; order keypoints by arrival cycle.
    std::sort(kps.begin(), kps.end(), [&](const Keypoint& a, const Keypoint& b) {
      return arrival_cycle(a.x, a.y, img.height()) <
             arrival_cycle(b.x, b.y, img.height());
    });

    const ImageU8 smoothed = smooth_gaussian7_u8(img);

    if (config_.workflow == HwWorkflow::kRescheduled) {
      // Describe-all-then-filter, fully streaming.  Micro-simulate the
      // BRIEF Computing and Heap units with FIFO back-pressure.
      std::uint64_t desc_free = 0, heap_free = 0, stall = 0;
      std::vector<std::uint64_t> issue_history;  // descriptor issue times
      issue_history.reserve(kps.size());

      for (const Keypoint& kp_in : kps) {
        Keypoint kp = kp_in;
        std::uint64_t arrival =
            lvl.fill_cycles + arrival_cycle(kp.x, kp.y, img.height()) + stall;

        // Stream stalls when the keypoint FIFO is full: the k-th keypoint
        // cannot enter until the (k - depth)-th issued.
        const std::size_t k = issue_history.size();
        if (k >= static_cast<std::size_t>(config_.keypoint_fifo_depth)) {
          const std::uint64_t gate =
              issue_history[k - static_cast<std::size_t>(
                                    config_.keypoint_fifo_depth)];
          if (gate > arrival) {
            stall += gate - arrival;
            arrival = gate;
          }
        }

        const std::uint64_t desc_start = std::max(arrival, desc_free);
        desc_free = desc_start +
                    static_cast<std::uint64_t>(config_.describe_issue_cycles);
        issue_history.push_back(desc_free);

        // Orientation + descriptor (functional).
        std::int64_t m10, m01;
        patch_moments(smoothed, kp.x, kp.y, m10, m01);
        kp.orientation_label = orientation_label_hw(m10, m01);

        Feature f;
        f.descriptor = compute_descriptor(smoothed, kp.x, kp.y, pattern_.base())
                           .rotated_bytes(kp.orientation_label);
        f.keypoint = kp;
        ++report_.described;

        // Heap insertion (the Filtering stage, overlapped with the stream).
        const std::uint64_t before = heap.cycles();
        heap.offer(f);
        const std::uint64_t cost = heap.cycles() - before;
        heap_free = std::max(heap_free, desc_free) + cost;
      }
      lvl.stall_cycles = stall;
      // If the heap is still draining after the last pixel, extend the
      // level (usually zero: heap rate ~11 cycles vs pixel stream).
      const std::uint64_t level_end =
          lvl.fill_cycles + lvl.stream_cycles + lvl.stall_cycles;
      if (heap_free > level_end) lvl.stall_cycles += heap_free - level_end;
    } else {
      // Original workflow: only detection + filtering stream; descriptors
      // wait until filtering completes (after the last level below).
      for (const Keypoint& kp : kps) {
        Feature f;  // descriptor filled later for survivors
        f.keypoint = kp;
        heap.offer(f);
        deferred.push_back(PendingDescribe{
            kp, lvl.fill_cycles + arrival_cycle(kp.x, kp.y, img.height()),
            li});
      }
    }

    report_.levels.push_back(lvl);
  }

  // ---- filtering result ----------------------------------------------------
  FeatureList kept = heap.drain();
  report_.heap_cycles = heap.cycles();

  if (config_.workflow == HwWorkflow::kOriginal) {
    // Compute descriptors only for the N survivors, after filtering: every
    // patch is a random SDRAM fetch (the smoothened image no longer sits
    // in the stream caches).
    // Rebuild per-level smoothed images for the functional result.
    const ImagePyramid pyramid(image, config_.levels, config_.scale, false);
    std::vector<ImageU8> smoothed_levels;
    smoothed_levels.reserve(static_cast<std::size_t>(pyramid.levels()));
    for (int li = 0; li < pyramid.levels(); ++li)
      smoothed_levels.push_back(smooth_gaussian7_u8(pyramid.level(li).image));

    for (Feature& f : kept) {
      const ImageU8& smoothed =
          smoothed_levels[static_cast<std::size_t>(f.keypoint.level)];
      std::int64_t m10, m01;
      patch_moments(smoothed, f.keypoint.x, f.keypoint.y, m10, m01);
      f.keypoint.orientation_label = orientation_label_hw(m10, m01);
      f.descriptor =
          compute_descriptor(smoothed, f.keypoint.x, f.keypoint.y,
                             pattern_.base())
              .rotated_bytes(f.keypoint.orientation_label);
      report_.describe_serial_cycles +=
          static_cast<std::uint64_t>(config_.random_patch_fetch_cycles +
                                     config_.describe_issue_cycles);
      ++report_.described;
    }
    // The smoothened image must round-trip through SDRAM in this workflow.
    for (const ImageU8& s : smoothed_levels) axi.write_cycles(s.pixel_count());
  }

  report_.kept = static_cast<int>(kept.size());

  // Results to SDRAM: descriptor (32 B) + coords/score/label (8 B) each.
  report_.writeback_cycles =
      axi.write_cycles(static_cast<std::uint64_t>(kept.size()) * 40u);

  report_.total_cycles = 0;
  for (const LevelCycleReport& lvl : report_.levels)
    report_.total_cycles += lvl.total();
  report_.total_cycles +=
      report_.describe_serial_cycles + report_.writeback_cycles;
  report_.axi_bytes_read = axi.bytes_read();
  report_.axi_bytes_written = axi.bytes_written();
  return kept;
}

}  // namespace eslam
