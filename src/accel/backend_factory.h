// Per-session feature-backend construction, shared by the System facade
// (core/) and the multi-session SlamService (server/).
//
// Backends are deliberately cheap to instantiate per session: all heavy
// inputs (the RS-BRIEF pattern tables, cycle-model configs) are small
// value types rebuilt from the config, and each instance owns its own
// mutable state — cycle reports, wall timers and the last-stage timing
// caches — so N sessions never share a mutable backend.  The only fields
// read across threads are the atomic last_*_time_ms() caches (stats
// readers poll them while a device lane drives extract()/match()), which
// is why they must stay atomics (see FeatureBackend).
#pragma once

#include <memory>

#include "accel/eslam_accel.h"
#include "features/orb.h"
#include "slam/tracker.h"

namespace eslam {

enum class Platform {
  kSoftware,     // all five stages in software (baseline)
  kAccelerated,  // FE + FM on the simulated FPGA fabric (eSLAM)
};

// Everything needed to build one session's feature backend.
struct BackendConfig {
  Platform platform = Platform::kAccelerated;
  // Descriptor for the software platform (the accelerator is RS-BRIEF by
  // construction — that is the paper's point).
  DescriptorMode descriptor = DescriptorMode::kRsBrief;
  OrbConfig orb;                   // software extractor settings
  HwExtractorConfig hw_extractor;  // accelerated extractor settings
  HwMatcherConfig hw_matcher;
  MatcherOptions matcher;          // host-side acceptance gates
};

// Builds a fresh backend instance for one session/tracker.
std::unique_ptr<FeatureBackend> make_feature_backend(
    const BackendConfig& config);

}  // namespace eslam
