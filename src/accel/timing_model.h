// Platform timing & pipeline arithmetic for Tables 2/3 and Figure 7.
//
// Stage durations come from three sources:
//   * eSLAM FPGA stages (FE, FM): cycle simulation at 100 MHz.
//   * Host-measured software stages: wall clock of this build machine,
//     treated as the paper's "Intel i7" column (an x86 desktop-class CPU).
//   * ARM Cortex-A9: host times scaled by the per-stage ARM/i7 ratios
//     derived from the paper's own Table 2 (documented in EXPERIMENTS.md;
//     we cannot run on a real A9 here).
#pragma once

#include "slam/tracker.h"

namespace eslam {

// Stage-time bundle in ms (same fields as StageTimesMs, semantic alias).
using StageDurations = StageTimesMs;

// Per-stage ARM/i7 runtime ratios from the paper's Table 2:
// FE 291.6/32.5, FM 246.2/19.7, PE 9.2/0.9, PO 8.7/0.5, MU 9.9/1.2.
struct PlatformScaling {
  double fe = 291.6 / 32.5;
  double fm = 246.2 / 19.7;
  double pe = 9.2 / 0.9;
  double po = 8.7 / 0.5;
  double mu = 9.9 / 1.2;
};

// Models ARM stage times from host-measured ("i7-class") stage times.
StageDurations arm_from_host(const StageDurations& host,
                             const PlatformScaling& scaling = {});

// The paper's reported stage durations (Table 2), for side-by-side output.
StageDurations paper_eslam_times();
StageDurations paper_arm_times();
StageDurations paper_i7_times();

// ---- Frame-level pipeline (Figure 7 / Table 3) ---------------------------

// eSLAM heterogeneous pipeline:
//   normal frame: FPGA(FE+FM of frame N+1) overlaps ARM(PE+PO of frame N)
//     -> per-frame latency = max(FE + FM, PE + PO)
//   key frame: FE overlaps PE+PO, but FM must wait for MU
//     -> per-frame latency = max(FE, PE + PO) + FM + MU
double eslam_normal_frame_ms(const StageDurations& d);
double eslam_key_frame_ms(const StageDurations& d);

// Sequential software platform: straight sum (plus MU on key frames).
double software_normal_frame_ms(const StageDurations& d);
double software_key_frame_ms(const StageDurations& d);

// ---- Figure 7 timeline ----------------------------------------------------

struct TimelineSegment {
  const char* unit;   // "FPGA" or "ARM"
  const char* stage;  // "FE", "FM", "PE", "PO", "MU"
  int frame = 0;      // frame index the work belongs to
  double start_ms = 0;
  double end_ms = 0;
};

// Generates the steady-state two-frame pipeline timeline of Figure 7 for a
// normal frame (key_frame = false) or a key frame (key_frame = true).
std::vector<TimelineSegment> pipeline_timeline(const StageDurations& d,
                                               bool key_frame);

}  // namespace eslam
