#include "accel/backend_factory.h"

namespace eslam {

std::unique_ptr<FeatureBackend> make_feature_backend(
    const BackendConfig& config) {
  if (config.platform == Platform::kSoftware) {
    OrbConfig orb = config.orb;
    orb.mode = config.descriptor;
    return std::make_unique<SoftwareBackend>(orb, config.matcher);
  }
  return std::make_unique<AcceleratedBackend>(config.hw_extractor,
                                              config.hw_matcher,
                                              config.matcher);
}

}  // namespace eslam
