// Cycle-level model of the BRIEF Matcher (paper Figure 6).
//
// The Distance Computing module holds P parallel 256-bit XOR + popcount
// units: each cycle it compares one query descriptor against P map
// descriptors.  The Comparator keeps the running minimum; results stream
// into the Result Cache and back to SDRAM.  Map descriptors arrive from
// SDRAM over AXI, double-buffered so the load overlaps compute.
//
// Two modes share the datapath:
//   * full scan (match): every query against every map descriptor — the
//     load streams the whole map once, compute is |q| * ceil(m/P) cycles;
//   * gated (match_candidates): the host's projection gate uploads
//     per-query candidate index lists, and the fabric gathers only those
//     descriptors — compute is sum_q max(1, ceil(|cand_q|/P)) cycles and
//     the SDRAM load shrinks to the candidate descriptors plus the index
//     lists themselves, so simulated FPGA time reflects the reduced
//     workload.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "features/matcher.h"
#include "hw/axi.h"
#include "hw/clock.h"

namespace eslam {

struct HwMatcherConfig {
  int parallelism = 8;        // distance units (P)
  int pipeline_depth = 6;     // XOR + popcount adder tree latency
  AxiConfig axi;
};

struct HwMatcherReport {
  std::uint64_t compute_cycles = 0;
  std::uint64_t load_cycles = 0;       // map descriptors (+ candidate lists)
  std::uint64_t writeback_cycles = 0;  // results to SDRAM
  std::uint64_t total_cycles = 0;      // max(compute, load) + writeback
  int queries = 0;
  int map_points = 0;
  bool gated = false;                  // candidate-gated mode
  std::uint64_t candidates = 0;        // total candidate pairs (gated mode)
  double ms() const { return cycles_to_ms(total_cycles); }
};

class BriefMatcherHw {
 public:
  explicit BriefMatcherHw(const HwMatcherConfig& config = {});

  // Minimum-distance match per query (no thresholding — the host applies
  // acceptance gates, as in the paper where raw results return to SDRAM).
  // Functionally identical to match_one() for every query.
  std::vector<Match> match(std::span<const Descriptor256> queries,
                           std::span<const Descriptor256> map_descriptors);

  // Gated mode: each query scans only its candidate list (ascending map
  // indices).  Functionally identical to match_one_candidates() for every
  // query; a query with an empty list reports train == -1.
  std::vector<Match> match_candidates(
      std::span<const Descriptor256> queries,
      std::span<const Descriptor256> map_descriptors,
      const CandidateSet& candidates);

  const HwMatcherReport& report() const { return report_; }
  const HwMatcherConfig& config() const { return config_; }

 private:
  HwMatcherConfig config_;
  HwMatcherReport report_;
};

}  // namespace eslam
