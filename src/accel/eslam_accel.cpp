#include "accel/eslam_accel.h"

namespace eslam {

AcceleratedBackend::AcceleratedBackend(const HwExtractorConfig& extractor,
                                       const HwMatcherConfig& matcher,
                                       const MatcherOptions& accept)
    : extractor_(extractor), matcher_(matcher), accept_(accept) {}

FeatureList AcceleratedBackend::extract(const ImageU8& image) {
  FeatureList features = extractor_.extract(image);
  extract_ms_.store(extractor_.report().ms());
  return features;
}

namespace {

// Host-side acceptance gates (distance threshold, ratio) over the fabric's
// raw minimum-distance results; they run on the ARM and are negligible
// next to PnP, so they are not separately timed.  Shared by the full-scan
// and gated tiers so the tiers only differ in how candidates are found.
std::vector<Match> apply_acceptance(std::vector<Match> raw,
                                    const MatcherOptions& accept) {
  std::vector<Match> accepted;
  accepted.reserve(raw.size());
  for (const Match& m : raw) {
    if (m.train < 0 || m.distance > accept.max_distance) continue;
    if (accept.ratio < 1.0 && !(m.distance < accept.ratio * m.second_best))
      continue;
    accepted.push_back(m);
  }
  return accepted;
}

}  // namespace

std::vector<Match> AcceleratedBackend::match(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train) {
  std::vector<Match> accepted =
      apply_acceptance(matcher_.match(queries, train), accept_);
  match_ms_.store(matcher_.report().ms());
  return accepted;
}

std::vector<Match> AcceleratedBackend::match_candidates(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train, const CandidateSet& candidates) {
  std::vector<Match> accepted = apply_acceptance(
      matcher_.match_candidates(queries, train, candidates), accept_);
  match_ms_.store(matcher_.report().ms());
  return accepted;
}

}  // namespace eslam
