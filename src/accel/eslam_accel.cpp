#include "accel/eslam_accel.h"

namespace eslam {

AcceleratedBackend::AcceleratedBackend(const HwExtractorConfig& extractor,
                                       const HwMatcherConfig& matcher,
                                       const MatcherOptions& accept)
    : extractor_(extractor), matcher_(matcher), accept_(accept) {}

FeatureList AcceleratedBackend::extract(const ImageU8& image) {
  FeatureList features = extractor_.extract(image);
  extract_ms_.store(extractor_.report().ms());
  return features;
}

std::vector<Match> AcceleratedBackend::match(
    std::span<const Descriptor256> queries,
    std::span<const Descriptor256> train) {
  // The fabric returns the raw minimum-distance result per query; the
  // host-side acceptance gates (distance threshold, ratio) run on the ARM
  // and are negligible next to PnP, so they are not separately timed.
  std::vector<Match> raw = matcher_.match(queries, train);
  std::vector<Match> accepted;
  accepted.reserve(raw.size());
  for (const Match& m : raw) {
    if (m.train < 0 || m.distance > accept_.max_distance) continue;
    if (accept_.ratio < 1.0 && !(m.distance < accept_.ratio * m.second_best))
      continue;
    accepted.push_back(m);
  }
  match_ms_.store(matcher_.report().ms());
  return accepted;
}

}  // namespace eslam
