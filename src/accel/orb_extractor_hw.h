// Cycle-level model of the eSLAM ORB Extractor (paper Figure 4).
//
// Functional behaviour is bit-faithful to the integer datapath: FAST and
// Harris reuse the integer reference implementations, smoothing is the
// binomial 7x7, orientation uses the LUT compare ladder
// (orientation_label_hw) and descriptors are RS-BRIEF computed at label 0
// and steered by the BRIEF Rotator byte shift.  The 1024-feature Harris
// heap performs the filtering.
//
// Timing follows the streaming contract of section 3.1: pixels enter at 1
// pixel/cycle from the ping-pong Image Cache; per-keypoint work (BRIEF
// Computing, heap insertion) runs in parallel units fed by small FIFOs, so
// the stream stalls only when keypoints arrive faster than the units
// drain.  Both the *rescheduled* workflow (detect -> describe -> filter,
// all streaming) and the *original* workflow (detect -> filter -> describe
// with random SDRAM patch fetches) are modelled; the difference is the
// paper's rescheduling ablation.
#pragma once

#include <vector>

#include "features/keypoint.h"
#include "features/pattern.h"
#include "hw/axi.h"
#include "hw/clock.h"
#include "image/pyramid.h"

namespace eslam {

enum class HwWorkflow {
  kRescheduled,  // paper's streaming order: describe all M, filter last
  kOriginal,     // detect + filter first, then describe the kept N
};

struct HwExtractorConfig {
  int n_features = 1024;
  int fast_threshold = 20;
  int levels = kPyramidLevels;
  double scale = kPyramidScale;
  HwWorkflow workflow = HwWorkflow::kRescheduled;
  // Keep-out border (FAST circle + Harris window + descriptor patch).
  int border = 16;

  // --- timing contract (cycles) ------------------------------------------
  int describe_issue_cycles = 8;   // 256 tests / 32 comparator lanes
  int keypoint_fifo_depth = 64;    // NMS -> BRIEF Computing FIFO
  int heap_fifo_depth = 16;        // BRIEF -> Heap FIFO
  int pipeline_drain_cycles = 48;  // window/pipeline flush at end of level
  // Original workflow: one descriptor patch = 31 column bursts from SDRAM
  // (address latency 8 + 4 beats each) = 372 cycles, plus compute issue.
  int random_patch_fetch_cycles = 372;

  AxiConfig axi;
};

struct LevelCycleReport {
  int level = 0;
  int width = 0, height = 0;
  std::uint64_t fill_cycles = 0;    // 16-column FSM pre-store
  std::uint64_t skew_cycles = 0;    // descriptor window lag: BRIEF at column
                                    // x needs smoothed column x+18
  std::uint64_t stream_cycles = 0;  // W*H at 1 pixel/cycle
  std::uint64_t stall_cycles = 0;   // back-pressure from keypoint bursts
  std::uint64_t drain_cycles = 0;
  int detected = 0;  // keypoints surviving NMS on this level
  std::uint64_t total() const {
    return fill_cycles + skew_cycles + stream_cycles + stall_cycles +
           drain_cycles;
  }
};

struct HwExtractorReport {
  std::vector<LevelCycleReport> levels;
  std::uint64_t describe_serial_cycles = 0;  // original workflow only
  std::uint64_t writeback_cycles = 0;        // results to SDRAM
  std::uint64_t heap_cycles = 0;             // informational (overlapped)
  std::uint64_t total_cycles = 0;
  int detected = 0;   // M across all levels
  int described = 0;  // descriptors computed
  int kept = 0;       // N after the heap
  // On-chip buffer bits actually used (3-line caches x3 + heap).
  std::size_t onchip_bits = 0;
  // Bits a full-frame smoothed cache would need (what the original
  // workflow must buffer to avoid SDRAM round trips).
  std::size_t original_workflow_cache_bits = 0;
  // AXI traffic (overlapped with compute; reported for utilization).
  std::uint64_t axi_bytes_read = 0;
  std::uint64_t axi_bytes_written = 0;

  double ms() const { return cycles_to_ms(total_cycles); }
};

class OrbExtractorHw {
 public:
  explicit OrbExtractorHw(const HwExtractorConfig& config = {});

  // Extracts features; the cycle report for this frame is in report().
  FeatureList extract(const ImageU8& image);

  const HwExtractorReport& report() const { return report_; }
  const HwExtractorConfig& config() const { return config_; }
  const RsBriefPattern& pattern() const { return pattern_; }

 private:
  HwExtractorConfig config_;
  RsBriefPattern pattern_;
  HwExtractorReport report_;
};

}  // namespace eslam
