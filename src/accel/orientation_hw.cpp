#include "accel/orientation_hw.h"

#include <cstdlib>

namespace eslam {

namespace {

// tan((k + 0.5) * 11.25 degrees), k = 0..7, in Q16.16.  These eight
// constants are the entire "lookup table" the module stores.
constexpr std::int64_t kTanQ16[8] = {
    6454,    // tan( 5.625 deg) = 0.098491
    19895,   // tan(16.875 deg) = 0.303570
    35048,   // tan(28.125 deg) = 0.534800
    53784,   // tan(39.375 deg) = 0.820679
    79856,   // tan(50.625 deg) = 1.218504
    122487,  // tan(61.875 deg) = 1.868994
    216043,  // tan(73.125 deg) = 3.296558
    665398,  // tan(84.375 deg) = 10.152624
};

}  // namespace

int orientation_label_hw(std::int64_t u, std::int64_t v) {
  const std::int64_t au = std::abs(u);
  const std::int64_t av = std::abs(v);

  // Compare ladder: how many sector boundaries does |v|/|u| exceed?
  int s = 0;
  for (int k = 0; k < kOrientationLadderStages; ++k) {
    // |v| * 2^16 > tan_k * |u|  (both sides fit int64: moments are < 2^22).
    if ((av << 16) > kTanQ16[k] * au) ++s;
  }

  // Quadrant fold from the moment signs.
  if (u >= 0 && v >= 0) return s;
  if (u < 0 && v >= 0) return 16 - s;
  if (u < 0) return 16 + s;
  return (32 - s) % 32;
}

}  // namespace eslam
