// Image Resizing module: nearest-neighbour downsampling, one output pixel
// per cycle, running concurrently with the ORB Extractor on the previous
// pyramid layer (paper section 3: "when the ORB Extractor is processing
// one layer, the Image Resizing module applies nearest neighbor
// downsampling on the same layer to generate the next layer").
#pragma once

#include <cstdint>

#include "hw/clock.h"
#include "image/pyramid.h"

namespace eslam {

struct HwResizeReport {
  std::uint64_t cycles = 0;  // output pixels (1 px/cycle)
  int out_width = 0;
  int out_height = 0;
  double ms() const { return cycles_to_ms(cycles); }
};

class ImageResizerHw {
 public:
  // Functionally identical to resize_nearest (same 16.16 fixed-point
  // address stepping a hardware address generator uses).
  ImageU8 resize(const ImageU8& src, int dst_width, int dst_height);

  const HwResizeReport& report() const { return report_; }

  // True when resizing the next layer hides entirely under extraction of
  // the current layer (output pixels <= current-layer pixels).
  static bool hidden_under_extraction(std::uint64_t resize_cycles,
                                      std::uint64_t extract_cycles) {
    return resize_cycles <= extract_cycles;
  }

 private:
  HwResizeReport report_;
};

}  // namespace eslam
