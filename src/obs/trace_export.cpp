#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/trace.h"

namespace eslam::obs {
namespace {

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string fmt_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string chrome_trace_json() {
  const std::vector<TraceProcessInfo> processes = trace_processes();
  const std::vector<TraceTrackInfo> tracks = trace_tracks();
  std::vector<TraceEvent> events;
  trace_snapshot(events);

  // Global time order; stable keeps each ring's internal order (which is
  // what makes same-timestamp nested begin/end pairs close correctly).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::string out = "{\n\"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  // Metadata: processes as rows, tracks as named threads beneath them.
  // Track ids are registry-global, so they double as Chrome tids (unique
  // within every pid by construction).
  for (const TraceProcessInfo& p : processes)
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
         std::to_string(p.pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
         json_escaped(p.name) + "\"}}");
  for (const TraceTrackInfo& t : tracks) {
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
         std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.id) +
         ",\"args\":{\"name\":\"" + json_escaped(t.name) + "\"}}");
    // Keep lanes in registration order rather than Perfetto's default
    // tid sort, so a session's device lane renders above its ARM lane.
    emit("{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":" +
         std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.id) +
         ",\"args\":{\"sort_index\":" + std::to_string(t.id) + "}}");
  }

  for (const TraceEvent& ev : events) {
    if (!ev.name && ev.type != TraceEventType::kEnd) continue;
    const int pid =
        ev.track < tracks.size() ? tracks[ev.track].pid : 0;
    const std::string head = "{\"pid\":" + std::to_string(pid) +
                             ",\"tid\":" + std::to_string(ev.track) +
                             ",\"ts\":" + fmt_us(ev.ts_us);
    switch (ev.type) {
      case TraceEventType::kBegin:
        emit(head + ",\"ph\":\"B\",\"cat\":\"eslam\",\"name\":\"" +
             json_escaped(ev.name) + "\"}");
        break;
      case TraceEventType::kEnd:
        emit(head + ",\"ph\":\"E\"}");
        break;
      case TraceEventType::kInstant:
        emit(head + ",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"eslam\",\"name\":\"" +
             json_escaped(ev.name) + "\"}");
        break;
      case TraceEventType::kComplete:
        emit(head + ",\"ph\":\"X\",\"dur\":" + fmt_us(ev.dur_us) +
             ",\"cat\":\"eslam\",\"name\":\"" + json_escaped(ev.name) + "\"}");
        break;
    }
  }

  out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"dropped_events\": " +
         std::to_string(trace_events_dropped_total()) + "}\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write trace to %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace eslam::obs
