// Counters, max-gauges and fixed-bucket log-scale latency histograms
// behind one process-wide registry, with a Prometheus-style text
// exposition dump.
//
// The contract mirrors obs/trace.h: everything that allocates (name
// lookup, instrument creation) happens once, on a cold path — call sites
// resolve a Counter*/Histogram* at construction time and the hot path is
// then pure relaxed atomics, so instrumented steady-state frames stay
// zero-heap-allocation.
//
// Histograms store no samples.  Buckets are log-spaced — kSubBuckets per
// octave (×2) starting at kMinMs = 1 µs — so the same 114 fixed buckets
// cover one microsecond to ~4.5 minutes at ≤ 19% relative bucket width.
// Quantiles come from bucket edges: quantile_upper_ms(q) /
// quantile_lower_ms(q) are *exact bounds* on the true q-quantile of the
// recorded samples (the value lies inside the bucket where the cumulative
// count crosses rank q), which is the honest way to report p50/p99/p999
// without sample storage.
//
// Instruments are keyed by their full exposition name including labels,
// e.g. `eslam_tracker_stage_ms{stage="fe"}` — exposition() splits the
// base name from the label set when formatting `_bucket{...,le="..."}`
// lines.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace eslam::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Monotonic high-water mark, foldable from any number of threads — the
// registry-atomic replacement for the mutex-guarded ad-hoc hwm fields.
class MaxGauge {
 public:
  void update(std::int64_t x) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (x > cur &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  static constexpr int kSubBuckets = 4;   // buckets per ×2 octave
  static constexpr int kOctaves = 28;     // 1 µs … ~4.5 min
  static constexpr double kMinMs = 1e-3;  // first bucket: (0, 1 µs]
  // [0] underflow (≤ kMinMs), [1..kOctaves*kSubBuckets] log-spaced,
  // [last] overflow (> max edge).
  static constexpr int kBuckets = kOctaves * kSubBuckets + 2;

  // Inclusive upper edge of `bucket` in ms; +inf for the overflow bucket.
  static double bucket_upper_ms(int bucket);
  static int bucket_index(double ms);

  void record(double ms) {
    buckets_[static_cast<std::size_t>(bucket_index(ms))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ms_.fetch_add(ms, std::memory_order_relaxed);  // C++20 atomic<double>
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_ms() const { return sum_ms_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(int bucket) const {
    return buckets_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

  // Exact bounds on the q-quantile (q in [0, 1]) of the recorded samples:
  // the edges of the bucket where the cumulative count reaches
  // ceil(q * count).  Zero/ +inf at the extremes; 0 when empty.
  double quantile_upper_ms(double q) const;
  double quantile_lower_ms(double q) const;

  // Folds `other` into this histogram (concurrent-safe on both sides; the
  // result is exact once writers are quiescent).
  void merge_from(const Histogram& other);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_ms_{0.0};
};

// Find-or-create registry.  Lookup takes a lock and may allocate — resolve
// pointers once at construction; returned references stay valid for the
// process lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  MaxGauge& max_gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // nullptr when the instrument does not exist (never creates).
  const Counter* find_counter(const std::string& name) const;
  const MaxGauge* find_max_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  // Prometheus-style text exposition: counters and gauges as single
  // samples, histograms as cumulative `_bucket{le="..."}` series plus
  // `_sum`/`_count` and derived `_p50/_p90/_p99/_p999` quantile-bound
  // gauges.  Safe to call while writers are live (each atomic is read
  // once).
  std::string exposition() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<MaxGauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry every instrumented site uses.
MetricsRegistry& metrics();

}  // namespace eslam::obs
