#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <utility>

namespace eslam::obs {
namespace {

struct TrackEntry {
  int pid = 0;
  std::string name;
};

// Process/track tables plus every ring ever created.  Rings are never
// destroyed while the process lives: a thread that exits leaves its ring
// behind so a later export still sees its events, and the thread-local
// handle below can stay a raw pointer.
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::string> processes;
  std::vector<TrackEntry> tracks;
  std::vector<std::unique_ptr<TraceRing>> rings;
  std::size_t ring_capacity = 8192;

  TraceRegistry() {
    processes.push_back("eslam");
    tracks.push_back(TrackEntry{0, "main"});  // kDefaultTrack
  }
};

TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry();  // never destroyed
  return *r;
}

std::atomic<bool> g_enabled{true};

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_trace_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

int register_process(const std::string& name) {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.processes.push_back(name);
  return static_cast<int>(r.processes.size()) - 1;
}

TrackId register_track(int pid, const std::string& name) {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.tracks.push_back(TrackEntry{pid, name});
  return static_cast<TrackId>(r.tracks.size() - 1);
}

void set_trace_ring_capacity(std::size_t events) {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.ring_capacity = events > 0 ? events : 1;
}

TraceRing& thread_ring() {
  thread_local TraceRing* ring = nullptr;
  if (!ring) {
    TraceRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.rings.push_back(std::make_unique<TraceRing>(r.ring_capacity));
    ring = r.rings.back().get();
  }
  return *ring;
}

void trace_begin(TrackId track, const char* name) {
  if (!trace_enabled()) return;
  thread_ring().record(
      TraceEvent{name, trace_now_us(), 0, track, TraceEventType::kBegin});
}

void trace_end(TrackId track, const char* name) {
  if (!trace_enabled()) return;
  thread_ring().record(
      TraceEvent{name, trace_now_us(), 0, track, TraceEventType::kEnd});
}

void trace_instant(TrackId track, const char* name) {
  if (!trace_enabled()) return;
  thread_ring().record(
      TraceEvent{name, trace_now_us(), 0, track, TraceEventType::kInstant});
}

void trace_complete(TrackId track, const char* name, double start_us,
                    double dur_us) {
  if (!trace_enabled()) return;
  thread_ring().record(
      TraceEvent{name, start_us, dur_us, track, TraceEventType::kComplete});
}

std::uint64_t trace_events_recorded_total() {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : r.rings) total += ring->recorded();
  return total;
}

std::uint64_t trace_events_dropped_total() {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : r.rings) total += ring->dropped();
  return total;
}

std::vector<TraceProcessInfo> trace_processes() {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<TraceProcessInfo> out;
  out.reserve(r.processes.size());
  for (std::size_t i = 0; i < r.processes.size(); ++i)
    out.push_back(TraceProcessInfo{static_cast<int>(i), r.processes[i]});
  return out;
}

std::vector<TraceTrackInfo> trace_tracks() {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<TraceTrackInfo> out;
  out.reserve(r.tracks.size());
  for (std::size_t i = 0; i < r.tracks.size(); ++i)
    out.push_back(TraceTrackInfo{static_cast<TrackId>(i), r.tracks[i].pid,
                                 r.tracks[i].name});
  return out;
}

void trace_snapshot(std::vector<TraceEvent>& out) {
  TraceRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& ring : r.rings) ring->snapshot(out);
}

}  // namespace eslam::obs
