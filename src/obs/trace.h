// Always-on span tracing: per-thread preallocated bounded event rings.
//
// Design constraints, in order:
//   1. The steady-state tracked/localization frame stays ZERO-heap-
//      allocation with tracing enabled (tests/runtime/steady_state_alloc_
//      test.cpp asserts it).  Recording an event is therefore one TLS
//      pointer read, one slot store into a preallocated ring, and one
//      release store of the head counter — no locks, no heap, no
//      formatting.  Everything that allocates (ring creation, process and
//      track registration, name strings) happens once, on cold paths.
//   2. The rings are bounded and circular-overwrite: a long run keeps the
//      newest events and counts the overwritten ones (dropped()), so a
//      trace capture is always the tail of the run.
//   3. Event names are static string literals.  The ring stores the
//      pointer, never copies — which is what keeps recording free, and why
//      the API takes `const char*` and not std::string.
//   4. A compile-time kill switch (cmake -DESLAM_TRACE=OFF, which defines
//      ESLAM_TRACE_OFF) turns the macros into ((void)0) so instrumented
//      code costs nothing, not even the enabled-flag load.  The classes
//      below still compile in that mode; only the macros vanish.
//
// Topology: events carry a TrackId.  Tracks belong to processes —
// register_process() per session ("mapping-0", "localization-2",
// "scheduler"), register_track() per lane within it (device, ARM, backend
// job classes).  obs/trace_export.h serializes the whole registry to
// Chrome trace-event JSON, which Perfetto renders as process rows with
// named thread tracks: the paper's Fig-7 Gantt, reconstructed from a real
// run.  The ring a thread writes to is unrelated to the track an event
// names — a shared ARM worker records spans onto whichever session's
// track it is serving.
//
// Threading: each ring has exactly one writer (its owning thread).
// Readers (export, tests) snapshot under the head counter's
// release/acquire pair, which is exact when the writers are quiescent —
// the documented capture contract (drain sessions, then export).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(ESLAM_TRACE_OFF)
#define ESLAM_TRACE_ENABLED 0
#else
#define ESLAM_TRACE_ENABLED 1
#endif

namespace eslam::obs {

enum class TraceEventType : std::uint8_t {
  kBegin,    // span opens (Chrome "B")
  kEnd,      // span closes (Chrome "E")
  kInstant,  // point event (Chrome "i")
  kComplete  // span with explicit duration (Chrome "X")
};

// Track handle: index into the registry's track table.  Track 0 always
// exists ("main" under process "eslam"), so recording without registering
// anything is valid.
using TrackId = std::uint16_t;
inline constexpr TrackId kDefaultTrack = 0;

struct TraceEvent {
  const char* name = nullptr;  // static literal; kEnd leaves it unused
  double ts_us = 0;            // µs since the process trace epoch
  double dur_us = 0;           // kComplete only
  TrackId track = kDefaultTrack;
  TraceEventType type = TraceEventType::kInstant;
};

// One thread's bounded event buffer.  Single writer (the owning thread);
// snapshot() from another thread is exact once the writer is quiescent.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : buf_(capacity > 0 ? capacity : 1) {}

  // Owner thread only.  Never allocates.
  void record(const TraceEvent& ev) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    buf_[static_cast<std::size_t>(h % buf_.size())] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  std::size_t capacity() const { return buf_.size(); }
  // Total events ever recorded (monotonic, survives wraparound).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  // Events overwritten by wraparound — the overflow-drop accounting.
  std::uint64_t dropped() const {
    const std::uint64_t h = recorded();
    return h > buf_.size() ? h - buf_.size() : 0;
  }
  std::size_t size() const {
    const std::uint64_t h = recorded();
    return static_cast<std::size_t>(h < buf_.size() ? h : buf_.size());
  }

  // Appends the surviving events, oldest first.  Cold path (allocates via
  // the vector); exact when the owner thread is quiescent.
  void snapshot(std::vector<TraceEvent>& out) const {
    const std::uint64_t h = recorded();
    const std::uint64_t n = h < buf_.size() ? h : buf_.size();
    for (std::uint64_t i = 0; i < n; ++i)
      out.push_back(buf_[static_cast<std::size_t>((h - n + i) % buf_.size())]);
  }

 private:
  std::vector<TraceEvent> buf_;
  std::atomic<std::uint64_t> head_{0};
};

// ---- global registry --------------------------------------------------------

// Runtime switch (compile-time kill switch aside).  Default: enabled.
bool trace_enabled();
void set_trace_enabled(bool enabled);

// µs since the process-wide trace epoch (steady clock).
double trace_now_us();

// Cold-path topology registration.  Thread-safe; both allocate.
int register_process(const std::string& name);
TrackId register_track(int pid, const std::string& name);

// Capacity for rings created *after* this call (existing rings keep
// theirs).  Default 8192 events per thread.
void set_trace_ring_capacity(std::size_t events);

// The calling thread's ring (created on first use — the one cold
// allocation a recording thread ever performs).
TraceRing& thread_ring();

// Hot-path recording.  All check the runtime switch internally.
void trace_begin(TrackId track, const char* name);
void trace_end(TrackId track, const char* name);
void trace_instant(TrackId track, const char* name);
void trace_complete(TrackId track, const char* name, double start_us,
                    double dur_us);

// Fleet-wide accounting across every ring (allocation-free).
std::uint64_t trace_events_recorded_total();
std::uint64_t trace_events_dropped_total();

// Export-side registry snapshot (cold; allocates).
struct TraceProcessInfo {
  int pid = 0;
  std::string name;
};
struct TraceTrackInfo {
  TrackId id = 0;
  int pid = 0;
  std::string name;
};
std::vector<TraceProcessInfo> trace_processes();
std::vector<TraceTrackInfo> trace_tracks();
// Appends every ring's surviving events (per-ring chronological order).
void trace_snapshot(std::vector<TraceEvent>& out);

// RAII begin/end span.  Captures the enabled flag at entry so a toggle
// mid-scope cannot strand an unbalanced begin.
class TraceScope {
 public:
  TraceScope(TrackId track, const char* name)
      : track_(track), name_(name), active_(trace_enabled()) {
    if (active_) trace_begin(track_, name_);
  }
  ~TraceScope() {
    if (active_) trace_end(track_, name_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TrackId track_;
  const char* name_;
  bool active_;
};

}  // namespace eslam::obs

#if ESLAM_TRACE_ENABLED
#define ESLAM_OBS_CONCAT2(a, b) a##b
#define ESLAM_OBS_CONCAT(a, b) ESLAM_OBS_CONCAT2(a, b)
// Begin/end span covering the enclosing scope.  `name` must be a static
// string literal.
#define ESLAM_TRACE_SCOPE(track, name)                                 \
  const ::eslam::obs::TraceScope ESLAM_OBS_CONCAT(eslam_trace_scope_,  \
                                                  __LINE__)((track), (name))
#define ESLAM_TRACE_INSTANT(track, name) \
  ::eslam::obs::trace_instant((track), (name))
#else
#define ESLAM_TRACE_SCOPE(track, name) ((void)0)
#define ESLAM_TRACE_INSTANT(track, name) ((void)0)
#endif
