#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace eslam::obs {

// ---- Histogram --------------------------------------------------------------

double Histogram::bucket_upper_ms(int bucket) {
  if (bucket <= 0) return kMinMs;
  if (bucket >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinMs * std::exp2(static_cast<double>(bucket) / kSubBuckets);
}

int Histogram::bucket_index(double ms) {
  // NaN and everything ≤ the first edge land in the underflow bucket.
  if (!(ms > kMinMs)) return 0;
  // Upper edges are inclusive (Prometheus `le` semantics): the bucket is
  // the smallest b with ms ≤ upper(b), i.e. ceil of the sub-octave
  // position.  The epsilon absorbs log2/exp2 round-trip noise so a value
  // equal to a computed edge stays in that edge's bucket.
  const double octaves = std::log2(ms / kMinMs);  // > 0
  int idx = static_cast<int>(std::ceil(octaves * kSubBuckets - 1e-9));
  if (idx < 1) idx = 1;
  return idx >= kBuckets - 1 ? kBuckets - 1 : idx;
}

double Histogram::quantile_upper_ms(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += bucket_count(i);
    if (cum >= rank) return bucket_upper_ms(i);
  }
  return bucket_upper_ms(kBuckets - 1);
}

double Histogram::quantile_lower_ms(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += bucket_count(i);
    if (cum >= rank) return i == 0 ? 0.0 : bucket_upper_ms(i - 1);
  }
  return bucket_upper_ms(kBuckets - 2);
}

void Histogram::merge_from(const Histogram& other) {
  std::uint64_t moved = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.bucket_count(i);
    if (n == 0) continue;
    buckets_[static_cast<std::size_t>(i)].fetch_add(n,
                                                    std::memory_order_relaxed);
    moved += n;
  }
  count_.fetch_add(moved, std::memory_order_relaxed);
  sum_ms_.fetch_add(other.sum_ms(), std::memory_order_relaxed);
}

// ---- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

MaxGauge& MetricsRegistry::max_gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<MaxGauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const MaxGauge* MetricsRegistry::find_max_gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

// Splits `eslam_foo_ms{stage="fe"}` into base `eslam_foo_ms` and label
// body `stage="fe"` (empty when unlabelled).
void split_name(const std::string& name, std::string& base,
                std::string& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  const std::size_t close = name.rfind('}');
  labels = name.substr(brace + 1,
                       close == std::string::npos ? std::string::npos
                                                  : close - brace - 1);
}

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// `suffix` appends to the base name, `extra_label` (e.g. le="...") joins
// the instrument's own labels.
std::string sample_line(const std::string& base, const std::string& suffix,
                        const std::string& labels,
                        const std::string& extra_label,
                        const std::string& value) {
  std::string line = base + suffix;
  std::string body = labels;
  if (!extra_label.empty()) {
    if (!body.empty()) body += ",";
    body += extra_label;
  }
  if (!body.empty()) line += "{" + body + "}";
  line += " " + value + "\n";
  return line;
}

}  // namespace

std::string MetricsRegistry::exposition() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string base, labels, last_typed;

  const auto type_line = [&](const std::string& b, const char* type) {
    // One TYPE line per base name (labelled variants share it).
    if (b == last_typed) return;
    out += "# TYPE " + b + " " + type + "\n";
    last_typed = b;
  };

  for (const auto& [name, c] : counters_) {
    split_name(name, base, labels);
    type_line(base, "counter");
    out += sample_line(base, "", labels, "",
                       std::to_string(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    split_name(name, base, labels);
    type_line(base, "gauge");
    out += sample_line(base, "", labels, "",
                       std::to_string(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    split_name(name, base, labels);
    type_line(base, "histogram");
    // Cumulative buckets, trimmed: start at the first occupied bucket and
    // stop once the cumulative count reaches the total (every omitted
    // line repeats a neighbour's cumulative value).
    const std::uint64_t total = h->count();
    std::uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (cum == 0 && n == 0) continue;
      cum += n;
      out += sample_line(base, "_bucket", labels,
                         "le=\"" + fmt_double(Histogram::bucket_upper_ms(i)) +
                             "\"",
                         std::to_string(cum));
      if (cum >= total) break;
    }
    out += sample_line(base, "_bucket", labels, "le=\"+Inf\"",
                       std::to_string(total));
    out += sample_line(base, "_sum", labels, "", fmt_double(h->sum_ms()));
    out += sample_line(base, "_count", labels, "", std::to_string(total));
    // Quantile upper bounds from the bucket edges (exact bounds, not
    // estimates — see the Histogram contract).
    static constexpr struct {
      const char* suffix;
      double q;
    } kQuantiles[] = {{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99},
                      {"_p999", 0.999}};
    for (const auto& [suffix, q] : kQuantiles)
      out += sample_line(base, suffix, labels, "",
                         fmt_double(h->quantile_upper_ms(q)));
  }
  return out;
}

MetricsRegistry& metrics() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

}  // namespace eslam::obs
