// Serializes the trace registry (obs/trace.h) to Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Mapping: every registered process becomes a Perfetto process row (via a
// "process_name" metadata event), every track a named thread row under it
// ("thread_name"), and the ring events become "B"/"E" span pairs, "X"
// complete spans and "i" instants with microsecond timestamps.  A
// multi-session run therefore renders as the paper's Fig-7 Gantt: one row
// per session, device/ARM/backend-class lanes beneath it, plus the
// scheduler's shared device lane and ARM worker rows.
//
// Capture contract: snapshotting is exact when recording threads are
// quiescent (sessions drained) — the rings are single-writer and the
// export only takes the surviving tail of each (TraceRing::dropped()
// events were overwritten; the count is reported in "otherData").
#pragma once

#include <string>

namespace eslam::obs {

// The whole registry as one Chrome trace-event JSON document.
std::string chrome_trace_json();

// Writes chrome_trace_json() to `path`; false (with a stderr warning) on
// I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace eslam::obs
