// Multi-session Figure-7 runtime: one scheduler, N trackers.
//
// The paper's premise is that the FPGA fabric is the scarce resource the
// ARM host schedules work onto.  This scheduler serves N independent
// tracking sessions from exactly that shape: a single shared *device lane*
// thread executes feature extraction + feature matching for every session
// (the one fabric), and a fixed pool of *ARM worker* threads executes pose
// estimation / pose optimization / map updating, at most one worker per
// session at a time.  Per-session semantics are identical to the
// single-stream PipelineExecutor:
//
//   * bounded SPSC input ring per session — a full ring is back-pressure
//     for that session only;
//   * the key-frame barrier is per-session: the authoritative FM of frame
//     N+1 must see the session's map after MU of frame N.  While the
//     barrier is closed the frame waits in a per-session pending slot
//     (after an optional speculative FM, replayed if the epoch moved), and
//     the device lane moves on to other sessions instead of blocking.
//     FM itself is wait-free against every session's map writers: match()
//     borrows the map's published MapReadView (slam/map_view.h) rather
//     than locking, so a co-session's mid-flight update_map can never
//     stall the shared lane — the barrier above is the only FM ordering
//     constraint, and it is a scheduling rule, not a lock;
//   * the matching gate's prior pose reaches the device lane through the
//     tracker itself: update_map of frame N publishes the gate prior for
//     frame N+2 before retiring, and the device lane only matches frame
//     N+2 (speculatively or not) after observing frame N+1's handoff —
//     which required N's retirement.  The prior is therefore always
//     available and *frozen* when FM runs, one frame staler than the
//     ARM-side motion model by construction (acceptable: the gate's
//     search window absorbs the extra extrapolation error), and identical
//     to what a sequential run reads — so the epoch check alone still
//     decides whether a speculative match holds;
//   * ARM stages of one session run serially in frame order (ownership is
//     handed to exactly one worker at a time), so each session's results
//     are bit-identical to a solo sequential Tracker::process() run.
//   * the local-mapping backend rides a *background-job lane* on the same
//     ARM pool: when a retirement leaves frozen backend jobs behind, each
//     job is queued individually on a bounded two-class priority queue
//     (runtime/backend_queue.h) that workers only serve when no tracking
//     stage is runnable (strictly lower priority).  Loop-verification
//     jobs outrank routine shard-BA jobs within the lane; jobs of ONE
//     session run concurrently on multiple workers when its tracker froze
//     covisibility-disjoint shards (the tracker's job table serializes
//     per shard, the scheduler does not re-serialize per session).  Every
//     delta re-enters the pipeline through the tracker's own update_map()
//     at the next keyframe under the structural-epoch rules — so the
//     speculative-FM replay protocol above is untouched, and with the
//     backend disabled the schedule is byte-for-byte the old one.
//
// Dispatch is round-robin with fairness counting: each device-lane pass
// starts from a rotating cursor, so no session can monopolize the fabric,
// and per-session dispatch counts are exported through PipelineStats.
// When no session has runnable work the device lane parks on a condition
// variable (kicked by feeds, retirements and session changes) — an idle
// scheduler consumes no CPU.
//
// Threading contract: each session's feed/try_feed/poll/drain must be
// driven by one thread at a time (different sessions may use different
// threads); add_session/remove_session may race with other sessions'
// traffic but not with the removed session's own calls.
//
// Localization sessions (add_localization_session) are the read-only
// tier: a Localizer over a shared FrozenMap instead of a Tracker over a
// live map.  They never touch the device lane — a frozen map needs no
// key-frame barrier, no speculative FM and no gate-prior handshake, so
// the whole frame (FE through PO, no MU) runs as ONE unit on the ARM
// worker pool, scheduled through the same work queue as mapping
// sessions' ARM stages.  N localization sessions therefore run fully
// concurrently on N workers instead of serializing behind the single
// fabric lane — the tier's throughput scales with cores.  Frames of one
// session still run serially in feed order (same ownership protocol), so
// per-session output is bit-identical to a solo sequential
// Localizer::process() run.  Pacing and the per-stage event log do not
// apply to this tier (there is no modeled fabric stage to pad against).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/backend_queue.h"
#include "runtime/lane.h"
#include "runtime/ring_queue.h"
#include "runtime/spsc_queue.h"
#include "slam/tracker.h"

namespace eslam {

class Localizer;

// Opaque per-session state (defined in tracker_scheduler.cpp).  Holders
// pass the ref back into the scheduler; per-frame calls touch only this
// session's state — no registry lookup, no scheduler-wide lock.
struct SchedulerSession;
using SessionRef = std::shared_ptr<SchedulerSession>;

// Pads an executed stage to a modeled platform duration: after running a
// stage, the owning lane sleeps out `pacer(stage) - measured_ms`.  This is
// the emulation hook that lets a fast host reproduce the paper's
// ARM-Cortex-A9 / 100 MHz-fabric schedule proportions (cf. timing_model's
// arm_from_host): the lane stays *occupied* for the modeled time, exactly
// as the slower platform's unit would be.  Return <= 0 for "no pacing".
using StagePacer = std::function<double(PipeStage)>;

struct SchedulerOptions {
  // ARM worker pool size (the "ARM cores" serving all sessions).
  int arm_workers = 1;
  // Bound on the background-job lane (frozen backend jobs awaiting a
  // worker, across all sessions and both classes).  An overflowing
  // enqueue is skipped and counted — the job is un-offered back to its
  // tracker and re-offered at that session's next retirement, so overload
  // degrades to "backend laps less often", never to unbounded growth.
  int backend_queue_capacity = 16;
  // Two-class priority discipline for the lane (loop verification pops
  // before routine shard BA).  False = single FIFO; exists so the
  // preemption benefit is measurable (bench_backend_ate A/Bs the two).
  bool backend_priority = true;
};

// Per-session knobs (PipelineOptions is the single-stream alias of this).
struct SchedulerSessionOptions {
  int queue_capacity = 4;        // input + handoff ring depth
  bool speculative_match = true; // FM before the barrier, replay on epoch
  bool record_events = true;     // keep the per-stage event log
  StagePacer pacer;              // optional platform-emulation padding
};

class TrackerScheduler {
 public:
  explicit TrackerScheduler(const SchedulerOptions& options = {});
  ~TrackerScheduler();  // stops lanes; in-flight frames are abandoned

  TrackerScheduler(const TrackerScheduler&) = delete;
  TrackerScheduler& operator=(const TrackerScheduler&) = delete;

  // Registers a tracker as a new session.  The tracker must outlive the
  // session and must not be driven through process() meanwhile.
  SessionRef add_session(Tracker& tracker,
                         const SchedulerSessionOptions& options = {});
  // Registers a read-only localization session (see the file comment's
  // localization-tier paragraph).  The localizer must outlive the session
  // and must not be driven through process() meanwhile; the FrozenMap it
  // holds is shared freely across sessions.
  SessionRef add_localization_session(Localizer& localizer,
                                      const SchedulerSessionOptions& options =
                                          {});
  // Blocks until every fed frame of the session has retired and its
  // background backend job (if any) has left the job lane, then removes
  // it.  Results not yet polled are discarded — callers that want them
  // drain() first.  The backend wait is what makes destroying the tracker
  // safe: a BA job references it from a pool worker.
  void remove_session(const SessionRef& session);

  // Non-blocking feed; false when the session's input ring is full (that
  // session's back-pressure).
  bool try_feed(const SessionRef& session, FrameInput frame);
  // Blocking feed: waits for input-ring space.  Result delivery is
  // unbounded on the user side, so waiting here can never deadlock the
  // lanes — back-pressure is governed by the input ring alone.
  void feed(const SessionRef& session, FrameInput frame);

  // Next result of this session in feed order, if one is ready.
  std::optional<TrackResult> poll(const SessionRef& session);
  // Blocks until every frame fed to this session has been delivered —
  // and until its background backend job (if any) has finished, so the
  // tracker really is quiescent for inspection — and returns the
  // not-yet-polled results in order.  Other sessions keep flowing
  // meanwhile; the session stays usable afterwards.  (A job the tracker
  // froze but never managed to enqueue stays pending until the next feed;
  // it holds no pool resources.)
  std::vector<TrackResult> drain(const SessionRef& session);

  // Frames fed but not yet retired through map updating.
  int in_flight(const SessionRef& session) const;

  PipelineStats stats(const SessionRef& session) const;
  std::vector<StageEvent> stage_events(const SessionRef& session) const;

  int session_count() const;
  // Live localization sessions (session_count() includes them).
  int localization_session_count() const;
  // Lifetime cold-start relocalization counters across all localization
  // sessions, past and present (they survive session close — a service
  // wants the tier's totals, not the survivors').
  std::int64_t localization_coldstart_attempts() const {
    return loc_coldstart_attempts_.load();
  }
  std::int64_t localization_coldstart_successes() const {
    return loc_coldstart_successes_.load();
  }
  // Sum of device-lane dispatch turns across live sessions (fairness
  // accounting; compare per-session PipelineStats::device_dispatches).
  std::int64_t total_dispatches() const;
  // Most backend jobs ever simultaneously running on the pool (across all
  // sessions) — the sharding concurrency witness.
  int backend_concurrent_high_water() const;

 private:
  void device_lane();
  bool device_step(const SessionRef& session);
  void finalize_match(SchedulerSession& s, FrameState& fs);
  void arm_worker(int worker_index);
  void run_session_arm(const SessionRef& session);
  // Localization analogue of run_session_arm: drains the session's input
  // ring, one whole Localizer frame per backlog unit.
  void run_session_localization(const SessionRef& session);
  void enqueue_arm(const SessionRef& session);
  // One frozen backend job awaiting (or holding) a pool worker.
  struct BackendQueueEntry {
    SessionRef session;
    int job_id = -1;
    BackendJobClass cls = BackendJobClass::kRoutineBa;
    double enqueue_ms = 0;  // for per-class queue-latency stats
  };
  // Takes every newly-frozen job ticket from the session's tracker and
  // queues each on the background lane (bounded by
  // backend_queue_capacity; overflowing tickets are un-offered back).
  void enqueue_backend(const SessionRef& session);
  // Executes one background backend job (ARM worker context).
  void run_session_backend(const SessionRef& session,
                           const BackendQueueEntry& entry);
  // True while the session has no queued or running background job.
  bool backend_quiet(SchedulerSession& s);
  void run_device_stage(SchedulerSession& s, FrameState& fs, PipeStage stage,
                        bool speculative);
  // Sleeps out the remainder of the session pacer's modeled stage time.
  void pace(const SchedulerSession& s, PipeStage stage, double start_ms) const;
  // Push + feed bookkeeping; leaves `frame` intact and returns false when
  // the session's input ring is full.  Routes the new input to the lane
  // that serves the session: device lane for mapping, ARM work queue for
  // localization.
  bool push_input(const SessionRef& session, FrameInput& frame);
  // Wakes the device lane (new input, retirement, or session change).
  void kick_device();
  double now_ms() const;
  int record(SchedulerSession& s, int frame, PipeLane lane, PipeStage stage,
             double start_ms, double end_ms);

  SchedulerOptions options_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::shared_mutex sessions_mutex_;
  std::vector<SessionRef> sessions_;
  std::atomic<std::uint64_t> sessions_generation_{0};

  // Device-lane parking: the lane sleeps here when a full pass makes no
  // progress; producers bump the signal counter and notify.
  std::mutex device_mutex_;
  std::condition_variable device_cv_;
  std::uint64_t device_signal_ = 0;  // guarded by device_mutex_

  // ARM work queue: sessions with handed-off frames awaiting ARM stages.
  // arm_backlog / arm_queued of every session are guarded by work_mutex_
  // (one short acquisition per frame handoff — the frames themselves move
  // through the preallocated SPSC rings).
  //
  // backend_q_ is the background-job lane: individual frozen backend jobs
  // awaiting a worker, two classes (loop verification pops before routine
  // shard BA when backend_priority is set).  Workers always serve work_q_
  // (tracking stages) first — backend jobs have strictly lower priority,
  // so they only consume pool slack.  Unlike the old one-slot-per-session
  // lane, several jobs of one session may be queued and running at once:
  // the tracker only freezes covisibility-disjoint shards, so their
  // deltas commute and need no scheduler-side serialization.  bg_queued /
  // bg_running are now per-session *counters*, and bg_running_total_ /
  // bg_running_hwm_ track pool-wide backend concurrency (all guarded by
  // work_mutex_).
  // One session awaiting a pool worker, stamped at push so the pop side
  // can fold "how long did dispatch wait behind a busy pool" into the
  // registry (eslam_scheduler_dispatch_wait_ms).  Frames that arrive
  // while a worker already owns the session never enter this queue — the
  // histogram measures genuine pool contention, not the fast path.
  struct WorkItem {
    SessionRef session;
    double enqueue_ms = 0;
  };

  mutable std::mutex work_mutex_;
  std::condition_variable work_cv_;
  RingQueue<WorkItem> work_q_{16};
  BackendJobQueue<BackendQueueEntry> backend_q_;
  int bg_running_total_ = 0;
  int bg_running_hwm_ = 0;

  // Localization-tier cold-start counters (see the accessors above).
  std::atomic<std::int64_t> loc_coldstart_attempts_{0};
  std::atomic<std::int64_t> loc_coldstart_successes_{0};

  std::atomic<bool> stop_{false};
  std::thread device_thread_;
  std::vector<std::thread> arm_threads_;

  // Observability handles, resolved once at construction (obs/README in
  // src/obs/trace.h): the scheduler owns a "scheduler" trace process with
  // the shared device lane and every ARM pool worker as named tracks —
  // the Fig-7 Gantt's resource rows, complementing the per-session rows
  // the trackers/localizers register themselves.  Histograms/counters are
  // registry entries (leaked, process-lifetime); the hot paths only touch
  // these resolved pointers.
  obs::TrackId device_track_ = obs::kDefaultTrack;
  std::vector<obs::TrackId> worker_tracks_;
  obs::Histogram* dispatch_wait_hist_ = nullptr;
  obs::Counter* device_dispatches_total_ = nullptr;
  obs::Counter* speculative_matches_total_ = nullptr;
  obs::Counter* replayed_matches_total_ = nullptr;
  obs::Counter* backend_jobs_total_ = nullptr;
  obs::Counter* backend_jobs_rejected_total_ = nullptr;
  obs::MaxGauge* backend_concurrent_gauge_ = nullptr;
};

}  // namespace eslam
