// Two-class priority queue for the scheduler's background-job lane.
//
// Backend work comes in two classes with very different latency needs:
// routine windowed-BA shard jobs (throughput work — running one a little
// later costs nothing) and loop-verification jobs (latency work — while a
// detected loop waits in the queue the session keeps tracking on a
// drifted map, and every keyframe inserted meanwhile is born misplaced).
// The queue therefore pops every queued loop-verification entry before
// any routine-BA entry, FIFO within each class; tracking stages still
// outrank both (that ordering lives in the scheduler's worker loop, not
// here).
//
// The fifo mode (priority = false) collapses both classes into a single
// arrival-ordered queue.  It exists so the preemption claim is testable:
// bench_backend_ate measures loop-verification queue latency under
// routine-BA load in both modes and gates on priority < fifo.
//
// Queue-wait observability: push/pop take an optional caller clock
// (now_ms, any monotonic base — the queue only ever subtracts).  Each
// entry remembers its enqueue time and class; pop() folds the wait into
// the per-class latency histogram installed via set_latency_histograms().
// With no histograms installed (the default, and every unit test) the
// timestamps are inert — no registry traffic, no behavior change.
//
// Not thread-safe by itself — the scheduler guards it with work_mutex_,
// exactly like the RingQueues it replaces.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "runtime/ring_queue.h"

namespace eslam {

// Job class of one background entry.  kLoopVerify outranks kRoutineBa.
enum class BackendJobClass { kRoutineBa = 0, kLoopVerify = 1 };

inline const char* to_string(BackendJobClass cls) {
  return cls == BackendJobClass::kLoopVerify ? "loop-verify" : "routine-ba";
}

template <typename T>
class BackendJobQueue {
 public:
  explicit BackendJobQueue(int capacity, bool priority = true)
      : capacity_(capacity > 0 ? static_cast<std::size_t>(capacity) : 1),
        priority_(priority),
        loop_q_(capacity_),
        ba_q_(capacity_) {}

  bool empty() const { return loop_q_.empty() && ba_q_.empty(); }
  std::size_t size() const { return loop_q_.size() + ba_q_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool priority() const { return priority_; }

  // Installs the per-class queue-wait histograms pop() records into.
  // Either may be null (that class goes unrecorded).  The queue does not
  // own them — point at registry entries, which live forever.
  void set_latency_histograms(obs::Histogram* routine_ba,
                              obs::Histogram* loop_verify) {
    ba_hist_ = routine_ba;
    loop_hist_ = loop_verify;
  }

  // False when the lane is at capacity (shared across classes, like the
  // single queue it replaces): the job stays pending in its tracker and
  // is re-offered at that session's next retirement.
  bool push(BackendJobClass cls, T value, double now_ms = 0.0) {
    if (size() >= capacity_) return false;
    Entry entry{std::move(value), now_ms, cls};
    // fifo mode: one arrival-ordered queue, class ignored for ordering
    // (the entry still remembers its class for latency attribution).
    if (priority_ && cls == BackendJobClass::kLoopVerify)
      loop_q_.push_back(std::move(entry));
    else
      ba_q_.push_back(std::move(entry));
    return true;
  }

  std::optional<T> pop(double now_ms = 0.0) {
    RingQueue<Entry>* q =
        !loop_q_.empty() ? &loop_q_ : (!ba_q_.empty() ? &ba_q_ : nullptr);
    if (!q) return std::nullopt;
    Entry entry = q->pop_front();
    obs::Histogram* hist =
        entry.cls == BackendJobClass::kLoopVerify ? loop_hist_ : ba_hist_;
    if (hist) hist->record(now_ms - entry.enqueue_ms);
    return std::move(entry.value);
  }

  // Removes every entry whose *value* matches `pred` (session teardown).
  // Returns the number removed.  O(n), cold path only.
  template <typename Pred>
  std::size_t remove_if(Pred pred) {
    return drain_matching(loop_q_, pred) + drain_matching(ba_q_, pred);
  }

 private:
  struct Entry {
    T value;
    double enqueue_ms = 0;
    BackendJobClass cls = BackendJobClass::kRoutineBa;
  };

  template <typename Pred>
  static std::size_t drain_matching(RingQueue<Entry>& q, Pred& pred) {
    const std::size_t n = q.size();
    std::size_t removed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Entry entry = q.pop_front();
      if (pred(entry.value))
        ++removed;
      else
        q.push_back(std::move(entry));
    }
    return removed;
  }

  std::size_t capacity_;
  bool priority_;
  RingQueue<Entry> loop_q_;  // fifo mode leaves this empty
  RingQueue<Entry> ba_q_;
  obs::Histogram* ba_hist_ = nullptr;
  obs::Histogram* loop_hist_ = nullptr;
};

}  // namespace eslam
