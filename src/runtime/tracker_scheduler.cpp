#include "runtime/tracker_scheduler.h"

#include <algorithm>

#include "geometry/assert.h"
#include "slam/localizer.h"

namespace eslam {

const char* to_string(PipeLane lane) {
  return lane == PipeLane::kFpga ? "FPGA" : "ARM";
}

const char* to_string(PipeStage stage) {
  switch (stage) {
    case PipeStage::kFeatureExtraction: return "FE";
    case PipeStage::kFeatureMatching: return "FM";
    case PipeStage::kPoseEstimation: return "PE";
    case PipeStage::kPoseOptimization: return "PO";
    case PipeStage::kMapUpdating: return "MU";
  }
  return "?";
}

struct SchedulerSession {
  SchedulerSession(Tracker& tracker_, const SchedulerSessionOptions& opts_)
      : tracker(&tracker_),
        opts(opts_),
        input_q(static_cast<std::size_t>(std::max(1, opts_.queue_capacity))),
        handoff_q(static_cast<std::size_t>(std::max(1, opts_.queue_capacity))) {
  }

  // Localization-tier session: frames bypass the device lane entirely and
  // run whole on the ARM pool (the handoff ring stays unused).
  SchedulerSession(Localizer& localizer_, const SchedulerSessionOptions& opts_)
      : localizer(&localizer_),
        opts(opts_),
        input_q(static_cast<std::size_t>(std::max(1, opts_.queue_capacity))),
        handoff_q(1) {}

  // Exactly one of the two is set; `localizer` non-null marks the
  // read-only tier.
  Tracker* tracker = nullptr;
  Localizer* localizer = nullptr;
  SchedulerSessionOptions opts;

  SpscRing<FrameInput> input_q;    // user -> device lane
  SpscRing<FrameState> handoff_q;  // device lane -> ARM pool

  // Device-lane-private barrier slot: the frame whose authoritative FM is
  // waiting for the previous frame's retirement (or whose handoff is
  // waiting for ring space).  At most one frame per session sits here, so
  // per-session device order is FIFO by construction.
  std::optional<FrameState> pending;
  bool pending_ready = false;       // FM is authoritative; awaiting handoff
  bool pending_speculated = false;  // pending FM ran speculatively
  int pending_spec_event = -1;      // its event index, for replay marking

  // Guarded by the scheduler-wide work_mutex_: how many handed-off frames
  // await ARM stages, and whether a worker currently owns this session.
  int arm_backlog = 0;
  bool arm_queued = false;
  // Background-job lane state (also guarded by work_mutex_): how many of
  // this session's jobs sit in backend_q_ / are running on workers.
  // Counters, not flags: covisibility-disjoint shard jobs of one session
  // may be queued and running concurrently.
  int bg_queued = 0;
  int bg_running = 0;

  std::atomic<int> frames_fed{0};
  std::atomic<int> frames_retired{0};
  std::atomic<int> frames_delivered{0};
  std::atomic<int> retired_through{-1};  // highest retired frame index

  // Finished results awaiting poll().  Unbounded on purpose: ARM workers
  // must never block on one session's poll cadence (that would eat a pool
  // worker and starve other sessions), so back-pressure lives exclusively
  // in the bounded input ring.  RingQueue rather than deque: its buffer
  // stops allocating once it covers the high-water depth, where deque's
  // chunked storage churns a heap node every few dozen cycled results.
  std::mutex results_mutex;
  RingQueue<TrackResult> results{16};

  // Parking for this session's blocked user-side calls (feed() waiting on
  // ring space, drain()/remove waiting on delivery/retirement): producers
  // of those conditions bump the signal and notify, so a blocked client
  // thread sleeps instead of spin-polling.
  std::mutex user_mutex;
  std::condition_variable user_cv;
  std::uint64_t user_signal = 0;  // guarded by user_mutex

  mutable std::mutex stats_mutex;
  PipelineStats stats;

  mutable std::mutex events_mutex;
  std::vector<StageEvent> events;
};

namespace {

// Wakes a session's parked user-side calls (see SchedulerSession).
void kick_user(SchedulerSession& s) {
  {
    const std::lock_guard<std::mutex> lock(s.user_mutex);
    ++s.user_signal;
  }
  s.user_cv.notify_all();
}

// Captures the current signal level; a waiter that then finds its
// condition unmet sleeps until the level moves past the snapshot, so a
// kick landing between the condition check and the wait is never lost.
std::uint64_t user_signal_snapshot(SchedulerSession& s) {
  const std::lock_guard<std::mutex> lock(s.user_mutex);
  return s.user_signal;
}

}  // namespace

TrackerScheduler::TrackerScheduler(const SchedulerOptions& options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      backend_q_(std::max(1, options.backend_queue_capacity),
                 options.backend_priority) {
  const int workers = std::max(1, options_.arm_workers);
  // Resource-row trace tracks (one "scheduler" process: the shared device
  // lane plus each pool worker) and the scheduler-wide metrics.  All cold:
  // one registration per scheduler lifetime, before any lane thread runs.
  const int pid = obs::register_process("scheduler");
  device_track_ = obs::register_track(pid, "device lane");
  worker_tracks_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    worker_tracks_.push_back(
        obs::register_track(pid, "arm worker " + std::to_string(i)));
  obs::MetricsRegistry& reg = obs::metrics();
  dispatch_wait_hist_ = &reg.histogram("eslam_scheduler_dispatch_wait_ms");
  device_dispatches_total_ = &reg.counter("eslam_device_dispatches_total");
  speculative_matches_total_ =
      &reg.counter("eslam_speculative_matches_total");
  replayed_matches_total_ = &reg.counter("eslam_replayed_matches_total");
  backend_jobs_total_ = &reg.counter("eslam_backend_jobs_total");
  backend_jobs_rejected_total_ =
      &reg.counter("eslam_backend_jobs_rejected_total");
  backend_concurrent_gauge_ = &reg.max_gauge("eslam_backend_concurrent_jobs");
  backend_q_.set_latency_histograms(
      &reg.histogram("eslam_backend_queue_wait_ms{class=\"ba\"}"),
      &reg.histogram("eslam_backend_queue_wait_ms{class=\"loop\"}"));

  device_thread_ = std::thread(&TrackerScheduler::device_lane, this);
  arm_threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    arm_threads_.emplace_back(&TrackerScheduler::arm_worker, this, i);
}

TrackerScheduler::~TrackerScheduler() {
  stop_.store(true);
  kick_device();
  work_cv_.notify_all();
  {
    // Defensive: release any client thread still parked in feed()/drain()
    // (a contract violation, but hanging it would be worse).
    const std::shared_lock<std::shared_mutex> lock(sessions_mutex_);
    for (const SessionRef& s : sessions_) kick_user(*s);
  }
  device_thread_.join();
  for (std::thread& t : arm_threads_) t.join();
}

double TrackerScheduler::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TrackerScheduler::kick_device() {
  {
    const std::lock_guard<std::mutex> lock(device_mutex_);
    ++device_signal_;
  }
  device_cv_.notify_one();
}

int TrackerScheduler::record(SchedulerSession& s, int frame, PipeLane lane,
                             PipeStage stage, double start_ms, double end_ms) {
  {
    const std::lock_guard<std::mutex> lock(s.stats_mutex);
    (lane == PipeLane::kFpga ? s.stats.fpga_busy_ms : s.stats.arm_busy_ms) +=
        end_ms - start_ms;
  }
  if (!s.opts.record_events) return -1;
  const std::lock_guard<std::mutex> lock(s.events_mutex);
  s.events.push_back({frame, lane, stage, start_ms, end_ms, false});
  return static_cast<int>(s.events.size()) - 1;
}

void TrackerScheduler::pace(const SchedulerSession& s, PipeStage stage,
                            double start_ms) const {
  if (!s.opts.pacer) return;
  const double remaining = s.opts.pacer(stage) - (now_ms() - start_ms);
  if (remaining > 0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(remaining));
}

// ---- session registry ------------------------------------------------------

SessionRef TrackerScheduler::add_session(
    Tracker& tracker, const SchedulerSessionOptions& options) {
  SessionRef session = std::make_shared<SchedulerSession>(tracker, options);
  {
    const std::unique_lock<std::shared_mutex> lock(sessions_mutex_);
    sessions_.push_back(session);
    sessions_generation_.fetch_add(1);
  }
  kick_device();
  return session;
}

SessionRef TrackerScheduler::add_localization_session(
    Localizer& localizer, const SchedulerSessionOptions& options) {
  SessionRef session = std::make_shared<SchedulerSession>(localizer, options);
  {
    const std::unique_lock<std::shared_mutex> lock(sessions_mutex_);
    sessions_.push_back(session);
    sessions_generation_.fetch_add(1);
  }
  // The device lane skips this session, but its snapshot should still
  // refresh promptly (registry bookkeeping, prompt teardown).
  kick_device();
  return session;
}

bool TrackerScheduler::backend_quiet(SchedulerSession& s) {
  const std::lock_guard<std::mutex> lock(work_mutex_);
  return s.bg_queued == 0 && s.bg_running == 0;
}

int TrackerScheduler::backend_concurrent_high_water() const {
  const std::lock_guard<std::mutex> lock(work_mutex_);
  return bg_running_hwm_;
}

void TrackerScheduler::remove_session(const SessionRef& session) {
  if (!session) return;
  // Quiesce: every accepted frame retires through map updating (the caller
  // has stopped feeding, so fed is final and the lanes drain it), and the
  // background lane lets go of the tracker.  *Queued* backend jobs are
  // cancelled — they have not started, the tracker is going away, and
  // waiting for pool slots would stall behind other sessions' tracking
  // load.  The cancellation happens only once every frame has retired:
  // jobs are offered to the lane *before* a retirement is published, so
  // at that point no re-enqueue can arrive and the cancel sticks.
  // *Running* jobs kick the waiter on completion.
  SchedulerSession& s = *session;
  for (;;) {
    const std::uint64_t seen = user_signal_snapshot(s);
    if (stop_.load()) break;
    if (s.frames_retired.load() >= s.frames_fed.load()) {
      const std::lock_guard<std::mutex> lock(work_mutex_);
      if (s.bg_queued > 0) {
        backend_q_.remove_if([&](const BackendQueueEntry& e) {
          return e.session == session;
        });
        s.bg_queued = 0;
      }
      if (s.bg_running == 0) break;
    }
    std::unique_lock<std::mutex> lock(s.user_mutex);
    s.user_cv.wait(lock,
                   [&] { return stop_.load() || s.user_signal != seen; });
  }
  {
    const std::unique_lock<std::shared_mutex> lock(sessions_mutex_);
    std::erase(sessions_, session);
    sessions_generation_.fetch_add(1);
  }
  kick_device();  // refresh the device snapshot promptly
}

int TrackerScheduler::session_count() const {
  const std::shared_lock<std::shared_mutex> lock(sessions_mutex_);
  return static_cast<int>(sessions_.size());
}

int TrackerScheduler::localization_session_count() const {
  const std::shared_lock<std::shared_mutex> lock(sessions_mutex_);
  int count = 0;
  for (const SessionRef& s : sessions_)
    if (s->localizer) ++count;
  return count;
}

std::int64_t TrackerScheduler::total_dispatches() const {
  const std::shared_lock<std::shared_mutex> lock(sessions_mutex_);
  std::int64_t total = 0;
  for (const SessionRef& s : sessions_) {
    const std::lock_guard<std::mutex> stats_lock(s->stats_mutex);
    total += s->stats.device_dispatches;
  }
  return total;
}

// ---- user-side API ---------------------------------------------------------

bool TrackerScheduler::push_input(const SessionRef& session,
                                  FrameInput& frame) {
  SchedulerSession& s = *session;
  if (!s.input_q.try_push(std::move(frame))) return false;
  const int in_flight =
      s.frames_fed.fetch_add(1) + 1 - s.frames_retired.load();
  {
    const std::lock_guard<std::mutex> lock(s.stats_mutex);
    ++s.stats.frames_fed;
    s.stats.max_in_flight = std::max(s.stats.max_in_flight, in_flight);
  }
  // A mapping frame starts on the device lane; a localization frame goes
  // straight onto the ARM work queue (one backlog unit per frame).
  if (s.localizer)
    enqueue_arm(session);
  else
    kick_device();
  return true;
}

bool TrackerScheduler::try_feed(const SessionRef& session, FrameInput frame) {
  if (!session) return false;
  if (push_input(session, frame)) return true;
  const std::lock_guard<std::mutex> lock(session->stats_mutex);
  ++session->stats.rejected_feeds;
  return false;
}

void TrackerScheduler::feed(const SessionRef& session, FrameInput frame) {
  if (!session) return;
  SchedulerSession& s = *session;
  for (;;) {
    const std::uint64_t seen = user_signal_snapshot(s);
    if (push_input(session, frame)) return;
    if (stop_.load()) return;  // teardown mid-feed: drop rather than hang
    // Park until the device lane frees a ring slot (it kicks on every
    // input pop) — a blocked feeder costs no CPU.
    std::unique_lock<std::mutex> lock(s.user_mutex);
    s.user_cv.wait(lock,
                   [&] { return stop_.load() || s.user_signal != seen; });
  }
}

std::optional<TrackResult> TrackerScheduler::poll(const SessionRef& session) {
  if (!session) return std::nullopt;
  const std::lock_guard<std::mutex> lock(session->results_mutex);
  if (session->results.empty()) return std::nullopt;
  TrackResult result = session->results.pop_front();
  session->frames_delivered.fetch_add(1);
  return result;
}

std::vector<TrackResult> TrackerScheduler::drain(const SessionRef& session) {
  std::vector<TrackResult> results;
  if (!session) return results;
  SchedulerSession& s = *session;
  // Wait on delivery, not retirement: retirement is published before the
  // result lands in the delivery queue, so a retired-but-undelivered frame
  // must still hold the drain open.
  while (s.frames_delivered.load() < s.frames_fed.load()) {
    const std::uint64_t seen = user_signal_snapshot(s);
    if (std::optional<TrackResult> r = poll(session)) {
      results.push_back(std::move(*r));
      continue;
    }
    if (stop_.load()) break;  // teardown mid-drain: return what arrived
    // Park until an ARM worker delivers a result (it kicks per frame).
    std::unique_lock<std::mutex> lock(s.user_mutex);
    s.user_cv.wait(lock,
                   [&] { return stop_.load() || s.user_signal != seen; });
  }
  // Then let the background lane finish this session's BA job, so the
  // drained tracker is genuinely quiescent (its stats/graph stable) when
  // the caller inspects it.  Workers kick on job completion.
  for (;;) {
    const std::uint64_t seen = user_signal_snapshot(s);
    if (stop_.load() || backend_quiet(s)) break;
    std::unique_lock<std::mutex> lock(s.user_mutex);
    s.user_cv.wait(lock,
                   [&] { return stop_.load() || s.user_signal != seen; });
  }
  return results;
}

int TrackerScheduler::in_flight(const SessionRef& session) const {
  if (!session) return 0;
  return session->frames_fed.load() - session->frames_retired.load();
}

PipelineStats TrackerScheduler::stats(const SessionRef& session) const {
  PipelineStats out;
  if (!session) return out;
  {
    const std::lock_guard<std::mutex> lock(session->stats_mutex);
    out = session->stats;
  }
  out.frames_retired = session->frames_retired.load();
  out.wall_ms = now_ms();
  out.backend_concurrent_hwm = backend_concurrent_high_water();
  return out;
}

std::vector<StageEvent> TrackerScheduler::stage_events(
    const SessionRef& session) const {
  if (!session) return {};
  const std::lock_guard<std::mutex> lock(session->events_mutex);
  return session->events;
}

// ---- device lane (the shared FPGA fabric) ----------------------------------

void TrackerScheduler::device_lane() {
  std::vector<SessionRef> snapshot;
  std::uint64_t seen_generation = 0;
  bool have_snapshot = false;
  std::size_t cursor = 0;
  while (!stop_.load()) {
    // Capture the signal level before scanning: any kick that lands during
    // the pass keeps the lane awake for another round.
    std::uint64_t signal_at_pass;
    {
      const std::lock_guard<std::mutex> lock(device_mutex_);
      signal_at_pass = device_signal_;
    }
    if (!have_snapshot ||
        sessions_generation_.load() != seen_generation) {
      const std::shared_lock<std::shared_mutex> lock(sessions_mutex_);
      snapshot = sessions_;
      seen_generation = sessions_generation_.load();
      have_snapshot = true;
    }
    // One fairness pass: every session gets exactly one step opportunity,
    // and the starting offset rotates so ties never favor low ids.
    bool progress = false;
    for (std::size_t k = 0; k < snapshot.size(); ++k) {
      if (stop_.load()) return;
      if (device_step(snapshot[(cursor + k) % snapshot.size()]))
        progress = true;
    }
    ++cursor;
    if (!progress) {
      // Nothing runnable: park until a feed, a retirement (barrier may
      // open, handoff slot may free) or a session change kicks the lane.
      std::unique_lock<std::mutex> lock(device_mutex_);
      device_cv_.wait(lock, [&] {
        return stop_.load() || device_signal_ != signal_at_pass;
      });
    }
  }
}

bool TrackerScheduler::device_step(const SessionRef& sp) {
  SchedulerSession& s = *sp;
  // Localization sessions never use the fabric: their frames are routed
  // to the ARM pool at feed time.
  if (s.localizer) return false;
  // Phase 1: a frame parked at the key-frame barrier (or waiting for
  // handoff-ring space).  Never block here — an unready session just
  // yields its turn to the other sessions.
  if (s.pending) {
    if (!s.pending_ready) {
      if (s.retired_through.load() < s.pending->index - 1) return false;
      finalize_match(s, *s.pending);
      s.pending_ready = true;
    }
    if (!s.handoff_q.try_push(std::move(*s.pending))) return false;
    s.pending.reset();
    s.pending_ready = false;
    enqueue_arm(sp);
    return true;
  }

  // Phase 2: dispatch the session's next fed frame onto the fabric.
  FrameInput input;
  if (!s.input_q.try_pop(input)) return false;
  kick_user(s);  // a ring slot freed: wake a parked feed()
  device_dispatches_total_->add();
  {
    const std::lock_guard<std::mutex> lock(s.stats_mutex);
    ++s.stats.device_dispatches;
  }
  FrameState fs = s.tracker->begin_frame(std::move(input));
  run_device_stage(s, fs, PipeStage::kFeatureExtraction, false);

  if (s.retired_through.load() >= fs.index - 1) {
    // Barrier already open: the match is authoritative immediately.
    run_device_stage(s, fs, PipeStage::kFeatureMatching, false);
    if (s.handoff_q.try_push(std::move(fs))) {
      enqueue_arm(sp);
    } else {
      s.pending = std::move(fs);
      s.pending_ready = true;
    }
  } else {
    // Previous frame still on the ARM side: speculate against the current
    // map (finalize_match() replays if a key frame moves the epoch), then
    // park at the barrier.  The speculative FM is wait-free even while
    // that ARM side is mid-update_map — match() borrows the map's current
    // published view instead of taking a lock — so one session's keyframe
    // insert no longer stalls FM dispatch for every session on this
    // shared lane.
    if (s.opts.speculative_match)
      run_device_stage(s, fs, PipeStage::kFeatureMatching, true);
    s.pending = std::move(fs);
    s.pending_ready = false;
  }
  return true;
}

void TrackerScheduler::run_device_stage(SchedulerSession& s, FrameState& fs,
                                        PipeStage stage, bool speculative) {
  // Fabric-occupancy span on the shared "device lane" track: includes the
  // pacer padding on purpose — the modeled platform's fabric is occupied
  // for the modeled duration, and that occupancy is what the Gantt's
  // resource row is for.  (to_string(stage) is a string literal, so it
  // satisfies the ring's static-name contract.)  The tracker's own FE/FM
  // spans on its session row cover the measured compute only.
  const double span_t0 = obs::trace_now_us();
  const double t0 = now_ms();
  if (stage == PipeStage::kFeatureExtraction) {
    s.tracker->extract(fs);
  } else {
    s.tracker->match(fs);
  }
  pace(s, stage, t0);
#if ESLAM_TRACE_ENABLED
  obs::trace_complete(device_track_, to_string(stage), span_t0,
                      obs::trace_now_us() - span_t0);
#else
  (void)span_t0;
#endif
  const int event = record(s, fs.index, PipeLane::kFpga, stage, t0, now_ms());
  if (speculative) {
    s.pending_speculated = true;
    s.pending_spec_event = event;
    speculative_matches_total_->add();
    const std::lock_guard<std::mutex> lock(s.stats_mutex);
    ++s.stats.speculative_matches;
  }
}

void TrackerScheduler::finalize_match(SchedulerSession& s, FrameState& fs) {
  // The barrier is open: frame fs.index - 1 has retired.  A speculative
  // match is authoritative iff no structural map change intervened.
  const bool speculation_holds =
      s.pending_speculated && s.tracker->matches_current(fs);
  if (!speculation_holds) {
    if (s.pending_speculated) {
      if (s.pending_spec_event >= 0) {
        const std::lock_guard<std::mutex> lock(s.events_mutex);
        s.events[static_cast<std::size_t>(s.pending_spec_event)].speculative =
            true;
      }
      replayed_matches_total_->add();
      const std::lock_guard<std::mutex> lock(s.stats_mutex);
      ++s.stats.replayed_matches;
    }
    run_device_stage(s, fs, PipeStage::kFeatureMatching, false);
  }
  s.pending_speculated = false;
  s.pending_spec_event = -1;
}

// ---- ARM worker pool -------------------------------------------------------

void TrackerScheduler::enqueue_arm(const SessionRef& session) {
  {
    const std::lock_guard<std::mutex> lock(work_mutex_);
    ++session->arm_backlog;
    if (session->arm_queued) return;  // the owning worker sees the backlog
    session->arm_queued = true;
    work_q_.push_back({session, now_ms()});
  }
  work_cv_.notify_one();
}

void TrackerScheduler::enqueue_backend(const SessionRef& session) {
  bool queued_any = false;
  {
    const std::lock_guard<std::mutex> lock(work_mutex_);
    SchedulerSession& s = *session;
    // Take every newly-frozen job ticket: the tracker marks each as
    // offered, so a ticket lives in exactly one place (queue or tracker).
    std::vector<Tracker::BackendJobTicket> tickets;
    s.tracker->take_backend_jobs(tickets);
    for (const Tracker::BackendJobTicket& t : tickets) {
      BackendQueueEntry entry;
      entry.session = session;
      entry.job_id = t.job_id;
      entry.cls =
          t.loop ? BackendJobClass::kLoopVerify : BackendJobClass::kRoutineBa;
      entry.enqueue_ms = now_ms();
      if (!backend_q_.push(entry.cls, std::move(entry), entry.enqueue_ms)) {
        // Lane full: hand the ticket back so the tracker re-offers it at
        // this session's next retirement.  Overload degrades to "backend
        // laps less often", never to unbounded queue growth.
        s.tracker->unoffer_backend_job(t.job_id);
        backend_jobs_rejected_total_->add();
        const std::lock_guard<std::mutex> stats_lock(s.stats_mutex);
        ++s.stats.backend_jobs_rejected;
        continue;
      }
      ++s.bg_queued;
      queued_any = true;
    }
  }
  if (queued_any) work_cv_.notify_all();
}

void TrackerScheduler::run_session_backend(const SessionRef& session,
                                           const BackendQueueEntry& entry) {
  SchedulerSession& s = *session;
  const double t0 = now_ms();
  s.tracker->run_backend_job(entry.job_id);
  const double elapsed = now_ms() - t0;
  {
    const std::lock_guard<std::mutex> lock(s.stats_mutex);
    ++s.stats.backend_jobs;
    if (entry.cls == BackendJobClass::kLoopVerify)
      ++s.stats.backend_loop_jobs;
    else
      ++s.stats.backend_ba_jobs;
    s.stats.backend_busy_ms += elapsed;
  }
  {
    const std::lock_guard<std::mutex> lock(work_mutex_);
    --s.bg_running;
    --bg_running_total_;
  }
  kick_user(s);  // remove_session / drain may be waiting on quiescence
}

void TrackerScheduler::arm_worker(int worker_index) {
  [[maybe_unused]] const obs::TrackId worker_track =
      worker_tracks_[static_cast<std::size_t>(worker_index)];
  for (;;) {
    SessionRef session;
    BackendQueueEntry entry;
    bool backend_job = false;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [&] {
        return stop_.load() || !work_q_.empty() || !backend_q_.empty();
      });
      if (stop_.load()) return;
      if (!work_q_.empty()) {
        // Tracking stages always outrank the background lane: backend
        // jobs run on pool slack only.
        WorkItem item = work_q_.pop_front();
        session = std::move(item.session);
        // Dispatch wait: how long the session's first pending frame sat
        // behind a fully-busy pool before any worker picked it up.
        dispatch_wait_hist_->record(now_ms() - item.enqueue_ms);
      } else {
        entry = std::move(*backend_q_.pop(now_ms()));
        session = entry.session;
        SchedulerSession& s = *session;
        --s.bg_queued;
        ++s.bg_running;
        ++bg_running_total_;
        bg_running_hwm_ = std::max(bg_running_hwm_, bg_running_total_);
        backend_concurrent_gauge_->update(bg_running_total_);
        backend_jobs_total_->add();
        backend_job = true;
        // Per-class queue latency: how long the job sat behind tracking
        // work and (for BA) behind loop verifications.  (The registry's
        // eslam_backend_queue_wait_ms histograms got the same wait inside
        // pop() above.)
        const double waited = now_ms() - entry.enqueue_ms;
        const std::lock_guard<std::mutex> stats_lock(s.stats_mutex);
        if (entry.cls == BackendJobClass::kLoopVerify) {
          s.stats.backend_loop_queue_ms += waited;
          s.stats.backend_loop_queue_max_ms =
              std::max(s.stats.backend_loop_queue_max_ms, waited);
        } else {
          s.stats.backend_ba_queue_ms += waited;
        }
      }
    }
    if (backend_job) {
      // Pool-occupancy span on this worker's resource row; the job class
      // detail lives on the session's own backend track (tracker.cpp).
      ESLAM_TRACE_SCOPE(worker_track, "backend-job");
      run_session_backend(session, entry);
    } else {
      ESLAM_TRACE_SCOPE(worker_track, "serve-session");
      run_session_arm(session);
    }
  }
}

void TrackerScheduler::run_session_localization(const SessionRef& session) {
  SchedulerSession& s = *session;
  // Same ownership protocol as run_session_arm: this worker owns the
  // session until its backlog is empty, so frames of one localization
  // session run serially in feed order (bit-identical to a solo
  // sequential run) while other workers serve other sessions — including
  // other localizers over the same FrozenMap, which read it lock-free.
  for (;;) {
    if (stop_.load()) return;  // abandon like the lanes on shutdown
    {
      const std::lock_guard<std::mutex> lock(work_mutex_);
      if (s.arm_backlog == 0) {
        s.arm_queued = false;
        return;
      }
      --s.arm_backlog;
    }
    FrameInput input;
    const bool popped = s.input_q.try_pop(input);
    // The input push happens-before the backlog increment (push_input
    // enqueues after the ring push), so a claimed unit finds its frame.
    ESLAM_ASSERT(popped, "localization backlog out of sync with input ring");
    kick_user(s);  // a ring slot freed: wake a parked feed()

    // The whole frame — FE/FM/PE/PO, no MU — as one ARM unit.  No pacer
    // and no event log: there is no modeled fabric stage in this tier.
    const double t0 = now_ms();
    TrackResult result = s.localizer->process(input);
    const double end = now_ms();
    {
      const std::lock_guard<std::mutex> lock(s.stats_mutex);
      s.stats.arm_busy_ms += end - t0;
      if (result.reloc_attempted) {
        ++s.stats.reloc_attempts;
        if (result.relocalized) ++s.stats.reloc_succeeded;
        if (result.match_tier == MatchTier::kBruteForce)
          ++s.stats.reloc_fallbacks;
      }
    }
    // Tier-wide lifetime counters (survive session close).
    if (result.reloc_attempted) {
      loc_coldstart_attempts_.fetch_add(1);
      if (result.relocalized) loc_coldstart_successes_.fetch_add(1);
    }

    const int index = s.frames_retired.load();
    s.retired_through.store(index);
    s.frames_retired.fetch_add(1);
    {
      const std::lock_guard<std::mutex> lock(s.results_mutex);
      s.results.push_back(std::move(result));
    }
    kick_user(s);  // delivers a result (parked drain()/remove())
  }
}

void TrackerScheduler::run_session_arm(const SessionRef& session) {
  SchedulerSession& s = *session;
  if (s.localizer) return run_session_localization(session);
  // This worker owns the session (arm_queued == true) until the backlog is
  // empty — ARM stages of one session therefore run serially in frame
  // order, while other workers serve other sessions.
  for (;;) {
    if (stop_.load()) return;  // abandon like the lanes on shutdown
    {
      const std::lock_guard<std::mutex> lock(work_mutex_);
      if (s.arm_backlog == 0) {
        s.arm_queued = false;
        return;
      }
      --s.arm_backlog;
    }
    FrameState fs;
    const bool popped = s.handoff_q.try_pop(fs);
    // The handoff push happens-before the backlog increment (both sides of
    // work_mutex_), so a claimed backlog unit always finds its frame.
    ESLAM_ASSERT(popped, "ARM backlog out of sync with handoff ring");

    double t0 = now_ms();
    s.tracker->estimate_pose(fs);
    pace(s, PipeStage::kPoseEstimation, t0);
    record(s, fs.index, PipeLane::kArm, PipeStage::kPoseEstimation, t0,
           now_ms());

    t0 = now_ms();
    s.tracker->optimize_pose(fs);
    pace(s, PipeStage::kPoseOptimization, t0);
    record(s, fs.index, PipeLane::kArm, PipeStage::kPoseOptimization, t0,
           now_ms());

    t0 = now_ms();
    const int index = fs.index;
    TrackResult result = s.tracker->update_map(fs);
    pace(s, PipeStage::kMapUpdating, t0);
    record(s, index, PipeLane::kArm, PipeStage::kMapUpdating, t0, now_ms());
    // The frame is retired: hand its shell (buffers + arena) back to the
    // tracker so begin_frame() on the device lane reuses the memory.
    s.tracker->recycle_frame(std::move(fs));

    // Map-maintenance visibility: fold the per-frame counters into the
    // session stats so long-lived services see them without keeping every
    // TrackResult around.
    {
      const std::lock_guard<std::mutex> lock(s.stats_mutex);
      s.stats.points_pruned += result.n_points_pruned;
      s.stats.backend_points_culled += result.n_points_culled;
      s.stats.backend_points_fused += result.n_points_fused;
      if (result.backend_applied) ++s.stats.backend_deltas_applied;
      if (result.reloc_attempted) {
        ++s.stats.reloc_attempts;
        if (result.relocalized) ++s.stats.reloc_succeeded;
        if (result.match_tier == MatchTier::kBruteForce)
          ++s.stats.reloc_fallbacks;
      }
      if (result.loop_closed) ++s.stats.loops_closed;
    }

    // A keyframe may have frozen backend jobs (shard BAs and/or a loop
    // verification): offer them to the background lane (no-op when the
    // backend is idle or disabled).  This MUST precede the retirement
    // publication below — touching the tracker after the session's last
    // retirement is visible would race remove_session() destroying it,
    // and enqueuing first also makes the bg_queued count visible to any
    // remover that observes the retirement (both sides synchronize on
    // work_mutex_).
    if (s.tracker->backend_job_pending()) enqueue_backend(session);

    // Publish retirement before delivering the result: the device lane's
    // key-frame barrier must not wait on the user's poll cadence.
    s.retired_through.store(index);
    s.frames_retired.fetch_add(1);
    {
      const std::lock_guard<std::mutex> lock(s.results_mutex);
      s.results.push_back(std::move(result));
    }
    // A retirement can open this session's barrier or free a handoff slot
    // (device lane), and delivers a result (parked drain()/close()).
    kick_device();
    kick_user(s);
  }
}

}  // namespace eslam
