// Lane abstraction shared by the Figure-7 runtime: which heterogeneous
// unit executes a stage (the simulated FPGA fabric vs the ARM host), the
// five pipeline stages, the timestamped stage-event record, and the
// per-stream occupancy/progress statistics.  Both the single-stream
// PipelineExecutor and the multi-session TrackerScheduler speak in these
// terms, so stage logs from either are directly comparable.
#pragma once

namespace eslam {

enum class PipeLane { kFpga, kArm };
enum class PipeStage {
  kFeatureExtraction,
  kFeatureMatching,
  kPoseEstimation,
  kPoseOptimization,
  kMapUpdating,  // includes commit (trajectory/motion-model bookkeeping)
};

const char* to_string(PipeLane lane);
const char* to_string(PipeStage stage);

// One stage execution on one lane, timestamped on the runtime's wall
// clock (ms since construction).  `speculative` marks a feature-matching
// run that a key frame later invalidated; the replayed (authoritative)
// run appears as a separate non-speculative event.
struct StageEvent {
  int frame = 0;
  PipeLane lane = PipeLane::kFpga;
  PipeStage stage = PipeStage::kFeatureExtraction;
  double start_ms = 0;
  double end_ms = 0;
  bool speculative = false;
};

// Per-stream progress and lane-occupancy statistics.  For a
// PipelineExecutor this covers its single stream; for a TrackerScheduler
// session it covers that session only (lane busy-ms are the shared lane's
// time spent on *this* stream's stages).
struct PipelineStats {
  int frames_fed = 0;
  int frames_retired = 0;       // through map updating / commit
  int max_in_flight = 0;        // max frames_fed - frames_retired observed
  int speculative_matches = 0;  // FM runs issued before the barrier cleared
  int replayed_matches = 0;     // ...of those, discarded by a key frame
  int rejected_feeds = 0;       // try_feed() calls bounced by back-pressure
  int device_dispatches = 0;    // device-lane scheduling turns consumed
  double fpga_busy_ms = 0;      // summed FE+FM wall time (lane occupancy)
  double arm_busy_ms = 0;       // summed PE+PO+MU wall time
  double wall_ms = 0;           // runtime lifetime so far

  // Local-mapping backend (the background-job lane), per session:
  int backend_jobs = 0;           // backend jobs executed on the ARM pool
  int backend_ba_jobs = 0;        // ...of those, routine shard-BA jobs
  int backend_loop_jobs = 0;      // ...of those, loop-verification jobs
  int backend_jobs_rejected = 0;  // bounded background-queue overflow skips
  int backend_deltas_applied = 0; // deltas folded into the map at keyframes
  double backend_busy_ms = 0;     // summed job wall time (pool occupancy)
  // Queue latency per class: time from freeze-enqueue to a worker pop.
  // Averages are <sum>/<class job count>; the max shows the worst stall a
  // loop verification ate behind tracking work + queued BA.
  double backend_ba_queue_ms = 0;
  double backend_loop_queue_ms = 0;
  double backend_loop_queue_max_ms = 0;
  // Most backend jobs simultaneously running on the pool — scheduler-wide
  // (not per session): the witness that disjoint shards overlap in time.
  int backend_concurrent_hwm = 0;
  // Map maintenance visibility, accumulated from retired TrackResults:
  long long points_pruned = 0;        // age-pruned by map updating
  long long backend_points_culled = 0;  // removed by BA (bad geometry)
  long long backend_points_fused = 0;   // removed by BA (duplicates)

  // Recovery/correction visibility, accumulated from retired TrackResults
  // (a lost tracker used to burn full-map matches with no signal here):
  int reloc_attempts = 0;   // post-loss frames that engaged the index tier
  int reloc_succeeded = 0;  // ...that recovered a pose
  int reloc_fallbacks = 0;  // ...where the index came up empty and the
                            //    map-wide brute force ran instead
  int loops_closed = 0;     // frames whose map update applied a verified
                            //    loop-closure correction
};

}  // namespace eslam
