// Concurrent frame-level pipeline runtime — the paper's Figure 7 schedule
// made real.  Two worker lanes model the heterogeneous platform:
//
//   FPGA lane: feature extraction + feature matching of frame N+1
//   ARM lane:  pose estimation + pose optimization + map updating of frame N
//
// The lanes overlap, so on normal frames the steady-state per-frame cost
// approaches max(FE + FM, PE + PO) instead of the sequential sum.  The
// paper's key-frame dependency — feature matching of frame N+1 must see
// the map *after* map updating of frame N — is enforced by speculation:
// FM runs optimistically against the current map while frame N is still
// on the ARM lane, and is replayed after frame N retires if its map
// update structurally changed the map (key frames; detected via the map's
// epoch counter).  The final match therefore always equals what the
// sequential schedule would compute, so streaming results are
// bit-identical to Tracker::process() on the same input order.
//
// Results are delivered strictly in feed order (the ARM lane is serial in
// frame order).  All three stage queues are bounded SPSC rings; a full
// input queue surfaces as back-pressure through try_feed().
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/spsc_queue.h"
#include "slam/tracker.h"

namespace eslam {

enum class PipeLane { kFpga, kArm };
enum class PipeStage {
  kFeatureExtraction,
  kFeatureMatching,
  kPoseEstimation,
  kPoseOptimization,
  kMapUpdating,  // includes commit (trajectory/motion-model bookkeeping)
};

const char* to_string(PipeLane lane);
const char* to_string(PipeStage stage);

// One stage execution on one lane, timestamped on the executor's wall
// clock (ms since construction).  `speculative` marks a feature-matching
// run that a key frame later invalidated; the replayed (authoritative)
// run appears as a separate non-speculative event.
struct StageEvent {
  int frame = 0;
  PipeLane lane = PipeLane::kFpga;
  PipeStage stage = PipeStage::kFeatureExtraction;
  double start_ms = 0;
  double end_ms = 0;
  bool speculative = false;
};

struct PipelineOptions {
  // Depth of each bounded stage queue (input, inter-lane, result).
  int queue_capacity = 4;
  // Run FM of frame N+1 concurrently with ARM work of frame N, replaying
  // it when frame N turns out to be a key frame.  Disabling serializes FM
  // behind frame N's retirement (no overlap with PE/PO, as if every frame
  // paid the key-frame dependency).
  bool speculative_match = true;
  // Keep the per-stage event log (stage_events()); cheap, but unbounded
  // in stream length, so long-running deployments may turn it off.
  bool record_events = true;
};

struct PipelineStats {
  int frames_fed = 0;
  int frames_retired = 0;       // through map updating / commit
  int max_in_flight = 0;        // max frames_fed - frames_retired observed
  int speculative_matches = 0;  // FM runs issued before the barrier cleared
  int replayed_matches = 0;     // ...of those, discarded by a key frame
  int rejected_feeds = 0;       // try_feed() calls bounced by back-pressure
  double fpga_busy_ms = 0;      // summed FE+FM wall time (lane occupancy)
  double arm_busy_ms = 0;       // summed PE+PO+MU wall time
  double wall_ms = 0;           // executor lifetime so far
};

class PipelineExecutor {
 public:
  // The tracker must outlive the executor and must not be driven through
  // process() while the executor owns it.
  explicit PipelineExecutor(Tracker& tracker,
                            const PipelineOptions& options = {});
  ~PipelineExecutor();

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  // Non-blocking feed; false when the input queue is full (back-pressure).
  bool try_feed(FrameInput frame);
  // Blocking feed: waits for queue space.  While waiting (and on every
  // poll()) finished results are offloaded from the bounded result ring
  // into a user-side delivery buffer, so a caller that feeds a long batch
  // before polling can never deadlock the ARM lane on result delivery —
  // back-pressure is governed by the input queue alone.
  void feed(FrameInput frame);

  // Next result in feed order, if one is ready.
  std::optional<TrackResult> poll();
  // Blocks until every fed frame has retired and returns the not-yet-polled
  // results (in order).  The pipeline is reusable afterwards.
  std::vector<TrackResult> drain();

  // Frames fed but not yet retired through map updating.
  int in_flight() const {
    return frames_fed_.load() - frames_retired_.load();
  }

  PipelineStats stats() const;
  std::vector<StageEvent> stage_events() const;

 private:
  void fpga_lane();
  void arm_lane();
  // Push + feed bookkeeping; leaves `frame` intact and returns false when
  // the input queue is full.
  bool push_input(FrameInput& frame);
  // Moves finished results out of the bounded result ring into the
  // user-side delivery buffer (user thread only).
  void offload_results();
  double now_ms() const;
  // Appends an event (when recording) and returns its index, or -1.
  int record(int frame, PipeLane lane, PipeStage stage, double start_ms,
             double end_ms);
  // Waits until `pred` holds or stop is requested; returns !stopped.
  template <typename Pred>
  bool wait_until(Pred pred) const;

  Tracker& tracker_;
  PipelineOptions options_;
  std::chrono::steady_clock::time_point epoch_;

  SpscRing<FrameInput> input_q_;   // user -> FPGA lane
  SpscRing<FrameState> handoff_q_; // FPGA lane -> ARM lane
  SpscRing<TrackResult> result_q_; // ARM lane -> user
  // Results already offloaded from result_q_, awaiting poll().  Touched
  // only by the user thread (feed/try_feed/poll/drain are single-caller).
  std::deque<TrackResult> delivered_;

  std::atomic<int> frames_fed_{0};
  std::atomic<int> frames_retired_{0};
  std::atomic<int> frames_delivered_{0};  // results handed out via poll()
  std::atomic<int> retired_through_{-1};  // highest retired frame index
  std::atomic<bool> stop_{false};

  mutable std::mutex stats_mutex_;
  PipelineStats stats_;

  mutable std::mutex events_mutex_;
  std::vector<StageEvent> events_;

  std::thread fpga_thread_;
  std::thread arm_thread_;
};

}  // namespace eslam
