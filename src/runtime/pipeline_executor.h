// Single-stream view of the Figure-7 runtime.
//
// The concurrent schedule itself — FPGA lane running FE+FM of frame N+1
// against ARM work of frame N, bounded SPSC stage queues, the key-frame
// barrier enforced by epoch-checked speculative matching — lives in
// TrackerScheduler, which multiplexes N sessions over one shared device
// lane and an ARM worker pool.  PipelineExecutor is that scheduler
// instantiated for exactly one session with one ARM worker: the original
// two-lane pipeline of the paper, and the execution engine behind
// System's ExecutionMode::kPipelined.  Results are delivered strictly in
// feed order and are bit-identical to Tracker::process() on the same
// input order (see tracker_scheduler.h for the replay argument).
#pragma once

#include <optional>
#include <vector>

#include "runtime/lane.h"
#include "runtime/tracker_scheduler.h"

namespace eslam {

struct PipelineOptions {
  // Depth of each bounded stage queue (input, inter-lane).
  int queue_capacity = 4;
  // Run FM of frame N+1 concurrently with ARM work of frame N, replaying
  // it when frame N turns out to be a key frame.  Disabling serializes FM
  // behind frame N's retirement (no overlap with PE/PO, as if every frame
  // paid the key-frame dependency).
  bool speculative_match = true;
  // Keep the per-stage event log (stage_events()); cheap, but unbounded
  // in stream length, so long-running deployments may turn it off.
  bool record_events = true;
};

class PipelineExecutor {
 public:
  // The tracker must outlive the executor and must not be driven through
  // process() while the executor owns it.
  explicit PipelineExecutor(Tracker& tracker,
                            const PipelineOptions& options = {});

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  // Non-blocking feed; false when the input queue is full (back-pressure).
  bool try_feed(FrameInput frame) {
    return scheduler_.try_feed(session_, std::move(frame));
  }
  // Blocking feed: waits for queue space.  Result delivery is unbounded on
  // the user side, so a caller that feeds a long batch before polling can
  // never deadlock the ARM lane — back-pressure is governed by the input
  // queue alone.
  void feed(FrameInput frame) { scheduler_.feed(session_, std::move(frame)); }

  // Next result in feed order, if one is ready.
  std::optional<TrackResult> poll() { return scheduler_.poll(session_); }
  // Blocks until every fed frame has retired and returns the not-yet-polled
  // results (in order).  The pipeline is reusable afterwards.
  std::vector<TrackResult> drain() { return scheduler_.drain(session_); }

  // Frames fed but not yet retired through map updating.
  int in_flight() const { return scheduler_.in_flight(session_); }

  PipelineStats stats() const { return scheduler_.stats(session_); }
  std::vector<StageEvent> stage_events() const {
    return scheduler_.stage_events(session_);
  }

 private:
  TrackerScheduler scheduler_;  // one device lane + one ARM worker
  SessionRef session_;
};

}  // namespace eslam
