#include "runtime/pipeline_executor.h"

namespace eslam {

namespace {

SchedulerSessionOptions to_session_options(const PipelineOptions& options) {
  SchedulerSessionOptions session;
  session.queue_capacity = options.queue_capacity;
  session.speculative_match = options.speculative_match;
  session.record_events = options.record_events;
  return session;
}

}  // namespace

PipelineExecutor::PipelineExecutor(Tracker& tracker,
                                   const PipelineOptions& options)
    : scheduler_(SchedulerOptions{/*arm_workers=*/1}),
      session_(scheduler_.add_session(tracker, to_session_options(options))) {}

}  // namespace eslam
