#include "runtime/pipeline_executor.h"

#include <algorithm>

namespace eslam {

namespace {

// Spin briefly, then back off to short sleeps: the waits here bridge
// millisecond-scale stages, so a 50 us backoff costs <1% latency while
// keeping idle lanes off the scheduler's runqueue.
class Backoff {
 public:
  void pause() {
    if (spins_ < 256) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

 private:
  int spins_ = 0;
};

}  // namespace

const char* to_string(PipeLane lane) {
  return lane == PipeLane::kFpga ? "FPGA" : "ARM";
}

const char* to_string(PipeStage stage) {
  switch (stage) {
    case PipeStage::kFeatureExtraction: return "FE";
    case PipeStage::kFeatureMatching: return "FM";
    case PipeStage::kPoseEstimation: return "PE";
    case PipeStage::kPoseOptimization: return "PO";
    case PipeStage::kMapUpdating: return "MU";
  }
  return "?";
}

PipelineExecutor::PipelineExecutor(Tracker& tracker,
                                   const PipelineOptions& options)
    : tracker_(tracker),
      options_(options),
      epoch_(std::chrono::steady_clock::now()),
      input_q_(static_cast<std::size_t>(std::max(1, options.queue_capacity))),
      handoff_q_(static_cast<std::size_t>(std::max(1, options.queue_capacity))),
      result_q_(static_cast<std::size_t>(std::max(1, options.queue_capacity))) {
  fpga_thread_ = std::thread(&PipelineExecutor::fpga_lane, this);
  arm_thread_ = std::thread(&PipelineExecutor::arm_lane, this);
}

PipelineExecutor::~PipelineExecutor() {
  stop_.store(true);
  fpga_thread_.join();
  arm_thread_.join();
}

double PipelineExecutor::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int PipelineExecutor::record(int frame, PipeLane lane, PipeStage stage,
                             double start_ms, double end_ms) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    (lane == PipeLane::kFpga ? stats_.fpga_busy_ms : stats_.arm_busy_ms) +=
        end_ms - start_ms;
  }
  if (!options_.record_events) return -1;
  const std::lock_guard<std::mutex> lock(events_mutex_);
  events_.push_back({frame, lane, stage, start_ms, end_ms, false});
  return static_cast<int>(events_.size()) - 1;
}

template <typename Pred>
bool PipelineExecutor::wait_until(Pred pred) const {
  Backoff backoff;
  while (!pred()) {
    if (stop_.load()) return false;
    backoff.pause();
  }
  return true;
}

bool PipelineExecutor::push_input(FrameInput& frame) {
  if (!input_q_.try_push(std::move(frame))) return false;
  const int in_flight =
      frames_fed_.fetch_add(1) + 1 - frames_retired_.load();
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.frames_fed;
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight);
  return true;
}

bool PipelineExecutor::try_feed(FrameInput frame) {
  if (push_input(frame)) return true;
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.rejected_feeds;
  return false;
}

void PipelineExecutor::feed(FrameInput frame) {
  Backoff backoff;
  while (!push_input(frame)) {
    // Keep the result ring draining while we wait, otherwise a batch
    // larger than the total queue capacity would wedge: ARM blocked on
    // result delivery -> barrier never advances -> input never empties.
    offload_results();
    backoff.pause();
  }
}

void PipelineExecutor::offload_results() {
  TrackResult result;
  while (result_q_.try_pop(result)) delivered_.push_back(std::move(result));
}

std::optional<TrackResult> PipelineExecutor::poll() {
  offload_results();
  if (delivered_.empty()) return std::nullopt;
  TrackResult result = std::move(delivered_.front());
  delivered_.pop_front();
  frames_delivered_.fetch_add(1);
  return result;
}

std::vector<TrackResult> PipelineExecutor::drain() {
  std::vector<TrackResult> results;
  Backoff backoff;
  // Wait on delivery, not retirement: the ARM lane publishes retirement
  // *before* pushing the result, so a retired-but-unpushed frame must
  // still hold the drain open.
  while (frames_delivered_.load() < frames_fed_.load()) {
    if (auto r = poll()) {
      results.push_back(std::move(*r));
    } else {
      backoff.pause();
    }
  }
  return results;
}

PipelineStats PipelineExecutor::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  PipelineStats s = stats_;
  s.frames_retired = frames_retired_.load();
  s.wall_ms = now_ms();
  return s;
}

std::vector<StageEvent> PipelineExecutor::stage_events() const {
  const std::lock_guard<std::mutex> lock(events_mutex_);
  return events_;
}

void PipelineExecutor::fpga_lane() {
  for (;;) {
    FrameInput input;
    if (!wait_until([&] { return input_q_.try_pop(input); })) return;
    FrameState fs = tracker_.begin_frame(std::move(input));

    double t0 = now_ms();
    tracker_.extract(fs);
    record(fs.index, PipeLane::kFpga, PipeStage::kFeatureExtraction, t0,
           now_ms());

    // Speculative FM: frame fs.index-1 is (possibly) still on the ARM
    // lane, so its key-frame status is unknown — match against the
    // current map anyway and replay below if a map update intervenes.
    bool speculated = false;
    int spec_event = -1;
    if (options_.speculative_match &&
        retired_through_.load() < fs.index - 1) {
      t0 = now_ms();
      tracker_.match(fs);
      spec_event = record(fs.index, PipeLane::kFpga,
                          PipeStage::kFeatureMatching, t0, now_ms());
      speculated = true;
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.speculative_matches;
    }

    // Keyframe barrier: the authoritative match must see the map state
    // after frame fs.index-1's map updating, so wait for its retirement
    // before validating (or running) the match.
    if (!wait_until([&] { return retired_through_.load() >= fs.index - 1; }))
      return;
    if (!speculated || !tracker_.matches_current(fs)) {
      if (speculated) {
        if (spec_event >= 0) {
          const std::lock_guard<std::mutex> lock(events_mutex_);
          events_[static_cast<std::size_t>(spec_event)].speculative = true;
        }
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.replayed_matches;
      }
      t0 = now_ms();
      tracker_.match(fs);
      record(fs.index, PipeLane::kFpga, PipeStage::kFeatureMatching, t0,
             now_ms());
    }

    if (!wait_until([&] { return handoff_q_.try_push(std::move(fs)); }))
      return;
  }
}

void PipelineExecutor::arm_lane() {
  for (;;) {
    FrameState fs;
    if (!wait_until([&] { return handoff_q_.try_pop(fs); })) return;

    double t0 = now_ms();
    tracker_.estimate_pose(fs);
    record(fs.index, PipeLane::kArm, PipeStage::kPoseEstimation, t0,
           now_ms());

    t0 = now_ms();
    tracker_.optimize_pose(fs);
    record(fs.index, PipeLane::kArm, PipeStage::kPoseOptimization, t0,
           now_ms());

    t0 = now_ms();
    const int index = fs.index;
    TrackResult result = tracker_.update_map(fs);
    record(index, PipeLane::kArm, PipeStage::kMapUpdating, t0, now_ms());

    // Publish retirement before delivering the result: the FPGA lane's
    // keyframe barrier must not wait on the user's poll cadence.
    retired_through_.store(index);
    frames_retired_.fetch_add(1);

    if (!wait_until([&] { return result_q_.try_push(std::move(result)); }))
      return;
  }
}

}  // namespace eslam
