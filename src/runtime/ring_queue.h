// Vector-backed FIFO with amortized-zero allocation.
//
// std::deque is unsuitable for the scheduler's steady-state queues: the
// libstdc++ implementation allocates and frees a chunk node roughly every
// 64 cycled elements even when the queue stays small, which breaks the
// zero-allocation-per-frame guarantee.  RingQueue keeps one contiguous
// buffer that only grows (doubling) until it covers the high-water depth,
// after which push/pop never touch the heap.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "geometry/assert.h"

namespace eslam {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  explicit RingQueue(std::size_t initial_capacity) {
    buf_.resize(initial_capacity);
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) % buf_.size()] = std::move(value);
    ++count_;
  }

  T& front() {
    ESLAM_ASSERT(count_ > 0, "front() on empty RingQueue");
    return buf_[head_];
  }

  T pop_front() {
    ESLAM_ASSERT(count_ > 0, "pop_front() on empty RingQueue");
    T value = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --count_;
    return value;
  }

  void clear() {
    while (count_ > 0) (void)pop_front();
  }

  // Removes every element equal to `value`, preserving FIFO order of the
  // rest.  O(n); used only on the cold session-teardown path.
  std::size_t remove(const T& value) {
    std::size_t kept = 0, removed = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      T& slot = buf_[(head_ + i) % buf_.size()];
      if (slot == value) {
        ++removed;
        continue;
      }
      if (kept != i) buf_[(head_ + kept) % buf_.size()] = std::move(slot);
      ++kept;
    }
    for (std::size_t i = kept; i < count_; ++i)
      buf_[(head_ + i) % buf_.size()] = T{};
    count_ = kept;
    return removed;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) % buf_.size()]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace eslam
