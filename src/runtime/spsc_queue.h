// Bounded single-producer / single-consumer ring for the pipeline stage
// queues (runtime/pipeline_executor.*), modeling the FIFOs between the
// FPGA fabric and the ARM host.
//
// All slot storage is allocated once at construction — the stage hot path
// itself never allocates (the LoopModels bump-allocator idiom applied to
// queueing): push/pop move elements through preallocated slots, and the
// two ends synchronize with one atomic index each, so a full/empty queue
// surfaces as back-pressure (`try_push`/`try_pop` returning false) rather
// than as memory growth.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace eslam {

template <typename T>
class SpscRing {
 public:
  // One sentinel slot distinguishes full from empty, so `capacity` usable
  // elements need capacity + 1 slots.
  explicit SpscRing(std::size_t capacity) : slots_(capacity + 1) {}

  // Producer side.  Returns false (and leaves `value` untouched) when the
  // ring is full.
  bool try_push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = advance(head);
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[tail]);
    tail_.store(advance(tail), std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return slots_.size() - 1; }

  // Approximate when producer/consumer are live; exact when quiescent.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : head + slots_.size() - tail;
  }
  bool empty() const { return size() == 0; }

 private:
  std::size_t advance(std::size_t i) const {
    return i + 1 == slots_.size() ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::atomic<std::size_t> head_{0};  // next slot the producer writes
  std::atomic<std::size_t> tail_{0};  // next slot the consumer reads
};

}  // namespace eslam
