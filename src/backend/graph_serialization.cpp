#include "backend/graph_serialization.h"

#include <cmath>
#include <limits>

namespace eslam::backend {

namespace {

// Fixed record sizes, used to bound counts against the remaining bytes
// BEFORE reserving storage (a hostile count must not drive an OOM-sized
// reserve).
constexpr std::size_t kKeyframeHeaderBytes =
    4 +            // frame_index
    12 * 8 +       // pose: 9 rotation + 3 translation doubles
    8;             // observation count
constexpr std::size_t kObservationBytes =
    8 +            // point_id
    2 * 8 +        // pixel
    4 * 8 +        // descriptor words
    3 * 8;         // point_cam

bool finite(double v) { return std::isfinite(v); }

void write_pose(const SE3& pose, ByteWriter& out) {
  const Mat3& r = pose.rotation();
  for (int row = 0; row < 3; ++row)
    for (int col = 0; col < 3; ++col) out.f64(r(row, col));
  for (int i = 0; i < 3; ++i) out.f64(pose.translation()[i]);
}

bool read_pose(ByteReader& in, SE3& pose) {
  Mat3 r;
  Vec3 t;
  bool all_finite = true;
  for (int row = 0; row < 3; ++row)
    for (int col = 0; col < 3; ++col) {
      r(row, col) = in.f64();
      all_finite = all_finite && finite(r(row, col));
    }
  for (int i = 0; i < 3; ++i) {
    t[i] = in.f64();
    all_finite = all_finite && finite(t[i]);
  }
  pose = SE3{r, t};
  return in.ok() && all_finite;
}

}  // namespace

std::vector<Keyframe> collect_keyframes(const KeyframeGraph& graph) {
  std::vector<Keyframe> out;
  out.reserve(graph.size());
  const int first = graph.first_live_id();
  for (int id = first; id < first + static_cast<int>(graph.size()); ++id)
    out.push_back(graph.keyframe(id));
  return out;
}

void write_graph_section(const KeyframeGraphOptions& options,
                         std::span<const Keyframe> keyframes, ByteWriter& out) {
  out.i32(options.min_weight);
  out.i32(options.max_keyframes);
  out.u64(keyframes.size());
  for (const Keyframe& kf : keyframes) {
    out.i32(kf.frame_index);
    write_pose(kf.pose_cw, out);
    out.u64(kf.observations.size());
    for (const KeyframeObservation& obs : kf.observations) {
      out.i64(obs.point_id);
      out.f64(obs.pixel[0]);
      out.f64(obs.pixel[1]);
      for (int w = 0; w < Descriptor256::kWords; ++w)
        out.u64(obs.descriptor.words()[w]);
      for (int i = 0; i < 3; ++i) out.f64(obs.point_cam[i]);
    }
  }
}

bool read_graph_section(ByteReader& in, std::int64_t next_point_id,
                        KeyframeGraphOptions& options,
                        std::vector<Keyframe>& keyframes, std::string* error) {
  const auto reject = [&](const std::string& why) {
    in.fail(why);
    if (error) *error = in.error();
    return false;
  };

  options.min_weight = in.i32();
  options.max_keyframes = in.i32();
  if (!in.ok()) return reject(in.error());
  if (options.min_weight < 0 || options.min_weight > (1 << 20))
    return reject("graph min_weight out of range");
  if (options.max_keyframes < 0 || options.max_keyframes > (1 << 20))
    return reject("graph max_keyframes out of range");

  const std::uint64_t n_keyframes = in.u64();
  if (!in.ok()) return reject(in.error());
  if (n_keyframes > in.remaining() / kKeyframeHeaderBytes)
    return reject("keyframe count exceeds stream size");

  keyframes.clear();
  keyframes.reserve(static_cast<std::size_t>(n_keyframes));
  for (std::uint64_t k = 0; k < n_keyframes; ++k) {
    Keyframe kf;
    kf.frame_index = in.i32();
    if (!read_pose(in, kf.pose_cw))
      return reject(in.ok() ? "non-finite keyframe pose" : in.error());
    if (kf.frame_index < 0) return reject("negative keyframe frame index");
    const std::uint64_t n_obs = in.u64();
    if (!in.ok()) return reject(in.error());
    if (n_obs > in.remaining() / kObservationBytes)
      return reject("observation count exceeds stream size");
    kf.observations.reserve(static_cast<std::size_t>(n_obs));
    for (std::uint64_t o = 0; o < n_obs; ++o) {
      KeyframeObservation obs;
      obs.point_id = in.i64();
      obs.pixel[0] = in.f64();
      obs.pixel[1] = in.f64();
      for (int w = 0; w < Descriptor256::kWords; ++w)
        obs.descriptor.words()[w] = in.u64();
      for (int i = 0; i < 3; ++i) obs.point_cam[i] = in.f64();
      if (!in.ok()) return reject(in.error());
      // The out-of-range check: a keyframe may observe a point the map has
      // since pruned (that is the recovery substrate's whole value), but
      // never an id the map has not issued yet.
      if (obs.point_id < 0 || obs.point_id >= next_point_id)
        return reject("keyframe observation references an unissued point id");
      if (!finite(obs.pixel[0]) || !finite(obs.pixel[1]) ||
          !finite(obs.point_cam[0]) || !finite(obs.point_cam[1]) ||
          !finite(obs.point_cam[2]))
        return reject("non-finite keyframe observation");
      kf.observations.push_back(obs);
    }
    keyframes.push_back(std::move(kf));
  }
  return true;
}

KeyframeGraph rebuild_graph(const KeyframeGraphOptions& options,
                            std::span<const Keyframe> keyframes) {
  KeyframeGraph graph(options);
  for (const Keyframe& kf : keyframes)
    graph.add_keyframe(kf.frame_index, kf.pose_cw, kf.observations);
  return graph;
}

void rebuild_index(const KeyframeGraph& graph, KeyframeIndex& index) {
  const int first = graph.first_live_id();
  for (int id = first; id < first + static_cast<int>(graph.size()); ++id)
    index.add_keyframe(id, graph.keyframe(id).observations);
}

}  // namespace eslam::backend
