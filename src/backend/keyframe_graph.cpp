#include "backend/keyframe_graph.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "geometry/assert.h"

namespace eslam::backend {

namespace {

// Shared-point count of two observation lists sorted by point_id.
int shared_points(const std::vector<KeyframeObservation>& a,
                  const std::vector<KeyframeObservation>& b) {
  int shared = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].point_id < b[j].point_id) {
      ++i;
    } else if (b[j].point_id < a[i].point_id) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

}  // namespace

const Keyframe* KeyframeGraph::find(int id) const {
  if (id < first_id_ || id >= first_id_ + static_cast<int>(keyframes_.size()))
    return nullptr;
  return &keyframes_[static_cast<std::size_t>(id - first_id_)];
}

Keyframe* KeyframeGraph::find(int id) {
  return const_cast<Keyframe*>(
      static_cast<const KeyframeGraph*>(this)->find(id));
}

bool KeyframeGraph::contains(int id) const { return find(id) != nullptr; }

const Keyframe& KeyframeGraph::keyframe(int id) const {
  const Keyframe* kf = find(id);
  ESLAM_ASSERT(kf != nullptr, "keyframe id not in graph");
  return *kf;
}

void KeyframeGraph::set_pose(int id, const SE3& pose_cw) {
  Keyframe* kf = find(id);
  ESLAM_ASSERT(kf != nullptr, "keyframe id not in graph");
  kf->pose_cw = pose_cw;
}

const std::vector<CovisEdge>& KeyframeGraph::neighbors(int id) const {
  ESLAM_ASSERT(contains(id), "keyframe id not in graph");
  return edges_[static_cast<std::size_t>(id - first_id_)];
}

int KeyframeGraph::covisibility_weight(int a, int b) const {
  for (const CovisEdge& e : neighbors(a))
    if (e.keyframe_id == b) return e.weight;
  return 0;
}

std::vector<int> KeyframeGraph::neighbourhood(int id, int size) const {
  std::vector<int> hood{id};
  std::vector<CovisEdge> sorted = neighbors(id);
  std::sort(sorted.begin(), sorted.end(),
            [](const CovisEdge& a, const CovisEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.keyframe_id > b.keyframe_id;
            });
  for (const CovisEdge& e : sorted) {
    if (static_cast<int>(hood.size()) >= std::max(1, size)) break;
    hood.push_back(e.keyframe_id);
  }
  return hood;
}

std::vector<KeyframeGraph::PlaceObservation>
KeyframeGraph::place_observations(std::span<const int> keyframe_ids) const {
  std::vector<PlaceObservation> out;
  std::unordered_set<std::int64_t> seen;
  for (const int id : keyframe_ids) {
    const Keyframe& kf = keyframe(id);
    const SE3 pose_wc = kf.pose_cw.inverse();
    for (const KeyframeObservation& obs : kf.observations) {
      if (!seen.insert(obs.point_id).second) continue;
      out.push_back({obs.point_id, obs.descriptor, pose_wc * obs.point_cam});
    }
  }
  return out;
}

std::vector<int> KeyframeGraph::covisible_component(
    int seed, std::span<std::uint8_t> claimed) const {
  std::vector<int> component;
  if (!contains(seed)) return component;
  const auto flag = [&](int id) -> std::uint8_t& {
    return claimed[static_cast<std::size_t>(id - first_id_)];
  };
  if (flag(seed)) return component;
  flag(seed) = 1;
  component.push_back(seed);
  // Plain queue-index BFS; the component doubles as the frontier.
  for (std::size_t head = 0; head < component.size(); ++head) {
    for (const CovisEdge& e : neighbors(component[head])) {
      if (flag(e.keyframe_id)) continue;
      flag(e.keyframe_id) = 1;
      component.push_back(e.keyframe_id);
    }
  }
  std::sort(component.begin(), component.end(), std::greater<int>());
  return component;
}

void KeyframeGraph::evict_oldest() {
  const int evicted = keyframes_.front().id;
  keyframes_.erase(keyframes_.begin());
  edges_.erase(edges_.begin());
  for (std::vector<CovisEdge>& list : edges_)
    std::erase_if(list,
                  [&](const CovisEdge& e) { return e.keyframe_id == evicted; });
  ++first_id_;
}

int KeyframeGraph::add_keyframe(int frame_index, const SE3& pose_cw,
                                std::vector<KeyframeObservation> observations) {
  std::sort(observations.begin(), observations.end(),
            [](const KeyframeObservation& a, const KeyframeObservation& b) {
              return a.point_id < b.point_id;
            });
  Keyframe kf;
  kf.id = next_id_++;
  kf.frame_index = frame_index;
  kf.pose_cw = pose_cw;
  kf.observations = std::move(observations);

  std::vector<CovisEdge> new_edges;
  for (std::size_t i = 0; i < keyframes_.size(); ++i) {
    const int weight = shared_points(kf.observations,
                                     keyframes_[i].observations);
    if (weight < options_.min_weight) continue;
    new_edges.push_back({keyframes_[i].id, weight});
    edges_[i].push_back({kf.id, weight});
  }

  keyframes_.push_back(std::move(kf));
  edges_.push_back(std::move(new_edges));
  if (options_.max_keyframes > 0 &&
      static_cast<int>(keyframes_.size()) > options_.max_keyframes)
    evict_oldest();
  return next_id_ - 1;
}

std::vector<int> KeyframeGraph::local_window(int size) const {
  if (keyframes_.empty() || size <= 0) return {};
  // Latest keyframe + top covisible neighbours (strongest first, newer
  // winning ties — the window tracks the present).
  std::vector<int> window = neighbourhood(keyframes_.back().id, size);
  // Sparse covisibility right after bootstrap: pad with recency so the
  // window is still a usable BA problem.
  for (auto it = keyframes_.rbegin();
       it != keyframes_.rend() && static_cast<int>(window.size()) < size;
       ++it) {
    if (std::find(window.begin(), window.end(), it->id) == window.end())
      window.push_back(it->id);
  }
  return window;
}

std::vector<int> KeyframeGraph::anchors(const std::vector<int>& window,
                                        int max_anchors) const {
  // Aggregate covisibility with the window, walking only the window
  // members' neighbor lists (covisibility is symmetric): O(W * E), not a
  // scan of every stored keyframe — this runs on the tracking path at
  // every keyframe.
  std::vector<std::pair<int, int>> weight_by_id;  // (weight, id)
  const auto slot_of = [&](int id) -> std::size_t {
    for (std::size_t i = 0; i < weight_by_id.size(); ++i)
      if (weight_by_id[i].second == id) return i;
    weight_by_id.push_back({0, id});
    return weight_by_id.size() - 1;
  };
  for (const int w : window) {
    if (!contains(w)) continue;
    for (const CovisEdge& e : neighbors(w)) {
      if (std::find(window.begin(), window.end(), e.keyframe_id) !=
          window.end())
        continue;
      weight_by_id[slot_of(e.keyframe_id)].first += e.weight;
    }
  }
  std::sort(weight_by_id.begin(), weight_by_id.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second > b.second;
            });
  std::vector<int> out;
  for (const auto& [weight, id] : weight_by_id) {
    if (static_cast<int>(out.size()) >= max_anchors) break;
    out.push_back(id);
  }
  return out;
}

void KeyframeGraph::remove_point_observations(
    std::span<const std::int64_t> removed_ids) {
  if (removed_ids.empty()) return;
  for (Keyframe& kf : keyframes_) {
    std::erase_if(kf.observations, [&](const KeyframeObservation& o) {
      return std::binary_search(removed_ids.begin(), removed_ids.end(),
                                o.point_id);
    });
  }
  // Edge weights are left as inserted: they are a selection heuristic, and
  // recomputing every pair on each cull would make apply O(K^2 * obs).
}

}  // namespace eslam::backend
