// Pose-graph optimization over SE3 covisibility edges — the Schur-free
// sibling of backend/local_ba: no point blocks, just keyframe poses
// constrained by relative-pose measurements, solved by damped
// Gauss-Newton on the dense 6N x 6N normal equations (backend/
// dense_solve.h, the same solver local_ba's reduced camera system uses).
//
// Each edge (a, b) measures the relative transform
//
//   Z_ab  ~  T_a * T_b^{-1}        (poses world-to-camera)
//
// and contributes the residual e = log(T_a * T_b^{-1} * Z_ab^{-1}) with
// weight w (covisibility strength; the loop edge carries its inlier
// count).  Under the left-multiplicative update T <- exp(xi) * T the
// Jacobians are J_a = I and J_b = -Ad(T_a * T_b^{-1}), the standard
// first-order pose-graph linearization.
//
// Gauge: at least one pose must be fixed — a pose graph is invariant
// under a global rigid motion, so an all-free problem has a 6-dim null
// space and the solve is refused (converged = false) rather than left to
// the damping to pin arbitrarily.  In the loop-closure pipeline the
// oldest stored keyframe is fixed: the old end of the map stays put and
// the accumulated drift is distributed over the edges toward the live
// end, strong (high-weight) edges deforming least.
#pragma once

#include <vector>

#include "geometry/se3.h"

namespace eslam::backend {

// One relative-pose constraint between poses `a` and `b` (indices into
// PoseGraphProblem::poses).  t_ab measures poses[a] * poses[b]^{-1}.
struct PoseGraphEdge {
  int a = 0;
  int b = 0;
  SE3 t_ab;
  double weight = 1.0;
};

struct PoseGraphProblem {
  std::vector<SE3> poses;    // world-to-camera, updated in place
  std::vector<bool> fixed;   // gauge anchors — not optimized
  std::vector<PoseGraphEdge> edges;
};

struct PoseGraphOptions {
  int max_iterations = 20;
  double initial_lambda = 1e-8;    // LM damping on the diagonal
  double convergence_step = 1e-8;  // stop when max |delta| drops below
  // Trust region: per-iteration twist updates are scaled down so no
  // component exceeds this.  An ill-conditioned solve otherwise launches
  // poses onto near-pi relative rotations, where the SE3 logarithm of an
  // accumulated-roundoff almost-rotation is not safely evaluable.
  double max_step = 0.5;
};

struct PoseGraphResult {
  int iterations = 0;
  double initial_cost = 0;  // sum_e w_e * |log residual|^2
  double final_cost = 0;
  bool converged = false;
};

// Optimizes problem.poses in place (fixed entries never move).  Returns
// converged = false without touching the poses when the problem is
// gauge-free (no fixed pose), empty, or the normal equations are singular
// at the initial point.
PoseGraphResult solve_pose_graph(PoseGraphProblem& problem,
                                 const PoseGraphOptions& options = {});

// SE3 adjoint for the project's rotation-last twist convention
// ([translation; rotation], SE3::exp/log): Ad(T) maps a twist through T
// so that T * exp(xi) = exp(Ad(T) xi) * T.  Exposed for tests.
Mat6 se3_adjoint(const SE3& t);

}  // namespace eslam::backend
