#include "backend/local_mapper.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geometry/assert.h"
#include "geometry/wall_timer.h"

namespace eslam::backend {

namespace {

// 3D grid key for the fuse pass (cell size = fuse radius).
std::int64_t cell_key(const Vec3& p, double cell) {
  const auto q = [&](double v) {
    return static_cast<std::int64_t>(std::floor(v / cell)) & 0x1fffff;
  };
  return (q(p[0]) << 42) | (q(p[1]) << 21) | q(p[2]);
}

}  // namespace

bool build_snapshot(const KeyframeGraph& graph, const Map& map,
                    const PinholeCamera& camera, const BackendOptions& options,
                    int snapshot_frame, BackendSnapshot& out) {
  if (static_cast<int>(graph.size()) < std::max(2, options.min_keyframes))
    return false;
  out = BackendSnapshot{};
  out.map_epoch = map.epoch();
  out.snapshot_frame = snapshot_frame;
  out.window_kfs = graph.local_window(options.window_size);
  out.fixed_kfs = graph.anchors(out.window_kfs, options.max_fixed_anchors);

  // The gauge needs at least two fixed poses (see local_ba.h: one fixed
  // pose still leaves the global scale free).  When the anchor set is
  // thin (early session), the oldest window members — the tail of the
  // newest-first window list — become the anchors; if even that cannot
  // produce two, the problem is refused rather than solved gauge-free.
  while (static_cast<int>(out.fixed_kfs.size()) < 2 &&
         out.window_kfs.size() > 1) {
    out.fixed_kfs.push_back(out.window_kfs.back());
    out.window_kfs.pop_back();
  }
  if (out.window_kfs.empty() || out.fixed_kfs.size() < 2) return false;

  // Point set: union of the window keyframes' observed ids, restricted to
  // points still alive in the map.
  std::vector<std::int64_t> ids;
  for (const int kf_id : out.window_kfs)
    for (const KeyframeObservation& obs : graph.keyframe(kf_id).observations)
      ids.push_back(obs.point_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  out.problem.camera = camera;
  for (const std::int64_t id : ids) {
    const auto index = map.index_of(id);
    if (!index) continue;
    const MapPoint& p = map.point(*index);
    out.point_ids.push_back(id);
    out.point_descriptors.push_back(p.descriptor);
    out.point_match_counts.push_back(p.match_count);
    out.problem.points.push_back(p.position);
  }
  if (out.point_ids.empty()) return false;

  const auto point_index_of = [&](std::int64_t id) -> int {
    const auto it = std::lower_bound(out.point_ids.begin(),
                                     out.point_ids.end(), id);
    if (it == out.point_ids.end() || *it != id) return -1;
    return static_cast<int>(it - out.point_ids.begin());
  };

  // Poses: free window first, fixed anchors after.
  std::vector<int> all_kfs = out.window_kfs;
  all_kfs.insert(all_kfs.end(), out.fixed_kfs.begin(), out.fixed_kfs.end());
  std::vector<int> obs_count(out.point_ids.size(), 0);
  for (std::size_t pi = 0; pi < all_kfs.size(); ++pi) {
    const Keyframe& kf = graph.keyframe(all_kfs[pi]);
    out.problem.poses.push_back(kf.pose_cw);
    out.problem.pose_fixed.push_back(pi >= out.window_kfs.size());
    for (const KeyframeObservation& obs : kf.observations) {
      const int pj = point_index_of(obs.point_id);
      if (pj < 0) continue;
      out.problem.observations.push_back(
          {static_cast<int>(pi), pj, obs.pixel});
      ++obs_count[static_cast<std::size_t>(pj)];
    }
  }
  out.problem.point_fixed.resize(out.point_ids.size());
  for (std::size_t j = 0; j < out.point_ids.size(); ++j)
    out.problem.point_fixed[j] = obs_count[j] < options.min_observations;
  return true;
}

BackendDelta optimize_snapshot(BackendSnapshot snapshot,
                               const BackendOptions& options) {
  const WallTimer timer;
  BackendDelta delta;
  delta.map_epoch = snapshot.map_epoch;
  delta.snapshot_frame = snapshot.snapshot_frame;

  const std::vector<Vec3> original_points = snapshot.problem.points;
  delta.ba = solve_local_ba(snapshot.problem, options.ba);

  // Refined keyframe poses (free poses only — anchors never move).
  for (std::size_t pi = 0; pi < snapshot.window_kfs.size(); ++pi)
    delta.keyframe_poses.push_back(
        {snapshot.window_kfs[pi], snapshot.problem.poses[pi]});

  const BaProblem& problem = snapshot.problem;
  const std::size_t n_points = problem.points.size();
  enum class Fate { kKeep, kCull, kFuse };
  std::vector<Fate> fate(n_points, Fate::kKeep);
  if (options.cull_max_reproj_px > 0) {
    // Post-BA per-point mean reprojection error, one pass over
    // observations (only paid when the cull pass is enabled).
    std::vector<double> err_sum(n_points, 0.0);
    std::vector<int> err_count(n_points, 0);
    for (const BaObservation& obs : problem.observations) {
      const std::size_t j = static_cast<std::size_t>(obs.point_index);
      const Vec3 p =
          problem.poses[static_cast<std::size_t>(obs.pose_index)] *
          problem.points[j];
      ++err_count[j];
      if (p[2] <= PinholeCamera::kMinDepth) {
        err_sum[j] += 1e3;  // behind a window camera: certainly misplaced
        continue;
      }
      const Vec2 proj{problem.camera.fx() * p[0] / p[2] + problem.camera.cx(),
                      problem.camera.fy() * p[1] / p[2] + problem.camera.cy()};
      err_sum[j] += (proj - obs.pixel).norm();
    }
    for (std::size_t j = 0; j < n_points; ++j)
      if (err_count[j] >= std::max(1, options.min_cull_observations) &&
          err_sum[j] / err_count[j] > options.cull_max_reproj_px)
        fate[j] = Fate::kCull;
  }

  // Fuse pass: grid-hash the post-BA positions; points within
  // fuse_radius_m and fuse_max_hamming of each other are redundant
  // duplicates.  The survivor of a cluster is its most-*matched* member
  // (ties to the oldest id): the point the matcher demonstrably keeps
  // finding is the one whose descriptor serves the current viewpoint —
  // blindly keeping the oldest throws away the proven descriptor, which
  // measurably degrades tracking once BA moves have aligned duplicates.
  // Scanning ids in ascending order with winner-replacement keeps the
  // outcome deterministic regardless of map size.
  if (options.fuse_radius_m > 0) {
    const double cell = options.fuse_radius_m;
    std::unordered_map<std::int64_t, std::vector<std::size_t>> grid;
    grid.reserve(n_points);
    const auto beats = [&](std::size_t a, std::size_t b) {
      if (snapshot.point_match_counts[a] != snapshot.point_match_counts[b])
        return snapshot.point_match_counts[a] >
               snapshot.point_match_counts[b];
      return snapshot.point_ids[a] < snapshot.point_ids[b];
    };
    for (std::size_t j = 0; j < n_points; ++j) {
      if (fate[j] == Fate::kCull) continue;
      const Vec3& pj = problem.points[j];
      std::vector<std::size_t> colliders;
      for (int dx = -1; dx <= 1; ++dx)
        for (int dy = -1; dy <= 1; ++dy)
          for (int dz = -1; dz <= 1; ++dz) {
            const Vec3 probe{pj[0] + dx * cell, pj[1] + dy * cell,
                             pj[2] + dz * cell};
            const auto it = grid.find(cell_key(probe, cell));
            if (it == grid.end()) continue;
            for (const std::size_t i : it->second) {
              if ((problem.points[i] - pj).norm() > options.fuse_radius_m)
                continue;
              if (hamming_distance(snapshot.point_descriptors[i],
                                   snapshot.point_descriptors[j]) >
                  options.fuse_max_hamming)
                continue;
              colliders.push_back(i);
            }
          }
      if (colliders.empty()) {
        grid[cell_key(pj, cell)].push_back(j);
        continue;
      }
      std::size_t winner = j;
      for (const std::size_t i : colliders)
        if (beats(i, winner)) winner = i;
      for (const std::size_t i : colliders) {
        if (i == winner) continue;
        fate[i] = Fate::kFuse;
        std::vector<std::size_t>& bucket =
            grid[cell_key(problem.points[i], cell)];
        std::erase(bucket, i);
      }
      if (winner == j)
        grid[cell_key(pj, cell)].push_back(j);
      else
        fate[j] = Fate::kFuse;
    }
  }

  for (std::size_t j = 0; j < n_points; ++j) {
    const std::int64_t id = snapshot.point_ids[j];
    switch (fate[j]) {
      case Fate::kCull:
        delta.culled_ids.push_back(id);
        break;
      case Fate::kFuse:
        delta.fused_ids.push_back(id);
        break;
      case Fate::kKeep: {
        if (problem.point_fixed[j]) break;
        const Vec3 move = problem.points[j] - original_points[j];
        if (move.max_abs() <= 1e-12) break;
        // Trust region: a runaway estimate is not a refinement.
        if (options.max_point_move_m > 0 &&
            move.norm() > options.max_point_move_m)
          break;
        delta.point_positions.push_back({id, problem.points[j]});
        break;
      }
    }
  }
  delta.optimize_ms = timer.elapsed_ms();
  return delta;
}

ApplyOutcome apply_delta(const BackendDelta& delta, Map& map,
                         KeyframeGraph& graph) {
  ApplyOutcome outcome;

  // Stale-evidence guard: a point matched after the snapshot was frozen
  // has newer evidence than the delta — never remove it.
  std::vector<std::int64_t> removals;
  const auto eligible = [&](std::int64_t id) {
    const auto index = map.index_of(id);
    return index &&
           map.point(*index).last_matched_frame <= delta.snapshot_frame;
  };
  for (const std::int64_t id : delta.culled_ids)
    if (eligible(id)) {
      removals.push_back(id);
      ++outcome.points_culled;
    }
  for (const std::int64_t id : delta.fused_ids)
    if (eligible(id)) {
      removals.push_back(id);
      ++outcome.points_fused;
    }
  std::sort(removals.begin(), removals.end());

  const MapApplyStats stats =
      map.apply_update(delta.point_positions, removals);
  outcome.points_moved = static_cast<int>(stats.moved);
  outcome.map_changed = stats.moved > 0 || stats.removed > 0;

  for (const auto& [kf_id, pose] : delta.keyframe_poses) {
    if (!graph.contains(kf_id)) continue;  // evicted since the snapshot
    graph.set_pose(kf_id, pose);
    ++outcome.keyframes_updated;
  }
  graph.remove_point_observations(removals);
  return outcome;
}

}  // namespace eslam::backend
