#include "backend/local_mapper.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geometry/assert.h"
#include "geometry/wall_timer.h"

namespace eslam::backend {

int detect_loop_candidate(const KeyframeGraph& graph,
                          const KeyframeIndex& index, int query_kf,
                          const LoopOptions& options) {
  if (static_cast<int>(graph.size()) < options.min_keyframes) return -1;
  const Keyframe& query = graph.keyframe(query_kf);
  if (query.observations.empty()) return -1;

  std::vector<Descriptor256> descriptors;
  descriptors.reserve(query.observations.size());
  for (const KeyframeObservation& obs : query.observations)
    descriptors.push_back(obs.descriptor);
  // Rank enough hits to see past the query itself and its recent
  // neighbours (which legitimately dominate the scores while tracking).
  const int depth = options.max_candidates + 2 +
                    static_cast<int>(graph.neighbors(query_kf).size());
  const std::vector<KeyframeScore> ranked = index.query(descriptors, depth);

  // Self-calibrating gate: while tracking normally, the best-scoring
  // keyframes are always the *recent* ones (they share the current view).
  // A genuine revisit is the one situation where an OLD, non-covisible
  // keyframe climbs to the top of the ranking — so a candidate must score
  // at least covis_score_ratio of the best recent-view score in the same
  // query.  Index scores are only comparable within one query, which is
  // exactly what this uses.
  double best_recent = -1.0;
  for (const KeyframeScore& s : ranked) {
    if (s.keyframe_id == query_kf) continue;
    const bool recent =
        graph.covisibility_weight(query_kf, s.keyframe_id) > 0 ||
        query.frame_index - graph.keyframe(s.keyframe_id).frame_index <
            options.min_frame_gap;
    if (recent && s.score > best_recent) best_recent = s.score;
  }

  int considered = 0;
  for (const KeyframeScore& s : ranked) {
    if (s.keyframe_id == query_kf) continue;
    if (graph.covisibility_weight(query_kf, s.keyframe_id) > 0) continue;
    const Keyframe& candidate = graph.keyframe(s.keyframe_id);
    if (query.frame_index - candidate.frame_index < options.min_frame_gap)
      continue;
    if (considered++ >= options.max_candidates) break;
    if (s.score < options.min_score) continue;
    if (best_recent > 0 && s.score < options.covis_score_ratio * best_recent)
      continue;
    // Appearance says "same place, long ago".  Geometry (P3P/RANSAC in
    // the loop job) has the final word — this gate only has to keep the
    // candidate rate low enough that wasted verification jobs are rare.
    return s.keyframe_id;
  }
  return -1;
}

bool build_loop_snapshot(const KeyframeGraph& graph, const Map& map,
                         const PinholeCamera& camera,
                         const BackendOptions& options, int query_kf,
                         int candidate_kf, int snapshot_frame,
                         BackendSnapshot& out) {
  out = BackendSnapshot{};
  out.map_epoch = map.epoch();
  out.snapshot_frame = snapshot_frame;
  out.problem.camera = camera;
  LoopJobSnapshot loop;
  loop.query_kf = query_kf;
  loop.candidate_kf = candidate_kf;

  // 2D side: the query keyframe's own observations.
  const Keyframe& query = graph.keyframe(query_kf);
  loop.query_pixels.reserve(query.observations.size());
  loop.query_descriptors.reserve(query.observations.size());
  for (const KeyframeObservation& obs : query.observations) {
    loop.query_pixels.push_back(obs.pixel);
    loop.query_descriptors.push_back(obs.descriptor);
  }

  // 3D side: the candidate's local place (itself + top covisible
  // neighbours — the same neighbourhood relocalization matches against).
  const std::vector<int> hood =
      graph.neighbourhood(candidate_kf, options.loop.neighbourhood);
  // The 3D side comes from the keyframes' own depth observations
  // (pose_wc * point_cam), not the live map: verification must work even
  // after the revisited region's points were pruned from the active map,
  // and must see the *drift-consistent* old geometry, not positions a
  // later BA delta may have dragged.  Same substrate relocalization
  // matches against (KeyframeGraph::place_observations).
  for (const KeyframeGraph::PlaceObservation& obs :
       graph.place_observations(hood)) {
    loop.candidate_positions.push_back(obs.position_w);
    loop.candidate_descriptors.push_back(obs.descriptor);
  }
  if (loop.candidate_positions.empty()) return false;

  // Pose graph over every stored keyframe, ascending id.
  const int first = graph.first_live_id();
  const int count = static_cast<int>(graph.size());
  loop.kf_ids.reserve(static_cast<std::size_t>(count));
  loop.kf_poses.reserve(static_cast<std::size_t>(count));
  for (int id = first; id < first + count; ++id) {
    loop.kf_ids.push_back(id);
    loop.kf_poses.push_back(graph.keyframe(id).pose_cw);
  }
  const auto kf_index = [&](int id) { return id - first; };
  // Covisibility edges (each pair once), measured from the freeze poses —
  // PGO then preserves the locally-consistent shape while the loop edge
  // pulls the global arrangement closed.
  for (int id = first; id < first + count; ++id) {
    for (const CovisEdge& e : graph.neighbors(id)) {
      if (e.keyframe_id <= id) continue;
      loop.edges.push_back(
          {kf_index(id), kf_index(e.keyframe_id),
           loop.kf_poses[static_cast<std::size_t>(kf_index(id))] *
               loop.kf_poses[static_cast<std::size_t>(kf_index(e.keyframe_id))]
                   .inverse(),
           static_cast<double>(e.weight)});
    }
    // Consecutive keyframes always share an odometry edge, so sparsely
    // covisible stretches cannot disconnect the graph from its anchor.
    if (id + 1 < first + count &&
        graph.covisibility_weight(id, id + 1) <= 0) {
      loop.edges.push_back(
          {kf_index(id), kf_index(id + 1),
           loop.kf_poses[static_cast<std::size_t>(kf_index(id))] *
               loop.kf_poses[static_cast<std::size_t>(kf_index(id + 1))]
                   .inverse(),
           options.loop.odometry_edge_weight});
    }
  }

  // Ownership: newest stored observer wins (ascending scan overwrites).
  std::unordered_map<std::int64_t, int> owner;
  for (int id = first; id < first + count; ++id)
    for (const KeyframeObservation& obs : graph.keyframe(id).observations)
      owner[obs.point_id] = kf_index(id);
  std::vector<std::int64_t> owned;
  owned.reserve(owner.size());
  for (const auto& [pid, kf] : owner) owned.push_back(pid);
  std::sort(owned.begin(), owned.end());
  for (const std::int64_t pid : owned) {
    const auto idx = map.index_of(pid);
    if (!idx) continue;
    loop.owned_point_ids.push_back(pid);
    loop.owner_kf_index.push_back(owner[pid]);
    loop.owned_positions.push_back(map.point(*idx).position);
  }
  loop.max_point_id = map.empty() ? -1 : map.points().back().id;

  out.loop = std::move(loop);
  return true;
}

namespace {

// The loop-closure job: verify the revisit with prior-free P3P/RANSAC,
// close the pose graph, and derive the correction delta (corrected
// keyframe poses + retransformed points).  Pure function of the snapshot,
// like the BA path.
void optimize_loop(const BackendSnapshot& snapshot,
                   const BackendOptions& options, BackendDelta& delta) {
  const LoopJobSnapshot& loop = *snapshot.loop;
  delta.loop_job = true;
  delta.loop_query_kf = loop.query_kf;
  delta.loop_match_kf = loop.candidate_kf;
  delta.loop_max_point_id = loop.max_point_id;

  // 1. Appearance: match the query keyframe's frame-side descriptors
  //    against the candidate neighbourhood's map points.
  const std::vector<Match> matches =
      match_descriptors(loop.query_descriptors, loop.candidate_descriptors,
                        options.loop.matcher);
  if (static_cast<int>(matches.size()) < options.loop.min_inliers) return;

  // 2. Geometry: prior-free P3P RANSAC — the same machinery tracking uses
  //    for relocalization, so a verified loop is exactly "this keyframe
  //    relocalizes against the candidate's neighbourhood".
  std::vector<Correspondence> correspondences;
  correspondences.reserve(matches.size());
  for (const Match& m : matches)
    correspondences.push_back(
        {loop.candidate_positions[static_cast<std::size_t>(m.train)],
         loop.query_pixels[static_cast<std::size_t>(m.query)]});
  RansacOptions ransac = options.loop.ransac;
  ransac.use_p3p = true;
  ransac.min_inliers = options.loop.min_inliers;
  const RansacResult consensus = ransac_pnp(
      correspondences, snapshot.problem.camera, SE3{}, ransac);
  delta.loop_inliers = static_cast<int>(consensus.inliers.size());
  if (!consensus.success || delta.loop_inliers < options.loop.min_inliers)
    return;
  std::vector<Correspondence> inlier_set;
  inlier_set.reserve(consensus.inliers.size());
  for (const int idx : consensus.inliers)
    inlier_set.push_back(correspondences[static_cast<std::size_t>(idx)]);
  const PnpResult polished = solve_pnp(inlier_set, snapshot.problem.camera,
                                       consensus.pose, options.loop.refine);
  const auto index_of_kf = [&](int id) {
    return static_cast<int>(
        std::lower_bound(loop.kf_ids.begin(), loop.kf_ids.end(), id) -
        loop.kf_ids.begin());
  };
  // Correction plausibility (see LoopOptions::max_correction_m): the
  // verified pose implies the live end moves by this much; a jump beyond
  // plausible drift is an aliased consensus, not a loop.
  const Vec3 implied_centre = polished.pose.inverse().translation();
  const Vec3 stored_centre =
      loop.kf_poses[static_cast<std::size_t>(index_of_kf(loop.query_kf))]
          .inverse()
          .translation();
  const double correction = (implied_centre - stored_centre).norm();
  // Accept only when provably plausible: a NaN pose must fail this gate.
  if (options.loop.max_correction_m > 0 &&
      !(correction <= options.loop.max_correction_m))
    return;

  // 3. Pose graph: covisibility + odometry edges from the snapshot, plus
  //    the verified loop edge; gauge fixed at the oldest stored keyframe
  //    so drift is pushed out of the live end, not into the old map.
  PoseGraphProblem pg;
  pg.poses = loop.kf_poses;
  pg.fixed.assign(pg.poses.size(), false);
  pg.fixed.front() = true;
  pg.edges = loop.edges;
  const int qi = index_of_kf(loop.query_kf);
  const int ci = index_of_kf(loop.candidate_kf);
  pg.edges.push_back(
      {qi, ci,
       polished.pose * loop.kf_poses[static_cast<std::size_t>(ci)].inverse(),
       options.loop.loop_edge_weight_scale * delta.loop_inliers});
  delta.pose_graph = solve_pose_graph(pg, options.loop.pose_graph);
  if (!delta.pose_graph.converged) return;

  // 4. Correction delta: corrected poses, and every owned point moved
  //    with its owner's frame (p' = T_new_wc * T_old_cw * p).  No trust
  //    region here — a loop correction is *supposed* to move the live end
  //    a long way; its safety gate is the verification above.
  std::vector<SE3> world_correction;
  world_correction.reserve(pg.poses.size());
  for (std::size_t i = 0; i < pg.poses.size(); ++i) {
    delta.keyframe_poses.push_back({loop.kf_ids[i], pg.poses[i]});
    world_correction.push_back(pg.poses[i].inverse() * loop.kf_poses[i]);
  }
  for (std::size_t j = 0; j < loop.owned_point_ids.size(); ++j) {
    const SE3& c =
        world_correction[static_cast<std::size_t>(loop.owner_kf_index[j])];
    delta.point_positions.push_back(
        {loop.owned_point_ids[j], c * loop.owned_positions[j]});
  }
  delta.loop_adjust = world_correction[static_cast<std::size_t>(qi)];
  delta.loop_closed = true;
}

}  // namespace

std::vector<BackendShard> compute_shards(const KeyframeGraph& graph,
                                         const BackendOptions& options) {
  std::vector<BackendShard> shards;
  if (static_cast<int>(graph.size()) < std::max(2, options.min_keyframes))
    return shards;

  // Shard 0 is exactly the old single-window problem: the local window
  // around the latest keyframe plus its strongest-covisibility anchors.
  BackendShard primary;
  primary.window_kfs = graph.local_window(options.window_size);
  primary.fixed_kfs =
      graph.anchors(primary.window_kfs, options.max_fixed_anchors);

  // Claim the primary window AND everything covisible with it.  Claiming
  // the whole neighbourhood — not just the window — is what guarantees no
  // covisibility edge between free sets of different shards: covisibility
  // is symmetric, so any keyframe with an edge into the primary window is
  // flagged here and can never seed or join a secondary component.
  const int first = graph.first_live_id();
  std::vector<std::uint8_t> claimed(graph.size(), 0);
  const auto claim = [&](int id) {
    claimed[static_cast<std::size_t>(id - first)] = 1;
  };
  for (const int id : primary.window_kfs) {
    claim(id);
    for (const CovisEdge& e : graph.neighbors(id)) claim(e.keyframe_id);
  }
  shards.push_back(std::move(primary));

  // Secondary shards: connected covisibility components of the unclaimed
  // remainder, newest seed first (the most recently revisited region is
  // the one whose optimization pays off soonest).  Each component claims
  // itself wholesale, so free sets stay pairwise disjoint and edge-free
  // across shards; an anchor picked from a claimed node is fine — anchors
  // are read-only poses.
  const int count = static_cast<int>(graph.size());
  for (int id = first + count - 1; id >= first; --id) {
    if (static_cast<int>(shards.size()) >= std::max(1, options.max_shards))
      break;
    if (claimed[static_cast<std::size_t>(id - first)]) continue;
    const std::vector<int> component = graph.covisible_component(id, claimed);
    // A shard needs at least one free pose and two gauge anchors.
    if (static_cast<int>(component.size()) < 3) continue;
    BackendShard shard;
    const std::size_t w = std::min(
        component.size(),
        static_cast<std::size_t>(std::max(1, options.window_size)));
    shard.window_kfs.assign(component.begin(), component.begin() + w);
    shard.fixed_kfs =
        graph.anchors(shard.window_kfs, options.max_fixed_anchors);
    // Sparse components may lack min_weight covisibility edges; pad the
    // anchor set with the component's own older members.
    for (std::size_t i = w; i < component.size(); ++i) {
      if (static_cast<int>(shard.fixed_kfs.size()) >=
          std::max(2, options.max_fixed_anchors))
        break;
      if (std::find(shard.fixed_kfs.begin(), shard.fixed_kfs.end(),
                    component[i]) == shard.fixed_kfs.end())
        shard.fixed_kfs.push_back(component[i]);
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

bool build_shard_snapshot(const KeyframeGraph& graph, const Map& map,
                          const PinholeCamera& camera,
                          const BackendOptions& options,
                          const BackendShard& shard, int shard_id,
                          int snapshot_frame,
                          std::span<const std::int64_t> claimed_points,
                          BackendSnapshot& out) {
  out = BackendSnapshot{};
  out.map_epoch = map.epoch();
  out.snapshot_frame = snapshot_frame;
  out.shard_id = shard_id;
  out.window_kfs = shard.window_kfs;
  out.fixed_kfs = shard.fixed_kfs;

  // The gauge needs at least two fixed poses (see local_ba.h: one fixed
  // pose still leaves the global scale free).  When the anchor set is
  // thin (early session, small component), the oldest window members —
  // the tail of the newest-first window list — become the anchors; if
  // even that cannot produce two, the problem is refused rather than
  // solved gauge-free.
  while (static_cast<int>(out.fixed_kfs.size()) < 2 &&
         out.window_kfs.size() > 1) {
    out.fixed_kfs.push_back(out.window_kfs.back());
    out.window_kfs.pop_back();
  }
  if (out.window_kfs.empty() || out.fixed_kfs.size() < 2) return false;

  // Point set: union of the window keyframes' observed ids, restricted to
  // points still alive in the map.
  std::vector<std::int64_t> ids;
  for (const int kf_id : out.window_kfs)
    for (const KeyframeObservation& obs : graph.keyframe(kf_id).observations)
      ids.push_back(obs.point_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  out.problem.camera = camera;
  for (const std::int64_t id : ids) {
    const auto index = map.index_of(id);
    if (!index) continue;
    const MapPoint& p = map.point(*index);
    out.point_ids.push_back(id);
    out.point_descriptors.push_back(p.descriptor);
    out.point_match_counts.push_back(p.match_count);
    out.problem.points.push_back(p.position);
  }
  if (out.point_ids.empty()) return false;

  const auto point_index_of = [&](std::int64_t id) -> int {
    const auto it = std::lower_bound(out.point_ids.begin(),
                                     out.point_ids.end(), id);
    if (it == out.point_ids.end() || *it != id) return -1;
    return static_cast<int>(it - out.point_ids.begin());
  };

  // Ownership: a point already claimed by another in-flight job enters
  // this problem as a fixed landmark — its residuals still constrain the
  // window poses, but this job may not move, cull, or fuse it.  Left
  // empty (all-owned) when nothing is claimed, so the lone-snapshot path
  // costs nothing.
  if (!claimed_points.empty()) {
    out.point_owned.resize(out.point_ids.size(), 1);
    for (std::size_t j = 0; j < out.point_ids.size(); ++j)
      if (std::binary_search(claimed_points.begin(), claimed_points.end(),
                             out.point_ids[j]))
        out.point_owned[j] = 0;
  }

  // Poses: free window first, fixed anchors after.
  std::vector<int> all_kfs = out.window_kfs;
  all_kfs.insert(all_kfs.end(), out.fixed_kfs.begin(), out.fixed_kfs.end());
  std::vector<int> obs_count(out.point_ids.size(), 0);
  for (std::size_t pi = 0; pi < all_kfs.size(); ++pi) {
    const Keyframe& kf = graph.keyframe(all_kfs[pi]);
    out.problem.poses.push_back(kf.pose_cw);
    out.problem.pose_fixed.push_back(pi >= out.window_kfs.size());
    for (const KeyframeObservation& obs : kf.observations) {
      const int pj = point_index_of(obs.point_id);
      if (pj < 0) continue;
      out.problem.observations.push_back(
          {static_cast<int>(pi), pj, obs.pixel});
      ++obs_count[static_cast<std::size_t>(pj)];
    }
  }
  out.problem.point_fixed.resize(out.point_ids.size());
  for (std::size_t j = 0; j < out.point_ids.size(); ++j)
    out.problem.point_fixed[j] =
        obs_count[j] < options.min_observations ||
        (!out.point_owned.empty() && out.point_owned[j] == 0);
  return true;
}

bool build_snapshot(const KeyframeGraph& graph, const Map& map,
                    const PinholeCamera& camera, const BackendOptions& options,
                    int snapshot_frame, BackendSnapshot& out) {
  if (static_cast<int>(graph.size()) < std::max(2, options.min_keyframes))
    return false;
  BackendShard shard;
  shard.window_kfs = graph.local_window(options.window_size);
  shard.fixed_kfs = graph.anchors(shard.window_kfs, options.max_fixed_anchors);
  return build_shard_snapshot(graph, map, camera, options, shard,
                              /*shard_id=*/0, snapshot_frame, {}, out);
}

BackendDelta optimize_snapshot(BackendSnapshot snapshot,
                               const BackendOptions& options,
                               const MapLifecycleOptions& lifecycle) {
  const WallTimer timer;
  BackendDelta delta;
  delta.map_epoch = snapshot.map_epoch;
  delta.snapshot_frame = snapshot.snapshot_frame;
  delta.shard_id = snapshot.shard_id;

  if (snapshot.loop) {
    optimize_loop(snapshot, options, delta);
    delta.optimize_ms = timer.elapsed_ms();
    return delta;
  }

  const std::vector<Vec3> original_points = snapshot.problem.points;
  delta.ba = solve_local_ba(snapshot.problem, options.ba);

  // Refined keyframe poses (free poses only — anchors never move).
  for (std::size_t pi = 0; pi < snapshot.window_kfs.size(); ++pi)
    delta.keyframe_poses.push_back(
        {snapshot.window_kfs[pi], snapshot.problem.poses[pi]});

  // Evidence passes (cull + fuse) are the lifecycle policy's, not the
  // optimizer's: plan_point_fates judges the post-BA problem and never
  // touches a point another in-flight shard owns.
  const BaProblem& problem = snapshot.problem;
  std::vector<PointFate> fate;
  plan_point_fates(problem, snapshot.point_ids, snapshot.point_descriptors,
                   snapshot.point_match_counts, snapshot.point_owned,
                   lifecycle, fate);

  for (std::size_t j = 0; j < problem.points.size(); ++j) {
    const std::int64_t id = snapshot.point_ids[j];
    switch (fate[j]) {
      case PointFate::kCull:
        delta.culled_ids.push_back(id);
        break;
      case PointFate::kFuse:
        delta.fused_ids.push_back(id);
        break;
      case PointFate::kKeep: {
        // point_fixed covers both thin evidence and not-owned-here; a
        // fixed point cannot have moved, but the guard keeps the delta's
        // ownership contract explicit.
        if (problem.point_fixed[j]) break;
        const Vec3 move = problem.points[j] - original_points[j];
        if (move.max_abs() <= 1e-12) break;
        // Trust region: a runaway estimate is not a refinement.
        if (lifecycle.max_point_move_m > 0 &&
            move.norm() > lifecycle.max_point_move_m)
          break;
        delta.point_positions.push_back({id, problem.points[j]});
        break;
      }
    }
  }
  delta.optimize_ms = timer.elapsed_ms();
  return delta;
}

ApplyOutcome apply_delta(const BackendDelta& delta, Map& map,
                         KeyframeGraph& graph) {
  ApplyOutcome outcome;

  // Stale-evidence guard: a point matched after the snapshot was frozen
  // has newer evidence than the delta — never remove it.
  std::vector<std::int64_t> removals;
  const auto eligible = [&](std::int64_t id) {
    const auto index = map.index_of(id);
    return index &&
           map.point(*index).last_matched_frame <= delta.snapshot_frame;
  };
  for (const std::int64_t id : delta.culled_ids)
    if (eligible(id)) {
      removals.push_back(id);
      ++outcome.points_culled;
    }
  for (const std::int64_t id : delta.fused_ids)
    if (eligible(id)) {
      removals.push_back(id);
      ++outcome.points_fused;
    }
  std::sort(removals.begin(), removals.end());

  // A loop correction rebases the live end of the map: everything the
  // snapshot could not know about — points created and keyframes inserted
  // after the freeze — rides the live-end correction (loop_adjust), so
  // the whole recent neighbourhood moves as one rigid piece and the
  // camera's next projection of it is unchanged.
  std::span<const std::pair<std::int64_t, Vec3>> moves =
      delta.point_positions;
  std::vector<std::pair<std::int64_t, Vec3>> combined;
  if (delta.loop_closed) {
    combined.assign(delta.point_positions.begin(),
                    delta.point_positions.end());
    for (const MapPoint& p : map.points())
      if (p.id > delta.loop_max_point_id)
        combined.push_back({p.id, delta.loop_adjust * p.position});
    moves = combined;
  }

  const MapApplyStats stats = map.apply_update(moves, removals);
  outcome.points_moved = static_cast<int>(stats.moved);
  outcome.map_changed = stats.moved > 0 || stats.removed > 0;

  int max_delta_kf = -1;
  for (const auto& [kf_id, pose] : delta.keyframe_poses) {
    max_delta_kf = std::max(max_delta_kf, kf_id);
    if (!graph.contains(kf_id)) continue;  // evicted since the snapshot
    graph.set_pose(kf_id, pose);
    ++outcome.keyframes_updated;
  }
  if (delta.loop_closed) {
    // Post-freeze keyframes: same live-end rebase as their points.
    // pose_cw_new = pose_cw_old * adjust^{-1} (projection-invariant
    // against the rebased points).
    const SE3 adjust_inv = delta.loop_adjust.inverse();
    for (int id = max_delta_kf + 1; id <= graph.latest_id(); ++id) {
      if (!graph.contains(id)) continue;
      graph.set_pose(id, graph.keyframe(id).pose_cw * adjust_inv);
      ++outcome.keyframes_updated;
    }
    outcome.loop_applied = true;
    outcome.loop_adjust = delta.loop_adjust;
  }
  graph.remove_point_observations(removals);
  return outcome;
}

}  // namespace eslam::backend
