// Windowed local bundle adjustment — joint Gauss-Newton refinement of a
// few keyframe poses and the map points they observe, minimizing the same
// robustified reprojection error as the per-frame pose optimizer (paper
// Eq. 1), but over poses AND points:
//
//   E = sum_ij  rho( || c_ij - h(g_j, T_i) ||^2 )
//
// The normal equations are solved with the Schur complement on the point
// blocks: point Hessians are 3x3 and block-diagonal, so they are inverted
// pointwise (geometry/matrix.h invert<3>) and folded into a reduced camera
// system of 6F x 6F (F = free poses, <= the BA window — a few dozen
// doubles a side), which dense partial-pivot elimination handles.  Built
// entirely on the existing geometry/ primitives; no external solver.
//
// Gauge: callers mark at least two poses fixed (anchors) — one fixed pose
// leaves the global scale free, which windowed refits would slowly drift.
// With zero free poses the solver degenerates to independent pointwise
// triangulation refinement, which is still useful right after bootstrap.
#pragma once

#include <vector>

#include "geometry/camera.h"
#include "geometry/se3.h"

namespace eslam::backend {

// One pixel observation linking pose `pose_index` to point `point_index`.
struct BaObservation {
  int pose_index = 0;
  int point_index = 0;
  Vec2 pixel;  // level-0 coordinates
};

// The frozen optimization problem.  solve_local_ba() updates poses /
// points in place (fixed entries are left untouched).
struct BaProblem {
  PinholeCamera camera = PinholeCamera::tum_freiburg1();
  std::vector<SE3> poses;        // world-to-camera
  std::vector<bool> pose_fixed;  // anchors (gauge) — not optimized
  std::vector<Vec3> points;      // world frame
  std::vector<bool> point_fixed; // under-observed points — residuals only
  std::vector<BaObservation> observations;
};

struct BaOptions {
  int max_iterations = 6;
  double huber_delta = 2.5;      // pixels; <= 0 disables the robust kernel
  // Truncate the kernel beyond this residual (pixels; <= 0 disables):
  // such observations get zero weight and a constant cost — without this,
  // a gross outlier (a wrong association at tens of px) drags geometry
  // indefinitely, because Huber's influence is bounded but never zero.
  // Residuals re-enter the problem as soon as other observations pull
  // them back under the threshold.
  double outlier_truncate_px = 40.0;
  double initial_lambda = 1e-4;  // LM damping on both block diagonals
  double convergence_step = 1e-6;  // stop when max |delta| drops below this
};

struct BaResult {
  int iterations = 0;
  // Robustified mean squared pixel error over ALL observations; an
  // observation behind its camera is charged a fixed large penalty rather
  // than dropped (dropping would let the optimizer "win" by pushing
  // geometry out of view).
  double initial_cost = 0;
  double final_cost = 0;
  bool converged = false;
  int observations_used = 0;  // residuals in front of the camera, last iter
};

BaResult solve_local_ba(BaProblem& problem, const BaOptions& options = {});

// Mean reprojection error (pixels) of one point over its observations
// under the problem's current poses; observations behind a camera count
// as `behind_penalty_px`.  Reference/diagnostic utility (O(observations)
// per call): the shipped cull pass in local_mapper.cpp computes the same
// per-point means in one batched pass — keep the two formulas in sync.
double mean_point_reprojection_px(const BaProblem& problem, int point_index,
                                  double behind_penalty_px = 1e3);

}  // namespace eslam::backend
