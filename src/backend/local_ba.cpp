#include "backend/local_ba.h"

#include <cmath>

#include "backend/dense_solve.h"
#include "geometry/assert.h"

namespace eslam::backend {

namespace {

// One residual's linearization: robust weight, residual, and the pose /
// point Jacobians (left pose perturbation, matching slam/pnp.cpp).
struct Linearized {
  Vec2 r;
  double weight = 1.0;  // 0 for truncated (outlier) observations
  double rho_cost = 0.0;  // robustified squared error contribution
  Mat<2, 6> j_pose;
  Mat<2, 3> j_point;
};

// Huber rho at residual e (plain squared error when delta <= 0).
double robust_rho(double e, double huber_delta) {
  if (huber_delta > 0.0 && e > huber_delta) {
    const double w = huber_delta / e;
    return w * e * e * (2.0 - w);
  }
  return e * e;
}

bool linearize(const PinholeCamera& camera, const SE3& pose, const Vec3& point,
               const Vec2& pixel, double huber_delta, double truncate_px,
               Linearized& out) {
  const Vec3 p = pose * point;  // camera-frame point
  if (p[2] <= PinholeCamera::kMinDepth) return false;

  const double x = p[0], y = p[1], z = p[2];
  const double inv_z = 1.0 / z;
  const Vec2 proj{camera.fx() * x * inv_z + camera.cx(),
                  camera.fy() * y * inv_z + camera.cy()};
  out.r = proj - pixel;

  Mat<2, 3> j_proj;
  j_proj(0, 0) = camera.fx() * inv_z;
  j_proj(0, 2) = -camera.fx() * x * inv_z * inv_z;
  j_proj(1, 1) = camera.fy() * inv_z;
  j_proj(1, 2) = -camera.fy() * y * inv_z * inv_z;

  // d(T p)/d xi = [I | -hat(p_cam)] (left perturbation, rotation-last).
  Mat<3, 6> j_rig;
  j_rig.set_block(0, 0, Mat3::identity());
  j_rig.set_block(0, 3, -hat(p));
  out.j_pose = j_proj * j_rig;
  // d(T p)/d p_world = R.
  out.j_point = j_proj * pose.rotation();

  const double err = out.r.norm();
  if (truncate_px > 0.0 && err > truncate_px) {
    // Truncated kernel: zero influence, constant cost.  The observation
    // re-enters once other residuals pull it back under the threshold.
    out.weight = 0.0;
    out.rho_cost = robust_rho(truncate_px, huber_delta);
    return true;
  }
  out.weight = 1.0;
  if (huber_delta > 0.0 && err > huber_delta) out.weight = huber_delta / err;
  out.rho_cost = robust_rho(err, huber_delta);
  return true;
}

// A behind-the-camera observation contributes a fixed large robustified
// cost instead of being dropped.  Costs are normalized by the TOTAL
// observation count, so accept/reject comparisons stay fair: without the
// penalty, pushing a point (or pose) until an observation falls behind a
// camera would REMOVE its residual from the mean — a free cost reduction
// the optimizer reliably finds and exploits.
constexpr double kBehindPenaltyPx = 1e3;

// Robustified mean cost of the whole problem under candidate geometry.
double evaluate_cost(const BaProblem& problem,
                     const std::vector<SE3>& poses,
                     const std::vector<Vec3>& points,
                     const BaOptions& options, int& used) {
  double cost = 0.0;
  used = 0;
  Linearized lin;
  for (const BaObservation& obs : problem.observations) {
    if (!linearize(problem.camera, poses[static_cast<std::size_t>(
                       obs.pose_index)],
                   points[static_cast<std::size_t>(obs.point_index)],
                   obs.pixel, options.huber_delta,
                   options.outlier_truncate_px, lin)) {
      cost += robust_rho(kBehindPenaltyPx, options.huber_delta);
      continue;
    }
    cost += lin.rho_cost;
    ++used;
  }
  return problem.observations.empty()
             ? 0.0
             : cost / static_cast<double>(problem.observations.size());
}

}  // namespace

double mean_point_reprojection_px(const BaProblem& problem, int point_index,
                                  double behind_penalty_px) {
  double sum = 0.0;
  int count = 0;
  for (const BaObservation& obs : problem.observations) {
    if (obs.point_index != point_index) continue;
    const SE3& pose = problem.poses[static_cast<std::size_t>(obs.pose_index)];
    const Vec3 p =
        pose * problem.points[static_cast<std::size_t>(obs.point_index)];
    ++count;
    if (p[2] <= PinholeCamera::kMinDepth) {
      sum += behind_penalty_px;
      continue;
    }
    const Vec2 proj{problem.camera.fx() * p[0] / p[2] + problem.camera.cx(),
                    problem.camera.fy() * p[1] / p[2] + problem.camera.cy()};
    sum += (proj - obs.pixel).norm();
  }
  return count > 0 ? sum / count : 0.0;
}

BaResult solve_local_ba(BaProblem& problem, const BaOptions& options) {
  BaResult result;
  const std::size_t n_poses = problem.poses.size();
  const std::size_t n_points = problem.points.size();
  ESLAM_ASSERT(problem.pose_fixed.size() == n_poses &&
                   problem.point_fixed.size() == n_points,
               "BA problem fixed-flag arrays misaligned");

  // Free-pose index mapping (Schur system rows are free poses only).
  std::vector<int> free_of_pose(n_poses, -1);
  int n_free = 0;
  for (std::size_t i = 0; i < n_poses; ++i)
    if (!problem.pose_fixed[i]) free_of_pose[i] = n_free++;
  const int dim = 6 * n_free;

  // Observations grouped by point (for the Schur folding).
  std::vector<std::vector<int>> obs_of_point(n_points);
  for (std::size_t k = 0; k < problem.observations.size(); ++k)
    obs_of_point[static_cast<std::size_t>(
                     problem.observations[k].point_index)]
        .push_back(static_cast<int>(k));

  double lambda = options.initial_lambda;
  {
    int used0 = 0;
    result.initial_cost = evaluate_cost(problem, problem.poses, problem.points,
                                        options, used0);
    result.final_cost = result.initial_cost;
    result.observations_used = used0;
  }

  std::vector<Mat6> h_cc(static_cast<std::size_t>(n_free));
  std::vector<Vec6> b_c(static_cast<std::size_t>(n_free));
  std::vector<Mat3> h_pp(n_points);
  std::vector<Vec3> b_p(n_points);
  std::vector<Mat<6, 3>> w_obs(problem.observations.size());
  std::vector<bool> w_valid(problem.observations.size());
  std::vector<Mat3> h_pp_inv(n_points);
  std::vector<bool> point_active(n_points);
  std::vector<double> s, rhs, delta_c;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // ---- linearize --------------------------------------------------------
    for (auto& m : h_cc) m = Mat6{};
    for (auto& v : b_c) v = Vec6{};
    for (std::size_t j = 0; j < n_points; ++j) {
      h_pp[j] = Mat3{};
      b_p[j] = Vec3{};
    }
    double cost = 0.0;
    int used = 0;
    Linearized lin;
    for (std::size_t k = 0; k < problem.observations.size(); ++k) {
      const BaObservation& obs = problem.observations[k];
      w_valid[k] = false;
      if (!linearize(problem.camera,
                     problem.poses[static_cast<std::size_t>(obs.pose_index)],
                     problem.points[static_cast<std::size_t>(obs.point_index)],
                     obs.pixel, options.huber_delta,
                     options.outlier_truncate_px, lin)) {
        cost += robust_rho(kBehindPenaltyPx, options.huber_delta);
        continue;
      }
      cost += lin.rho_cost;
      ++used;
      if (lin.weight == 0.0) continue;  // truncated: no influence
      const int f = free_of_pose[static_cast<std::size_t>(obs.pose_index)];
      const bool point_free =
          !problem.point_fixed[static_cast<std::size_t>(obs.point_index)];
      if (f >= 0) {
        const Mat<6, 2> jt = lin.j_pose.transposed();
        h_cc[static_cast<std::size_t>(f)] += lin.weight * (jt * lin.j_pose);
        b_c[static_cast<std::size_t>(f)] += lin.weight * (jt * lin.r);
      }
      if (point_free) {
        const Mat<3, 2> jt = lin.j_point.transposed();
        h_pp[static_cast<std::size_t>(obs.point_index)] +=
            lin.weight * (jt * lin.j_point);
        b_p[static_cast<std::size_t>(obs.point_index)] +=
            lin.weight * (jt * lin.r);
      }
      if (f >= 0 && point_free) {
        w_obs[k] = lin.weight * (lin.j_pose.transposed() * lin.j_point);
        w_valid[k] = true;
      }
    }
    if (used == 0) break;
    cost /= static_cast<double>(problem.observations.size());
    result.observations_used = used;

    // ---- damp + invert point blocks --------------------------------------
    for (std::size_t j = 0; j < n_points; ++j) {
      point_active[j] = false;
      if (problem.point_fixed[j]) continue;
      Mat3 damped = h_pp[j];
      for (int d = 0; d < 3; ++d)
        damped(d, d) += lambda * damped(d, d) + 1e-12;
      if (invert(damped, h_pp_inv[j])) point_active[j] = true;
    }

    // ---- reduced camera system -------------------------------------------
    bool solved = true;
    delta_c.assign(static_cast<std::size_t>(dim), 0.0);
    if (n_free > 0) {
      s.assign(static_cast<std::size_t>(dim) * dim, 0.0);
      rhs.assign(static_cast<std::size_t>(dim), 0.0);
      for (int f = 0; f < n_free; ++f) {
        Mat6 damped = h_cc[static_cast<std::size_t>(f)];
        for (int d = 0; d < 6; ++d)
          damped(d, d) += lambda * damped(d, d) + 1e-12;
        for (int r = 0; r < 6; ++r)
          for (int c = 0; c < 6; ++c)
            s[static_cast<std::size_t>(6 * f + r) * dim + (6 * f + c)] =
                damped(r, c);
        const Vec6& b = b_c[static_cast<std::size_t>(f)];
        for (int r = 0; r < 6; ++r)
          rhs[static_cast<std::size_t>(6 * f + r)] = -b[r];
      }
      // Fold every active point into the reduced system:
      //   S -= W Hpp^-1 W^T,   rhs += W Hpp^-1 b_p.
      for (std::size_t j = 0; j < n_points; ++j) {
        if (!point_active[j]) continue;
        const std::vector<int>& obs_list = obs_of_point[j];
        for (const int k1 : obs_list) {
          if (!w_valid[static_cast<std::size_t>(k1)]) continue;
          const int f1 = free_of_pose[static_cast<std::size_t>(
              problem.observations[static_cast<std::size_t>(k1)].pose_index)];
          const Mat<6, 3> w1_hinv =
              w_obs[static_cast<std::size_t>(k1)] * h_pp_inv[j];
          const Vec6 r1 = w1_hinv * b_p[j];
          for (int r = 0; r < 6; ++r)
            rhs[static_cast<std::size_t>(6 * f1 + r)] += r1[r];
          for (const int k2 : obs_list) {
            if (!w_valid[static_cast<std::size_t>(k2)]) continue;
            const int f2 = free_of_pose[static_cast<std::size_t>(
                problem.observations[static_cast<std::size_t>(k2)]
                    .pose_index)];
            const Mat6 block =
                w1_hinv * w_obs[static_cast<std::size_t>(k2)].transposed();
            for (int r = 0; r < 6; ++r)
              for (int c = 0; c < 6; ++c)
                s[static_cast<std::size_t>(6 * f1 + r) * dim + (6 * f2 + c)] -=
                    block(r, c);
          }
        }
      }
      solved = solve_dense(s, rhs, dim, delta_c);
    }
    if (!solved) {
      lambda *= 8.0;
      if (lambda > 1e6) break;
      continue;
    }

    // ---- back-substitute points, build the candidate ---------------------
    std::vector<SE3> cand_poses = problem.poses;
    for (std::size_t i = 0; i < n_poses; ++i) {
      const int f = free_of_pose[i];
      if (f < 0) continue;
      Vec6 d;
      for (int r = 0; r < 6; ++r)
        d[r] = delta_c[static_cast<std::size_t>(6 * f + r)];
      cand_poses[i] = SE3::exp(d) * problem.poses[i];
    }
    std::vector<Vec3> cand_points = problem.points;
    double max_step = 0.0;
    for (int f = 0; f < n_free * 6; ++f)
      max_step = std::max(max_step,
                          std::abs(delta_c[static_cast<std::size_t>(f)]));
    for (std::size_t j = 0; j < n_points; ++j) {
      if (!point_active[j]) continue;
      Vec3 acc = -1.0 * b_p[j];
      for (const int k : obs_of_point[j]) {
        if (!w_valid[static_cast<std::size_t>(k)]) continue;
        const int f = free_of_pose[static_cast<std::size_t>(
            problem.observations[static_cast<std::size_t>(k)].pose_index)];
        Vec6 dc;
        for (int r = 0; r < 6; ++r)
          dc[r] = delta_c[static_cast<std::size_t>(6 * f + r)];
        acc -= w_obs[static_cast<std::size_t>(k)].transposed() * dc;
      }
      const Vec3 dp = h_pp_inv[j] * acc;
      cand_points[j] = problem.points[j] + dp;
      max_step = std::max(max_step, dp.max_abs());
    }

    // ---- accept / reject --------------------------------------------------
    int cand_used = 0;
    const double cand_cost = evaluate_cost(problem, cand_poses, cand_points,
                                           options, cand_used);
    result.iterations = iter + 1;
    if (cand_used > 0 && cand_cost <= cost) {
      problem.poses = std::move(cand_poses);
      problem.points = std::move(cand_points);
      result.final_cost = cand_cost;
      lambda = std::max(lambda * 0.5, 1e-9);
      if (max_step < options.convergence_step) {
        result.converged = true;
        break;
      }
    } else {
      result.final_cost = cost;
      lambda *= 8.0;
      if (lambda > 1e6) break;
    }
  }
  return result;
}

}  // namespace eslam::backend
