// Asynchronous local-mapping backend: snapshot -> optimize -> delta ->
// apply, sharded.
//
// The backend never touches live tracker state while optimizing.  At a
// key frame, the tracker (inside update_map, the one map-writing stage)
// decomposes the optimization work into **shards** — covisibility-
// disjoint keyframe windows computed from the KeyframeGraph — and
// freezes each eligible shard as an independent BackendSnapshot: a
// frozen copy of that window plus the map points it observes.  Workers
// (the scheduler's background lane, or inline in sequential mode) run
// each job via optimize_snapshot(), which performs windowed bundle
// adjustment (local_ba.h) on the copy and derives a BackendDelta:
// refined keyframe poses, refined point positions, and the ids of points
// to cull or fuse (the lifecycle policy's evidence passes, see
// backend/map_lifecycle.h).  The tracker applies every completed delta
// at the *next* key frame under the map's structural-epoch rules:
// apply_delta() mutates the map in one step and bumps its epoch exactly
// once per delta, so a speculative feature match that read the pre-apply
// map replays by the existing rule — pipelined semantics need no new
// invariants.  Points matched after the snapshot was taken are never
// removed by a stale delta (fresh evidence wins); position refinements
// still apply (they carry their own, newer, evidence).
//
// Why concurrent shard deltas compose: two shards from one decomposition
// have disjoint free-keyframe sets with no covisibility edge between
// them (compute_shards), and every map point is *owned* by at most one
// in-flight job — a point an earlier shard (or an in-flight job) already
// claimed enters a later snapshot as a fixed landmark (it still
// constrains the window poses) but is excluded from that job's moves,
// culls and fuses.  Deltas from concurrently running jobs therefore
// write disjoint keyframe-pose and point-id sets, so applying them in
// any order yields the same map — Map::apply_update needs no new
// synchronization, just one structural write per delta.
//
// Job classes: routine shard BA is throughput work; loop-verification
// jobs (detect_loop_candidate + build_loop_snapshot) are a distinct
// high-priority class — the scheduler's background lane pops them first
// (runtime/backend_queue.h) because every frame a verified-able loop
// waits, the session tracks on — and extends — a drifted map.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "backend/keyframe_graph.h"
#include "backend/keyframe_index.h"
#include "backend/local_ba.h"
#include "backend/map_lifecycle.h"
#include "backend/pose_graph.h"
#include "features/descriptor.h"
#include "features/matcher.h"
#include "geometry/camera.h"
#include "slam/map.h"
#include "slam/ransac.h"

namespace eslam::backend {

// Loop-closure policy: detection thresholds (over the keyframe-recognition
// index), geometric verification (the tracker's own RANSAC/P3P machinery)
// and the pose-graph correction.  Rides the same per-session backend job
// slot as windowed BA — a detected loop freezes a loop job instead of a BA
// job at that keyframe, and its delta applies through the identical
// snapshot -> delta -> epoch-bump protocol.
struct LoopOptions {
  LoopOptions() {
    // Verification is prior-free P3P over a revisit candidate: spend real
    // RANSAC budget (adaptive termination exits early on true revisits)
    // and tolerate the pixel quantization of wide-baseline re-detections.
    ransac.max_iterations = 512;
    ransac.inlier_threshold_px = 5.0;
  }

  // Master switch.  Off, keyframes are still indexed (relocalization uses
  // the index) but no loop jobs are ever frozen.
  bool enabled = false;
  // Detection engages only once the graph holds this many keyframes.
  int min_keyframes = 10;
  // A candidate must be at least this many *frames* (not keyframes) older
  // than the querying keyframe: revisits are loop closures, the recent
  // past is just tracking.
  int min_frame_gap = 90;
  // Frames to wait after an applied correction before detecting again
  // (the corrected map needs fresh keyframes before a second loop means
  // anything).
  int cooldown_frames = 120;
  // Ranked index hits to consider per keyframe.
  int max_candidates = 3;
  // Index-score floor (scores are query-relative; this only rejects
  // near-zero noise), and the self-calibrating relative gate: a candidate
  // must score at least this ratio of the best *recent-view* score in the
  // same query.  While tracking, recent keyframes always top the ranking
  // and — on repetitive texture — unrelated old keyframes trail them by
  // only a few percent, so the ratio sits above 1: a candidate must
  // strictly OUTRANK every recent view, which is the one thing only a
  // genuine revisit does (observed margins ~1.2-1.3x at true revisits,
  // ~0.95x for aliased false hits).
  double min_score = 0.02;
  double covis_score_ratio = 1.05;
  // Candidate keyframe + its top covisible neighbours form the 3D side of
  // the verification match.
  int neighbourhood = 5;
  // P3P/RANSAC consensus required to accept the revisit.  High on
  // purpose: a false loop deforms the whole map, and genuine revisits on
  // the workloads this runs on produce hundreds of inliers.
  int min_inliers = 50;
  // Plausibility bound on the correction: the live end may not move
  // farther than the drift a session can plausibly accumulate.  On
  // repetitive texture a wrong-place P3P consensus can be large; a
  // correction bigger than this is treated as failed verification.
  double max_correction_m = 2.0;
  // Pose-graph edge weights: covisibility edges carry their shared-point
  // count, consecutive keyframes without one get this odometry weight,
  // and the loop edge carries scale * inliers.
  double odometry_edge_weight = 20.0;
  double loop_edge_weight_scale = 1.0;
  // Verification matching is stricter than tracking: the cost of a false
  // loop (a map-wide deformation) dwarfs the cost of a missed one.
  MatcherOptions matcher{/*max_distance=*/64, /*ratio=*/0.85,
                         /*cross_check=*/true};
  RansacOptions ransac;  // use_p3p is forced on; min_inliers from above
  PnpOptions refine{/*max_iterations=*/15, /*initial_lambda=*/1e-4,
                    /*huber_delta=*/2.5, /*convergence_step=*/1e-8};
  PoseGraphOptions pose_graph;
};

struct BackendOptions {
  // Master switch.  Disabled, the tracker maintains no graph, schedules
  // no jobs, and its output is bit-identical to a backend-less build.
  bool enabled = false;
  // Free keyframes in the BA window (latest + top covisible).
  int window_size = 5;
  // Out-of-window keyframes held fixed to anchor the gauge (at least two
  // poses are always fixed — see local_ba.h).
  int max_fixed_anchors = 4;
  // Points observed fewer times than this in the problem keep their
  // position (their residuals still constrain the window poses).
  int min_observations = 2;
  // Run the first BA only once the graph holds this many keyframes.
  int min_keyframes = 3;
  BaOptions ba;
  KeyframeGraphOptions graph;
  // --- sharded execution --------------------------------------------------
  // Upper bound on covisibility-disjoint shards per decomposition (shard 0
  // is always the local window around the latest keyframe; further shards
  // are disconnected covisibility components, newest first).  1 restores
  // the old single-window backend.
  int max_shards = 4;
  // Upper bound on jobs in flight per tracker (frozen, queued, running or
  // delta-ready).  A keyframe whose decomposition would exceed this skips
  // the excess shards; they get their turn at a later keyframe.
  int max_inflight_jobs = 3;
  // NOTE: the map-maintenance passes (age prune, BA cull/fuse) that used
  // to be split between Map::prune and fields here now live in ONE place:
  // MapLifecycleOptions (backend/map_lifecycle.h), owned by the tracker
  // and threaded into optimize_snapshot() explicitly.
  // --- loop closure (opt-in) ----------------------------------------------
  LoopOptions loop;
};

// One backend work shard: a covisibility-disjoint window of free
// keyframes plus the fixed anchors that pin its gauge.  Shards from one
// compute_shards() call never share a free keyframe and never have a
// covisibility edge between their free sets (anchors may be shared —
// they are read-only poses).
struct BackendShard {
  std::vector<int> window_kfs;  // free keyframes, newest first
  std::vector<int> fixed_kfs;   // gauge anchors (poses held fixed)
};

// Frozen input of one loop-closure job: the 2D side (the querying
// keyframe's observations), the 3D side (the candidate neighbourhood's
// live map points), the full pose graph, and the point-ownership table the
// correction retransforms points with.  Everything is copied at freeze
// time — like the BA snapshot, the job never touches live tracker state.
struct LoopJobSnapshot {
  int query_kf = -1;      // graph id of the keyframe that queried (latest)
  int candidate_kf = -1;  // recognized revisit candidate
  // 2D: pixels + frame-side descriptors of the query keyframe.
  std::vector<Vec2> query_pixels;
  std::vector<Descriptor256> query_descriptors;
  // 3D: the candidate neighbourhood's own observations — frame-side
  // descriptors, and positions lifted from each observation's depth
  // unprojection (pose_wc * point_cam), deliberately NOT the live map:
  // verification must survive pruning and must see the drift-consistent
  // old geometry.
  std::vector<Vec3> candidate_positions;
  std::vector<Descriptor256> candidate_descriptors;
  // Pose graph over every stored keyframe, ascending graph id.
  std::vector<int> kf_ids;
  std::vector<SE3> kf_poses;           // pose_cw at freeze
  std::vector<PoseGraphEdge> edges;    // covisibility + odometry edges
  // Point ownership: each live map point observed by a stored keyframe,
  // owned by its *newest* observer — the correction moves the point with
  // its owner's frame.  Points nobody stored observes (owner evicted) stay
  // put, which is right: they belong to the old, gauge-fixed end.
  std::vector<std::int64_t> owned_point_ids;
  std::vector<int> owner_kf_index;     // index into kf_ids
  std::vector<Vec3> owned_positions;   // position at freeze
  // Points with id > this were created after the freeze and ride the
  // live-end correction (loop_adjust) at apply time.
  std::int64_t max_point_id = -1;
};

// Frozen input of one backend job.
struct BackendSnapshot {
  std::uint64_t map_epoch = 0;  // epoch the copy was taken under
  int snapshot_frame = 0;       // frame index of the triggering keyframe
  int shard_id = 0;             // ordinal within its decomposition
  std::vector<int> window_kfs;  // free keyframe ids (graph ids)
  std::vector<int> fixed_kfs;   // anchor keyframe ids
  BaProblem problem;            // poses = window_kfs ++ fixed_kfs order
  // Aligned with problem.points:
  std::vector<std::int64_t> point_ids;
  std::vector<Descriptor256> point_descriptors;
  std::vector<int> point_match_counts;  // fusion keeps the proven member
  // Ownership mask aligned with point_ids: 1 = this job may move / cull /
  // fuse the point, 0 = another in-flight job owns it (the point is a
  // fixed landmark here).  Empty = the job owns every point (a lone
  // un-sharded snapshot).  This is what makes concurrent shard deltas
  // commute at apply time.
  std::vector<std::uint8_t> point_owned;
  // Set for loop-closure jobs (the BA fields above are then unused): the
  // job verifies the revisit and solves the pose graph instead of running
  // windowed BA.  One job slot serves both kinds, so the per-session
  // serialization and the apply protocol are shared by construction.
  std::optional<LoopJobSnapshot> loop;
};

// Output of one backend job, applied at the next keyframe.
struct BackendDelta {
  std::uint64_t map_epoch = 0;  // snapshot epoch (diagnostic)
  int snapshot_frame = 0;
  int shard_id = 0;             // the producing snapshot's shard ordinal
  std::vector<std::pair<int, SE3>> keyframe_poses;  // graph id -> refined
  std::vector<std::pair<std::int64_t, Vec3>> point_positions;
  std::vector<std::int64_t> culled_ids;  // bad geometry (sorted)
  std::vector<std::int64_t> fused_ids;   // redundant duplicates (sorted)
  BaResult ba;
  double optimize_ms = 0;  // whole-job wall time on the worker
  // --- loop closure ------------------------------------------------------
  bool loop_job = false;      // the delta came from a loop-detection job
  bool loop_closed = false;   // verification + pose graph succeeded
  int loop_query_kf = -1;
  int loop_match_kf = -1;
  int loop_inliers = 0;
  // World-frame correction at the live end (the query keyframe):
  // p_new = loop_adjust * p_old for everything riding the newest pose —
  // post-freeze points at apply time, and the tracker's own pose state.
  SE3 loop_adjust;
  std::int64_t loop_max_point_id = -1;
  PoseGraphResult pose_graph;
};

// What applying a delta actually changed (stale entries are skipped).
struct ApplyOutcome {
  int points_moved = 0;
  int points_culled = 0;
  int points_fused = 0;
  int keyframes_updated = 0;
  bool map_changed = false;  // epoch was bumped
  // A loop correction landed: the caller must rebase its own pose state
  // (motion model, keyframe-policy reference) by loop_adjust too, or the
  // next frames track against a map that moved out from under them.
  bool loop_applied = false;
  SE3 loop_adjust;
};

// Cumulative per-tracker backend counters (exported via Tracker and, per
// session, via server/SlamService).
struct BackendStats {
  int keyframes_inserted = 0;
  int jobs_run = 0;
  int deltas_applied = 0;
  // --- sharded execution (per-class / per-shard visibility) --------------
  int ba_jobs_run = 0;        // routine shard-BA jobs (jobs_run minus loop)
  int loop_jobs_run = 0;      // loop-verification jobs
  int jobs_discarded = 0;     // jobs invalidated by an applied correction
  int freeze_events = 0;      // keyframes that computed a decomposition
  long long shard_jobs_frozen = 0;  // BA jobs frozen across all freezes
  int last_freeze_shards = 0;  // shards the latest decomposition yielded
  int max_shards_seen = 0;     // largest decomposition observed
  int max_inflight_jobs_seen = 0;  // high-water of jobs in flight at once
  long long points_moved = 0;
  long long points_culled = 0;
  long long points_fused = 0;
  int total_ba_iterations = 0;
  double total_optimize_ms = 0;
  double last_ba_initial_cost = 0;
  double last_ba_final_cost = 0;
  // --- loop closure ------------------------------------------------------
  int loops_detected = 0;   // index candidates that froze a loop job
  int loops_verified = 0;   // ...that survived P3P + pose-graph
  int loops_rejected = 0;   // ...that did not (no map change)
  int loops_applied = 0;    // corrections folded into the live map
  int last_loop_inliers = 0;
  double last_loop_correction_m = 0;  // |translation| of loop_adjust
  int total_pose_graph_iterations = 0;
};

// Decomposes the stored keyframes into covisibility-disjoint BA shards.
// Shard 0 is the local window around the latest keyframe (plus its
// anchors); every keyframe covisible with that window is then off-limits,
// and the remaining keyframes split into connected covisibility
// components, newest seed first, each yielding one shard (free window =
// its newest window_size members, the rest become anchors).  Components
// too small to pin a gauge (< 3 keyframes) are skipped.  Deterministic:
// same graph, same shards.  Returns an empty vector while the graph is
// below min_keyframes.
std::vector<BackendShard> compute_shards(const KeyframeGraph& graph,
                                         const BackendOptions& options);

// Builds the frozen BA problem for one shard.  `claimed_points` (sorted
// ascending) lists map points already owned by other in-flight jobs —
// they enter the problem as fixed landmarks with point_owned = 0.  Must
// be called from the map-writing stage (no structural map mutation may
// run concurrently).  Returns false when the shard cannot form a
// well-anchored problem.
bool build_shard_snapshot(const KeyframeGraph& graph, const Map& map,
                          const PinholeCamera& camera,
                          const BackendOptions& options,
                          const BackendShard& shard, int shard_id,
                          int snapshot_frame,
                          std::span<const std::int64_t> claimed_points,
                          BackendSnapshot& out);

// Single-window convenience used by tests and the sequential examples:
// shard 0 of the decomposition with every point owned.  Returns false
// when the graph is still too small.
bool build_snapshot(const KeyframeGraph& graph, const Map& map,
                    const PinholeCamera& camera, const BackendOptions& options,
                    int snapshot_frame, BackendSnapshot& out);

// Detection: ranks the querying keyframe's index hits and applies the
// LoopOptions gates (frame gap, covisibility exclusion, absolute + covis-
// relative score).  Returns the accepted candidate's graph id, or -1.
// Must run from the map-writing stage (reads graph + index).
int detect_loop_candidate(const KeyframeGraph& graph,
                          const KeyframeIndex& index, int query_kf,
                          const LoopOptions& options);

// Builds the frozen loop-closure job for query_kf (the latest keyframe)
// against candidate_kf.  Same calling context as build_snapshot.  Returns
// false when the candidate neighbourhood holds no live points.
bool build_loop_snapshot(const KeyframeGraph& graph, const Map& map,
                         const PinholeCamera& camera,
                         const BackendOptions& options, int query_kf,
                         int candidate_kf, int snapshot_frame,
                         BackendSnapshot& out);

// Pure function of the snapshot — safe on any thread, takes no locks.
// `lifecycle` supplies the post-BA evidence passes (cull / fuse / trust
// region); pass a default-constructed MapLifecycleOptions with
// enabled=false to optimize without removing anything.
BackendDelta optimize_snapshot(BackendSnapshot snapshot,
                               const BackendOptions& options,
                               const MapLifecycleOptions& lifecycle);

// Applies a delta to the live map + graph: one structural map update, one
// epoch bump, one published MapReadView (when anything changed — moves
// clone only the position block, removals rebuild; see slam/map_view.h).
// Must be called from the map-writing stage; graph mutations (loop
// rebases) additionally require the tracker's exclusive graph lock, while
// device-lane map readers continue wait-free on their borrowed views.
ApplyOutcome apply_delta(const BackendDelta& delta, Map& map,
                         KeyframeGraph& graph);

}  // namespace eslam::backend
