// Asynchronous local-mapping backend: snapshot -> optimize -> delta ->
// apply.
//
// The backend never touches live tracker state while optimizing.  At a
// key frame, the tracker (inside update_map, the one map-writing stage)
// builds a BackendSnapshot — a frozen copy of the local BA window selected
// from the covisibility graph plus the map points it observes — and hands
// it to a worker (the scheduler's background lane, or inline in
// sequential mode).  optimize_snapshot() runs windowed bundle adjustment
// (local_ba.h) on the copy and derives a BackendDelta: refined keyframe
// poses, refined point positions, and the ids of points to cull (bad
// post-BA geometry) or fuse (near-duplicates the map accumulated).  The
// tracker applies the delta at the *next* key frame under the map's
// structural-epoch rules: apply_delta() mutates the map in one step and
// bumps its epoch exactly once, so a speculative feature match that read
// the pre-apply map replays by the existing rule — pipelined semantics
// need no new invariants.  Points matched after the snapshot was taken
// are never removed by a stale delta (fresh evidence wins); position
// refinements still apply (they carry their own, newer, evidence).
#pragma once

#include <cstdint>
#include <vector>

#include "backend/keyframe_graph.h"
#include "backend/local_ba.h"
#include "features/descriptor.h"
#include "geometry/camera.h"
#include "slam/map.h"

namespace eslam::backend {

struct BackendOptions {
  // Master switch.  Disabled, the tracker maintains no graph, schedules
  // no jobs, and its output is bit-identical to a backend-less build.
  bool enabled = false;
  // Free keyframes in the BA window (latest + top covisible).
  int window_size = 5;
  // Out-of-window keyframes held fixed to anchor the gauge (at least two
  // poses are always fixed — see local_ba.h).
  int max_fixed_anchors = 4;
  // Points observed fewer times than this in the problem keep their
  // position (their residuals still constrain the window poses).
  int min_observations = 2;
  // Run the first BA only once the graph holds this many keyframes.
  int min_keyframes = 3;
  BaOptions ba;
  KeyframeGraphOptions graph;
  // --- map-maintenance passes (opt-in) -----------------------------------
  // The default backend applies ONLY bounded position refinements: on the
  // long fr1/desk regime (bench_backend_ate) they alone cut ATE by ~1/3,
  // and they are the one pass whose failure mode is bounded by the trust
  // region below.  The cull and fuse passes are implemented, tested and
  // per-session tunable, but ship disabled: the tracked trajectory is
  // chaotically sensitive to removing live map points (a hundred culled
  // points measurably flipped the desk run), so removal needs stronger
  // evidence — relocalization-grade verification over the keyframe DB
  // (see ROADMAP) — before it can be default-on.
  //
  // Cull (enabled when > 0): remove a point whose post-BA mean
  // reprojection error exceeds this many pixels, judged only when it has
  // at least min_cull_observations observations of evidence.
  double cull_max_reproj_px = 0.0;
  int min_cull_observations = 2;
  // Trust region on position refinements: a point BA wants to move
  // farther than this (metres) is left untouched (an unconverged or
  // gauge-sliding estimate, not a refinement).
  double max_point_move_m = 0.5;
  // Fuse (enabled when > 0): points within this distance (metres) AND
  // fuse_max_hamming descriptor bits form a duplicate cluster; only its
  // most-matched member survives (ties to the oldest).
  double fuse_radius_m = 0.0;
  int fuse_max_hamming = 48;
};

// Frozen input of one backend job.
struct BackendSnapshot {
  std::uint64_t map_epoch = 0;  // epoch the copy was taken under
  int snapshot_frame = 0;       // frame index of the triggering keyframe
  std::vector<int> window_kfs;  // free keyframe ids (graph ids)
  std::vector<int> fixed_kfs;   // anchor keyframe ids
  BaProblem problem;            // poses = window_kfs ++ fixed_kfs order
  // Aligned with problem.points:
  std::vector<std::int64_t> point_ids;
  std::vector<Descriptor256> point_descriptors;
  std::vector<int> point_match_counts;  // fusion keeps the proven member
};

// Output of one backend job, applied at the next keyframe.
struct BackendDelta {
  std::uint64_t map_epoch = 0;  // snapshot epoch (diagnostic)
  int snapshot_frame = 0;
  std::vector<std::pair<int, SE3>> keyframe_poses;  // graph id -> refined
  std::vector<std::pair<std::int64_t, Vec3>> point_positions;
  std::vector<std::int64_t> culled_ids;  // bad geometry (sorted)
  std::vector<std::int64_t> fused_ids;   // redundant duplicates (sorted)
  BaResult ba;
  double optimize_ms = 0;  // whole-job wall time on the worker
};

// What applying a delta actually changed (stale entries are skipped).
struct ApplyOutcome {
  int points_moved = 0;
  int points_culled = 0;
  int points_fused = 0;
  int keyframes_updated = 0;
  bool map_changed = false;  // epoch was bumped
};

// Cumulative per-tracker backend counters (exported via Tracker and, per
// session, via server/SlamService).
struct BackendStats {
  int keyframes_inserted = 0;
  int jobs_run = 0;
  int deltas_applied = 0;
  long long points_moved = 0;
  long long points_culled = 0;
  long long points_fused = 0;
  int total_ba_iterations = 0;
  double total_optimize_ms = 0;
  double last_ba_initial_cost = 0;
  double last_ba_final_cost = 0;
};

// Builds the frozen BA problem for the current local window.  Must be
// called from the map-writing stage (no structural map mutation may run
// concurrently).  Returns false when the graph is still too small.
bool build_snapshot(const KeyframeGraph& graph, const Map& map,
                    const PinholeCamera& camera, const BackendOptions& options,
                    int snapshot_frame, BackendSnapshot& out);

// Pure function of the snapshot — safe on any thread, takes no locks.
BackendDelta optimize_snapshot(BackendSnapshot snapshot,
                               const BackendOptions& options);

// Applies a delta to the live map + graph: one structural map update, one
// epoch bump (when anything changed).  Must be called from the map-writing
// stage under the tracker's exclusive map lock.
ApplyOutcome apply_delta(const BackendDelta& delta, Map& map,
                         KeyframeGraph& graph);

}  // namespace eslam::backend
