#include "backend/map_lifecycle.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "features/matcher.h"
#include "geometry/camera.h"

namespace eslam::backend {

namespace {

// 3D grid key for the fuse pass (cell size = fuse radius).
std::int64_t cell_key(const Vec3& p, double cell) {
  const auto q = [&](double v) {
    return static_cast<std::int64_t>(std::floor(v / cell)) & 0x1fffff;
  };
  return (q(p[0]) << 42) | (q(p[1]) << 21) | q(p[2]);
}

}  // namespace

std::size_t run_map_maintenance(Map& map, int current_frame,
                                const MapLifecycleOptions& options) {
  if (!options.enabled || options.max_age <= 0) return 0;
  // Points are stored sorted by id, so this collection is already the
  // sorted removal list apply_update() wants.  The removal goes through
  // apply_update rather than a bespoke erase: one structural write, one
  // epoch bump, identical replay semantics to a backend delta.
  std::vector<std::int64_t> stale;
  for (const MapPoint& p : map.points()) {
    if (current_frame - p.last_matched_frame <= options.max_age) continue;
    if (options.protect_min_matches > 0 &&
        p.match_count >= options.protect_min_matches)
      continue;  // proven landmark: retained regardless of age
    stale.push_back(p.id);
  }
  if (stale.empty()) return 0;
  return map.apply_update({}, stale).removed;
}

void plan_point_fates(const BaProblem& problem,
                      std::span<const std::int64_t> point_ids,
                      std::span<const Descriptor256> point_descriptors,
                      std::span<const int> point_match_counts,
                      std::span<const std::uint8_t> point_owned,
                      const MapLifecycleOptions& options,
                      std::vector<PointFate>& fate) {
  const std::size_t n_points = problem.points.size();
  fate.assign(n_points, PointFate::kKeep);
  if (!options.enabled) return;
  const auto owned = [&](std::size_t j) {
    return point_owned.empty() || point_owned[j] != 0;
  };

  if (options.cull_max_reproj_px > 0) {
    // Post-BA per-point mean reprojection error, one pass over
    // observations (only paid when the cull pass is enabled).
    std::vector<double> err_sum(n_points, 0.0);
    std::vector<int> err_count(n_points, 0);
    for (const BaObservation& obs : problem.observations) {
      const std::size_t j = static_cast<std::size_t>(obs.point_index);
      const Vec3 p =
          problem.poses[static_cast<std::size_t>(obs.pose_index)] *
          problem.points[j];
      ++err_count[j];
      if (p[2] <= PinholeCamera::kMinDepth) {
        err_sum[j] += 1e3;  // behind a window camera: certainly misplaced
        continue;
      }
      const Vec2 proj{problem.camera.fx() * p[0] / p[2] + problem.camera.cx(),
                      problem.camera.fy() * p[1] / p[2] + problem.camera.cy()};
      err_sum[j] += (proj - obs.pixel).norm();
    }
    for (std::size_t j = 0; j < n_points; ++j)
      if (owned(j) &&
          err_count[j] >= std::max(1, options.min_cull_observations) &&
          err_sum[j] / err_count[j] > options.cull_max_reproj_px)
        fate[j] = PointFate::kCull;
  }

  // Fuse pass: grid-hash the post-BA positions; points within
  // fuse_radius_m and fuse_max_hamming of each other are redundant
  // duplicates.  The survivor of a cluster is its most-*matched* member
  // (ties to the oldest id): the point the matcher demonstrably keeps
  // finding is the one whose descriptor serves the current viewpoint —
  // blindly keeping the oldest throws away the proven descriptor, which
  // measurably degrades tracking once BA moves have aligned duplicates.
  // Scanning ids in ascending order with winner-replacement keeps the
  // outcome deterministic regardless of map size.  Points another shard
  // owns never enter the grid: this shard may neither remove them nor let
  // them displace a point it does own.
  if (options.fuse_radius_m > 0) {
    const double cell = options.fuse_radius_m;
    std::unordered_map<std::int64_t, std::vector<std::size_t>> grid;
    grid.reserve(n_points);
    const auto beats = [&](std::size_t a, std::size_t b) {
      if (point_match_counts[a] != point_match_counts[b])
        return point_match_counts[a] > point_match_counts[b];
      return point_ids[a] < point_ids[b];
    };
    for (std::size_t j = 0; j < n_points; ++j) {
      if (fate[j] == PointFate::kCull || !owned(j)) continue;
      const Vec3& pj = problem.points[j];
      std::vector<std::size_t> colliders;
      for (int dx = -1; dx <= 1; ++dx)
        for (int dy = -1; dy <= 1; ++dy)
          for (int dz = -1; dz <= 1; ++dz) {
            const Vec3 probe{pj[0] + dx * cell, pj[1] + dy * cell,
                             pj[2] + dz * cell};
            const auto it = grid.find(cell_key(probe, cell));
            if (it == grid.end()) continue;
            for (const std::size_t i : it->second) {
              if ((problem.points[i] - pj).norm() > options.fuse_radius_m)
                continue;
              if (hamming_distance(point_descriptors[i],
                                   point_descriptors[j]) >
                  options.fuse_max_hamming)
                continue;
              colliders.push_back(i);
            }
          }
      if (colliders.empty()) {
        grid[cell_key(pj, cell)].push_back(j);
        continue;
      }
      std::size_t winner = j;
      for (const std::size_t i : colliders)
        if (beats(i, winner)) winner = i;
      for (const std::size_t i : colliders) {
        if (i == winner) continue;
        fate[i] = PointFate::kFuse;
        std::vector<std::size_t>& bucket =
            grid[cell_key(problem.points[i], cell)];
        std::erase(bucket, i);
      }
      if (winner == j)
        grid[cell_key(pj, cell)].push_back(j);
      else
        fate[j] = PointFate::kFuse;
    }
  }
}

}  // namespace eslam::backend
