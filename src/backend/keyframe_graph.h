// Keyframe database + covisibility graph — the backend's view of the
// session (paper section 2.1 grows the map at key frames; this records
// *which* key frame observed *which* map point, which append-and-prune
// map updating threw away).
//
// A Keyframe stores the pose the tracker retired with and the pixel
// observations of the map points it matched or created.  Edges connect
// keyframes sharing at least `min_weight` observed points, weighted by
// the share count — the covisibility structure windowed bundle adjustment
// selects its problem from (and that relocalization / loop closure will
// search over later).
//
// The graph is owned by the Tracker and only mutated from its map-updating
// stage (one writer); the backend job reads a frozen BackendSnapshot, not
// the live graph, so no internal locking is needed here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "features/descriptor.h"
#include "geometry/se3.h"
#include "geometry/matrix.h"

namespace eslam::backend {

// One pixel observation of a map point from a keyframe.  Pixels are
// level-0 coordinates (the tracker's PnP convention).  The descriptor and
// the camera-frame 3D position are the *frame side* of the observation —
// what the keyframe actually saw (RGB-D depth unprojection), not the map
// point's canonical state.  That makes the keyframe database a
// self-contained recognition + verification substrate: the recognition
// index (backend/keyframe_index) votes over the descriptors, and
// relocalization / loop verification recover a camera pose from
// pixel-to-(pose_wc * point_cam) correspondences — all of which survive
// the map point being pruned, culled, fused, or dragged by drift.
struct KeyframeObservation {
  std::int64_t point_id = 0;  // Map point id (stable across prune/cull)
  Vec2 pixel;
  Descriptor256 descriptor;
  Vec3 point_cam;  // camera-frame 3D at observation time (depth unproject)
};

struct Keyframe {
  int id = -1;           // graph-assigned, dense in insertion order
  int frame_index = 0;   // tracker frame the keyframe retired as
  SE3 pose_cw;           // world-to-camera at retirement (BA refines this)
  std::vector<KeyframeObservation> observations;  // ascending point_id
};

// Covisibility edge from one keyframe to another.
struct CovisEdge {
  int keyframe_id = -1;
  int weight = 0;  // number of shared observed points
};

struct KeyframeGraphOptions {
  // Minimum shared observations for a covisibility edge.
  int min_weight = 15;
  // FIFO bound on stored keyframes; 0 keeps every keyframe.  Evicting the
  // oldest keyframe drops its edges too, so long sessions stay bounded.
  int max_keyframes = 512;
};

class KeyframeGraph {
 public:
  explicit KeyframeGraph(const KeyframeGraphOptions& options = {})
      : options_(options) {}

  // Inserts a keyframe and computes its covisibility edges against the
  // stored keyframes.  `observations` need not be sorted; the graph sorts
  // by point_id.  Returns the new keyframe's id.
  int add_keyframe(int frame_index, const SE3& pose_cw,
                   std::vector<KeyframeObservation> observations);

  // Latest keyframe plus its top covisible neighbours (by edge weight,
  // newer keyframe winning ties), at most `size` ids, newest first.
  // This is the windowed-BA problem selector.
  std::vector<int> local_window(int size) const;

  // Keyframes outside `window` sharing points with any window member,
  // strongest overlap first, at most `max_anchors` ids.  These become the
  // fixed poses that anchor the window's gauge.
  std::vector<int> anchors(const std::vector<int>& window,
                           int max_anchors) const;

  bool contains(int id) const;
  const Keyframe& keyframe(int id) const;
  void set_pose(int id, const SE3& pose_cw);

  const std::vector<CovisEdge>& neighbors(int id) const;
  int covisibility_weight(int a, int b) const;

  // The keyframe plus its top covisible neighbours (strongest first,
  // newer winning weight ties), at most max(1, size) ids — the "local
  // place" both relocalization matching and loop verification assemble
  // their observation sets from.
  std::vector<int> neighbourhood(int id, int size) const;

  // The neighbourhood's observations, one entry per point id (the first
  // listed keyframe's own view wins duplicates), each lifted to a world
  // position through its keyframe's stored pose (pose_wc * point_cam) —
  // the shared recovery/verification substrate: frame-side descriptors
  // and depth-consistent geometry, independent of the live map.
  struct PlaceObservation {
    std::int64_t point_id = 0;
    Descriptor256 descriptor;
    Vec3 position_w;
  };
  std::vector<PlaceObservation> place_observations(
      std::span<const int> keyframe_ids) const;

  // Connected covisibility component of `seed` restricted to unclaimed
  // keyframes: BFS over covisibility edges, never entering a keyframe
  // whose `claimed[id - first_live_id()]` flag is set, marking every
  // collected keyframe claimed.  Returns the component sorted newest
  // first.  This is the shard decomposer's substrate — two components
  // collected this way share no covisibility edge between them, so the
  // backend may optimize them as independent jobs.
  std::vector<int> covisible_component(int seed,
                                       std::span<std::uint8_t> claimed) const;

  // Drops observations of removed map points (after backend cull/fuse),
  // so future snapshots stop proposing them.  Ids must be sorted.
  void remove_point_observations(std::span<const std::int64_t> removed_ids);

  std::size_t size() const { return keyframes_.size(); }
  bool empty() const { return keyframes_.empty(); }
  const KeyframeGraphOptions& options() const { return options_; }
  int latest_id() const {
    return keyframes_.empty() ? -1 : keyframes_.back().id;
  }
  // Total keyframes ever inserted (ids run [evicted_, evicted_ + size())).
  int total_inserted() const { return next_id_; }
  // Smallest id still stored (advances as the FIFO bound evicts); the
  // keyframe-recognition index trims itself against this after insertions.
  int first_live_id() const { return first_id_; }

 private:
  const Keyframe* find(int id) const;
  Keyframe* find(int id);
  void evict_oldest();

  KeyframeGraphOptions options_;
  // Dense by id minus eviction offset: keyframes_[i].id == first_id_ + i.
  std::vector<Keyframe> keyframes_;
  std::vector<std::vector<CovisEdge>> edges_;  // aligned with keyframes_
  int next_id_ = 0;
  int first_id_ = 0;  // id of keyframes_[0] (advances on eviction)
};

}  // namespace eslam::backend
