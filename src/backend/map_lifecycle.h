// Unified map-point lifecycle policy: the one owner of every decision
// that removes or merges map points.
//
// Before this module the lifecycle had two owners with unrelated rules:
// Map::prune() deleted by age alone (called directly from the tracker's
// keyframe path), while the backend's BA cull/fuse passes — observation-
// count-driven and default-off — lived inside optimize_snapshot().  The
// two could disagree (a point proven by dozens of matches was age-pruned
// the moment the camera looked away long enough; a point BA demonstrably
// could not place survived until someone opted into culling), and tuning
// one without the other was guesswork.
//
// MapLifecycleOptions is now the single policy surface, owned by the
// tracker and threaded into every pass:
//
//   * run_map_maintenance() — the keyframe-time retention pass.  Age
//     pruning with an observation-count override: a point matched at
//     least protect_min_matches times is a proven landmark and is never
//     deleted for age alone (it can still be culled by BA evidence or
//     fused as a duplicate).  One structural map write + one epoch bump
//     when anything was removed, same replay rules as every other
//     structural update.
//   * plan_point_fates() — the post-BA evidence pass (cull + fuse),
//     invoked by optimize_snapshot() on the worker thread over the frozen
//     shard problem.  Pure planning: the fates feed the job's delta and
//     land through apply_delta()'s stale-evidence rules unchanged.
//
// The passes are ON by default (this is the regression-gated flip the
// backend's old "ship disabled" comment asked for): bench_backend_ate
// gates fr1/desk ATE with the unified lifecycle enabled, so the defaults
// below are deliberately conservative — removal still needs strong
// evidence; the gate keeps them honest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "backend/local_ba.h"
#include "features/descriptor.h"
#include "slam/map.h"

namespace eslam::backend {

struct MapLifecycleOptions {
  // Master switch over the whole policy.  Off, no pass removes anything —
  // the map only grows (tests that need a frozen map use this).
  bool enabled = true;
  // Age pruning: frames without a match before a point is deleted (the
  // paper's "not matched for a long period of time" rule).
  int max_age = 200;
  // Retention override: a point with at least this many lifetime matches
  // is never age-pruned (0 disables the override and restores pure age
  // pruning).  BA-evidence culling and duplicate fusion still apply — a
  // proven landmark that BA shows to be misplaced is misplaced.
  int protect_min_matches = 8;
  // Cull (post-BA, enabled when > 0): remove a point whose post-BA mean
  // reprojection error exceeds this many pixels, judged only when it has
  // at least min_cull_observations observations of evidence.  Default is
  // far looser than the BA inlier band on purpose: the tracked trajectory
  // is chaotically sensitive to removing live points, so default-on
  // culling only deletes points that are *grossly* misplaced.
  double cull_max_reproj_px = 20.0;
  int min_cull_observations = 4;
  // Trust region on BA position refinements: a point BA wants to move
  // farther than this (metres) is left untouched (an unconverged or
  // gauge-sliding estimate, not a refinement).
  double max_point_move_m = 0.5;
  // Fuse (post-BA, enabled when > 0): points within this distance
  // (metres) AND fuse_max_hamming descriptor bits form a duplicate
  // cluster; only its most-matched member survives (ties to the oldest).
  // Default-on catches only near-exact duplicates — co-located points
  // with near-identical descriptors, the ones that demonstrably alias the
  // matcher.
  double fuse_radius_m = 0.002;
  int fuse_max_hamming = 4;
};

// What plan_point_fates() decided for each snapshot point.
enum class PointFate : std::uint8_t { kKeep, kCull, kFuse };

// Keyframe-time retention pass.  Must be called from the map-writing
// stage under the tracker's exclusive map lock (it is one structural map
// write).  Returns the number of points removed.
std::size_t run_map_maintenance(Map& map, int current_frame,
                                const MapLifecycleOptions& options);

// Post-BA evidence pass over one optimized shard problem: marks grossly
// misplaced points kCull and redundant duplicates kFuse (most-matched
// cluster member survives).  `point_owned` gates which points this shard
// may judge — a point owned by another in-flight shard is never touched
// (empty span = the shard owns everything).  Pure function; runs on the
// worker thread over frozen data.
void plan_point_fates(const BaProblem& problem,
                      std::span<const std::int64_t> point_ids,
                      std::span<const Descriptor256> point_descriptors,
                      std::span<const int> point_match_counts,
                      std::span<const std::uint8_t> point_owned,
                      const MapLifecycleOptions& options,
                      std::vector<PointFate>& fate);

}  // namespace eslam::backend
