#include "backend/pose_graph.h"

#include <algorithm>
#include <cmath>

#include "backend/dense_solve.h"
#include "geometry/assert.h"
#include "geometry/so3.h"

namespace eslam::backend {

namespace {

double edge_cost(const PoseGraphProblem& problem) {
  double cost = 0;
  for (const PoseGraphEdge& e : problem.edges) {
    const SE3 err = problem.poses[static_cast<std::size_t>(e.a)] *
                    problem.poses[static_cast<std::size_t>(e.b)].inverse() *
                    e.t_ab.inverse();
    cost += e.weight * err.log().squared_norm();
  }
  return cost;
}

}  // namespace

Mat6 se3_adjoint(const SE3& t) {
  // Twist ordering is [rho (translation); phi (rotation)]:
  //   Ad = [ R   hat(t) R ]
  //        [ 0       R    ]
  Mat6 ad;
  const Mat3& r = t.rotation();
  const Mat3 tr = hat(t.translation()) * r;
  ad.set_block(0, 0, r);
  ad.set_block(0, 3, tr);
  ad.set_block(3, 3, r);
  return ad;
}

PoseGraphResult solve_pose_graph(PoseGraphProblem& problem,
                                 const PoseGraphOptions& options) {
  PoseGraphResult result;
  const std::size_t n = problem.poses.size();
  ESLAM_ASSERT(problem.fixed.size() == n, "fixed flags size mismatch");
  if (n == 0 || problem.edges.empty()) return result;

  // Map free poses to parameter-block slots; refuse a gauge-free problem.
  std::vector<int> slot(n, -1);
  int n_free = 0;
  bool any_fixed = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (problem.fixed[i])
      any_fixed = true;
    else
      slot[i] = n_free++;
  }
  if (!any_fixed || n_free == 0) return result;
  const int dim = 6 * n_free;

  // Refuse non-finite input outright: the SE3 logarithm inside the
  // residuals is not evaluable on NaN-poisoned poses.
  for (const SE3& pose : problem.poses) {
    bool finite = true;
    for (int i = 0; i < 9; ++i)
      finite = finite && std::isfinite(pose.rotation()[i]);
    for (int i = 0; i < 3; ++i)
      finite = finite && std::isfinite(pose.translation()[i]);
    if (!finite) return result;
  }

  result.initial_cost = edge_cost(problem);
  if (!std::isfinite(result.initial_cost)) return result;  // garbage input
  double cost = result.initial_cost;
  double lambda = options.initial_lambda;

  std::vector<double> h, g, delta;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    h.assign(static_cast<std::size_t>(dim) * dim, 0.0);
    g.assign(static_cast<std::size_t>(dim), 0.0);

    // Accumulate H = sum w J^T J and g = sum w J^T e per edge.  J_a = I,
    // J_b = -Ad(T_a T_b^{-1}), so the blocks are closed-form.
    for (const PoseGraphEdge& e : problem.edges) {
      const SE3& ta = problem.poses[static_cast<std::size_t>(e.a)];
      const SE3& tb = problem.poses[static_cast<std::size_t>(e.b)];
      const SE3 rel = ta * tb.inverse();
      const Vec6 r = (rel * e.t_ab.inverse()).log();
      const int sa = slot[static_cast<std::size_t>(e.a)];
      const int sb = slot[static_cast<std::size_t>(e.b)];
      const Mat6 ad = sb >= 0 ? se3_adjoint(rel) : Mat6{};
      const auto add_block = [&](int row, int col, const Mat6& block) {
        for (int i = 0; i < 6; ++i)
          for (int j = 0; j < 6; ++j)
            h[static_cast<std::size_t>(row * 6 + i) * dim + (col * 6 + j)] +=
                e.weight * block(i, j);
      };
      if (sa >= 0) {
        add_block(sa, sa, Mat6::identity());
        for (int i = 0; i < 6; ++i)
          g[static_cast<std::size_t>(sa * 6 + i)] += e.weight * r[i];
      }
      if (sb >= 0) {
        // J_b^T J_b = Ad^T Ad;  J_b^T e = -Ad^T e.
        add_block(sb, sb, ad.transposed() * ad);
        const Vec6 adr = ad.transposed() * r;
        for (int i = 0; i < 6; ++i)
          g[static_cast<std::size_t>(sb * 6 + i)] -= e.weight * adr[i];
      }
      if (sa >= 0 && sb >= 0) {
        // Cross blocks J_a^T J_b = -Ad and its transpose.
        add_block(sa, sb, -ad);
        add_block(sb, sa, -ad.transposed());
      }
    }

    for (int i = 0; i < dim; ++i)
      h[static_cast<std::size_t>(i) * dim + i] += lambda;
    std::vector<double> h_copy = h, g_copy = g;
    for (double& v : g_copy) v = -v;
    if (!solve_dense(h_copy, g_copy, dim, delta)) {
      // Singular even with damping: disconnected component with no
      // anchor, or a degenerate edge set.  Refuse rather than guess.
      if (iter == 0) return result;
      break;
    }

    double max_step = 0;
    for (const double v : delta) max_step = std::max(max_step, std::abs(v));
    if (!std::isfinite(max_step)) break;  // solver produced garbage
    // Trust region (see PoseGraphOptions::max_step).
    if (options.max_step > 0 && max_step > options.max_step) {
      const double scale = options.max_step / max_step;
      for (double& v : delta) v *= scale;
      max_step = options.max_step;
    }

    // Tentative update, accepted only when the cost drops (plain LM).
    std::vector<SE3> backup = problem.poses;
    for (std::size_t i = 0; i < n; ++i) {
      if (slot[i] < 0) continue;
      Vec6 xi;
      for (int k = 0; k < 6; ++k)
        xi[k] = delta[static_cast<std::size_t>(slot[i] * 6 + k)];
      problem.poses[i] = SE3::exp(xi) * problem.poses[i];
    }
    const double new_cost = edge_cost(problem);
    ++result.iterations;
    // A NaN cost fails this comparison and the step is reverted below.
    if (new_cost <= cost) {
      cost = new_cost;
      lambda = std::max(lambda * 0.5, 1e-12);
    } else {
      problem.poses = std::move(backup);
      lambda *= 10.0;
      if (lambda > 1e8) break;
      continue;
    }
    if (max_step < options.convergence_step) {
      result.converged = true;
      break;
    }
  }
  result.final_cost = cost;
  // A run that stopped on the iteration budget but reduced the cost is
  // still a usable correction.
  if (!result.converged)
    result.converged = cost < result.initial_cost || cost == 0.0;
  return result;
}

}  // namespace eslam::backend
