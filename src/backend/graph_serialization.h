// Keyframe-graph section of the map snapshot format (slam/map_snapshot):
// flat little-endian encode/decode of the keyframe database, plus the
// deterministic rebuild of the derived structures — covisibility edges and
// the recognition index — that are NOT serialized.
//
// What is stored per keyframe is exactly what add_keyframe() consumes
// (frame index, pose, observations); edges, eviction bookkeeping and the
// inverted recognition file are recomputed by re-inserting the keyframes
// in their stored order.  Rebuilding rather than serializing the derived
// state keeps the format small and makes the round-trip guarantee trivial:
// save -> load -> save re-serializes the same insertion-order inputs, so
// the bytes cannot drift even if the edge or index internals change.
//
// Graph ids are deliberately not stored: a rebuilt graph assigns them
// densely from 0 in insertion order, which preserves every relative
// relation (covisibility, recency ties, index ranking) the relocalization
// path depends on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "backend/keyframe_graph.h"
#include "backend/keyframe_index.h"
#include "core/byte_io.h"

namespace eslam::backend {

// The live graph's keyframes in insertion (id) order — the capture side.
std::vector<Keyframe> collect_keyframes(const KeyframeGraph& graph);

// Appends the graph section: options, keyframe count, then each keyframe's
// frame index, pose and observations.
void write_graph_section(const KeyframeGraphOptions& options,
                         std::span<const Keyframe> keyframes, ByteWriter& out);

// Parses the graph section with strict validation: counts are checked
// against the remaining bytes before any reserve, every pose/pixel/point
// value must be finite, and observation point ids must lie inside
// [0, next_point_id) — an id the map never issued is corruption, not data.
// Returns false (with reader marked failed and *error set when non-null)
// on any violation; `keyframes` ids are left unassigned (-1).
bool read_graph_section(ByteReader& in, std::int64_t next_point_id,
                        KeyframeGraphOptions& options,
                        std::vector<Keyframe>& keyframes, std::string* error);

// Re-inserts the stored keyframes in order, recomputing covisibility edges
// (ids come out dense from 0).  Deterministic: same inputs, same graph.
KeyframeGraph rebuild_graph(const KeyframeGraphOptions& options,
                            std::span<const Keyframe> keyframes);

// Rebuilds the recognition index over a (rebuilt) graph's live keyframes —
// same insertion order as the live tracker performed, so query rankings
// match a never-serialized session's.
void rebuild_index(const KeyframeGraph& graph, KeyframeIndex& index);

}  // namespace eslam::backend
