#include "backend/keyframe_index.h"

#include <algorithm>
#include <cmath>

#include "geometry/assert.h"

namespace eslam::backend {

void KeyframeIndex::words_of(const Descriptor256& d,
                             std::uint32_t out[kChunksPerDescriptor]) {
  for (int c = 0; c < kChunksPerDescriptor; ++c) {
    const std::uint64_t word64 = d.words()[static_cast<std::size_t>(c / 4)];
    const std::uint32_t value =
        static_cast<std::uint32_t>((word64 >> ((c % 4) * 16)) & 0xffffu);
    out[c] = (static_cast<std::uint32_t>(c) << 16) | value;
  }
}

void KeyframeIndex::add_keyframe(
    int keyframe_id, std::span<const KeyframeObservation> observations) {
  ESLAM_ASSERT(words_by_kf_.find(keyframe_id) == words_by_kf_.end(),
               "keyframe already indexed");
  std::vector<std::uint32_t> words;
  words.reserve(observations.size() * kChunksPerDescriptor);
  std::uint32_t w[kChunksPerDescriptor];
  for (const KeyframeObservation& obs : observations) {
    words_of(obs.descriptor, w);
    words.insert(words.end(), w, w + kChunksPerDescriptor);
  }
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  for (const std::uint32_t word : words) {
    std::vector<int>& posting = postings_[word];
    // Ids arrive ascending, so appending keeps postings sorted.
    ESLAM_ASSERT(posting.empty() || posting.back() < keyframe_id,
                 "keyframe ids must be inserted in ascending order");
    posting.push_back(keyframe_id);
  }
  words_by_kf_.emplace(keyframe_id, std::move(words));
}

void KeyframeIndex::remove_below(int first_live_id) {
  std::vector<int> dead;
  for (const auto& [id, words] : words_by_kf_)
    if (id < first_live_id) dead.push_back(id);
  if (dead.empty()) return;
  for (const int id : dead) {
    const auto it = words_by_kf_.find(id);
    for (const std::uint32_t word : it->second) {
      const auto posting = postings_.find(word);
      if (posting == postings_.end()) continue;
      // Evictions remove the oldest ids, which sit at the front.
      std::erase(posting->second, id);
      if (posting->second.empty()) postings_.erase(posting);
    }
    words_by_kf_.erase(it);
  }
}

std::vector<KeyframeScore> KeyframeIndex::query(
    std::span<const Descriptor256> descriptors, int max_results) const {
  std::vector<KeyframeScore> ranked;
  if (descriptors.empty() || words_by_kf_.empty() || max_results <= 0)
    return ranked;

  const double n_keyframes = static_cast<double>(words_by_kf_.size());
  std::unordered_map<int, double> votes;
  votes.reserve(words_by_kf_.size());
  std::uint32_t w[kChunksPerDescriptor];
  for (const Descriptor256& d : descriptors) {
    words_of(d, w);
    for (int c = 0; c < kChunksPerDescriptor; ++c) {
      const auto posting = postings_.find(w[c]);
      if (posting == postings_.end()) continue;
      // Rare words are discriminative; a word present in every keyframe
      // carries no recognition signal (the textbook idf weighting).
      const double idf = std::log(
          1.0 + n_keyframes / static_cast<double>(posting->second.size()));
      for (const int kf : posting->second)
        votes[kf] += idf;
    }
  }

  ranked.reserve(votes.size());
  for (const auto& [kf, mass] : votes) {
    const auto words = words_by_kf_.find(kf);
    const double norm =
        1.0 + static_cast<double>(words->second.size());
    ranked.push_back({kf, mass / norm});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const KeyframeScore& a, const KeyframeScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.keyframe_id > b.keyframe_id;  // ties: newer first
            });
  if (static_cast<int>(ranked.size()) > max_results)
    ranked.resize(static_cast<std::size_t>(max_results));
  return ranked;
}

}  // namespace eslam::backend
