// Dynamic-size dense linear solve shared by the backend optimizers.
//
// local_ba's reduced camera system (6F x 6F) and pose_graph's normal
// equations (6N x 6N) are both small dense symmetric systems whose size is
// only known at runtime; this is the dynamic-size sibling of
// geometry/matrix.h solve<N>(): Gaussian elimination with partial
// pivoting, row-major storage, destructive on its inputs.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace eslam::backend {

// Solves A x = b (A row-major n*n, destroyed; b destroyed).  Returns false
// when A is (numerically) singular.
inline bool solve_dense(std::vector<double>& a, std::vector<double>& b, int n,
                        std::vector<double>& x) {
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::abs(a[static_cast<std::size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double v = std::abs(a[static_cast<std::size_t>(r) * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (!(best > 1e-12)) return false;
    if (pivot != col) {
      for (int c = col; c < n; ++c)
        std::swap(a[static_cast<std::size_t>(col) * n + c],
                  a[static_cast<std::size_t>(pivot) * n + c]);
      std::swap(b[static_cast<std::size_t>(col)],
                b[static_cast<std::size_t>(pivot)]);
    }
    const double inv = 1.0 / a[static_cast<std::size_t>(col) * n + col];
    for (int r = col + 1; r < n; ++r) {
      const double f = a[static_cast<std::size_t>(r) * n + col] * inv;
      if (f == 0.0) continue;
      for (int c = col; c < n; ++c)
        a[static_cast<std::size_t>(r) * n + c] -=
            f * a[static_cast<std::size_t>(col) * n + c];
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(col)];
    }
  }
  x.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double s = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c)
      s -= a[static_cast<std::size_t>(r) * n + c] *
           x[static_cast<std::size_t>(c)];
    x[static_cast<std::size_t>(r)] = s / a[static_cast<std::size_t>(r) * n + r];
  }
  return true;
}

}  // namespace eslam::backend
