// Keyframe recognition index — binary-descriptor voting over the
// per-keyframe observations stored in backend::KeyframeGraph.
//
// The classic loop-closure front-end (ORB-SLAM's DBoW2) quantizes each
// descriptor against a pre-trained vocabulary tree.  This project has no
// offline training data, so the index uses a *structural* vocabulary
// instead: every 256-bit descriptor is split into 16 chunks of 16 bits,
// and chunk c with value v is the word (c << 16) | v.  Two descriptors
// within a few bits of Hamming distance share most of their 16 words
// (flipping k bits corrupts at most k chunks), so word collisions are a
// cheap, training-free proxy for descriptor similarity — the same
// locality-sensitive trick HBST and LDB-style binary vocabularies use.
//
// Per keyframe, the index stores the *set* of words its observation
// descriptors produce; an inverted file maps each word to the keyframes
// containing it.  A query accumulates, per keyframe, the idf-weighted
// count of shared words, normalized by the keyframe's own word count so
// observation-rich keyframes are not favored.  Scores are comparable
// within one query only (they scale with query size) — callers gate on a
// reference score from the same query (e.g. the covisible neighbours'
// scores), not on absolute thresholds alone.
//
// Ownership/threading mirrors KeyframeGraph: the Tracker mutates the
// index only from its map-updating stage (under the exclusive map lock)
// and the device lane reads it under the shared lock, so the index itself
// needs no locking.  Determinism: ties rank the newer keyframe first.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "backend/keyframe_graph.h"
#include "features/descriptor.h"

namespace eslam::backend {

struct KeyframeScore {
  int keyframe_id = -1;
  double score = 0;  // idf-weighted shared-word mass, length-normalized
};

class KeyframeIndex {
 public:
  static constexpr int kChunkBits = 16;
  static constexpr int kChunksPerDescriptor =
      Descriptor256::kBits / kChunkBits;

  // The 16 words of one descriptor (chunk index tagged into the high bits).
  static void words_of(const Descriptor256& d,
                       std::uint32_t out[kChunksPerDescriptor]);

  // Indexes a keyframe's observation descriptors.  Ids must be inserted in
  // ascending order (the graph's insertion order).
  void add_keyframe(int keyframe_id,
                    std::span<const KeyframeObservation> observations);

  // Drops every keyframe with id < first_live_id — call after the graph's
  // FIFO bound evicts, with graph.first_live_id().
  void remove_below(int first_live_id);

  // Keyframes ranked by descending score (ties: newer keyframe first), at
  // most max_results entries; keyframes sharing no word are absent.
  std::vector<KeyframeScore> query(std::span<const Descriptor256> descriptors,
                                   int max_results) const;

  std::size_t size() const { return words_by_kf_.size(); }
  bool empty() const { return words_by_kf_.empty(); }

 private:
  // word -> keyframe ids containing it, ascending (each id at most once).
  std::unordered_map<std::uint32_t, std::vector<int>> postings_;
  // keyframe id -> its sorted unique word list (for removal + length norm).
  std::unordered_map<int, std::vector<std::uint32_t>> words_by_kf_;
};

}  // namespace eslam::backend
