// Minimal steady-clock millisecond stopwatch.  Lives at the bottom of
// the layer stack (like geometry/assert.h) so slam/, backend/ and the
// bench tooling share one definition instead of growing per-file copies.
#pragma once

#include <chrono>

namespace eslam {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace eslam
