// Lightweight contract checking used across the project.
//
// ESLAM_ASSERT is active in all build types (the checks guard narrow hot
// paths only and the cost is negligible next to pixel processing); failures
// abort with file/line so bugs surface at the violation site rather than as
// corrupted state downstream.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace eslam::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* msg,
                                     const char* file, int line) {
  std::fprintf(stderr, "eslam assertion failed: %s (%s) at %s:%d\n", expr, msg,
               file, line);
  std::abort();
}

}  // namespace eslam::detail

#define ESLAM_ASSERT(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) ::eslam::detail::assert_fail(#expr, msg, __FILE__, __LINE__); \
  } while (false)
