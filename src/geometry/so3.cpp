#include "geometry/so3.h"

#include <algorithm>
#include <cmath>

namespace eslam {

Mat3 hat(const Vec3& w) {
  return Mat3{0, -w[2], w[1],  //
              w[2], 0, -w[0],  //
              -w[1], w[0], 0};
}

Mat3 so3_exp(const Vec3& w) {
  const double theta = w.norm();
  const Mat3 k = hat(w);
  if (theta < 1e-9) {
    // Second-order Taylor expansion; accurate to ~1e-18 here.
    return Mat3::identity() + k + 0.5 * (k * k);
  }
  const double a = std::sin(theta) / theta;
  const double b = (1.0 - std::cos(theta)) / (theta * theta);
  return Mat3::identity() + a * k + b * (k * k);
}

Vec3 so3_log(const Mat3& r) {
  const double cos_theta = std::clamp((r.trace() - 1.0) * 0.5, -1.0, 1.0);
  const double theta = std::acos(cos_theta);
  const Vec3 axis_raw{r(2, 1) - r(1, 2), r(0, 2) - r(2, 0), r(1, 0) - r(0, 1)};
  if (theta < 1e-9) return 0.5 * axis_raw;  // small-angle: log(R) ~ (R-R^T)v/2
  if (theta > M_PI - 1e-6) {
    // Near pi the antisymmetric part vanishes; recover axis from the
    // symmetric part R = I + 2*sin^2(theta/2)*(aa^T - I).
    Vec3 axis;
    const Mat3 s = 0.5 * (r + Mat3::identity());
    int k = 0;
    for (int i = 1; i < 3; ++i)
      if (s(i, i) > s(k, k)) k = i;
    axis[k] = std::sqrt(std::max(s(k, k), 0.0));
    for (int i = 0; i < 3; ++i)
      if (i != k) axis[i] = s(k, i) / axis[k];
    // Fix the sign so that it agrees with the antisymmetric part.
    if (dot(axis, axis_raw) < 0.0) axis = -axis;
    return theta * axis.normalized();
  }
  return (theta / (2.0 * std::sin(theta))) * axis_raw;
}

Mat3 orthonormalized(const Mat3& r) {
  Vec3 x = r.row(0).transposed();
  Vec3 y = r.row(1).transposed();
  x = x.normalized();
  y = (y - dot(x, y) * x).normalized();
  const Vec3 z = cross(x, y);
  Mat3 out;
  out.set_row(0, x.transposed());
  out.set_row(1, y.transposed());
  out.set_row(2, z.transposed());
  return out;
}

Mat3 axis_rotation(int axis, double angle) {
  Vec3 w;
  w[axis] = angle;
  return so3_exp(w);
}

bool is_rotation(const Mat3& r, double tol) {
  const Mat3 should_be_identity = r * r.transposed();
  if ((should_be_identity - Mat3::identity()).max_abs() > tol) return false;
  return std::abs(determinant(r) - 1.0) <= tol;
}

}  // namespace eslam
