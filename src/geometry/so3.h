// SO(3) utilities: hat operator, exponential and logarithm maps.
//
// Rotations are represented as plain 3x3 matrices; exp/log provide the
// minimal axis-angle parameterization used by the pose optimizers.
#pragma once

#include "geometry/matrix.h"

namespace eslam {

// Skew-symmetric (cross-product) matrix of w.
Mat3 hat(const Vec3& w);

// Rodrigues formula: exp of the axis-angle vector w (angle = |w|).
Mat3 so3_exp(const Vec3& w);

// Logarithm map: axis-angle vector of rotation matrix R.
// R must be a proper rotation (orthonormal, det +1).
Vec3 so3_log(const Mat3& r);

// Re-orthonormalizes an almost-rotation matrix (Gram-Schmidt on rows).
Mat3 orthonormalized(const Mat3& r);

// Rotation about a single axis (0 = x, 1 = y, 2 = z) by `angle` radians.
Mat3 axis_rotation(int axis, double angle);

bool is_rotation(const Mat3& r, double tol = 1e-6);

}  // namespace eslam
