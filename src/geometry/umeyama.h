// Umeyama closed-form similarity/rigid alignment between two point sets.
// Used to align an estimated trajectory with ground truth before computing
// absolute trajectory error (the standard TUM evaluation protocol).
#pragma once

#include <span>

#include "geometry/matrix.h"
#include "geometry/se3.h"

namespace eslam {

// Finds the rigid transform T (and optional scale s) minimizing
// sum_i || dst_i - (s * R * src_i + t) ||^2.  Requires >= 3 points that are
// not all collinear; with fewer/degenerate points the rotation falls back to
// identity on the ambiguous axes (the SVD handles rank deficiency).
struct AlignmentResult {
  SE3 transform;       // maps src into dst
  double scale = 1.0;  // 1.0 unless with_scale
  double rmse = 0.0;   // residual after alignment
};

AlignmentResult umeyama(std::span<const Vec3> src, std::span<const Vec3> dst,
                        bool with_scale = false);

}  // namespace eslam
