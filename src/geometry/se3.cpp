#include "geometry/se3.h"

#include <cmath>

namespace eslam {

namespace {

// Left Jacobian of SO(3): V in exp([t; w]) = (exp(w), V t).
Mat3 left_jacobian(const Vec3& w) {
  const double theta = w.norm();
  const Mat3 k = hat(w);
  if (theta < 1e-9) return Mat3::identity() + 0.5 * k + (k * k) / 6.0;
  const double t2 = theta * theta;
  const double a = (1.0 - std::cos(theta)) / t2;
  const double b = (theta - std::sin(theta)) / (t2 * theta);
  return Mat3::identity() + a * k + b * (k * k);
}

}  // namespace

SE3 SE3::exp(const Vec6& xi) {
  const Vec3 rho{xi[0], xi[1], xi[2]};
  const Vec3 w{xi[3], xi[4], xi[5]};
  return SE3{so3_exp(w), left_jacobian(w) * rho};
}

Vec6 SE3::log() const {
  const Vec3 w = so3_log(r_);
  Mat3 v_inv;
  const bool ok = invert(left_jacobian(w), v_inv);
  ESLAM_ASSERT(ok, "left Jacobian must be invertible");
  const Vec3 rho = v_inv * t_;
  return Vec6{rho[0], rho[1], rho[2], w[0], w[1], w[2]};
}

}  // namespace eslam
