// Jacobi eigendecomposition for small symmetric matrices and a 3x3 SVD
// built on top of it.  Used by Umeyama trajectory alignment and by the
// Harris-score reference implementation tests.
#pragma once

#include "geometry/matrix.h"

namespace eslam {

// Eigendecomposition of a symmetric matrix A = V * diag(w) * V^T using
// cyclic Jacobi rotations.  Eigenvalues are returned in descending order,
// V's columns are the matching (orthonormal) eigenvectors.
template <int N, typename T>
void symmetric_eigen(Mat<N, N, T> a, Vec<N, T>& w, Mat<N, N, T>& v) {
  v = Mat<N, N, T>::identity();
  for (int sweep = 0; sweep < 64; ++sweep) {
    T off{};
    for (int p = 0; p < N; ++p)
      for (int q = p + 1; q < N; ++q) off += a(p, q) * a(p, q);
    if (off < T{1e-24}) break;
    for (int p = 0; p < N; ++p) {
      for (int q = p + 1; q < N; ++q) {
        if (std::abs(a(p, q)) < T{1e-18}) continue;
        const T theta = (a(q, q) - a(p, p)) / (T{2} * a(p, q));
        const T t = (theta >= T{0} ? T{1} : T{-1}) /
                    (std::abs(theta) + std::sqrt(theta * theta + T{1}));
        const T c = T{1} / std::sqrt(t * t + T{1});
        const T s = t * c;
        for (int k = 0; k < N; ++k) {
          const T akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < N; ++k) {
          const T apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < N; ++k) {
          const T vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  for (int i = 0; i < N; ++i) w[i] = a(i, i);
  // Selection sort into descending eigenvalue order.
  for (int i = 0; i < N - 1; ++i) {
    int best = i;
    for (int j = i + 1; j < N; ++j)
      if (w[j] > w[best]) best = j;
    if (best != i) {
      std::swap(w[i], w[best]);
      for (int k = 0; k < N; ++k) std::swap(v(k, i), v(k, best));
    }
  }
}

// Thin SVD of a 3x3 matrix: A = U * diag(s) * V^T with s sorted descending
// and U, V orthogonal (possibly with det -1; callers that need rotations
// must fix signs, as umeyama() does).
template <typename T>
void svd3(const Mat<3, 3, T>& a, Mat<3, 3, T>& u, Vec<3, T>& s,
          Mat<3, 3, T>& v) {
  // Eigendecompose A^T A = V S^2 V^T.
  symmetric_eigen(Mat<3, 3, T>(a.transposed() * a), s, v);
  for (int i = 0; i < 3; ++i) s[i] = std::sqrt(std::max(s[i], T{0}));
  // First two U columns: A v_i / s_i (safe while s_i carries signal); the
  // orthogonalization fallback covers rank <= 1 inputs.  The third column
  // is NEVER obtained by division: when s_2 sits at the noise floor (the
  // ubiquitous rank-2 case — e.g. 3-point Procrustes alignment), A v_2 /
  // s_2 amplifies rounding noise into a garbage non-orthogonal column.
  // Instead u_2 = +-cross(u_0, u_1), signed to match A's orientation.
  const T tol = std::max(T{1e-12}, T{1e-9} * s[0]);
  for (int i = 0; i < 2; ++i) {
    Vec<3, T> col = a * v.col(i);
    if (s[i] > tol) {
      u.set_col(i, col / s[i]);
    } else {
      // Orthogonalize a unit vector against the previous columns.
      Vec<3, T> cand{T{1}, T{0}, T{0}};
      for (int axis = 0; axis < 3; ++axis) {
        cand = Vec<3, T>{};
        cand[axis] = T{1};
        for (int j = 0; j < i; ++j) {
          const Vec<3, T> uj = u.col(j);
          cand -= dot(uj, cand) * uj;
        }
        if (cand.norm() > T{0.5}) break;
      }
      u.set_col(i, cand.normalized());
    }
  }
  Vec<3, T> u2 = cross(Vec<3, T>(u.col(0)), Vec<3, T>(u.col(1)));
  const T s2_signed = dot(u2, Vec<3, T>(a * v.col(2)));
  if (s2_signed < T{0}) u2 = -u2;
  u.set_col(2, u2);
  s[2] = std::abs(s2_signed);
}

}  // namespace eslam
