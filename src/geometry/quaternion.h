// Unit quaternions, used for the TUM trajectory file format (which stores
// orientations as qx qy qz qw) and for smooth trajectory interpolation in
// the dataset generator.
#pragma once

#include "geometry/matrix.h"

namespace eslam {

struct Quaternion {
  double w = 1.0, x = 0.0, y = 0.0, z = 0.0;

  static Quaternion identity() { return {}; }
  static Quaternion from_rotation(const Mat3& r);

  Mat3 to_rotation() const;
  Quaternion normalized() const;
  Quaternion conjugate() const { return {w, -x, -y, -z}; }
  double norm() const;

  friend Quaternion operator*(const Quaternion& a, const Quaternion& b);
};

// Spherical linear interpolation; t in [0, 1].
Quaternion slerp(const Quaternion& a, const Quaternion& b, double t);

}  // namespace eslam
