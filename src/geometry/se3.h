// SE(3) rigid-body transforms.
//
// An SE3 maps points from one frame to another: p' = R * p + t.  In the
// tracker, camera poses are stored world-to-camera (T_cw), matching the
// paper's PnP formulation where map points are projected into the frame.
#pragma once

#include "geometry/matrix.h"
#include "geometry/so3.h"

namespace eslam {

class SE3 {
 public:
  SE3() : r_(Mat3::identity()) {}
  SE3(const Mat3& r, const Vec3& t) : r_(r), t_(t) {}

  static SE3 identity() { return SE3{}; }

  // Exponential map of a twist [translation; rotation] (rotation-last
  // convention shared with the pose-optimizer Jacobians).
  static SE3 exp(const Vec6& xi);

  // Logarithm map, inverse of exp().
  Vec6 log() const;

  const Mat3& rotation() const { return r_; }
  const Vec3& translation() const { return t_; }

  SE3 inverse() const {
    const Mat3 rt = r_.transposed();
    return SE3{rt, -(rt * t_)};
  }

  Vec3 operator*(const Vec3& p) const { return r_ * p + t_; }

  SE3 operator*(const SE3& o) const { return SE3{r_ * o.r_, r_ * o.t_ + t_}; }

  Mat4 matrix() const {
    Mat4 m = Mat4::identity();
    m.set_block(0, 0, r_);
    m.set_block(0, 3, t_);
    return m;
  }

  // Geodesic distances used by the key-frame policy.
  double translation_distance(const SE3& o) const {
    return (t_ - o.t_).norm();
  }
  double rotation_angle(const SE3& o) const {
    return so3_log(r_.transposed() * o.r_).norm();
  }

 private:
  Mat3 r_;
  Vec3 t_;
};

}  // namespace eslam
