#include "geometry/umeyama.h"

#include <cmath>

#include "geometry/jacobi.h"

namespace eslam {

AlignmentResult umeyama(std::span<const Vec3> src, std::span<const Vec3> dst,
                        bool with_scale) {
  ESLAM_ASSERT(src.size() == dst.size(), "point sets must match in size");
  ESLAM_ASSERT(!src.empty(), "point sets must be non-empty");
  const double n = static_cast<double>(src.size());

  Vec3 mean_src, mean_dst;
  for (std::size_t i = 0; i < src.size(); ++i) {
    mean_src += src[i];
    mean_dst += dst[i];
  }
  mean_src /= n;
  mean_dst /= n;

  Mat3 sigma;  // cross-covariance dst~src
  double var_src = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Vec3 ds = src[i] - mean_src;
    const Vec3 dd = dst[i] - mean_dst;
    sigma += outer(dd, ds);
    var_src += ds.squared_norm();
  }
  sigma /= n;
  var_src /= n;

  Mat3 u, v;
  Vec3 d;
  svd3(sigma, u, d, v);

  // Reflection handling (Umeyama's S matrix).
  Vec3 s_diag{1.0, 1.0, 1.0};
  if (determinant(u) * determinant(v) < 0.0) s_diag[2] = -1.0;

  Mat3 s_mat;
  for (int i = 0; i < 3; ++i) s_mat(i, i) = s_diag[i];
  const Mat3 r = u * s_mat * v.transposed();

  double scale = 1.0;
  if (with_scale && var_src > 1e-12)
    scale = (d[0] * s_diag[0] + d[1] * s_diag[1] + d[2] * s_diag[2]) / var_src;

  const Vec3 t = mean_dst - scale * (r * mean_src);

  AlignmentResult result;
  result.transform = SE3{r, t};
  result.scale = scale;

  double err = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Vec3 mapped = scale * (r * src[i]) + t;
    err += (dst[i] - mapped).squared_norm();
  }
  result.rmse = std::sqrt(err / n);
  return result;
}

}  // namespace eslam
