// Pinhole camera model (distortion-free), matching the TUM Freiburg
// intrinsics used in the paper's evaluation (640x480).
#pragma once

#include <optional>

#include "geometry/matrix.h"

namespace eslam {

class PinholeCamera {
 public:
  PinholeCamera(double fx, double fy, double cx, double cy, int width,
                int height)
      : fx_(fx), fy_(fy), cx_(cx), cy_(cy), width_(width), height_(height) {
    ESLAM_ASSERT(fx > 0 && fy > 0, "focal lengths must be positive");
    ESLAM_ASSERT(width > 0 && height > 0, "image size must be positive");
  }

  // Default intrinsics modelled on TUM Freiburg-1 (fr1) Kinect.
  static PinholeCamera tum_freiburg1() {
    return PinholeCamera{517.3, 516.5, 318.6, 255.3, 640, 480};
  }
  // TUM Freiburg-2 (fr2) Kinect.
  static PinholeCamera tum_freiburg2() {
    return PinholeCamera{520.9, 521.0, 325.1, 249.7, 640, 480};
  }

  double fx() const { return fx_; }
  double fy() const { return fy_; }
  double cx() const { return cx_; }
  double cy() const { return cy_; }
  int width() const { return width_; }
  int height() const { return height_; }

  // Projects a camera-frame point; empty when behind the camera.
  std::optional<Vec2> project(const Vec3& p_cam) const {
    if (p_cam[2] <= kMinDepth) return std::nullopt;
    return Vec2{fx_ * p_cam[0] / p_cam[2] + cx_,
                fy_ * p_cam[1] / p_cam[2] + cy_};
  }

  // Back-projects pixel (u, v) at metric depth z into the camera frame.
  Vec3 unproject(double u, double v, double z) const {
    return Vec3{(u - cx_) * z / fx_, (v - cy_) * z / fy_, z};
  }

  // Unit ray through pixel (u, v).
  Vec3 ray(double u, double v) const {
    return Vec3{(u - cx_) / fx_, (v - cy_) / fy_, 1.0}.normalized();
  }

  bool in_image(const Vec2& px, double border = 0.0) const {
    return px[0] >= border && px[0] < width_ - border && px[1] >= border &&
           px[1] < height_ - border;
  }

  static constexpr double kMinDepth = 1e-6;

 private:
  double fx_, fy_, cx_, cy_;
  int width_, height_;
};

}  // namespace eslam
