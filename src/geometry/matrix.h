// Fixed-size dense matrices and vectors for SLAM geometry.
//
// Everything here is a small stack value type (no heap, no aliasing
// surprises); sizes are template parameters so loops unroll.  This is the
// only linear-algebra dependency of the whole project.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <ostream>

#include "geometry/assert.h"

namespace eslam {

template <int R, int C, typename T = double>
class Mat {
  static_assert(R > 0 && C > 0, "matrix dimensions must be positive");

 public:
  using value_type = T;
  static constexpr int kRows = R;
  static constexpr int kCols = C;

  constexpr Mat() : data_{} {}

  // Row-major element list: Mat<2,2>{a, b, c, d} is [[a,b],[c,d]].
  constexpr Mat(std::initializer_list<T> values) : data_{} {
    ESLAM_ASSERT(values.size() == static_cast<std::size_t>(R * C),
                 "initializer size mismatch");
    int i = 0;
    for (T v : values) data_[i++] = v;
  }

  static constexpr Mat zero() { return Mat{}; }

  static constexpr Mat identity() {
    static_assert(R == C, "identity requires a square matrix");
    Mat m;
    for (int i = 0; i < R; ++i) m(i, i) = T{1};
    return m;
  }

  static constexpr Mat constant(T v) {
    Mat m;
    for (auto& x : m.data_) x = v;
    return m;
  }

  constexpr T& operator()(int r, int c) {
    ESLAM_ASSERT(r >= 0 && r < R && c >= 0 && c < C, "index out of range");
    return data_[static_cast<std::size_t>(r) * C + c];
  }
  constexpr T operator()(int r, int c) const {
    ESLAM_ASSERT(r >= 0 && r < R && c >= 0 && c < C, "index out of range");
    return data_[static_cast<std::size_t>(r) * C + c];
  }

  // Linear (vector-style) accessors, valid for any shape.
  constexpr T& operator[](int i) {
    ESLAM_ASSERT(i >= 0 && i < R * C, "index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  constexpr T operator[](int i) const {
    ESLAM_ASSERT(i >= 0 && i < R * C, "index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  constexpr const T* data() const { return data_.data(); }
  constexpr T* data() { return data_.data(); }
  static constexpr int size() { return R * C; }

  // ---- Arithmetic --------------------------------------------------------
  constexpr Mat operator-() const {
    Mat m;
    for (int i = 0; i < R * C; ++i) m.data_[i] = -data_[i];
    return m;
  }
  constexpr Mat& operator+=(const Mat& o) {
    for (int i = 0; i < R * C; ++i) data_[i] += o.data_[i];
    return *this;
  }
  constexpr Mat& operator-=(const Mat& o) {
    for (int i = 0; i < R * C; ++i) data_[i] -= o.data_[i];
    return *this;
  }
  constexpr Mat& operator*=(T s) {
    for (auto& x : data_) x *= s;
    return *this;
  }
  constexpr Mat& operator/=(T s) {
    for (auto& x : data_) x /= s;
    return *this;
  }

  friend constexpr Mat operator+(Mat a, const Mat& b) { return a += b; }
  friend constexpr Mat operator-(Mat a, const Mat& b) { return a -= b; }
  friend constexpr Mat operator*(Mat a, T s) { return a *= s; }
  friend constexpr Mat operator*(T s, Mat a) { return a *= s; }
  friend constexpr Mat operator/(Mat a, T s) { return a /= s; }

  friend constexpr bool operator==(const Mat& a, const Mat& b) {
    for (int i = 0; i < R * C; ++i)
      if (a.data_[i] != b.data_[i]) return false;
    return true;
  }
  friend constexpr bool operator!=(const Mat& a, const Mat& b) {
    return !(a == b);
  }

  constexpr Mat<C, R, T> transposed() const {
    Mat<C, R, T> t;
    for (int r = 0; r < R; ++r)
      for (int c = 0; c < C; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  template <int R2, int C2>
  constexpr Mat<R2, C2, T> block(int r0, int c0) const {
    ESLAM_ASSERT(r0 >= 0 && c0 >= 0 && r0 + R2 <= R && c0 + C2 <= C,
                 "block out of range");
    Mat<R2, C2, T> b;
    for (int r = 0; r < R2; ++r)
      for (int c = 0; c < C2; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
    return b;
  }

  template <int R2, int C2>
  constexpr void set_block(int r0, int c0, const Mat<R2, C2, T>& b) {
    ESLAM_ASSERT(r0 >= 0 && c0 >= 0 && r0 + R2 <= R && c0 + C2 <= C,
                 "block out of range");
    for (int r = 0; r < R2; ++r)
      for (int c = 0; c < C2; ++c) (*this)(r0 + r, c0 + c) = b(r, c);
  }

  constexpr Mat<R, 1, T> col(int c) const {
    Mat<R, 1, T> v;
    for (int r = 0; r < R; ++r) v[r] = (*this)(r, c);
    return v;
  }
  constexpr Mat<1, C, T> row(int r) const {
    Mat<1, C, T> v;
    for (int c = 0; c < C; ++c) v[c] = (*this)(r, c);
    return v;
  }
  constexpr void set_col(int c, const Mat<R, 1, T>& v) {
    for (int r = 0; r < R; ++r) (*this)(r, c) = v[r];
  }
  constexpr void set_row(int r, const Mat<1, C, T>& v) {
    for (int c = 0; c < C; ++c) (*this)(r, c) = v[c];
  }

  constexpr T trace() const {
    static_assert(R == C, "trace requires a square matrix");
    T t{};
    for (int i = 0; i < R; ++i) t += (*this)(i, i);
    return t;
  }

  constexpr T squared_norm() const {
    T s{};
    for (auto x : data_) s += x * x;
    return s;
  }
  T norm() const { return std::sqrt(squared_norm()); }

  Mat normalized() const {
    const T n = norm();
    ESLAM_ASSERT(n > T{0}, "cannot normalize a zero vector");
    return *this / n;
  }

  constexpr T max_abs() const {
    T m{};
    for (auto x : data_) {
      const T a = x < T{0} ? -x : x;
      if (a > m) m = a;
    }
    return m;
  }

 private:
  std::array<T, static_cast<std::size_t>(R) * C> data_;
};

template <int R, int K, int C, typename T>
constexpr Mat<R, C, T> operator*(const Mat<R, K, T>& a, const Mat<K, C, T>& b) {
  Mat<R, C, T> m;
  for (int r = 0; r < R; ++r)
    for (int k = 0; k < K; ++k) {
      const T arK = a(r, k);
      for (int c = 0; c < C; ++c) m(r, c) += arK * b(k, c);
    }
  return m;
}

template <int N, typename T = double>
using Vec = Mat<N, 1, T>;

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;
using Vec4 = Vec<4>;
using Vec6 = Vec<6>;
using Mat2 = Mat<2, 2>;
using Mat3 = Mat<3, 3>;
using Mat4 = Mat<4, 4>;
using Mat6 = Mat<6, 6>;

template <int N, typename T>
constexpr T dot(const Vec<N, T>& a, const Vec<N, T>& b) {
  T s{};
  for (int i = 0; i < N; ++i) s += a[i] * b[i];
  return s;
}

template <typename T>
constexpr Vec<3, T> cross(const Vec<3, T>& a, const Vec<3, T>& b) {
  return Vec<3, T>{a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
                   a[0] * b[1] - a[1] * b[0]};
}

// Outer product a * b^T.
template <int N, int M, typename T>
constexpr Mat<N, M, T> outer(const Vec<N, T>& a, const Vec<M, T>& b) {
  Mat<N, M, T> m;
  for (int r = 0; r < N; ++r)
    for (int c = 0; c < M; ++c) m(r, c) = a[r] * b[c];
  return m;
}

// ---- LU decomposition with partial pivoting -------------------------------

// Solves A x = b in place via Gaussian elimination with partial pivoting.
// Returns false when A is (numerically) singular.
template <int N, typename T>
bool solve(Mat<N, N, T> a, Vec<N, T> b, Vec<N, T>& x) {
  for (int col = 0; col < N; ++col) {
    int pivot = col;
    T best = std::abs(a(col, col));
    for (int r = col + 1; r < N; ++r) {
      const T v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (!(best > T{1e-12})) return false;
    if (pivot != col) {
      for (int c = col; c < N; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const T inv = T{1} / a(col, col);
    for (int r = col + 1; r < N; ++r) {
      const T f = a(r, col) * inv;
      if (f == T{0}) continue;
      for (int c = col; c < N; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  for (int r = N - 1; r >= 0; --r) {
    T s = b[r];
    for (int c = r + 1; c < N; ++c) s -= a(r, c) * x[c];
    x[r] = s / a(r, r);
  }
  return true;
}

// Matrix inverse via column-wise solves.  Returns false when singular.
template <int N, typename T>
bool invert(const Mat<N, N, T>& a, Mat<N, N, T>& inv) {
  for (int c = 0; c < N; ++c) {
    Vec<N, T> e;
    e[c] = T{1};
    Vec<N, T> x;
    if (!solve(a, e, x)) return false;
    inv.set_col(c, x);
  }
  return true;
}

template <int N, typename T>
T determinant(Mat<N, N, T> a) {
  T det{1};
  for (int col = 0; col < N; ++col) {
    int pivot = col;
    T best = std::abs(a(col, col));
    for (int r = col + 1; r < N; ++r) {
      const T v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == T{0}) return T{0};
    if (pivot != col) {
      for (int c = col; c < N; ++c) std::swap(a(col, c), a(pivot, c));
      det = -det;
    }
    det *= a(col, col);
    const T inv = T{1} / a(col, col);
    for (int r = col + 1; r < N; ++r) {
      const T f = a(r, col) * inv;
      for (int c = col; c < N; ++c) a(r, c) -= f * a(col, c);
    }
  }
  return det;
}

template <int R, int C, typename T>
std::ostream& operator<<(std::ostream& os, const Mat<R, C, T>& m) {
  for (int r = 0; r < R; ++r) {
    os << (r == 0 ? "[" : " ");
    for (int c = 0; c < C; ++c) os << m(r, c) << (c + 1 < C ? ", " : "");
    os << (r + 1 < R ? ";\n" : "]");
  }
  return os;
}

}  // namespace eslam
