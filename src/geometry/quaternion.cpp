#include "geometry/quaternion.h"

#include <cmath>

namespace eslam {

double Quaternion::norm() const {
  return std::sqrt(w * w + x * x + y * y + z * z);
}

Quaternion Quaternion::normalized() const {
  const double n = norm();
  ESLAM_ASSERT(n > 0.0, "cannot normalize zero quaternion");
  return {w / n, x / n, y / n, z / n};
}

Quaternion Quaternion::from_rotation(const Mat3& r) {
  // Shepperd's method: pick the largest diagonal combination for stability.
  Quaternion q;
  const double tr = r.trace();
  if (tr > 0.0) {
    const double s = std::sqrt(tr + 1.0) * 2.0;
    q.w = 0.25 * s;
    q.x = (r(2, 1) - r(1, 2)) / s;
    q.y = (r(0, 2) - r(2, 0)) / s;
    q.z = (r(1, 0) - r(0, 1)) / s;
  } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;
    q.w = (r(2, 1) - r(1, 2)) / s;
    q.x = 0.25 * s;
    q.y = (r(0, 1) + r(1, 0)) / s;
    q.z = (r(0, 2) + r(2, 0)) / s;
  } else if (r(1, 1) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;
    q.w = (r(0, 2) - r(2, 0)) / s;
    q.x = (r(0, 1) + r(1, 0)) / s;
    q.y = 0.25 * s;
    q.z = (r(1, 2) + r(2, 1)) / s;
  } else {
    const double s = std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;
    q.w = (r(1, 0) - r(0, 1)) / s;
    q.x = (r(0, 2) + r(2, 0)) / s;
    q.y = (r(1, 2) + r(2, 1)) / s;
    q.z = 0.25 * s;
  }
  return q.normalized();
}

Mat3 Quaternion::to_rotation() const {
  const Quaternion q = normalized();
  const double xx = q.x * q.x, yy = q.y * q.y, zz = q.z * q.z;
  const double xy = q.x * q.y, xz = q.x * q.z, yz = q.y * q.z;
  const double wx = q.w * q.x, wy = q.w * q.y, wz = q.w * q.z;
  return Mat3{1 - 2 * (yy + zz), 2 * (xy - wz), 2 * (xz + wy),
              2 * (xy + wz), 1 - 2 * (xx + zz), 2 * (yz - wx),
              2 * (xz - wy), 2 * (yz + wx), 1 - 2 * (xx + yy)};
}

Quaternion operator*(const Quaternion& a, const Quaternion& b) {
  return {a.w * b.w - a.x * b.x - a.y * b.y - a.z * b.z,
          a.w * b.x + a.x * b.w + a.y * b.z - a.z * b.y,
          a.w * b.y - a.x * b.z + a.y * b.w + a.z * b.x,
          a.w * b.z + a.x * b.y - a.y * b.x + a.z * b.w};
}

Quaternion slerp(const Quaternion& a_in, const Quaternion& b_in, double t) {
  Quaternion a = a_in.normalized();
  Quaternion b = b_in.normalized();
  double cos_half = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
  if (cos_half < 0.0) {  // take the short arc
    b = {-b.w, -b.x, -b.y, -b.z};
    cos_half = -cos_half;
  }
  if (cos_half > 0.9995) {  // nearly parallel: lerp + renormalize
    Quaternion q{a.w + t * (b.w - a.w), a.x + t * (b.x - a.x),
                 a.y + t * (b.y - a.y), a.z + t * (b.z - a.z)};
    return q.normalized();
  }
  const double half = std::acos(cos_half);
  const double sin_half = std::sin(half);
  const double wa = std::sin((1.0 - t) * half) / sin_half;
  const double wb = std::sin(t * half) / sin_half;
  return Quaternion{wa * a.w + wb * b.w, wa * a.x + wb * b.x,
                    wa * a.y + wb * b.y, wa * a.z + wb * b.z}
      .normalized();
}

}  // namespace eslam
