// AXI bus / SDRAM transfer-cost model.
//
// The ORB Extractor and BRIEF Matcher stream data to and from SDRAM over
// AXI (paper Figure 3).  We model a 64-bit data bus at the accelerator
// clock with burst transfers: a burst of B beats costs
// `address_latency + B` cycles, and sequential bursts to consecutive
// addresses pipeline so that sustained throughput is 8 bytes/cycle.
#pragma once

#include <cstdint>

#include "geometry/assert.h"

namespace eslam {

struct AxiConfig {
  int bus_bytes = 8;        // 64-bit AXI data width
  int burst_beats = 16;     // beats per burst (AXI4 INCR)
  int address_latency = 8;  // cycles from AR/AW to first beat (SDRAM CAS+)
};

class AxiBusModel {
 public:
  explicit AxiBusModel(const AxiConfig& config = {}) : config_(config) {
    ESLAM_ASSERT(config.bus_bytes > 0 && config.burst_beats > 0,
                 "bad AXI configuration");
  }

  // Cycles to read `bytes` sequential bytes (pipelined bursts: one address
  // setup, then back-to-back beats; a new address phase every burst is
  // hidden behind the data phase after the first).
  std::uint64_t read_cycles(std::uint64_t bytes) {
    const std::uint64_t beats = beats_for(bytes);
    bytes_read_ += bytes;
    ++read_transactions_;
    return static_cast<std::uint64_t>(config_.address_latency) + beats;
  }

  std::uint64_t write_cycles(std::uint64_t bytes) {
    const std::uint64_t beats = beats_for(bytes);
    bytes_written_ += bytes;
    ++write_transactions_;
    return static_cast<std::uint64_t>(config_.address_latency) + beats;
  }

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t read_transactions() const { return read_transactions_; }
  std::uint64_t write_transactions() const { return write_transactions_; }
  const AxiConfig& config() const { return config_; }

  // Sustained bandwidth in bytes/cycle for large transfers.
  double peak_bandwidth() const {
    return static_cast<double>(config_.bus_bytes);
  }

 private:
  std::uint64_t beats_for(std::uint64_t bytes) const {
    return (bytes + static_cast<std::uint64_t>(config_.bus_bytes) - 1) /
           static_cast<std::uint64_t>(config_.bus_bytes);
  }

  AxiConfig config_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t read_transactions_ = 0;
  std::uint64_t write_transactions_ = 0;
};

}  // namespace eslam
