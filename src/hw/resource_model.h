// FPGA resource model reproducing Table 1.
//
// We cannot synthesize RTL in this environment, so each accelerator module
// carries a documented resource estimate (LUT/FF from datapath reasoning,
// DSP from multiplier count, BRAM from the buffer geometry the simulators
// actually instantiate).  The totals are compared against the paper's
// reported utilization on the Zynq XCZ7045 in bench/table1_resources.
#pragma once

#include <string>
#include <vector>

namespace eslam {

struct ResourceUsage {
  int lut = 0;
  int ff = 0;
  int dsp = 0;
  int bram = 0;  // RAMB36 blocks

  ResourceUsage& operator+=(const ResourceUsage& o) {
    lut += o.lut;
    ff += o.ff;
    dsp += o.dsp;
    bram += o.bram;
    return *this;
  }
};

struct ModuleResources {
  std::string name;
  ResourceUsage usage;
  std::string basis;  // one-line justification of the estimate
};

// Available resources on the Zynq XCZ7045 (paper's target device).
struct DeviceCapacity {
  int lut = 218600;
  int ff = 437200;
  int dsp = 900;
  int bram = 545;
};

// The paper's reported totals (Table 1).
ResourceUsage paper_table1_totals();

// Per-module estimates of the eSLAM fabric (ORB Extractor, BRIEF Matcher,
// Image Resizing, AXI plumbing).  Parameterized on the map-descriptor
// window so BRAM tracks the matcher's working set.
std::vector<ModuleResources> eslam_resource_inventory(
    int matcher_map_window = 3072);

ResourceUsage total_resources(const std::vector<ModuleResources>& inventory);

// Utilization percentage against the device.
double utilization_pct(int used, int available);

}  // namespace eslam
