// The paper's ping-pong Image Cache (Figure 5): 3 cache lines, each holding
// 8 columns of pixels.  A finite-state machine rotates which line receives
// input while the other two feed the processing window; the FSM is
// initialized by pre-storing 16 columns into lines A and B.
//
// This structural model is what the cache unit tests and the Fig. 5 trace
// bench exercise; the extractor simulation uses its fill/advance counters
// for cycle accounting and its geometry for BRAM sizing.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geometry/assert.h"

namespace eslam {

struct CacheFsmEvent {
  int state = 0;            // FSM state counter (increments per rotation)
  int receiving_line = 0;   // 0 = A, 1 = B, 2 = C
  std::array<int, 2> outputting_lines{};  // the other two lines
};

class LineBufferCache {
 public:
  static constexpr int kLines = 3;
  static constexpr int kColumnsPerLine = 8;

  // `height` is the image height (pixels per column).
  explicit LineBufferCache(int height);

  // Feeds one column of pixels (size must equal height).  Costs `height`
  // cycles of input bandwidth (1 pixel/cycle).  Returns true when this
  // column completed a line and the FSM rotated.
  bool push_column(const std::vector<std::uint8_t>& column);

  // True once 16 columns (two full lines) are pre-stored — the condition
  // for the pipeline downstream to start consuming.
  bool window_ready() const { return completed_lines_ >= 2; }

  // Pixel access inside the current 16-column output window.
  // `col` in [0, 16): 0 is the oldest retained column.
  std::uint8_t window_pixel(int col, int row) const;

  // Absolute index (in pushed columns) of window column 0.
  int window_start_column() const;

  int height() const { return height_; }
  int state() const { return state_; }
  int receiving_line() const { return write_line_; }
  std::uint64_t fill_cycles() const { return fill_cycles_; }

  // FSM rotation history (for the Figure 5 trace).
  const std::vector<CacheFsmEvent>& trace() const { return trace_; }

  // On-chip storage the cache occupies, in bits (BRAM sizing).
  std::size_t storage_bits() const {
    return static_cast<std::size_t>(kLines) * kColumnsPerLine *
           static_cast<std::size_t>(height_) * 8;
  }

 private:
  int height_;
  // line -> column-within-line -> pixel rows.
  std::array<std::vector<std::uint8_t>, kLines> lines_;
  int write_line_ = 0;
  int columns_in_write_line_ = 0;
  int completed_lines_ = 0;  // total lines completed since reset
  int state_ = 0;
  std::uint64_t fill_cycles_ = 0;
  int total_columns_ = 0;
  std::vector<CacheFsmEvent> trace_;
};

}  // namespace eslam
