// Cycle accounting for the 100 MHz accelerator clock domain (paper
// section 4.1: "the clock of accelerating modules is 100 MHz").
#pragma once

#include <cstdint>

namespace eslam {

inline constexpr double kAcceleratorClockMhz = 100.0;
inline constexpr double kArmClockMhz = 767.0;  // host ARM Cortex-A9

constexpr double cycles_to_ms(std::uint64_t cycles,
                              double clock_mhz = kAcceleratorClockMhz) {
  return static_cast<double>(cycles) / (clock_mhz * 1e3);
}

constexpr std::uint64_t ms_to_cycles(double ms,
                                     double clock_mhz = kAcceleratorClockMhz) {
  return static_cast<std::uint64_t>(ms * clock_mhz * 1e3);
}

// Accumulates cycles attributed to named phases of a module.
class CycleCounter {
 public:
  void add(std::uint64_t cycles) { total_ += cycles; }
  void reset() { total_ = 0; }
  std::uint64_t total() const { return total_; }
  double total_ms(double clock_mhz = kAcceleratorClockMhz) const {
    return cycles_to_ms(total_, clock_mhz);
  }

 private:
  std::uint64_t total_ = 0;
};

}  // namespace eslam
