// Qm.n fixed-point arithmetic used by the integer datapaths of the
// accelerator models (orientation LUT thresholds, resize stepping).
#pragma once

#include <cstdint>
#include <type_traits>

#include "geometry/assert.h"

namespace eslam {

// Fixed-point value with F fractional bits stored in a 64-bit signed
// integer.  Deliberately minimal: the HW models only need construction,
// +/-, integer multiply and comparisons.
template <int F>
class Fixed {
  static_assert(F > 0 && F < 62, "fractional bits out of range");

 public:
  constexpr Fixed() = default;

  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }
  static constexpr Fixed from_int(std::int64_t v) {
    return from_raw(v << F);
  }
  static constexpr Fixed from_double(double v) {
    return from_raw(static_cast<std::int64_t>(
        v * static_cast<double>(std::int64_t{1} << F) +
        (v >= 0 ? 0.5 : -0.5)));
  }

  constexpr std::int64_t raw() const { return raw_; }
  constexpr std::int64_t to_int() const {  // truncates toward -inf
    return raw_ >> F;
  }
  constexpr double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(std::int64_t{1} << F);
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  // Fixed * integer (exact).
  friend constexpr Fixed operator*(Fixed a, std::int64_t s) {
    return from_raw(a.raw_ * s);
  }
  friend constexpr Fixed operator*(std::int64_t s, Fixed a) { return a * s; }
  // Fixed * Fixed with rounding of the dropped bits.
  friend constexpr Fixed mul(Fixed a, Fixed b) {
    const __int128 p = static_cast<__int128>(a.raw_) * b.raw_;
    return from_raw(static_cast<std::int64_t>(
        (p + (static_cast<__int128>(1) << (F - 1))) >> F));
  }

  friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

 private:
  std::int64_t raw_ = 0;
};

using Q16 = Fixed<16>;  // 16 fractional bits: the address/threshold format

}  // namespace eslam
