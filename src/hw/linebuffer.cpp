#include "hw/linebuffer.h"

namespace eslam {

LineBufferCache::LineBufferCache(int height) : height_(height) {
  ESLAM_ASSERT(height > 0, "cache height must be positive");
  for (auto& line : lines_)
    line.resize(static_cast<std::size_t>(kColumnsPerLine) * height_);
}

bool LineBufferCache::push_column(const std::vector<std::uint8_t>& column) {
  ESLAM_ASSERT(static_cast<int>(column.size()) == height_,
               "column height mismatch");
  auto& line = lines_[static_cast<std::size_t>(write_line_)];
  std::copy(column.begin(), column.end(),
            line.begin() + static_cast<std::ptrdiff_t>(columns_in_write_line_) *
                               height_);
  fill_cycles_ += static_cast<std::uint64_t>(height_);  // 1 pixel/cycle
  ++columns_in_write_line_;
  ++total_columns_;
  if (columns_in_write_line_ < kColumnsPerLine) return false;

  // Line complete: rotate the FSM.
  columns_in_write_line_ = 0;
  ++completed_lines_;
  const int finished = write_line_;
  write_line_ = (write_line_ + 1) % kLines;
  ++state_;
  CacheFsmEvent ev;
  ev.state = state_;
  ev.receiving_line = write_line_;
  // The two lines other than the receiver feed the output window.
  ev.outputting_lines = {finished, (finished + kLines - 1) % kLines};
  trace_.push_back(ev);
  return true;
}

int LineBufferCache::window_start_column() const {
  // The window is the last 16 *completed* columns.
  const int completed_cols =
      completed_lines_ * kColumnsPerLine;
  return completed_cols - 2 * kColumnsPerLine;
}

std::uint8_t LineBufferCache::window_pixel(int col, int row) const {
  ESLAM_ASSERT(window_ready(), "window read before two lines filled");
  ESLAM_ASSERT(col >= 0 && col < 2 * kColumnsPerLine, "window column range");
  ESLAM_ASSERT(row >= 0 && row < height_, "window row range");
  const int abs_col = window_start_column() + col;
  ESLAM_ASSERT(abs_col >= 0, "window underflow");
  const int line = (abs_col / kColumnsPerLine) % kLines;
  const int col_in_line = abs_col % kColumnsPerLine;
  return lines_[static_cast<std::size_t>(line)]
               [static_cast<std::size_t>(col_in_line) * height_ + row];
}

}  // namespace eslam
