// Power/energy model (Table 3 reproduction).
//
// Runtime comes from measurement (software) or cycle simulation (FPGA);
// power is an input constant per platform, calibrated to the paper's own
// measured values (section 4.3) and documented in EXPERIMENTS.md:
//   ARM Cortex-A9 (XCZ7045 PS only) : 1.574 W
//   eSLAM (PS + accelerator fabric) : 1.936 W (+23% over ARM alone)
//   Intel i7-4700MQ                 : 47 W (TDP, as the paper uses)
#pragma once

namespace eslam {

struct PlatformPower {
  const char* name;
  double watts;
};

inline constexpr PlatformPower kPowerArm{"ARM Cortex-A9", 1.574};
inline constexpr PlatformPower kPowerEslam{"eSLAM (Zynq)", 1.936};
inline constexpr PlatformPower kPowerIntelI7{"Intel i7-4700MQ", 47.0};

// Energy per frame in millijoules from a per-frame runtime in ms.
constexpr double energy_mj(const PlatformPower& platform, double runtime_ms) {
  return platform.watts * runtime_ms;  // W * ms = mJ
}

// Accelerator fabric adds this much to the bare ARM platform power.
constexpr double accelerator_power_overhead_w() {
  return kPowerEslam.watts - kPowerArm.watts;
}

}  // namespace eslam
