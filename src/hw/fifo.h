// Bounded FIFO with occupancy tracking — the generic stream buffer between
// accelerator pipeline stages.  High-water marks feed the BRAM sizing in
// the resource model.
#pragma once

#include <deque>

#include "geometry/assert.h"

namespace eslam {

template <typename T>
class BoundedFifo {
 public:
  explicit BoundedFifo(std::size_t capacity) : capacity_(capacity) {
    ESLAM_ASSERT(capacity > 0, "fifo capacity must be positive");
  }

  bool push(const T& v) {
    if (data_.size() >= capacity_) {
      ++overflow_count_;
      return false;
    }
    data_.push_back(v);
    high_water_ = std::max(high_water_, data_.size());
    ++total_pushed_;
    return true;
  }

  bool pop(T& out) {
    if (data_.empty()) return false;
    out = data_.front();
    data_.pop_front();
    return true;
  }

  bool empty() const { return data_.empty(); }
  bool full() const { return data_.size() >= capacity_; }
  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t overflow_count() const { return overflow_count_; }
  std::size_t total_pushed() const { return total_pushed_; }

 private:
  std::size_t capacity_;
  std::deque<T> data_;
  std::size_t high_water_ = 0;
  std::size_t overflow_count_ = 0;
  std::size_t total_pushed_ = 0;
};

}  // namespace eslam
