#include "hw/resource_model.h"

#include "geometry/assert.h"

namespace eslam {

ResourceUsage paper_table1_totals() { return ResourceUsage{56954, 67809, 111, 78}; }

std::vector<ModuleResources> eslam_resource_inventory(int matcher_map_window) {
  ESLAM_ASSERT(matcher_map_window > 0, "map window must be positive");
  std::vector<ModuleResources> inv;

  // --- ORB Extractor ------------------------------------------------------
  inv.push_back({"AXI interface + DMA",
                 {6500, 8200, 8, 13},
                 "64b AXI4 master, R/W burst engines, clock-domain FIFOs"});
  inv.push_back({"Image Cache (3x8-col lines)",
                 {1200, 1500, 0, 6},
                 "ping-pong FSM + 3 x 8 x 480 B dual-port lines (Fig. 5)"});
  inv.push_back({"FAST Detection",
                 {9800, 9800, 0, 0},
                 "16 ring comparators x2 thresholds + 9-arc detect logic"});
  inv.push_back({"Harris Score",
                 {5200, 7400, 63, 0},
                 "3 gradient products x 7-lane window + k*tr^2 (fixed k)"});
  inv.push_back({"Image Smoother",
                 {3400, 5200, 8, 6},
                 "separable binomial shift-add tree; smoothened line cache"});
  inv.push_back({"NMS",
                 {2100, 1800, 0, 0},
                 "3x3 score comparators over the streaming score window"});
  inv.push_back({"Score Cache",
                 {700, 680, 0, 8},
                 "16-column 32b Harris scores, same FSM as Image Cache"});
  inv.push_back({"Orientation Computing",
                 {4800, 6200, 24, 1},
                 "patch column-sum accumulators + v/u LUT compare ladder"});
  inv.push_back({"BRIEF Computing",
                 {7200, 8900, 0, 0},
                 "256 intensity comparators + patch pixel muxes (RS pattern"
                 " hardwired - no pattern LUT memory)"});
  inv.push_back({"BRIEF Rotator",
                 {1900, 2300, 0, 0},
                 "256b barrel shifter, 32 byte-granular positions"});
  inv.push_back({"Feature Heap (1024)",
                 {5400, 6800, 0, 9},
                 "compare-exchange + 1024 x (256b desc, 32b coord, 32b score)"});

  // --- Image Resizing -----------------------------------------------------
  inv.push_back({"Image Resizing",
                 {1600, 1400, 8, 1},
                 "16.16 nearest-neighbour address stepping, 2-row buffer"});

  // --- BRIEF Matcher ------------------------------------------------------
  const int desc_bytes = 32;
  const int window_kb = matcher_map_window * desc_bytes / 1024;
  // 4.5 KB per RAMB36; current-frame store (1024 x 32 B) plus the map
  // descriptor window, both double-buffered halves mapped to block RAM.
  // RAMB36 = 4.5 KB; current-frame store (32 KB) + map window.
  const int matcher_bram =
      static_cast<int>((window_kb + 32 + 4.4) / 4.5);
  inv.push_back({"Descriptor Cache",
                 {1154, 1609, 0, matcher_bram},
                 "1024-entry frame store + map descriptor window"});
  inv.push_back({"Distance Computing",
                 {4100, 3900, 0, 0},
                 "8 parallel 256b XOR + popcount adder trees"});
  inv.push_back({"Comparator",
                 {900, 700, 0, 0},
                 "running min/argmin over Hamming distances"});
  inv.push_back({"Result Cache",
                 {600, 520, 0, 2},
                 "1024 x (index, distance) result store"});

  inv.push_back({"Control & interconnect",
                 {400, 900, 0, 3},
                 "top-level FSMs, arbiters, pipeline glue"});
  return inv;
}

ResourceUsage total_resources(const std::vector<ModuleResources>& inventory) {
  ResourceUsage total;
  for (const ModuleResources& m : inventory) total += m.usage;
  return total;
}

double utilization_pct(int used, int available) {
  ESLAM_ASSERT(available > 0, "device capacity must be positive");
  return 100.0 * used / available;
}

}  // namespace eslam
