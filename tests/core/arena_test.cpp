#include "core/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace eslam {
namespace {

TEST(Arena, BumpAllocationIsContiguousWithinSlab) {
  Arena arena(4096);
  auto a = arena.alloc_span<std::uint8_t>(16);
  auto b = arena.alloc_span<std::uint8_t>(16);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 16u);
  // Same slab: the second span starts where the first ended (both are
  // byte-aligned requests, so no padding intervenes).
  EXPECT_EQ(a.data() + 16, b.data());
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  (void)arena.allocate(1, 1);  // misalign the cursor
  void* p = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  (void)arena.allocate(3, 1);
  auto d = arena.alloc_span<double>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
}

TEST(Arena, FillInitialises) {
  Arena arena;
  auto s = arena.alloc_span<int>(100, 42);
  for (int v : s) EXPECT_EQ(v, 42);
}

TEST(Arena, ResetReusesSlabsWithoutNewHeapAllocations) {
  Arena arena(4096);
  for (int i = 0; i < 4; ++i) (void)arena.alloc_span<std::uint8_t>(3000);
  const std::size_t slabs_after_warmup = arena.stats().slab_allocs;
  EXPECT_GE(slabs_after_warmup, 2u);  // forced at least one growth

  for (int frame = 0; frame < 50; ++frame) {
    arena.reset();
    for (int i = 0; i < 4; ++i) (void)arena.alloc_span<std::uint8_t>(3000);
  }
  // Steady state: the slab chain covers the per-frame demand, so reset +
  // re-allocate performs zero further heap allocations.
  EXPECT_EQ(arena.stats().slab_allocs, slabs_after_warmup);
  EXPECT_EQ(arena.stats().slab_count, slabs_after_warmup);
}

TEST(Arena, OversizedRequestGetsDedicatedSlab) {
  Arena arena(4096);
  auto big = arena.alloc_span<std::uint8_t>(100 * 1024);
  ASSERT_EQ(big.size(), 100u * 1024u);
  std::memset(big.data(), 0xAB, big.size());  // must be fully writable
  EXPECT_EQ(big[big.size() - 1], 0xAB);
}

TEST(Arena, StatsTrackHighWater) {
  Arena arena;
  (void)arena.alloc_span<std::uint8_t>(1000);
  (void)arena.alloc_span<std::uint8_t>(500);
  EXPECT_EQ(arena.stats().live_bytes, 1500u);
  EXPECT_EQ(arena.stats().high_water_bytes, 1500u);
  EXPECT_EQ(arena.stats().alloc_calls, 2u);
  arena.reset();
  EXPECT_EQ(arena.stats().live_bytes, 0u);
  EXPECT_EQ(arena.stats().high_water_bytes, 1500u);  // sticky
  (void)arena.alloc_span<std::uint8_t>(200);
  EXPECT_EQ(arena.stats().live_bytes, 200u);
  EXPECT_EQ(arena.stats().high_water_bytes, 1500u);
}

TEST(Arena, ZeroCountSpanIsEmpty) {
  Arena arena;
  auto s = arena.alloc_span<int>(0);
  EXPECT_TRUE(s.empty());
}

TEST(ArenaScope, RewindsNestedScratch) {
  Arena arena(4096);
  auto outer = arena.alloc_span<std::uint8_t>(100, std::uint8_t{1});
  const std::size_t live_before = arena.stats().live_bytes;
  {
    const ArenaScope scope(arena);
    (void)arena.alloc_span<std::uint8_t>(200);
    EXPECT_GT(arena.stats().live_bytes, live_before);
  }
  EXPECT_EQ(arena.stats().live_bytes, live_before);
  // The outer span survives the inner scope untouched.
  for (std::uint8_t v : outer) EXPECT_EQ(v, 1);
  // And the rewound bytes are handed out again.
  auto again = arena.alloc_span<std::uint8_t>(10);
  EXPECT_EQ(again.data(), outer.data() + outer.size());
}

TEST(ArenaScope, RewindAcrossSlabBoundary) {
  Arena arena(4096);
  (void)arena.alloc_span<std::uint8_t>(1000);
  const std::size_t live_before = arena.stats().live_bytes;
  {
    const ArenaScope scope(arena);
    // Forces growth into a second slab.
    (void)arena.alloc_span<std::uint8_t>(8000);
    (void)arena.alloc_span<std::uint8_t>(8000);
  }
  EXPECT_EQ(arena.stats().live_bytes, live_before);
  const std::size_t slabs = arena.stats().slab_allocs;
  // The grown chain is retained: repeating the same burst allocates no
  // further slabs.
  {
    const ArenaScope scope(arena);
    (void)arena.alloc_span<std::uint8_t>(8000);
    (void)arena.alloc_span<std::uint8_t>(8000);
  }
  EXPECT_EQ(arena.stats().slab_allocs, slabs);
}

}  // namespace
}  // namespace eslam
