// Localizer: the read-only session kind's frame loop.  A localizer over a
// frozen map must cold-start through indexed relocalization (the
// kidnapped-robot path as the entry path), then track frames against the
// frozen SoA planes without ever touching the map; runs are deterministic
// (two identical runs are bit-identical) and poses agree with the mapping
// run that built the map.
#include "slam/localizer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dataset/sequence.h"
#include "slam/map_snapshot.h"
#include "slam/tracker.h"

namespace eslam {
namespace {

constexpr int kMapFrames = 30;

OrbConfig small_orb() {
  OrbConfig orb;
  orb.n_features = 400;
  return orb;
}

const SyntheticSequence& desk_sequence() {
  static const SyntheticSequence seq = [] {
    SequenceOptions opts;
    opts.frames = kMapFrames;
    return SyntheticSequence(SequenceId::kFr1Desk, opts);
  }();
  return seq;
}

// The mapping run that builds the frozen map, plus its own trajectory as
// the pose reference for the localization runs.
struct MappedWorld {
  std::shared_ptr<const FrozenMap> frozen;
  std::vector<TrackResult> trajectory;
};

const MappedWorld& mapped_world() {
  static const MappedWorld world = [] {
    const SyntheticSequence& seq = desk_sequence();
    TrackerOptions options;
    options.backend.enabled = true;
    Tracker tracker(seq.camera(), std::make_unique<SoftwareBackend>(small_orb()),
                    options);
    MappedWorld w;
    for (int i = 0; i < seq.size(); ++i)
      w.trajectory.push_back(tracker.process(seq.frame(i)));
    w.frozen = FrozenMap::from_snapshot(capture_snapshot(
        tracker.map(), tracker.keyframe_graph(), seq.camera()));
    return w;
  }();
  return world;
}

std::unique_ptr<Localizer> make_localizer() {
  return std::make_unique<Localizer>(
      mapped_world().frozen, std::make_unique<SoftwareBackend>(small_orb()));
}

TEST(Localizer, ColdStartsThroughIndexedRelocalization) {
  const std::unique_ptr<Localizer> loc = make_localizer();
  EXPECT_FALSE(loc->tracking());
  const TrackResult first = loc->process(desk_sequence().frame(0));
  // The very first frame engages the recognition index — no lost-streak
  // delay — and recovers a pose from it.
  EXPECT_TRUE(first.reloc_attempted);
  EXPECT_EQ(first.match_tier, MatchTier::kRelocIndex);
  EXPECT_FALSE(first.lost);
  EXPECT_TRUE(first.relocalized);
  EXPECT_TRUE(loc->tracking());
  // The recovered pose is where the mapping run put this frame.
  const SE3& reference = mapped_world().trajectory[0].pose_wc;
  EXPECT_LT((first.pose_wc.translation() - reference.translation()).norm(),
            0.10);
}

TEST(Localizer, ColdStartsMidSequence) {
  const std::unique_ptr<Localizer> loc = make_localizer();
  const int start = kMapFrames / 2;
  const TrackResult first = loc->process(desk_sequence().frame(start));
  EXPECT_TRUE(first.reloc_attempted);
  EXPECT_FALSE(first.lost);
  const SE3& reference = mapped_world().trajectory[
      static_cast<std::size_t>(start)].pose_wc;
  EXPECT_LT((first.pose_wc.translation() - reference.translation()).norm(),
            0.15);
}

TEST(Localizer, TracksSequenceAgainstFrozenMap) {
  const std::unique_ptr<Localizer> loc = make_localizer();
  const SyntheticSequence& seq = desk_sequence();
  int lost = 0, gated = 0;
  double worst_m = 0.0;
  for (int i = 0; i < seq.size(); ++i) {
    const TrackResult r = loc->process(seq.frame(i));
    lost += r.lost;
    gated += r.match_tier == MatchTier::kGated;
    if (!r.lost) {
      const SE3& reference =
          mapped_world().trajectory[static_cast<std::size_t>(i)].pose_wc;
      worst_m = std::max(
          worst_m, (r.pose_wc.translation() - reference.translation()).norm());
    }
    // A localizer never emits map-updating artifacts.
    EXPECT_FALSE(r.keyframe);
    EXPECT_EQ(r.times.map_updating, 0.0);
  }
  EXPECT_EQ(lost, 0);
  // After warm-up the gated tier carries the stream (the frozen SoA
  // planes feed the candidate-gather kernels directly).
  EXPECT_GT(gated, seq.size() / 2);
  EXPECT_LT(worst_m, 0.15);
  EXPECT_EQ(loc->frames_processed(), seq.size());
  // The frozen map is untouched by construction; its point count is the
  // cheap witness.
  EXPECT_EQ(loc->map().size(), mapped_world().frozen->size());
}

TEST(Localizer, RunsAreBitIdentical) {
  const std::unique_ptr<Localizer> a = make_localizer();
  const std::unique_ptr<Localizer> b = make_localizer();
  const SyntheticSequence& seq = desk_sequence();
  for (int i = 0; i < seq.size(); ++i) {
    const TrackResult ra = a->process(seq.frame(i));
    const TrackResult rb = b->process(seq.frame(i));
    EXPECT_EQ((ra.pose_wc.translation() - rb.pose_wc.translation()).max_abs(),
              0.0)
        << "frame " << i;
    EXPECT_EQ((ra.pose_wc.rotation() - rb.pose_wc.rotation()).max_abs(), 0.0)
        << "frame " << i;
    EXPECT_EQ(ra.lost, rb.lost) << "frame " << i;
    EXPECT_EQ(ra.n_features, rb.n_features) << "frame " << i;
    EXPECT_EQ(ra.n_matches, rb.n_matches) << "frame " << i;
    EXPECT_EQ(ra.n_inliers, rb.n_inliers) << "frame " << i;
    EXPECT_EQ(ra.match_tier, rb.match_tier) << "frame " << i;
  }
}

TEST(Localizer, SharedFrozenMapCountsItsOwners) {
  const std::shared_ptr<const FrozenMap>& frozen = mapped_world().frozen;
  const long baseline = frozen.use_count();
  {
    const std::unique_ptr<Localizer> a = make_localizer();
    const std::unique_ptr<Localizer> b = make_localizer();
    EXPECT_EQ(a->map_ptr().use_count(), baseline + 2);
    EXPECT_EQ(b->map_ptr().use_count(), baseline + 2);
  }
  EXPECT_EQ(frozen.use_count(), baseline);
}

TEST(Localizer, EmptyFrozenMapStaysLost) {
  Localizer loc(FrozenMap::from_snapshot(MapSnapshot{}),
                std::make_unique<SoftwareBackend>(small_orb()));
  const TrackResult r = loc.process(desk_sequence().frame(0));
  EXPECT_TRUE(r.lost);
  EXPECT_FALSE(r.reloc_attempted);
  EXPECT_FALSE(loc.tracking());
}

}  // namespace
}  // namespace eslam
